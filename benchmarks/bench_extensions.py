"""Extensions: multi-level memory hierarchies and LU/Cholesky (paper's section 11 outlook).

These are not figures in the paper; they reproduce the conclusion's claim that
the I/O-optimality machinery generalizes to deeper memory hierarchies and to
other dense factorizations.
"""

import numpy as np
from _common import print_rows

from repro.extensions.factorizations import (
    cholesky_io_lower_bound,
    out_of_core_cholesky,
    parallel_cholesky_cost,
    parallel_lu_cost,
)
from repro.extensions.multilevel import multilevel_schedule, simulate_multilevel_io


def _multilevel_study(m=32, n=32, k=32, capacities=(32, 256, 4096)):
    schedule = multilevel_schedule(m, n, k, capacities)
    misses = simulate_multilevel_io(schedule, capacities)
    rows = []
    for level, measured in zip(schedule.levels, misses):
        rows.append(
            {
                "level": level.level,
                "capacity": level.capacity_words,
                "tile": f"{level.tile_m}x{level.tile_n}",
                "lower_bound": round(level.lower_bound),
                "predicted": round(level.predicted_traffic),
                "lru_measured": measured,
            }
        )
    return rows


def test_extension_multilevel_hierarchy(benchmark):
    rows = benchmark.pedantic(_multilevel_study, rounds=1, iterations=1)
    print_rows("Extension: 3-level memory hierarchy, 32^3 MMM", rows)
    for row in rows:
        assert row["predicted"] >= row["lower_bound"] * 0.99
    measured = [row["lru_measured"] for row in rows]
    assert measured == sorted(measured, reverse=True)


def _cholesky_study(n=60, memories=(108, 300, 1200)):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((n, n))
    spd = a @ a.T + n * np.eye(n)
    reference = np.linalg.cholesky(spd)
    rows = []
    for s in memories:
        run = out_of_core_cholesky(spd, memory_words=s)
        rows.append(
            {
                "S": s,
                "block": run.block_size,
                "measured_io": run.io,
                "lower_bound": round(cholesky_io_lower_bound(n, s)),
                "correct": bool(np.allclose(run.factor, reference, atol=1e-7)),
            }
        )
    return rows


def test_extension_out_of_core_cholesky(benchmark):
    rows = benchmark.pedantic(_cholesky_study, rounds=1, iterations=1)
    print_rows("Extension: out-of-core blocked Cholesky (n=60)", rows)
    assert all(row["correct"] for row in rows)
    ios = [row["measured_io"] for row in rows]
    assert ios == sorted(ios, reverse=True)


def test_extension_parallel_factorization_costs(benchmark):
    def costs():
        rows = []
        for n, p, s in [(4096, 64, 65536), (8192, 256, 65536)]:
            lu = parallel_lu_cost(n, p, s)
            chol = parallel_cholesky_cost(n, p, s)
            rows.append(
                {
                    "n": n,
                    "p": p,
                    "S": s,
                    "lu_words": round(lu.total_words),
                    "cholesky_words": round(chol.total_words),
                }
            )
        return rows

    rows = benchmark(costs)
    print_rows("Extension: parallel LU / Cholesky communication (COSMA-style updates)", rows)
    for row in rows:
        assert row["cholesky_words"] < row["lu_words"]
