"""Figures 8 and 9: % of peak performance and total runtime, square matrices.

The paper's Figures 8/9 report achieved flop rates and wall-clock times on
Piz Daint.  The reproduction feeds the simulator-measured communication
volumes, message counts and flop counts into the alpha-beta-gamma performance
model (see DESIGN.md for the substitution rationale) and reports the same two
views: % of peak (Figure 8) and total runtime (Figure 9).  The pass criterion
is the qualitative result: COSMA achieves the highest (or tied-highest)
simulated performance at every core count, in all three regimes.
"""

import pytest
from _common import print_series, run_benchmark_sweep

from repro.experiments.perf_model import percent_of_peak, simulated_time
from repro.experiments.report import group_by_scenario, performance_series, runtime_series
from repro.machine.topology import MachineSpec

#: Bandwidth-dominated spec: at simulator scale the per-message latency term
#: would otherwise dwarf the volume differences that dominate at paper scale.
SPEC = MachineSpec(name="bandwidth-bound", network_latency_s=0.0)


@pytest.mark.parametrize("regime", ["strong", "limited", "extra"])
def test_fig8_square_percent_of_peak(benchmark, regime):
    runs = benchmark.pedantic(
        run_benchmark_sweep, args=("square", regime), rounds=1, iterations=1
    )
    series = performance_series(runs, SPEC, overlap=True)
    print_series(f"Figure 8 ({regime} scaling, square)", series, "% of peak")
    for by_algo in group_by_scenario(runs).values():
        best = max(percent_of_peak(run, SPEC) for run in by_algo.values())
        cosma = percent_of_peak(by_algo["COSMA"], SPEC)
        assert cosma >= best * 0.85


@pytest.mark.parametrize("regime", ["strong", "limited", "extra"])
def test_fig9_square_runtime(benchmark, regime):
    runs = benchmark.pedantic(
        run_benchmark_sweep, args=("square", regime), rounds=1, iterations=1
    )
    series = runtime_series(runs, SPEC, overlap=True)
    print_series(f"Figure 9 ({regime} scaling, square)", series, "simulated seconds")
    for by_algo in group_by_scenario(runs).values():
        fastest = min(simulated_time(run, SPEC, overlap=True) for run in by_algo.values())
        cosma = simulated_time(by_algo["COSMA"], SPEC, overlap=True)
        assert cosma <= fastest * 1.2


def test_fig9_strong_scaling_monotone(benchmark):
    """Strong scaling: COSMA's simulated runtime decreases as cores are added."""
    runs = benchmark.pedantic(
        run_benchmark_sweep, args=("square", "strong", ("COSMA",)), rounds=1, iterations=1
    )
    times = sorted(
        (run.scenario.p, simulated_time(run, SPEC, overlap=True)) for run in runs
    )
    print(f"\nFigure 9 (COSMA strong-scaling runtimes): {times}")
    assert times[-1][1] < times[0][1]
