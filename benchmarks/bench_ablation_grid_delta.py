"""Ablation: the idle-rank allowance ``delta`` of FitRanks (section 7.1).

COSMA deliberately leaves up to a fraction ``delta`` of the processors idle
when that enables a better-shaped grid.  This ablation sweeps ``delta`` for a
set of awkward processor counts and reports the per-rank communication volume
and the idle count, quantifying the design choice Figure 5 illustrates for a
single point (p = 65).
"""

from _common import print_rows

from repro.core.grid import fit_ranks

AWKWARD_P = (65, 97, 131, 149)
DELTAS = (0.0, 0.01, 0.03, 0.10)


def _sweep(n: int = 2048):
    rows = []
    for p in AWKWARD_P:
        for delta in DELTAS:
            fit = fit_ranks(n, n, n, p, max_idle_fraction=delta)
            rows.append(
                {
                    "p": p,
                    "delta": delta,
                    "grid": fit.grid.as_tuple(),
                    "idle": fit.idle_ranks,
                    "words_per_rank": round(fit.communication_per_rank),
                }
            )
    return rows


def test_ablation_grid_delta(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_rows("Ablation: FitRanks idle allowance delta (square 2048^3)", rows)
    # For every awkward p, allowing idle ranks never increases communication,
    # and for at least one of them it reduces it substantially (> 20%).
    improvements = []
    for p in AWKWARD_P:
        strict = next(r for r in rows if r["p"] == p and r["delta"] == 0.0)
        relaxed = min(
            (r for r in rows if r["p"] == p), key=lambda r: r["words_per_rank"]
        )
        assert relaxed["words_per_rank"] <= strict["words_per_rank"]
        improvements.append(1 - relaxed["words_per_rank"] / strict["words_per_rank"])
    assert max(improvements) > 0.2
    # The idle fraction never exceeds the allowance.
    for row in rows:
        assert row["idle"] <= max(1, int(row["delta"] * row["p"]))
