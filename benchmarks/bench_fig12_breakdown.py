"""Figure 12: communication / computation time breakdown, with and without overlap.

The paper breaks COSMA's runtime into "sending inputs A and B", "sending
output C", "computation" and "other", for the smallest and largest core counts
of each matrix shape, with and without communication-computation overlap.
This benchmark reproduces the same breakdown from the simulator counters and
the overlap model, and checks the qualitative facts: the communication share
grows with the core count, and enabling overlap never increases the total.
"""

from _common import CORE_COUNTS, run_benchmark_sweep

from repro.experiments.perf_model import time_breakdown
from repro.experiments.report import format_table
from repro.machine.topology import MachineSpec

SPEC = MachineSpec(name="bandwidth-bound", network_latency_s=0.0)
SHAPES = ("square", "largeK", "largeM", "flat")


def _breakdowns():
    rows = []
    for family in SHAPES:
        runs = [r for r in run_benchmark_sweep(family, "strong", ("COSMA",)) if r.algorithm == "COSMA"]
        for run in runs:
            if run.scenario.p not in (min(CORE_COUNTS), max(CORE_COUNTS)):
                continue
            breakdown = time_breakdown(run, SPEC)
            rows.append(
                {
                    "shape": family,
                    "p": run.scenario.p,
                    "compute_s": breakdown.computation,
                    "send_AB_s": breakdown.input_communication,
                    "send_C_s": breakdown.output_communication,
                    "total_no_overlap_s": breakdown.total_no_overlap,
                    "total_with_overlap_s": breakdown.total_with_overlap,
                    "comm_fraction": breakdown.communication_fraction,
                }
            )
    return rows


def test_fig12_breakdown(benchmark):
    rows = benchmark.pedantic(_breakdowns, rounds=1, iterations=1)
    headers = list(rows[0].keys())
    print("\n== Figure 12: COSMA time breakdown (strong scaling, smallest/largest p) ==")
    print(format_table(headers, [[row[h] for h in headers] for row in rows]))

    by_shape: dict[str, list[dict]] = {}
    for row in rows:
        by_shape.setdefault(row["shape"], []).append(row)
    for family, pair in by_shape.items():
        pair.sort(key=lambda r: r["p"])
        small, large = pair[0], pair[-1]
        # Communication share grows as the same problem is spread over more cores.
        assert large["comm_fraction"] >= small["comm_fraction"] - 0.05, family
        for row in pair:
            assert row["total_with_overlap_s"] <= row["total_no_overlap_s"] + 1e-12


def test_fig12_overlap_benefit_when_balanced(benchmark):
    """Overlap helps most when communication and computation are comparable."""
    runs = benchmark.pedantic(
        run_benchmark_sweep, args=("square", "strong", ("COSMA",)), rounds=1, iterations=1
    )
    improvements = []
    for run in runs:
        breakdown = time_breakdown(run, SPEC)
        if breakdown.total_no_overlap > 0:
            improvements.append(1.0 - breakdown.total_with_overlap / breakdown.total_no_overlap)
    print(f"\nFigure 12: overlap time savings across core counts: {improvements}")
    assert all(imp >= -1e-9 for imp in improvements)
    assert max(improvements) > 0.05
