"""Figure 6: communication volume per core, square matrices, three regimes.

Reproduces the three panels of Figure 6 (strong scaling, limited memory,
extra memory) at simulator scale: for every core count each algorithm's mean
communicated megabytes per rank are measured by the simulator's counters (the
mpiP substitute).  The pass criterion is the paper's qualitative claim:
COSMA communicates the least in every panel and at every core count.
"""

import pytest
from _common import print_series, run_benchmark_sweep

from repro.experiments.report import group_by_scenario, volume_series


@pytest.mark.parametrize("regime", ["strong", "limited", "extra"])
def test_fig6_square_volume(benchmark, regime):
    runs = benchmark.pedantic(
        run_benchmark_sweep, args=("square", regime), rounds=1, iterations=1
    )
    assert all(run.correct for run in runs)
    series = volume_series(runs)
    print_series(f"Figure 6 ({regime} scaling, square)", series, "MB per rank")
    for by_algo in group_by_scenario(runs).values():
        cosma = by_algo["COSMA"].mean_received_per_rank
        best_other = min(
            run.mean_received_per_rank for name, run in by_algo.items() if name != "COSMA"
        )
        assert cosma <= best_other * 1.2
