"""Ablation: ScaLAPACK (block-cyclic) compatibility preprocessing (section 7.6).

COSMA accepts inputs in ScaLAPACK's block-cyclic layout and converts them to
its blocked layout in a preprocessing step.  This ablation measures that
one-time redistribution cost on the simulator and compares it with the
communication of the multiplication itself: for realistic shapes the
conversion is a small fraction of a single multiplication, which is why the
paper treats it as a preprocessing step.
"""

import numpy as np
from _common import print_rows

from repro.core.cosma import cosma_multiply
from repro.layouts.block_cyclic import BlockCyclicLayout
from repro.layouts.blocked import BlockedLayout
from repro.layouts.conversion import redistribution_volume
from repro.machine.simulator import DistributedMachine
from repro.layouts.conversion import redistribute


def _conversion_study(m: int = 96, n: int = 96, k: int = 192, p: int = 16, s: int = 4096):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))

    # Redistribution of A and B from a 4x4 block-cyclic layout (32-wide tiles)
    # to COSMA's blocked layout.
    rows = []
    total_conversion = 0
    for name, matrix in (("A", a), ("B", b)):
        rows_, cols_ = matrix.shape
        cyclic = BlockCyclicLayout(rows_, cols_, 16, 16, 4, 4)
        blocked = BlockedLayout(rows_, cols_, 4, 4)
        machine = DistributedMachine(p)
        redistribute(machine, matrix, cyclic, blocked)
        measured = machine.counters.total_words_sent
        predicted = redistribution_volume(cyclic, blocked)
        total_conversion += measured
        rows.append(
            {
                "matrix": name,
                "predicted_words": predicted,
                "measured_words": measured,
                "fraction_of_matrix": round(measured / matrix.size, 3),
            }
        )

    multiply_run = cosma_multiply(a, b, p, memory_words=s)
    rows.append(
        {
            "matrix": "multiplication itself",
            "predicted_words": "",
            "measured_words": multiply_run.counters.total_words_sent,
            "fraction_of_matrix": "",
        }
    )
    return rows, total_conversion, multiply_run.counters.total_words_sent


def test_ablation_layout_conversion(benchmark):
    rows, conversion, multiplication = benchmark.pedantic(_conversion_study, rounds=1, iterations=1)
    print_rows("Ablation: block-cyclic -> blocked conversion cost (96x192x96, p=16)", rows)
    # The conversion never moves more than the matrices themselves.
    for row in rows[:2]:
        assert row["measured_words"] == row["predicted_words"]
    # The one-time conversion is cheaper than a few multiplications' traffic.
    assert conversion < 5 * multiplication
