"""Benchmark-suite configuration.

The benchmarks live outside the default ``testpaths``; run them with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the reproduced tables/series printed by each benchmark.
"""

import sys
from pathlib import Path

# Make `import _common` work regardless of how pytest sets up sys.path.
sys.path.insert(0, str(Path(__file__).parent))
