"""Table 3: analytic I/O and latency costs of 2D, 2.5D, recursive and COSMA.

Reproduces the general-case formulas and the two special cases the paper
tabulates:

* square matrices, "limited memory": ``m = n = k``, ``S = 2 n^2 / p`` --
  2D, 2.5D and COSMA all reach ``~2 n^2 / sqrt(p)`` while CARMA pays an extra
  ``sqrt(3)`` factor;
* "tall" matrices, extra memory: ``m = n = sqrt(p)``, ``k = p^{3/2} / 4`` --
  2D pays ``O(sqrt(p))`` more and CARMA about 8% more than COSMA.
"""

import math

import pytest
from _common import print_rows

from repro.baselines.costs import (
    io_cost_25d,
    io_cost_2d,
    io_cost_carma,
    io_cost_cosma,
    latency_cost_25d,
    latency_cost_2d,
    latency_cost_carma,
    latency_cost_cosma,
)


def _general_case_rows(m, n, k, p, s):
    return [
        {"algorithm": "2D (ScaLAPACK)", "io": io_cost_2d(m, n, k, p), "latency": latency_cost_2d(m, n, k, p)},
        {"algorithm": "2.5D (CTF)", "io": io_cost_25d(m, n, k, p, s), "latency": latency_cost_25d(m, n, k, p, s)},
        {"algorithm": "recursive (CARMA)", "io": io_cost_carma(m, n, k, p, s), "latency": latency_cost_carma(m, n, k, p, s)},
        {"algorithm": "COSMA", "io": io_cost_cosma(m, n, k, p, s), "latency": latency_cost_cosma(m, n, k, p, s)},
    ]


def test_table3_square_limited_memory(benchmark):
    n = 1 << 12
    p = 1 << 9
    s = 2 * n * n // p
    rows = benchmark(_general_case_rows, n, n, n, p, s)
    print_rows(f"Table 3 (square, limited memory): n={n}, p={p}, S=2n^2/p", rows)
    costs = {row["algorithm"]: row["io"] for row in rows}
    # Paper: 2D, 2.5D and COSMA all achieve ~2 n^2/sqrt(p); CARMA is sqrt(3)x worse.
    reference = 2 * n * n / math.sqrt(p)
    assert costs["COSMA"] == pytest.approx(reference, rel=0.25)
    assert costs["2D (ScaLAPACK)"] == pytest.approx(reference, rel=0.25)
    assert costs["2.5D (CTF)"] == pytest.approx(reference, rel=0.25)
    ratio_carma = costs["recursive (CARMA)"] / costs["COSMA"]
    assert 1.2 < ratio_carma < 2.0  # ~sqrt(3) = 1.73


def test_table3_tall_extra_memory(benchmark):
    p = 1 << 12
    m = n = int(math.sqrt(p))
    k = int(p ** 1.5 / 4)
    s = 2 * n * k // int(p ** (2 / 3))
    rows = benchmark(_general_case_rows, m, n, k, p, s)
    print_rows(f"Table 3 (tall, extra memory): m=n={m}, k={k}, p={p}", rows)
    costs = {row["algorithm"]: row["io"] for row in rows}
    # Paper: 2D performs O(sqrt(p)) more communication than COSMA, CARMA ~8% more.
    assert costs["2D (ScaLAPACK)"] / costs["COSMA"] > math.sqrt(p) / 8
    assert 1.0 <= costs["recursive (CARMA)"] / costs["COSMA"] < 1.8
    assert costs["2.5D (CTF)"] >= costs["COSMA"] * 0.99


def test_table3_general_case_cosma_always_best(benchmark):
    def sweep_shapes():
        results = []
        for (m, n, k) in [(4096, 4096, 4096), (256, 256, 262144), (262144, 256, 256), (65536, 65536, 256)]:
            p = 1024
            footprint = m * n + m * k + n * k
            s = 2 * footprint // p
            row = {"shape": f"{m}x{n}x{k}"}
            row.update({r["algorithm"]: r["io"] for r in _general_case_rows(m, n, k, p, s)})
            results.append(row)
        return results

    rows = benchmark(sweep_shapes)
    print_rows("Table 3 (general case, p=1024, S=2I/p)", rows)
    for row in rows:
        cosma = row["COSMA"]
        for name in ("2D (ScaLAPACK)", "2.5D (CTF)", "recursive (CARMA)"):
            assert cosma <= row[name] * 1.01
