"""Fast-path execution engine benchmark: legacy vs zero-copy vs volume mode.

Times the same COSMA scenario sweep under the three payload transports of
:mod:`repro.machine.transport` and verifies the speedup trajectory the
fast-path refactor exists for:

* ``zerocopy`` must beat ``legacy`` (no O(q) copies per collective);
* ``volume`` must beat ``legacy`` by >= 10x on the shared sweep;
* all three modes must produce identical communication counters;
* the paper-scale COSMA point (p = 1024, m = n = k = 4096, limited-memory
  regime) must run under the batched counter engine with steady-state round
  compression (``compress_rounds=True``) at >= 5x the speed of the engine
  that preceded it, with counters byte-identical to the pinned baseline.

Reduced scale: set ``REPRO_BENCH_SMOKE=1`` to shrink every scenario (CI's
``bench-smoke`` job); the mode-parity and compression-parity assertions still
run, the absolute-speed assertions against the committed baseline are skipped
because they are only meaningful at paper scale.

Results are written to ``BENCH_simulator.json`` in the repository root::

    pytest benchmarks/bench_simulator_fastpath.py -s
    # or, without pytest:
    python benchmarks/bench_simulator_fastpath.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from _common import print_rows

from repro.experiments.harness import run_algorithm
from repro.machine.transport import MODES
from repro.workloads.scaling import Scenario, strong_scaling_sweep
from repro.workloads.shapes import square_shape

#: Reduced-scale switch for CI smoke runs.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: The shared sweep every mode is timed on: COSMA, square 768^3, p = 16 / 64
#: (384^3, p = 4 / 16 at smoke scale).
SHARED_SWEEP = tuple(
    strong_scaling_sweep(square_shape(384), (4, 16))
    if SMOKE
    else strong_scaling_sweep(square_shape(768), (16, 64))
)

#: The paper-scale point only volume mode can reach (limited-memory regime:
#: aggregate memory ~= 2x the input footprint, as in section 8).
PAPER_SCALE = (
    Scenario(
        name="square-smoke-p256",
        shape=square_shape(2048),
        p=256,
        memory_words=101_000,
        regime="limited",
    )
    if SMOKE
    else Scenario(
        name="square-paper-p1024",
        shape=square_shape(4096),
        p=1024,
        memory_words=101_000,
        regime="limited",
    )
)

#: Paper-scale volume-mode seconds of the pre-batched engine (PR 1's
#: ``BENCH_simulator.json``): one Python-level round at a time, 2535 rounds.
#: The batched counter engine + round compression must beat it by >= 5x.
PRE_BATCHING_BASELINE_S = 15.51

#: Counter values the paper-scale point is pinned to (any engine change that
#: alters them is a correctness bug, not a performance trade-off).
PAPER_SCALE_COUNTERS = {
    "mean_megabytes_per_rank": 7.602,
    "rounds": 2535,
    "total_flops": 137522839552,
}

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"


def _time_mode(mode: str) -> tuple[float, list]:
    start = time.perf_counter()
    runs = [run_algorithm("COSMA", scenario, mode=mode, verify=False) for scenario in SHARED_SWEEP]
    return time.perf_counter() - start, runs


def _counter_signature(runs: list) -> list[tuple]:
    return [
        (
            run.mean_words_per_rank,
            run.max_words_per_rank,
            run.rounds,
            run.total_flops,
            run.input_words_per_rank,
            run.output_words_per_rank,
            run.max_messages_per_rank,
        )
        for run in runs
    ]


def run_fastpath_benchmark() -> dict:
    """Time the shared sweep in all three modes plus the paper-scale point."""
    seconds: dict[str, float] = {}
    signatures: dict[str, list[tuple]] = {}
    for mode in MODES:
        seconds[mode], runs = _time_mode(mode)
        signatures[mode] = _counter_signature(runs)

    # Steady-state round compression on the shared volume sweep must leave
    # every counter untouched.
    compressed_runs = [
        run_algorithm("COSMA", scenario, mode="volume", verify=False, compress_rounds=True)
        for scenario in SHARED_SWEEP
    ]
    compression_parity = _counter_signature(compressed_runs) == signatures["volume"]

    start = time.perf_counter()
    paper_run = run_algorithm("COSMA", PAPER_SCALE, mode="volume", compress_rounds=True)
    paper_seconds = time.perf_counter() - start

    report = {
        "smoke_scale": SMOKE,
        "shared_sweep": {
            "algorithm": "COSMA",
            "shape": f"square m=n=k={SHARED_SWEEP[0].shape.m}",
            "p_values": [scenario.p for scenario in SHARED_SWEEP],
            "seconds": {mode: round(seconds[mode], 4) for mode in MODES},
            "speedup_vs_legacy": {
                mode: round(seconds["legacy"] / seconds[mode], 2) for mode in MODES
            },
            "counters_identical": all(
                signatures[mode] == signatures["legacy"] for mode in MODES
            ),
            "compression_counters_identical": compression_parity,
        },
        "paper_scale_volume_mode": {
            "scenario": PAPER_SCALE.name,
            "p": PAPER_SCALE.p,
            "shape": f"square m=n=k={PAPER_SCALE.shape.m}",
            "memory_words": PAPER_SCALE.memory_words,
            "compress_rounds": True,
            "seconds": round(paper_seconds, 2),
            "pre_batching_baseline_seconds": PRE_BATCHING_BASELINE_S,
            "speedup_vs_pre_batching": (
                round(PRE_BATCHING_BASELINE_S / paper_seconds, 1)
                if not SMOKE and paper_seconds > 0
                else None
            ),
            "mean_megabytes_per_rank": round(paper_run.mean_megabytes_per_rank, 3),
            "rounds": paper_run.rounds,
            "total_flops": paper_run.total_flops,
        },
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_simulator_fastpath():
    report = run_fastpath_benchmark()
    shared = report["shared_sweep"]
    print_rows(
        "Fast-path speedup trajectory (shared COSMA sweep)",
        [
            {
                "mode": mode,
                "seconds": shared["seconds"][mode],
                "speedup vs legacy": shared["speedup_vs_legacy"][mode],
            }
            for mode in MODES
        ],
    )
    print_rows("Paper-scale volume-mode run (compress_rounds=True)",
               [report["paper_scale_volume_mode"]])
    assert shared["counters_identical"], "modes disagree on communication counters"
    assert shared["compression_counters_identical"], "round compression changed counters"
    assert shared["speedup_vs_legacy"]["zerocopy"] > 1.0
    assert shared["speedup_vs_legacy"]["volume"] >= 10.0
    paper = report["paper_scale_volume_mode"]
    # The paper-scale point must actually complete and move data.
    assert paper["total_flops"] >= 2 * PAPER_SCALE.shape.m ** 3
    if not SMOKE:
        # Byte-identity against the pinned pre-batching counters ...
        for field, expected in PAPER_SCALE_COUNTERS.items():
            assert paper[field] == expected, f"{field}: {paper[field]} != pinned {expected}"
        # ... and the tentpole target: >= 5x over the pre-batching engine.
        assert paper["seconds"] * 5.0 <= PRE_BATCHING_BASELINE_S, (
            f"paper-scale run took {paper['seconds']}s; "
            f"needs >= 5x over the {PRE_BATCHING_BASELINE_S}s baseline"
        )


if __name__ == "__main__":
    print(json.dumps(run_fastpath_benchmark(), indent=2))
