"""Fast-path execution engine benchmark: legacy vs zerocopy vs plane vs volume.

Times the same COSMA scenario sweep under the four payload transports of
:mod:`repro.machine.transport` and verifies the speedup trajectory the
fast-path refactors exist for:

* ``zerocopy`` must beat ``legacy`` (no O(q) copies per collective);
* ``plane`` -- the stacked-array numeric engine -- must beat ``zerocopy`` by
  >= 5x on the shared sweep **with result verification enabled** (every plane
  run's product is checked against ``A @ B``);
* ``volume`` must beat ``legacy`` by >= 10x on the shared sweep;
* all four modes must produce identical communication counters;
* the paper-scale COSMA point (p = 1024, m = n = k = 4096, limited-memory
  regime) must complete in volume mode with round compression at >= 5x the
  pre-batching engine's speed with counters byte-identical to the pinned
  baseline, and -- new with the plane engine -- must also complete as a
  *numeric* run whose result verifies.

The shared sweep spans p = 16 ... 2048 on a 768^3 problem: the high-p points
are the communication-bound regime the paper targets, where per-hop Python
execution drowns and the batched engines shine.

Reduced scale: set ``REPRO_BENCH_SMOKE=1`` to shrink every scenario (CI's
``bench-smoke`` job); the parity and verification assertions still run, the
absolute-speed assertions against the committed baseline are skipped because
they are only meaningful at paper scale.

Results are written to ``BENCH_simulator.json`` in the repository root::

    pytest benchmarks/bench_simulator_fastpath.py -s
    # or, without pytest:
    python benchmarks/bench_simulator_fastpath.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from _common import print_rows

from repro.experiments.harness import run_algorithm
from repro.machine.simulator import DistributedMachine
from repro.machine.transport import MODES
from repro.obs import tracing, write_chrome_trace
from repro.workloads.scaling import Scenario, strong_scaling_sweep
from repro.workloads.shapes import square_shape

#: Reduced-scale switch for CI smoke runs.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

def _fixed_aggregate_sweep(shape, p_values) -> tuple[Scenario, ...]:
    """Strong scaling at fixed *aggregate* memory (~2x the footprint).

    Each point gets ``S = 2 * footprint / p``: growing the machine shrinks
    the per-rank memory, so the high-p points sit deep in the
    communication-bound regime the paper's strong-scaling evaluation
    targets (many small rounds -- the worst case for per-hop execution and
    the home turf of the batched engines).
    """
    return tuple(
        scenario
        for p in p_values
        for scenario in strong_scaling_sweep(shape, (p,))
    )


#: The shared sweep every mode is timed on: COSMA, square 768^3 over
#: p = 16 ... 2048 (384^3, p = 4 ... 64 at smoke scale).
SHARED_SWEEP = (
    _fixed_aggregate_sweep(square_shape(384), (4, 16, 64))
    if SMOKE
    else _fixed_aggregate_sweep(square_shape(768), (16, 64, 256, 1024, 2048))
)

#: The paper-scale point (limited-memory regime: aggregate memory ~= 2x the
#: input footprint, as in section 8).  Volume mode replays it compressed;
#: plane mode runs it numerically with verification on.
PAPER_SCALE = (
    Scenario(
        name="square-smoke-p256",
        shape=square_shape(2048),
        p=256,
        memory_words=101_000,
        regime="limited",
    )
    if SMOKE
    else Scenario(
        name="square-paper-p1024",
        shape=square_shape(4096),
        p=1024,
        memory_words=101_000,
        regime="limited",
    )
)

#: The extra-large verified point the sharded engine unlocks: p = 4096,
#: 8192^3, float32 planes.  Runs only when a multi-shard pool is available
#: (the row records a skip reason otherwise); smoke scale substitutes a
#: 1024^3, p = 64 stand-in so CI still exercises the code path.
PAPER_XL = (
    Scenario(
        name="square-smoke-xl-p64",
        shape=square_shape(1024),
        p=64,
        memory_words=101_000,
        regime="limited",
    )
    if SMOKE
    else Scenario(
        name="square-paper-p4096",
        shape=square_shape(8192),
        p=4096,
        memory_words=101_000,
        regime="limited",
    )
)

#: Paper-scale volume-mode seconds of the pre-batched engine (PR 1's
#: ``BENCH_simulator.json``): one Python-level round at a time, 2535 rounds.
#: The batched counter engine + round compression must beat it by >= 5x.
PRE_BATCHING_BASELINE_S = 15.51

#: Counter values the paper-scale point is pinned to (any engine change that
#: alters them is a correctness bug, not a performance trade-off).
PAPER_SCALE_COUNTERS = {
    "mean_megabytes_per_rank": 7.602,
    "rounds": 2535,
    "total_flops": 137522839552,
}

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"

#: Chrome trace of the traced paper-scale run, uploaded as a CI artifact
#: (open in ui.perfetto.dev); not committed.
TRACE_PATH = Path(__file__).resolve().parent.parent / "TRACE_simulator.json"


def _measure_trace_overhead() -> dict:
    """Tracing's two overhead budgets on the paper-scale volume point.

    * ``trace_overhead_pct`` -- best-of-3 traced vs untraced wall time of the
      compressed paper-scale run (the <= 15% budget);
    * ``disabled_overhead_pct`` -- the untraced path's cost is one attribute
      load + identity check per instrumentation site, so it is computed
      analytically: the guard count observed in the traced run (each
      ``MachineTrace`` notification call corresponds to exactly one guard an
      untraced run evaluates) times the measured per-guard no-op cost, over
      the untraced wall time (the <= 2% budget).  Measuring it as a
      wall-clock difference would be pure noise: the guards are orders of
      magnitude below timer jitter.

    Traced and untraced attempts are interleaved so slow thermal/cache
    drift cannot masquerade as tracing overhead.  Both budgets are gated by
    ``benchmarks/check_bench_regression.py``.
    """
    def _timed_run() -> float:
        start = time.perf_counter()
        run_algorithm("COSMA", PAPER_SCALE, mode="volume", compress_rounds=True)
        return time.perf_counter() - start

    _timed_run()  # warm caches outside the measurement
    untraced_s = traced_s = float("inf")
    tracer = None
    for _ in range(5):
        untraced_s = min(untraced_s, _timed_run())
        with tracing() as candidate:
            elapsed = _timed_run()
        if elapsed < traced_s:
            traced_s, tracer = elapsed, candidate
    write_chrome_trace(TRACE_PATH, tracer)
    round_spans = tracer.spans("round")

    # Replay the traced run once with the machine in hand to count the
    # notification calls = the guards an untraced run evaluates (hops are
    # batched: one guard per post_transfers call, not per hop), plus the
    # two round-boundary guards per round span.
    from repro.algorithms import get_algorithm
    from repro.machine.transport import ShapeToken
    shape = PAPER_SCALE.shape
    with tracing():
        machine = DistributedMachine(
            PAPER_SCALE.p, memory_words=PAPER_SCALE.memory_words,
            mode="volume", compress_rounds=True,
        )
        get_algorithm("COSMA").run(
            ShapeToken((shape.m, shape.k)), ShapeToken((shape.k, shape.n)),
            PAPER_SCALE, machine,
        )
    guard_evals = machine.trace.notifications + 2 * machine.trace.rounds

    probe = DistributedMachine(2, memory_words=64)  # untraced: trace is None
    n = 1_000_000
    start = time.perf_counter()
    for _ in range(n):
        pass
    loop_s = time.perf_counter() - start
    start = time.perf_counter()
    for _ in range(n):
        if probe.trace is not None:  # pragma: no cover - never taken
            raise AssertionError
    per_guard_s = max(0.0, (time.perf_counter() - start) - loop_s) / n

    return {
        "paper_scale_untraced_seconds": round(untraced_s, 4),
        "paper_scale_traced_seconds": round(traced_s, 4),
        "trace_overhead_pct": round(
            max(0.0, (traced_s - untraced_s) / untraced_s * 100.0), 2
        ),
        "trace_events": len(tracer.events),
        "round_spans": len(round_spans),
        "guard_evaluations": guard_evals,
        "per_guard_nanoseconds": round(per_guard_s * 1e9, 2),
        "disabled_overhead_pct": round(
            guard_evals * per_guard_s / untraced_s * 100.0, 4
        ),
        "trace_artifact": TRACE_PATH.name,
    }


def _time_mode(mode: str) -> tuple[float, list]:
    """Time the shared sweep in one mode.

    The numeric-engine row (``plane``) runs with verification ON -- its whole
    point is numerically checked execution; the other rows keep the historic
    verify-off protocol so their timings stay comparable across reports.
    """
    verify = mode == "plane"
    start = time.perf_counter()
    runs = [
        run_algorithm("COSMA", scenario, mode=mode, verify=verify)
        for scenario in SHARED_SWEEP
    ]
    return time.perf_counter() - start, runs


def _counter_signature(runs: list) -> list[tuple]:
    return [
        (
            run.mean_words_per_rank,
            run.max_words_per_rank,
            run.rounds,
            run.total_flops,
            run.input_words_per_rank,
            run.output_words_per_rank,
            run.max_messages_per_rank,
        )
        for run in runs
    ]


def _sharded_plane_row(paper_plane_seconds: float, paper_plane) -> dict:
    """Paper-scale plane run through the sharded engine.

    On a multi-core box this spawns a shard pool (``REPRO_BENCH_SHARDS``
    overrides the ``os.cpu_count()`` default) and times the same paper-scale
    point sharded; counters must match the unsharded run byte-for-byte.  On a
    single-core box (or where shared memory is unavailable) the engine
    degrades to shards=1 -- the row then reuses the already-measured unsharded
    numbers and records the skip reason, so the report never lies about what
    actually ran.
    """
    from repro.machine.shard import available_shards

    requested = int(os.environ.get("REPRO_BENCH_SHARDS", "0") or 0) or (os.cpu_count() or 1)
    effective, reason = available_shards(max(2, requested))
    row = {
        "scenario": PAPER_SCALE.name,
        "p": PAPER_SCALE.p,
        "shape": f"square m=n=k={PAPER_SCALE.shape.m}",
        "memory_words": PAPER_SCALE.memory_words,
        "plane_dtype": "float64",
        "requested_shards": requested,
        "shards": effective,
        "skip_reason": reason,
    }
    if effective > 1:
        start = time.perf_counter()
        run = run_algorithm(
            "COSMA", PAPER_SCALE, mode="plane", verify=True, shards=effective
        )
        sharded_seconds = time.perf_counter() - start
    else:
        run, sharded_seconds = paper_plane, paper_plane_seconds
    row.update({
        "seconds": round(sharded_seconds, 2),
        "unsharded_seconds": round(paper_plane_seconds, 2),
        "speedup_vs_unsharded": (
            round(paper_plane_seconds / sharded_seconds, 2)
            if sharded_seconds > 0
            else None
        ),
        "verified": run.verified,
        "correct": run.correct,
        "counters_identical": (
            _counter_signature([run]) == _counter_signature([paper_plane])
        ),
        "counter_signature": [list(entry) for entry in _counter_signature([run])],
    })
    return row


def _paper_xl_row(effective_shards: int, skip_reason: str | None) -> dict:
    """The first verified numeric p=4096, 8192^3 point (float32 planes).

    Too large for a single in-process GEMM loop to be worth waiting for, so
    it runs only when the shard pool actually has >= 2 workers; otherwise the
    row records why it was skipped (e.g. ``cpu_count=1``) instead of
    silently omitting the point.
    """
    row = {
        "scenario": PAPER_XL.name,
        "p": PAPER_XL.p,
        "shape": f"square m=n=k={PAPER_XL.shape.m}",
        "memory_words": PAPER_XL.memory_words,
        "plane_dtype": "float32",
        "shards": effective_shards,
    }
    if effective_shards < 2:
        row["skipped"] = skip_reason or "needs a multi-core box"
        return row
    start = time.perf_counter()
    run = run_algorithm(
        "COSMA", PAPER_XL, mode="plane", verify=True,
        shards=effective_shards, plane_dtype="float32",
    )
    row.update({
        "seconds": round(time.perf_counter() - start, 2),
        "verified": run.verified,
        "correct": run.correct,
        "rounds": run.rounds,
        "total_flops": run.total_flops,
    })
    return row


def run_fastpath_benchmark() -> dict:
    """Time the shared sweep in all four modes plus the paper-scale points."""
    seconds: dict[str, float] = {}
    signatures: dict[str, list[tuple]] = {}
    plane_runs: list = []
    for mode in MODES:
        seconds[mode], runs = _time_mode(mode)
        signatures[mode] = _counter_signature(runs)
        if mode == "plane":
            plane_runs = runs

    # Steady-state round compression on the shared volume sweep must leave
    # every counter untouched.
    compressed_runs = [
        run_algorithm("COSMA", scenario, mode="volume", verify=False, compress_rounds=True)
        for scenario in SHARED_SWEEP
    ]
    compression_parity = _counter_signature(compressed_runs) == signatures["volume"]

    start = time.perf_counter()
    paper_run = run_algorithm("COSMA", PAPER_SCALE, mode="volume", compress_rounds=True)
    paper_seconds = time.perf_counter() - start

    # Paper-scale *numeric* execution: the run the plane engine unlocks.
    start = time.perf_counter()
    paper_plane = run_algorithm("COSMA", PAPER_SCALE, mode="plane", verify=True)
    paper_plane_seconds = time.perf_counter() - start

    # The sharded engine on the same paper-scale point (falls back to the
    # unsharded numbers, with a recorded reason, on single-core boxes), plus
    # the XL point only a sharded pool makes tractable.
    plane_sharded = _sharded_plane_row(paper_plane_seconds, paper_plane)
    paper_xl = _paper_xl_row(plane_sharded["shards"], plane_sharded["skip_reason"])

    tracing_overhead = _measure_trace_overhead()

    report = {
        "smoke_scale": SMOKE,
        "shared_sweep": {
            "algorithm": "COSMA",
            "shape": f"square m=n=k={SHARED_SWEEP[0].shape.m}",
            "p_values": [scenario.p for scenario in SHARED_SWEEP],
            "seconds": {mode: round(seconds[mode], 4) for mode in MODES},
            "speedup_vs_legacy": {
                mode: round(seconds["legacy"] / seconds[mode], 2) for mode in MODES
            },
            "plane_speedup_vs_zerocopy": round(seconds["zerocopy"] / seconds["plane"], 2),
            "plane_verified": all(run.verified and run.correct for run in plane_runs),
            "counters_identical": all(
                signatures[mode] == signatures["legacy"] for mode in MODES
            ),
            "compression_counters_identical": compression_parity,
            # Per-scenario plane counters, gated byte-for-byte by
            # benchmarks/check_bench_regression.py.
            "plane_signature": [list(entry) for entry in signatures["plane"]],
        },
        "paper_scale_volume_mode": {
            "scenario": PAPER_SCALE.name,
            "p": PAPER_SCALE.p,
            "shape": f"square m=n=k={PAPER_SCALE.shape.m}",
            "memory_words": PAPER_SCALE.memory_words,
            "compress_rounds": True,
            "seconds": round(paper_seconds, 2),
            "pre_batching_baseline_seconds": PRE_BATCHING_BASELINE_S,
            "speedup_vs_pre_batching": (
                round(PRE_BATCHING_BASELINE_S / paper_seconds, 1)
                if not SMOKE and paper_seconds > 0
                else None
            ),
            "mean_megabytes_per_rank": round(paper_run.mean_megabytes_per_rank, 3),
            "rounds": paper_run.rounds,
            "total_flops": paper_run.total_flops,
        },
        "paper_scale_plane_mode": {
            "scenario": PAPER_SCALE.name,
            "p": PAPER_SCALE.p,
            "shape": f"square m=n=k={PAPER_SCALE.shape.m}",
            "memory_words": PAPER_SCALE.memory_words,
            "seconds": round(paper_plane_seconds, 2),
            "verified": paper_plane.verified,
            "correct": paper_plane.correct,
            "mean_megabytes_per_rank": round(paper_plane.mean_megabytes_per_rank, 3),
            "rounds": paper_plane.rounds,
            "total_flops": paper_plane.total_flops,
        },
        "plane_sharded": plane_sharded,
        "paper_xl_plane_sharded": paper_xl,
        "tracing": tracing_overhead,
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_simulator_fastpath():
    report = run_fastpath_benchmark()
    shared = report["shared_sweep"]
    print_rows(
        "Fast-path speedup trajectory (shared COSMA sweep)",
        [
            {
                "mode": mode,
                "seconds": shared["seconds"][mode],
                "speedup vs legacy": shared["speedup_vs_legacy"][mode],
            }
            for mode in MODES
        ],
    )
    print_rows("Paper-scale volume-mode run (compress_rounds=True)",
               [report["paper_scale_volume_mode"]])
    print_rows("Paper-scale numeric run (plane mode, verification on)",
               [report["paper_scale_plane_mode"]])
    print_rows("Paper-scale sharded plane run",
               [{k: v for k, v in report["plane_sharded"].items()
                 if k != "counter_signature"}])
    print_rows("XL numeric point (p=4096, 8192^3, float32, sharded)",
               [report["paper_xl_plane_sharded"]])
    print_rows("Tracing overhead (paper-scale volume, compress_rounds=True)",
               [report["tracing"]])
    assert shared["counters_identical"], "modes disagree on communication counters"
    assert shared["compression_counters_identical"], "round compression changed counters"
    assert shared["plane_verified"], "a plane-mode product failed verification"
    paper = report["paper_scale_volume_mode"]
    paper_plane = report["paper_scale_plane_mode"]
    # The paper-scale points must actually complete, move data and verify.
    assert paper["total_flops"] >= 2 * PAPER_SCALE.shape.m ** 3
    assert paper_plane["verified"] and paper_plane["correct"]
    assert paper_plane["total_flops"] == paper["total_flops"]
    assert paper_plane["rounds"] == paper["rounds"]
    sharded = report["plane_sharded"]
    # Sharding is an execution policy: whatever ran (sharded or the recorded
    # single-core fallback) must verify and keep counters byte-identical.
    assert sharded["verified"] and sharded["correct"]
    assert sharded["counters_identical"], "sharded plane run drifted counters"
    xl = report["paper_xl_plane_sharded"]
    if "skipped" not in xl:
        assert xl["verified"] and xl["correct"]
    if not SMOKE and sharded["shards"] >= 4:
        # The acceptance bar: >= 2.5x over the unsharded plane engine on a
        # >= 4-core box (single-core boxes record the fallback instead).
        assert sharded["speedup_vs_unsharded"] >= 2.5, (
            f"sharded paper-scale run is only {sharded['speedup_vs_unsharded']}x "
            f"over unsharded with {sharded['shards']} shards; bar is 2.5x"
        )
    traced = report["tracing"]
    # The zero-perturbation budget: guards must be invisible when tracing is
    # off, and the traced paper-scale run must emit at least one round span.
    assert traced["disabled_overhead_pct"] <= 2.0, (
        f"disabled-tracer guard cost is {traced['disabled_overhead_pct']}% "
        "of the untraced paper-scale run; budget is 2%"
    )
    assert traced["round_spans"] >= 1 and traced["trace_events"] > traced["round_spans"]
    if not SMOKE:
        assert traced["trace_overhead_pct"] <= 15.0, (
            f"traced paper-scale run is {traced['trace_overhead_pct']}% slower "
            "than untraced; budget is 15%"
        )
    if not SMOKE:
        # On this communication-bound sweep the payloads are tiny, so
        # zerocopy's copy elision is roughly a wash against legacy (its
        # historic >1x win shows on memory-rich shapes); it must merely not
        # regress beyond noise.  At smoke scale the ratio is all noise.
        assert shared["speedup_vs_legacy"]["zerocopy"] > 0.8
        assert shared["speedup_vs_legacy"]["volume"] >= 10.0
        # The tentpole bar: numerically verified execution at >= 5x zerocopy.
        assert shared["plane_speedup_vs_zerocopy"] >= 5.0, (
            f"plane mode is only {shared['plane_speedup_vs_zerocopy']}x over "
            "zerocopy on the shared sweep; the stacked-array engine must hit 5x"
        )
        # Byte-identity against the pinned pre-batching counters ...
        for field, expected in PAPER_SCALE_COUNTERS.items():
            assert paper[field] == expected, f"{field}: {paper[field]} != pinned {expected}"
        # ... and the batched-counter bar: >= 5x over the pre-batching engine.
        assert paper["seconds"] * 5.0 <= PRE_BATCHING_BASELINE_S, (
            f"paper-scale run took {paper['seconds']}s; "
            f"needs >= 5x over the {PRE_BATCHING_BASELINE_S}s baseline"
        )


if __name__ == "__main__":
    print(json.dumps(run_fastpath_benchmark(), indent=2))
