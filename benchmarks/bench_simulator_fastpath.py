"""Fast-path execution engine benchmark: legacy vs zero-copy vs volume mode.

Times the same COSMA scenario sweep under the three payload transports of
:mod:`repro.machine.transport` and verifies the speedup trajectory the
fast-path refactor exists for:

* ``zerocopy`` must beat ``legacy`` (no O(q) copies per collective);
* ``volume`` must beat ``legacy`` by >= 10x on the shared sweep;
* all three modes must produce identical communication counters;
* ``volume`` mode must complete a paper-scale COSMA run (p = 1024,
  m = n = k = 4096, limited-memory regime) that is infeasible with
  physically copied numpy payloads.

Results are written to ``BENCH_simulator.json`` in the repository root::

    pytest benchmarks/bench_simulator_fastpath.py -s
    # or, without pytest:
    python benchmarks/bench_simulator_fastpath.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _common import print_rows

from repro.experiments.harness import run_algorithm
from repro.machine.transport import MODES
from repro.workloads.scaling import Scenario, strong_scaling_sweep
from repro.workloads.shapes import square_shape

#: The shared sweep every mode is timed on: COSMA, square 768^3, p = 16 / 64.
SHARED_SWEEP = tuple(strong_scaling_sweep(square_shape(768), (16, 64)))

#: The paper-scale point only volume mode can reach (limited-memory regime:
#: aggregate memory ~= 2x the input footprint, as in section 8).
PAPER_SCALE = Scenario(
    name="square-paper-p1024",
    shape=square_shape(4096),
    p=1024,
    memory_words=101_000,
    regime="limited",
)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"


def _time_mode(mode: str) -> tuple[float, list]:
    start = time.perf_counter()
    runs = [run_algorithm("COSMA", scenario, mode=mode, verify=False) for scenario in SHARED_SWEEP]
    return time.perf_counter() - start, runs


def _counter_signature(runs: list) -> list[tuple]:
    return [
        (
            run.mean_words_per_rank,
            run.max_words_per_rank,
            run.rounds,
            run.total_flops,
            run.input_words_per_rank,
            run.output_words_per_rank,
            run.max_messages_per_rank,
        )
        for run in runs
    ]


def run_fastpath_benchmark() -> dict:
    """Time the shared sweep in all three modes plus the paper-scale point."""
    seconds: dict[str, float] = {}
    signatures: dict[str, list[tuple]] = {}
    for mode in MODES:
        seconds[mode], runs = _time_mode(mode)
        signatures[mode] = _counter_signature(runs)

    start = time.perf_counter()
    paper_run = run_algorithm("COSMA", PAPER_SCALE, mode="volume")
    paper_seconds = time.perf_counter() - start

    report = {
        "shared_sweep": {
            "algorithm": "COSMA",
            "shape": "square m=n=k=768",
            "p_values": [scenario.p for scenario in SHARED_SWEEP],
            "seconds": {mode: round(seconds[mode], 4) for mode in MODES},
            "speedup_vs_legacy": {
                mode: round(seconds["legacy"] / seconds[mode], 2) for mode in MODES
            },
            "counters_identical": all(
                signatures[mode] == signatures["legacy"] for mode in MODES
            ),
        },
        "paper_scale_volume_mode": {
            "scenario": PAPER_SCALE.name,
            "p": PAPER_SCALE.p,
            "shape": "square m=n=k=4096",
            "memory_words": PAPER_SCALE.memory_words,
            "seconds": round(paper_seconds, 2),
            "mean_megabytes_per_rank": round(paper_run.mean_megabytes_per_rank, 3),
            "rounds": paper_run.rounds,
            "total_flops": paper_run.total_flops,
        },
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_simulator_fastpath():
    report = run_fastpath_benchmark()
    shared = report["shared_sweep"]
    print_rows(
        "Fast-path speedup trajectory (shared COSMA sweep)",
        [
            {
                "mode": mode,
                "seconds": shared["seconds"][mode],
                "speedup vs legacy": shared["speedup_vs_legacy"][mode],
            }
            for mode in MODES
        ],
    )
    print_rows("Paper-scale volume-mode run", [report["paper_scale_volume_mode"]])
    assert shared["counters_identical"], "modes disagree on communication counters"
    assert shared["speedup_vs_legacy"]["zerocopy"] > 1.0
    assert shared["speedup_vs_legacy"]["volume"] >= 10.0
    # The paper-scale point must actually complete and move data.
    assert report["paper_scale_volume_mode"]["total_flops"] >= 2 * 4096**3


if __name__ == "__main__":
    print(json.dumps(run_fastpath_benchmark(), indent=2))
