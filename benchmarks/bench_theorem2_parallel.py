"""Theorem 2 / Equation 32: parallel I/O optimality of the COSMA schedule.

Checks, across processor counts and memory sizes, that (a) the analytic COSMA
cost equals the Theorem 2 bound, (b) the simulator-measured per-rank received
volume of the COSMA executor tracks the bound within a small factor, and (c)
the I/O-latency trade-off behaves as derived in section 6.3.
"""

import numpy as np
from _common import print_rows

from repro.core.cosma import cosma_multiply
from repro.core.cost_model import cosma_io_cost
from repro.core.tradeoff import tradeoff_curve
from repro.pebbling.mmm_bounds import parallel_io_lower_bound


def _sweep(n=64, p_values=(4, 8, 16, 32), s_values=(1024, 4096)):
    rng = np.random.default_rng(2)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    rows = []
    for s in s_values:
        for p in p_values:
            run = cosma_multiply(a, b, p, memory_words=s, max_idle_fraction=max(0.03, 1.5 / p))
            bound = parallel_io_lower_bound(n, n, n, p, s)
            rows.append(
                {
                    "p": p,
                    "S": s,
                    "grid": run.grid.as_tuple(),
                    "measured_received": round(run.counters.mean_received_per_rank(), 1),
                    "theorem2_bound": round(bound, 1),
                    "analytic_cosma": round(cosma_io_cost(n, n, n, p, s), 1),
                    "measured_over_bound": round(run.counters.mean_received_per_rank() / bound, 3),
                    "correct": bool(np.allclose(run.matrix, a @ b)),
                }
            )
    return rows


def test_theorem2_parallel_io(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_rows("Theorem 2: COSMA measured volume vs the parallel lower bound (64^3)", rows)
    for row in rows:
        assert row["correct"]
        assert row["analytic_cosma"] == row["theorem2_bound"]
        # The measured received volume never exceeds the analytic cost by more
        # than the discretization slack (the analytic cost also charges for
        # locally resident data, so the measured value is usually below it).
        assert row["measured_over_bound"] < 1.3


def test_theorem2_tradeoff_curve(benchmark):
    points = benchmark.pedantic(
        tradeoff_curve, args=(256, 256, 256, 16, 2048), kwargs={"samples": 16}, rounds=1, iterations=1
    )
    rows = [
        {"a": round(pt.a, 1), "io": round(pt.io_cost), "latency": round(pt.latency_cost, 2), "rounds": pt.rounds}
        for pt in points
    ]
    print_rows("Section 6.3: I/O-latency trade-off (256^3, p=16, S=2048)", rows)
    ios = [pt.io_cost for pt in points]
    latencies = [pt.latency_cost for pt in points]
    # Growing a reduces I/O but raises latency.
    assert ios[0] > ios[-1]
    assert latencies[-1] > latencies[0]
