"""Figure 2: evolution of the worst-case I/O cost of MMM algorithms.

The paper's Figure 2 sketches how the per-processor communication volume of
parallel MMM dropped from the naive 1D decomposition through Cannon/SUMMA
(2D), 2.5D, CARMA, down to COSMA which matches the lower bound.  This
benchmark evaluates the analytic Table 3 formulas for a representative
configuration and checks the historical ordering.
"""

from _common import print_rows

from repro.baselines.costs import evolution_table


CONFIG = dict(m=4096, n=4096, k=4096, p=512)


def _evolution():
    s = 4 * (CONFIG["m"] * CONFIG["k"] + CONFIG["n"] * CONFIG["k"]) // CONFIG["p"]
    return evolution_table(CONFIG["m"], CONFIG["n"], CONFIG["k"], CONFIG["p"], s)


def test_fig2_evolution(benchmark):
    table = benchmark(_evolution)
    rows = [{"algorithm": name, "words_per_processor": volume} for name, volume in table.items()]
    print_rows("Figure 2: worst-case I/O cost per processor (square 4096^3, p=512)", rows)
    # The historical ordering must hold: each generation is at least as good.
    assert table["naive-1D"] >= table["Cannon-2D"] * 0.99
    assert table["Cannon-2D"] >= table["2.5D"] * 0.99
    assert table["2.5D"] >= table["COSMA"] * 0.99
    assert table["CARMA-recursive"] >= table["COSMA"] * 0.99
    # COSMA sits exactly on the lower bound.
    assert table["COSMA"] == table["lower-bound"]
