"""Micro-benchmark for the hot accounting path: ``payload_words`` / ``send``.

Every transfer the simulator counts calls :func:`~repro.machine.transport.
payload_words` (and every ``Rank.put``/``pop`` does too).  The function used
to round-trip each payload through ``np.asarray`` just to read ``.size``;
it now reads the attribute directly when present.  This benchmark pins that
fast path against the old asarray-based reference so the optimisation cannot
silently regress::

    pytest benchmarks/bench_payload_accounting.py -s
"""

from __future__ import annotations

import time

import numpy as np

from _common import print_rows

from repro.machine.simulator import DistributedMachine
from repro.machine.transport import ShapeToken, payload_words

#: Calls per timing sample; a few repeats, best-of, to shrug off CI noise.
CALLS = 50_000
REPEATS = 5


def _asarray_reference(block) -> int:
    """The pre-optimisation implementation (np.asarray round-trip)."""
    if isinstance(block, ShapeToken):
        return block.size
    return int(np.asarray(block).size)


def _best_of(fn, payloads) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        for block in payloads:
            fn(block)
        best = min(best, time.perf_counter() - start)
    return best


def run_payload_accounting_benchmark() -> dict:
    payloads = [np.empty((8, 8)) for _ in range(CALLS)]
    fast = _best_of(payload_words, payloads)
    reference = _best_of(_asarray_reference, payloads)

    # Token payloads take the same attribute read.
    tokens = [ShapeToken((8, 8))] * CALLS
    fast_tokens = _best_of(payload_words, tokens)

    # End-to-end: the accounting-dominated send loop (tiny payloads, so the
    # per-transfer bookkeeping is what is being measured).
    machine = DistributedMachine(2, mode="zerocopy")
    block = np.empty((4, 4))
    sends = CALLS // 10
    start = time.perf_counter()
    for _ in range(sends):
        machine.send(0, 1, block)
    send_seconds = time.perf_counter() - start

    return {
        "calls": CALLS,
        "payload_words_ns": round(fast / CALLS * 1e9, 1),
        "asarray_reference_ns": round(reference / CALLS * 1e9, 1),
        "speedup_vs_asarray": round(reference / fast, 2),
        "token_payload_ns": round(fast_tokens / CALLS * 1e9, 1),
        "send_per_transfer_us": round(send_seconds / sends * 1e6, 2),
    }


def test_payload_words_fast_path():
    report = run_payload_accounting_benchmark()
    print_rows("Hot accounting path (payload_words / send)", [report])
    # Correctness: the fast path agrees with the asarray reference on every
    # payload flavour the simulator moves.
    samples = [np.empty((3, 5)), np.empty(0), ShapeToken((7, 2)), [[1.0, 2.0]], 3.0]
    for block in samples:
        assert payload_words(block) == _asarray_reference(block)
    # Regression bar: reading the attribute must clearly beat the asarray
    # round-trip (it is ~5x in practice; 1.3x leaves CI noise headroom).
    assert report["speedup_vs_asarray"] >= 1.3, (
        f"payload_words fast path is only {report['speedup_vs_asarray']}x over "
        "the np.asarray reference; the attribute read has regressed"
    )


if __name__ == "__main__":
    import json

    print(json.dumps(run_payload_accounting_benchmark(), indent=2))
