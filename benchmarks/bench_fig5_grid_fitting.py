"""Figure 5 and the "unfavorable number of processors" experiment (section 9).

* Figure 5: with p = 65 and square matrices, using all 65 ranks forces a
  1 x 5 x 13 grid; dropping a single rank enables 4 x 4 x 4, increasing the
  per-rank computation by 1.5% but cutting communication by ~36%.
* Section 9: COSMA's runtime is insensitive to adding one awkward core
  (p = 9216 vs 9217 in the paper) because the grid optimizer simply leaves it
  idle, whereas CTF's decomposition degrades badly.
"""

from _common import print_rows

from repro.core.grid import candidate_grids, communication_volume_per_rank, fit_ranks


def _figure5(n: int = 4096, p: int = 65):
    fitted = fit_ranks(n, n, n, p, max_idle_fraction=0.03)
    all_ranks_best = min(
        candidate_grids(p, n, n, n),
        key=lambda g: communication_volume_per_rank(g, n, n, n),
    )
    all_ranks_volume = communication_volume_per_rank(all_ranks_best, n, n, n)
    return {
        "p": p,
        "fitted_grid": fitted.grid.as_tuple(),
        "idle_ranks": fitted.idle_ranks,
        "fitted_volume_per_rank": fitted.communication_per_rank,
        "best_all_ranks_grid": all_ranks_best.as_tuple(),
        "all_ranks_volume_per_rank": all_ranks_volume,
        "volume_reduction": 1.0 - fitted.communication_per_rank / all_ranks_volume,
        "extra_compute_fraction": fitted.computation_per_rank / (n * n * n / p) - 1.0,
    }


def test_fig5_grid_fitting_65_ranks(benchmark):
    row = benchmark.pedantic(_figure5, rounds=1, iterations=1)
    print_rows("Figure 5: grid fitting for square matrices on p=65", [row])
    assert row["fitted_grid"] == (4, 4, 4)
    assert row["idle_ranks"] == 1
    # Paper: ~36% communication reduction for ~1.5% extra computation.
    assert row["volume_reduction"] > 0.25
    assert row["extra_compute_fraction"] < 0.05


def _unfavorable(n: int = 512, p_nice: int = 128, p_awkward: int = 131):
    nice = fit_ranks(n, n, n, p_nice, max_idle_fraction=0.03)
    awkward = fit_ranks(n, n, n, p_awkward, max_idle_fraction=0.03)
    return {
        "p_nice": p_nice,
        "nice_grid": nice.grid.as_tuple(),
        "nice_volume": nice.communication_per_rank,
        "p_awkward": p_awkward,
        "awkward_grid": awkward.grid.as_tuple(),
        "awkward_volume": awkward.communication_per_rank,
        "volume_ratio": awkward.communication_per_rank / nice.communication_per_rank,
    }


def test_unfavorable_processor_count(benchmark):
    row = benchmark.pedantic(_unfavorable, rounds=1, iterations=1)
    print_rows("Section 9: unfavorable processor count (COSMA grid fitting)", [row])
    # Adding awkward cores must not degrade COSMA's communication noticeably.
    assert row["volume_ratio"] < 1.10
