"""Table 4: average communication volume per rank and COSMA's speedups.

For each of the twelve (matrix shape x benchmark regime) combinations the
paper reports (a) the mean communication volume per MPI rank of every library
and (b) the min / geometric-mean / max speedup of COSMA over the second-best
library across core counts.  This benchmark reproduces both columns from the
simulator measurements and the performance model, and asserts the paper's
qualitative findings: COSMA always communicates the least, and its speedup
over the second-best algorithm is >= 1 everywhere.
"""

from _common import run_benchmark_sweep

from repro.experiments.report import table4_rows, table4_text
from repro.machine.topology import MachineSpec

SPEC = MachineSpec(name="bandwidth-bound", network_latency_s=0.0)

SHAPES = ("square", "largeK", "largeM", "flat")
REGIMES = ("strong", "limited", "extra")


def _collect():
    runs_by_benchmark = {}
    for family in SHAPES:
        for regime in REGIMES:
            runs_by_benchmark[f"{family}-{regime}"] = run_benchmark_sweep(family, regime)
    return runs_by_benchmark


def test_table4_volume_and_speedup(benchmark):
    runs_by_benchmark = benchmark.pedantic(_collect, rounds=1, iterations=1)
    print("\n== Table 4: mean MB per rank and COSMA speedup vs second best ==")
    print(table4_text(runs_by_benchmark, SPEC))

    rows = table4_rows(runs_by_benchmark, SPEC)
    assert len(rows) == len(SHAPES) * len(REGIMES)
    for row in rows:
        volumes = {key[4:]: value for key, value in row.items() if key.startswith("vol_")}
        # COSMA's average volume is the smallest (ties allowed at tiny scale).
        assert volumes["COSMA"] <= min(volumes.values()) * 1.2, row["benchmark"]
        # COSMA is never meaningfully slower than the second-best algorithm on
        # (geometric) average; at the smallest simulated core counts all
        # algorithms communicate next to nothing, so allow modest noise.
        assert row["speedup_geomean"] >= 0.8, row["benchmark"]

    # Across all benchmarks the overall mean speedup is noticeably above 1
    # (the paper reports a 2.2x average at Piz Daint scale).
    geomeans = [row["speedup_geomean"] for row in rows]
    assert sum(geomeans) / len(geomeans) > 1.0


def test_table4_every_run_verified(benchmark):
    runs_by_benchmark = benchmark.pedantic(_collect, rounds=1, iterations=1)
    for runs in runs_by_benchmark.values():
        assert all(run.correct for run in runs)
