"""Figures 13 and 14: distribution of achieved % of peak across core counts.

The paper shows, for each of the twelve (shape x regime) scenarios, the
distribution of achieved performance over all core counts.  This benchmark
computes min / geometric mean / max of the simulated % of peak for every
algorithm and scenario class and checks the headline distributional claims.
"""

import pytest
from _common import print_rows, run_benchmark_sweep

from repro.experiments.report import performance_distribution
from repro.machine.topology import MachineSpec

SPEC = MachineSpec(name="bandwidth-bound", network_latency_s=0.0)


def _distribution(family: str, regime: str):
    runs = run_benchmark_sweep(family, regime)
    return performance_distribution(runs, SPEC)


@pytest.mark.parametrize("family", ["square", "flat"])
@pytest.mark.parametrize("regime", ["strong", "limited", "extra"])
def test_fig13_square_flat_distribution(benchmark, family, regime):
    summary = benchmark.pedantic(_distribution, args=(family, regime), rounds=1, iterations=1)
    rows = [
        {"algorithm": name, **{key: round(value, 2) for key, value in stats.items()}}
        for name, stats in sorted(summary.items())
    ]
    print_rows(f"Figure 13 ({family}, {regime}): % of peak distribution", rows)
    cosma = summary["COSMA"]
    for name, stats in summary.items():
        assert cosma["geomean"] >= stats["geomean"] * 0.85, name


@pytest.mark.parametrize("family", ["largeK", "largeM"])
@pytest.mark.parametrize("regime", ["strong", "limited", "extra"])
def test_fig14_tall_distribution(benchmark, family, regime):
    summary = benchmark.pedantic(_distribution, args=(family, regime), rounds=1, iterations=1)
    rows = [
        {"algorithm": name, **{key: round(value, 2) for key, value in stats.items()}}
        for name, stats in sorted(summary.items())
    ]
    print_rows(f"Figure 14 ({family}, {regime}): % of peak distribution", rows)
    cosma = summary["COSMA"]
    for name, stats in summary.items():
        assert cosma["geomean"] >= stats["geomean"] * 0.85, name
