"""Ablation: topology-aware broadcast trees (section 7.2).

The paper's hand-crafted binary broadcast tree places communicating ranks
close together in the processor grid and reports ~10% faster collectives than
the generic MPI broadcast.  The simulator cannot time switch contention, so
this ablation compares the *hop counts* (grid / node distance summed over all
tree edges) of the placement-oblivious binomial tree against the
topology-aware tree for the grids the COSMA decomposition actually produces.
"""

from _common import print_rows

from repro.core.grid import fit_ranks
from repro.machine.tree import compare_trees, grid_distance, node_distance


def _study():
    rows = []
    for (m, n, k, p) in [(4096, 4096, 4096, 64), (512, 512, 65536, 64), (8192, 8192, 256, 36)]:
        fit = fit_ranks(m, n, k, p, max_idle_fraction=0.03)
        grid = fit.grid
        ranks = list(range(grid.p_used))
        for label, distance in (
            ("grid-manhattan", grid_distance(grid.as_tuple())),
            ("node-36cores", node_distance(36)),
        ):
            stats = compare_trees(ranks, root=0, distance=distance)
            rows.append(
                {
                    "shape": f"{m}x{n}x{k}",
                    "grid": grid.as_tuple(),
                    "metric": label,
                    "binomial_hops": stats["binomial"]["total_hops"],
                    "aware_hops": stats["topology_aware"]["total_hops"],
                    "binomial_depth": stats["binomial"]["depth"],
                    "aware_depth": stats["topology_aware"]["depth"],
                }
            )
    return rows


def test_ablation_broadcast_tree(benchmark):
    rows = benchmark.pedantic(_study, rounds=1, iterations=1)
    print_rows("Ablation: placement-oblivious vs topology-aware broadcast trees", rows)
    for row in rows:
        assert row["aware_hops"] <= row["binomial_hops"]
    # For at least one configuration the hop saving is substantial (> 25%),
    # which is the effect behind the paper's ~10% collective speedup.
    savings = [1 - row["aware_hops"] / row["binomial_hops"] for row in rows if row["binomial_hops"]]
    assert max(savings) > 0.25
