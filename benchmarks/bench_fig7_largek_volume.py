"""Figure 7: communication volume per core, "largeK" (tall-and-skinny) matrices.

The largeK shapes (m = n << k, as in the RPA application) are where the fixed
2D decomposition loses most dramatically: it communicates the whole k extent
across a square grid.  The paper's Figure 7 shows COSMA and CARMA orders of
magnitude below ScaLAPACK; this benchmark checks the same ordering and that
the COSMA : ScaLAPACK gap is much larger than for square matrices.
"""

import pytest
from _common import print_series, run_benchmark_sweep

from repro.experiments.report import group_by_scenario, volume_series


@pytest.mark.parametrize("regime", ["strong", "limited", "extra"])
def test_fig7_largek_volume(benchmark, regime):
    runs = benchmark.pedantic(
        run_benchmark_sweep, args=("largeK", regime), rounds=1, iterations=1
    )
    assert all(run.correct for run in runs)
    series = volume_series(runs)
    print_series(f"Figure 7 ({regime} scaling, largeK)", series, "MB per rank")
    grouped = group_by_scenario(runs)
    for by_algo in grouped.values():
        cosma = by_algo["COSMA"].mean_received_per_rank
        best_other = min(
            run.mean_received_per_rank for name, run in by_algo.items() if name != "COSMA"
        )
        assert cosma <= best_other * 1.2


def test_fig7_largek_scalapack_gap(benchmark):
    """At the largest core count the 2D baseline moves several times more data."""
    runs = benchmark.pedantic(
        run_benchmark_sweep,
        args=("largeK", "strong", ("COSMA", "ScaLAPACK"), (36, 64)),
        rounds=1,
        iterations=1,
    )
    grouped = group_by_scenario(runs)
    ratios = []
    for by_algo in grouped.values():
        ratios.append(
            by_algo["ScaLAPACK"].mean_received_per_rank
            / max(1.0, by_algo["COSMA"].mean_received_per_rank)
        )
    print(f"\nFigure 7: ScaLAPACK/COSMA received-volume ratios (largeK strong): {ratios}")
    assert max(ratios) > 2.0
