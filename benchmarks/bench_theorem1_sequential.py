"""Theorem 1 / Listing 1: sequential I/O optimality of the tiled schedule.

Not a figure in the paper, but the quantitative core of its theory: the
sequential schedule's I/O is within ``sqrt(S)/(sqrt(S+1)-1)`` of the
``2mnk/sqrt(S) + mn`` lower bound.  This benchmark measures the I/O of the
executable schedule on the memory-hierarchy simulator across memory sizes and
compares it against the bound, the simple rank-1 (square-tile) schedule and a
hardware-like LRU cache.
"""

import numpy as np
from _common import print_rows

from repro.pebbling.mmm_bounds import (
    near_optimal_sequential_io,
    sequential_io_lower_bound,
    sequential_optimality_ratio,
)
from repro.sequential import naive_multiply_lru, rank1_multiply, tiled_multiply


def _sweep(m=32, n=32, k=32, memories=(32, 64, 128, 256, 512)):
    rng = np.random.default_rng(1)
    a = rng.standard_normal((m, k))
    b = rng.standard_normal((k, n))
    rows = []
    for s in memories:
        tiled = tiled_multiply(a, b, memory_words=s)
        square = rank1_multiply(a, b, memory_words=s)
        lru = naive_multiply_lru(a, b, memory_words=s)
        bound = sequential_io_lower_bound(m, n, k, s)
        rows.append(
            {
                "S": s,
                "lower_bound": round(bound),
                "tiled_io": tiled.io,
                "square_tile_io": square.io,
                "naive_lru_io": lru.io,
                "tiled_over_bound": round(tiled.io / bound, 3),
                "predicted_feasible": round(near_optimal_sequential_io(m, n, k, s)),
            }
        )
    return rows


def test_theorem1_sequential_io(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print_rows("Theorem 1: sequential I/O vs the lower bound (32^3 MMM)", rows)
    for row in rows:
        # The scheduled kernel always beats the LRU cache and the ratio to the
        # bound stays bounded by a small constant at these tile sizes.
        assert row["tiled_io"] <= row["naive_lru_io"]
        assert row["tiled_over_bound"] < 2.5
    # More memory means less I/O.
    ios = [row["tiled_io"] for row in rows]
    assert ios == sorted(ios, reverse=True)


def test_theorem1_optimality_ratio_convergence(benchmark):
    def ratios():
        return {s: sequential_optimality_ratio(s) for s in (64, 1024, 1 << 14, 1 << 20, 10 * 1024 * 1024 // 8)}

    values = benchmark(ratios)
    print(f"\nTheorem 1: sqrt(S)/(sqrt(S+1)-1) ratio per memory size: {values}")
    # The paper: less than 0.1% above the bound for 10 MB of fast memory.
    assert values[10 * 1024 * 1024 // 8] < 1.001
    assert sorted(values.values(), reverse=True) == list(values.values())
