"""Figure 3: top-down 3D decomposition vs COSMA's bottom-up decomposition.

The paper's Figure 3 illustrates, for p = 8, how deriving the decomposition
from the optimal sequential schedule (bottom-up) reduces the communication
volume compared with fixing a cubic processor grid upfront (top-down); the
illustration reports a 17% reduction.  Here we measure both decompositions on
the simulator in a limited-memory setting (where the cubic grid's local output
block does not fit in fast memory) and with ample memory (where the two
coincide).
"""

import numpy as np
import pytest
from _common import print_rows

from repro.core.cosma import cosma_multiply
from repro.core.cost_model import communication_reduction_vs_grid


def _measured_comparison(n: int, p: int, memory_words: int):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    cosma = cosma_multiply(a, b, p, memory_words)
    analytic_ratio = communication_reduction_vs_grid(n, n, n, p, memory_words, (2, 2, 2))
    return {
        "cosma_grid": cosma.grid.as_tuple(),
        "cosma_received_per_rank": cosma.counters.mean_received_per_rank(),
        "analytic_cubic_over_cosma": analytic_ratio,
        "correct": bool(np.allclose(cosma.matrix, a @ b)),
    }


def test_fig3_limited_memory(benchmark):
    n, p = 96, 8
    s = n * n // 8  # cubic local C block (48x48 = n^2/4 words) does not fit
    row = benchmark.pedantic(_measured_comparison, args=(n, p, s), rounds=1, iterations=1)
    print_rows(f"Figure 3 (limited memory): n={n}, p={p}, S={s}", [row])
    assert row["correct"]
    # The top-down cubic decomposition moves more data (the paper's example: +17%).
    assert row["analytic_cubic_over_cosma"] > 1.1


def test_fig3_ample_memory(benchmark):
    n, p = 96, 8
    s = 1 << 16  # cubic domains fit: the decompositions coincide
    row = benchmark.pedantic(_measured_comparison, args=(n, p, s), rounds=1, iterations=1)
    print_rows(f"Figure 3 (ample memory): n={n}, p={p}, S={s}", [row])
    assert row["correct"]
    assert row["analytic_cubic_over_cosma"] == pytest.approx(1.0, rel=0.05)
    assert row["cosma_grid"] == (2, 2, 2)
