"""Sweep campaign engine benchmark: serial vs parallel vs warm-cache.

Times the same 80-run campaign (2 shape families x 2 weak-scaling regimes x
4 core counts x all 5 algorithms, volume mode) three ways:

* **serial** -- fresh store, ``jobs=1``;
* **parallel** -- fresh store, ``jobs=4`` worker processes;
* **warm cache** -- rerun of the serial campaign against its populated store
  (every key resolves without executing);
* **faulted** -- fresh store, ``jobs=4``, under a deterministic
  :class:`~repro.sweeps.faults.FaultPlan` injecting worker crashes,
  transient errors and torn/duplicated store writes at >= 20% of runs
  (recovery overhead of the supervisor's retry machinery).

and asserts the engine's contract: serial and parallel campaigns aggregate to
byte-identical tidy rows, the warm rerun costs < 10% of the cold serial time,
(on machines with >= 2 cores) the parallel campaign is >= 1.5x faster
than the serial one, and the faulted campaign's ok-records are byte-identical
to the serial ones (the chaos invariant, also gated by
``check_bench_regression.py``).  Results are written to ``BENCH_sweep.json``
in the repository root::

    pytest benchmarks/bench_sweep_engine.py -s
    # or, without pytest:
    python benchmarks/bench_sweep_engine.py
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from repro.sweeps import (
    FaultPlan,
    ResultStore,
    RetryPolicy,
    SweepSpec,
    rows_to_json,
    run_campaign,
    tidy_rows,
)

#: The shared campaign grid: 16 scenarios x 5 algorithms = 80 volume-mode runs.
GRID = SweepSpec(
    name="bench-sweep-engine",
    algorithms=("COSMA", "ScaLAPACK", "CTF", "CARMA", "Cannon"),
    families=("square", "largeK"),
    regimes=("limited", "extra"),
    p_values=(16, 64, 144, 256),
    memory_words=2048,
    mode="volume",
)

PARALLEL_JOBS = 4

#: Deterministic chaos plan for the faulted row: crashes, transients and
#: store write faults (no hangs -- a hang row would time the deadline, not
#: the engine) at >= 20% of the grid's runs.
FAULTS = FaultPlan(
    seed=1, crash_rate=0.08, transient_rate=0.10,
    torn_write_rate=0.05, duplicate_write_rate=0.05,
)
FAULT_RETRY = RetryPolicy(max_attempts=3, backoff_s=0.01, jitter_s=0.005)

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_campaign(jobs: int, store: ResultStore) -> tuple[float, list[dict]]:
    start = time.perf_counter()
    result = run_campaign(GRID, store=store, jobs=jobs, resume=True)
    elapsed = time.perf_counter() - start
    assert result.failed == 0, result.failed_records
    return elapsed, result.records


def run_sweep_engine_benchmark() -> dict:
    tmp = Path(tempfile.mkdtemp(prefix="repro-bench-sweep-engine-"))
    cores = _available_cores()

    serial_store = ResultStore(tmp / "serial")
    serial_s, serial_records = _timed_campaign(1, serial_store)

    parallel_store = ResultStore(tmp / "parallel")
    parallel_s, parallel_records = _timed_campaign(PARALLEL_JOBS, parallel_store)

    warm_s, warm_records = _timed_campaign(1, serial_store)

    fault_rate = FAULTS.faulted_fraction(request.key for request in GRID.expand())
    faulted_store = ResultStore(tmp / "faulted")
    faulted_start = time.perf_counter()
    faulted = run_campaign(
        GRID, store=faulted_store, jobs=PARALLEL_JOBS,
        faults=FAULTS, retry=FAULT_RETRY,
    )
    faulted_s = time.perf_counter() - faulted_start
    assert faulted.failed == 0, faulted.failed_records

    def _ok_bytes(records):
        return json.dumps(
            [r for r in records if r.get("status") == "ok"], sort_keys=True,
        )

    serial_rows = rows_to_json(tidy_rows(serial_records))
    total_runs = len(serial_records)
    report = {
        "grid": {
            "families": list(GRID.families),
            "regimes": list(GRID.regimes),
            "p_values": list(GRID.p_values),
            "algorithms": list(GRID.algorithms),
            "memory_words": GRID.memory_words,
            "mode": GRID.mode,
            "runs": total_runs,
        },
        "cores_available": cores,
        "parallel_jobs": PARALLEL_JOBS,
        "seconds": {
            "serial": round(serial_s, 4),
            "parallel": round(parallel_s, 4),
            "warm_cache": round(warm_s, 4),
            "faulted": round(faulted_s, 4),
        },
        "parallel_speedup_vs_serial": round(serial_s / parallel_s, 2) if parallel_s > 0 else None,
        "warm_cache_fraction_of_serial": round(warm_s / serial_s, 4) if serial_s > 0 else None,
        "rows_identical_serial_vs_parallel": rows_to_json(tidy_rows(parallel_records)) == serial_rows,
        "rows_identical_serial_vs_warm": rows_to_json(tidy_rows(warm_records)) == serial_rows,
        # Recovery overhead of retrying ~20% injected faults, vs the clean
        # parallel campaign over the same grid and worker count.
        "fault_rate": round(fault_rate, 4),
        "faulted_retries": faulted.retried,
        "faulted_recovery_overhead_vs_parallel": (
            round(faulted_s / parallel_s, 2) if parallel_s > 0 else None
        ),
        "faulted_ok_records_identical": _ok_bytes(faulted.records) == _ok_bytes(serial_records),
        # The parallel-speedup assertion needs >= 2 cores; record explicitly
        # when it was skipped so a 1-core CI box cannot silently drop it.
        "parallel_assert": "checked" if cores >= 2 else f"skipped(cores={cores})",
    }
    RESULT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_sweep_engine():
    report = run_sweep_engine_benchmark()
    print("\n== Sweep campaign engine: serial vs parallel vs warm cache ==")
    print(json.dumps(report, indent=2))

    assert report["grid"]["runs"] == 80
    assert report["rows_identical_serial_vs_parallel"], "parallel campaign changed the aggregated rows"
    assert report["rows_identical_serial_vs_warm"], "cached rerun changed the aggregated rows"
    assert report["fault_rate"] >= 0.2, "the chaos plan must fault >= 20% of runs"
    assert report["faulted_retries"] > 0, "the chaos plan never actually fired"
    assert report["faulted_ok_records_identical"], "ok-record bytes drifted under faults"
    seconds = report["seconds"]
    # Warm reruns answer everything from the store: < 10% of the cold serial
    # time (with a small floor so a pathologically fast cold run can't flake).
    assert seconds["warm_cache"] < max(0.1 * seconds["serial"], 0.05)
    if report["cores_available"] >= 2:
        assert report["parallel_assert"] == "checked"
        assert report["parallel_speedup_vs_serial"] > 1.5
    else:
        # Logged into BENCH_sweep.json instead of silently dropping the check.
        assert report["parallel_assert"] == f"skipped(cores={report['cores_available']})"


if __name__ == "__main__":
    print(json.dumps(run_sweep_engine_benchmark(), indent=2))
