"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper at simulator
scale and prints the reproduced rows/series (captured into the pytest output
with ``-s``, and summarized in EXPERIMENTS.md).  The ``benchmark`` fixture
times the underlying computation so regressions in the library itself are
also visible.

Scale note: the paper's experiments use 109 - 18,432 cores and matrices up to
millions of rows.  In the default (``legacy``) mode the simulator physically
multiplies numpy blocks, so the figure-reproduction sweeps below use
geometrically spaced core counts up to 64 and matrices of a few hundred rows.
The regime definitions (strong scaling / limited memory / extra memory,
section 8) are preserved exactly.  ``volume`` mode (counters-only payloads,
see :mod:`repro.machine.transport`) produces byte-identical communication
counters without any numerics and unlocks paper-scale sweeps -- see
``bench_simulator_fastpath.py`` for core counts in the thousands.
"""

from __future__ import annotations

import tempfile
from typing import Iterable, Sequence

from repro.algorithms import DEFAULT_ALGORITHMS
from repro.experiments.report import format_table
from repro.sweeps import ResultStore, run_campaign, spec_from_scenarios
from repro.workloads.scaling import (
    Scenario,
    extra_memory_sweep,
    limited_memory_sweep,
    strong_scaling_sweep,
)
from repro.workloads.shapes import ProblemShape, flat_shape, large_k_shape, large_m_shape, square_shape

#: Core counts used by every sweep (the paper uses 2^7 .. 2^14.2).
CORE_COUNTS = (4, 16, 36, 64)

#: Per-core memory used by the weak-scaling sweeps, in words.
MEMORY_WORDS = 2048

#: Strong-scaling shapes per family (scaled-down analogues of section 8's sizes).
STRONG_SHAPES = {
    "square": square_shape(96),
    "largeK": large_k_shape(16, 1024),
    "largeM": large_m_shape(1024, 16),
    "flat": flat_shape(192, 12),
}


def scenarios_for(family: str, regime: str, p_values: Sequence[int] = CORE_COUNTS) -> list[Scenario]:
    """Build the scenario list for one (shape family, regime) benchmark."""
    if regime == "strong":
        return strong_scaling_sweep(STRONG_SHAPES[family], p_values, memory_words=8 * MEMORY_WORDS)
    if regime == "limited":
        return limited_memory_sweep(family, p_values, memory_words=MEMORY_WORDS)
    if regime == "extra":
        return extra_memory_sweep(family, p_values, memory_words=MEMORY_WORDS)
    raise ValueError(f"unknown regime {regime!r}")


#: Per-session sweep-engine store: several figures (e.g. Figure 6 and
#: Figures 8/9) are different views of the same measurement campaign, exactly
#: as in the paper, so the second figure resolves from the campaign cache.
#: A fresh temp directory per session keeps the timing benchmarks honest; the
#: TemporaryDirectory finalizer removes it at interpreter exit.
_SESSION_STORE_DIR: tempfile.TemporaryDirectory | None = None
_SESSION_STORE: ResultStore | None = None


def _session_store() -> ResultStore:
    global _SESSION_STORE, _SESSION_STORE_DIR
    if _SESSION_STORE is None:
        _SESSION_STORE_DIR = tempfile.TemporaryDirectory(prefix="repro-bench-sweeps-")
        _SESSION_STORE = ResultStore(_SESSION_STORE_DIR.name)
    return _SESSION_STORE


def run_benchmark_sweep(
    family: str,
    regime: str,
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    p_values: Sequence[int] = CORE_COUNTS,
    mode: str = "legacy",
):
    """Run a full (family, regime) sweep across algorithms; results are verified
    (except in ``volume`` mode, which simulates counters only).

    Runs go through the sweep campaign engine (:mod:`repro.sweeps`) against a
    per-session result store, so overlapping figure sweeps are answered from
    cache after their first execution.
    """
    spec = spec_from_scenarios(
        scenarios_for(family, regime, p_values),
        algorithms=tuple(algorithms),
        mode=mode,
        seed=0,
        name=f"{family}-{regime}",
    )
    result = run_campaign(spec, store=_session_store(), jobs=1, resume=True)
    if result.failed:
        failures = [(r["algorithm"], r["scenario"]["name"], r["error"]) for r in result.failed_records]
        raise RuntimeError(f"benchmark sweep {family}-{regime} had failures: {failures}")
    return result.runs()


def print_series(title: str, series: dict[str, list[tuple[int, float]]], unit: str) -> None:
    """Print one figure panel as a plain-text table."""
    p_values = sorted({p for points in series.values() for p, _ in points})
    headers = ["algorithm"] + [f"p={p}" for p in p_values]
    rows = []
    for name, points in sorted(series.items()):
        by_p = dict(points)
        rows.append([name] + [by_p.get(p, float("nan")) for p in p_values])
    print(f"\n== {title} [{unit}] ==")
    print(format_table(headers, rows))


def print_rows(title: str, rows: list[dict]) -> None:
    if not rows:
        print(f"\n== {title} == (no rows)")
        return
    keys = list(rows[0].keys())
    print(f"\n== {title} ==")
    print(format_table(keys, [[row.get(key, "") for key in keys] for row in rows]))


def shape_label(shape: ProblemShape) -> str:
    return f"{shape.family} m={shape.m} n={shape.n} k={shape.k}"
