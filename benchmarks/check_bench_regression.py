"""CI regression gate for the paper-scale and plane-engine benchmark rows.

Re-executes two committed rows of ``BENCH_simulator.json`` and gates them:

* the COSMA paper-scale point (p = 1024, m = n = k = 4096, limited-memory
  regime, ``compress_rounds=True``) against ``paper_scale_volume_mode``;
* the shared-sweep **plane** row (stacked-array numeric engine, result
  verification enabled) against ``shared_sweep`` -- every per-scenario
  counter in ``plane_signature`` must match byte-for-byte and every product
  must verify.

It also gates the committed ``tracing`` row's overhead budgets: the
disabled-tracer guard cost must stay under 2% of the untraced paper-scale
run and the fully traced run under 15% -- the telemetry layer's
zero-perturbation contract (``src/repro/obs/``).

It also gates the committed ``plane_sharded`` row: the recorded run must
have verified with counters byte-identical to the unsharded plane run, a
live 2-shard probe on one small point must reproduce the unsharded
counters exactly, and -- when the baseline actually ran sharded and this
box can match its shard count -- the sharded paper-scale wall time must
stay within the regression allowance.

It additionally gates the committed ``BENCH_sweep.json`` (when present): the
faulted-campaign row must exist, must have injected faults into >= 20% of
runs, and must report ok-records byte-identical to the fault-free campaign
-- drifting ok-record bytes under faults is a correctness regression in the
supervisor's retry machinery, not a performance problem.

For both rows the counters must match the baseline **exactly** (a mismatch
is a correctness regression in the counter engine) and the wall time must
not regress by more than ``--max-regression`` (default 25%) over the
baseline seconds, with a small absolute noise floor so that sub-second
baselines cannot flake on loaded CI machines.

Run it *before* any benchmark overwrites ``BENCH_simulator.json``::

    python benchmarks/check_bench_regression.py --baseline BENCH_simulator.json

Exit code 0 on success, 1 on a counter mismatch, a failed verification or a
timing regression.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

#: Absolute slack added on top of the relative allowance: CI boxes are noisy
#: and the compressed paper-scale run is sub-second, where a pure percentage
#: gate would flake.
NOISE_FLOOR_S = 0.75


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", default="BENCH_simulator.json",
        help="committed benchmark report to gate against",
    )
    parser.add_argument(
        "--max-regression", type=float, default=0.25,
        help="largest tolerated fractional slowdown vs the baseline (default 0.25)",
    )
    parser.add_argument(
        "--sweep-baseline", default="BENCH_sweep.json",
        help="committed sweep-engine report whose faulted row is gated (skipped if absent)",
    )
    args = parser.parse_args(argv)

    report = json.loads(Path(args.baseline).read_text())
    if report.get("smoke_scale"):
        # A smoke-scale file gates a tiny p=256 point against itself; only a
        # paper-scale baseline (what the repo commits) is a meaningful gate.
        print(
            f"FAIL: {args.baseline} was written at smoke scale "
            "(REPRO_BENCH_SMOKE=1); regenerate it at full scale before gating",
            file=sys.stderr,
        )
        return 1
    baseline = report["paper_scale_volume_mode"]

    from repro.experiments.harness import run_algorithm
    from repro.workloads.scaling import Scenario, strong_scaling_sweep
    from repro.workloads.shapes import square_shape

    failures = []

    # ------------------------------------------------------------------
    # gate 1: the compressed paper-scale volume run
    # ------------------------------------------------------------------
    side = int(baseline["shape"].rsplit("=", 1)[-1])
    scenario = Scenario(
        name=baseline["scenario"],
        shape=square_shape(side),
        p=int(baseline["p"]),
        memory_words=int(baseline["memory_words"]),
        regime="limited",
    )
    start = time.perf_counter()
    run = run_algorithm(
        "COSMA", scenario, mode="volume",
        compress_rounds=bool(baseline.get("compress_rounds", False)),
    )
    seconds = time.perf_counter() - start

    measured = {
        "mean_megabytes_per_rank": round(run.mean_megabytes_per_rank, 3),
        "rounds": run.rounds,
        "total_flops": run.total_flops,
    }
    for field, value in measured.items():
        if value != baseline[field]:
            failures.append(f"counter mismatch: {field} = {value}, baseline {baseline[field]}")

    allowed = baseline["seconds"] * (1.0 + args.max_regression) + NOISE_FLOOR_S
    print(
        f"paper-scale volume run: {seconds:.2f}s "
        f"(baseline {baseline['seconds']}s, allowed {allowed:.2f}s)"
    )
    if seconds > allowed:
        failures.append(
            f"timing regression: {seconds:.2f}s > {allowed:.2f}s "
            f"(baseline {baseline['seconds']}s + {args.max_regression:.0%} + {NOISE_FLOOR_S}s floor)"
        )

    # ------------------------------------------------------------------
    # gate 2: the shared-sweep plane row (numeric engine, verification on)
    # ------------------------------------------------------------------
    shared = report.get("shared_sweep", {})
    if "plane" in shared.get("seconds", {}):
        sweep_side = int(shared["shape"].rsplit("=", 1)[-1])
        # Per-p singleton construction = fixed aggregate memory (~2x the
        # footprint at every p), mirroring the benchmark's shared sweep.
        sweep = [
            point
            for p in shared["p_values"]
            for point in strong_scaling_sweep(square_shape(sweep_side), (p,))
        ]
        start = time.perf_counter()
        plane_runs = [
            run_algorithm("COSMA", point, mode="plane", verify=True) for point in sweep
        ]
        plane_seconds = time.perf_counter() - start
        if not all(r.verified and r.correct for r in plane_runs):
            failures.append("plane mode: a shared-sweep product failed verification")
        signature = [
            [
                r.mean_words_per_rank,
                r.max_words_per_rank,
                r.rounds,
                r.total_flops,
                r.input_words_per_rank,
                r.output_words_per_rank,
                r.max_messages_per_rank,
            ]
            for r in plane_runs
        ]
        if signature != shared["plane_signature"]:
            failures.append("plane mode: shared-sweep counters drifted from the baseline")
        plane_allowed = (
            shared["seconds"]["plane"] * (1.0 + args.max_regression) + NOISE_FLOOR_S
        )
        print(
            f"shared-sweep plane run: {plane_seconds:.2f}s "
            f"(baseline {shared['seconds']['plane']}s, allowed {plane_allowed:.2f}s)"
        )
        if plane_seconds > plane_allowed:
            failures.append(
                f"plane timing regression: {plane_seconds:.2f}s > {plane_allowed:.2f}s "
                f"(baseline {shared['seconds']['plane']}s + "
                f"{args.max_regression:.0%} + {NOISE_FLOOR_S}s floor)"
            )
    else:
        failures.append("baseline has no plane row; regenerate BENCH_simulator.json")

    # ------------------------------------------------------------------
    # gate 3: the tracing overhead budgets (telemetry zero-perturbation)
    # ------------------------------------------------------------------
    traced = report.get("tracing")
    if traced is None:
        failures.append("baseline has no tracing row; regenerate BENCH_simulator.json")
    else:
        print(
            f"tracing overhead: disabled {traced['disabled_overhead_pct']}% "
            f"(budget 2%), traced paper-scale {traced['trace_overhead_pct']}% "
            f"(budget 15%), {traced['round_spans']} round spans"
        )
        if traced["disabled_overhead_pct"] > 2.0:
            failures.append(
                f"disabled-tracer guard cost {traced['disabled_overhead_pct']}% "
                "exceeds the 2% budget"
            )
        if traced["trace_overhead_pct"] > 15.0:
            failures.append(
                f"traced paper-scale overhead {traced['trace_overhead_pct']}% "
                "exceeds the 15% budget"
            )
        if traced["round_spans"] < 1:
            failures.append("traced paper-scale run emitted no round spans")

    # ------------------------------------------------------------------
    # gate 4: the sharded plane engine row
    # ------------------------------------------------------------------
    sharded = report.get("plane_sharded")
    if sharded is None:
        failures.append("baseline has no plane_sharded row; regenerate BENCH_simulator.json")
    else:
        note = (
            f" (fallback: {sharded['skip_reason']})" if sharded.get("skip_reason") else ""
        )
        print(
            f"plane-sharded row: {sharded['shards']} shard(s), "
            f"{sharded['seconds']}s, "
            f"{sharded.get('speedup_vs_unsharded')}x vs unsharded{note}"
        )
        if not (sharded.get("verified") and sharded.get("correct")):
            failures.append("plane_sharded: recorded run failed verification")
        if not sharded.get("counters_identical"):
            failures.append(
                "plane_sharded: recorded counters drifted from the unsharded plane run"
            )
        # Live parity probe: one small point through a real 2-worker pool
        # (explicit shard counts spawn workers even on a single-core box)
        # must verify and reproduce the unsharded counters byte-for-byte.
        if "plane" in shared.get("seconds", {}):
            probe = strong_scaling_sweep(
                square_shape(int(shared["shape"].rsplit("=", 1)[-1])),
                (shared["p_values"][0],),
            )[0]
            base_run = run_algorithm("COSMA", probe, mode="plane", verify=True)
            sharded_run = run_algorithm(
                "COSMA", probe, mode="plane", verify=True, shards=2
            )
            def _sig(r):
                return [
                    r.mean_words_per_rank, r.max_words_per_rank, r.rounds,
                    r.total_flops, r.input_words_per_rank,
                    r.output_words_per_rank, r.max_messages_per_rank,
                ]
            print(
                f"plane-sharded live probe (p={probe.p}, shards=2): "
                f"verified={sharded_run.verified and sharded_run.correct}, "
                f"counters match={_sig(sharded_run) == _sig(base_run)}"
            )
            if not (sharded_run.verified and sharded_run.correct):
                failures.append("plane_sharded: live shards=2 probe failed verification")
            if _sig(sharded_run) != _sig(base_run):
                failures.append(
                    "plane_sharded: live shards=2 probe drifted counters vs unsharded"
                )
        # Timing gate only when the committed row actually ran sharded AND
        # this box can match its shard count; otherwise the comparison would
        # pit a multi-core baseline against a single-core rerun.
        if sharded.get("shards", 1) > 1:
            from repro.machine.shard import available_shards
            live_shards, live_reason = available_shards(sharded["shards"])
            if live_shards == sharded["shards"]:
                xl_scenario = Scenario(
                    name=sharded["scenario"],
                    shape=square_shape(int(sharded["shape"].rsplit("=", 1)[-1])),
                    p=int(sharded["p"]),
                    memory_words=int(sharded["memory_words"]),
                    regime="limited",
                )
                start = time.perf_counter()
                run_algorithm(
                    "COSMA", xl_scenario, mode="plane", verify=True,
                    shards=live_shards,
                )
                sharded_seconds = time.perf_counter() - start
                sharded_allowed = (
                    sharded["seconds"] * (1.0 + args.max_regression) + NOISE_FLOOR_S
                )
                print(
                    f"plane-sharded rerun: {sharded_seconds:.2f}s "
                    f"(baseline {sharded['seconds']}s, allowed {sharded_allowed:.2f}s)"
                )
                if sharded_seconds > sharded_allowed:
                    failures.append(
                        f"plane_sharded timing regression: {sharded_seconds:.2f}s > "
                        f"{sharded_allowed:.2f}s"
                    )
            else:
                print(
                    f"plane-sharded timing gate skipped: baseline used "
                    f"{sharded['shards']} shards, this box allows {live_shards} "
                    f"({live_reason})"
                )

    # ------------------------------------------------------------------
    # gate 5: the sweep engine's faulted-campaign row (chaos invariant)
    # ------------------------------------------------------------------
    sweep_path = Path(args.sweep_baseline)
    if sweep_path.exists():
        sweep_report = json.loads(sweep_path.read_text())
        if "faulted_ok_records_identical" not in sweep_report:
            failures.append(
                f"{sweep_path} has no faulted-campaign row; regenerate it "
                "(python benchmarks/bench_sweep_engine.py)"
            )
        else:
            rate = sweep_report.get("fault_rate", 0.0)
            print(
                f"sweep-engine faulted row: fault rate {rate:.0%}, "
                f"{sweep_report.get('faulted_retries', 0)} retries, "
                f"overhead {sweep_report.get('faulted_recovery_overhead_vs_parallel')}x"
            )
            if rate < 0.2:
                failures.append(
                    f"faulted campaign injected faults into only {rate:.0%} of runs (< 20%)"
                )
            if not sweep_report["faulted_ok_records_identical"]:
                failures.append(
                    "ok-record bytes drifted under injected faults "
                    "(supervisor retry machinery corrupted a record)"
                )
    else:
        print(f"sweep-engine gate skipped: no {sweep_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: counters identical, products verified, timing within the allowance")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
