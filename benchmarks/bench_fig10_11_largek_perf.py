"""Figures 10 and 11: % of peak performance and runtime, "largeK" matrices.

Same methodology as Figures 8/9 but for the tall-and-skinny shapes of the RPA
application.  The paper's qualitative finding -- COSMA's worst configuration
still beats the 2D/2.5D baselines' best for tall-and-skinny inputs with
limited memory -- is asserted on the simulated performance numbers.
"""

import pytest
from _common import print_series, run_benchmark_sweep

from repro.experiments.perf_model import percent_of_peak, simulated_time
from repro.experiments.report import geometric_mean, performance_series, runtime_series
from repro.machine.topology import MachineSpec

SPEC = MachineSpec(name="bandwidth-bound", network_latency_s=0.0)


@pytest.mark.parametrize("regime", ["strong", "limited", "extra"])
def test_fig10_largek_percent_of_peak(benchmark, regime):
    runs = benchmark.pedantic(
        run_benchmark_sweep, args=("largeK", regime), rounds=1, iterations=1
    )
    series = performance_series(runs, SPEC, overlap=True)
    print_series(f"Figure 10 ({regime} scaling, largeK)", series, "% of peak")
    # Across the sweep COSMA's geometric-mean performance matches or exceeds
    # every baseline (per-core-count comparisons at the smallest p are noise:
    # all algorithms communicate almost nothing there).
    geomeans = {
        name: geometric_mean([pct for _, pct in points]) for name, points in series.items()
    }
    assert geomeans["COSMA"] >= max(geomeans.values()) * 0.9
    # At the largest core count (where communication dominates) COSMA leads outright.
    largest_p = max(run.scenario.p for run in runs)
    at_largest = {
        run.algorithm: percent_of_peak(run, SPEC) for run in runs if run.scenario.p == largest_p
    }
    assert at_largest["COSMA"] >= max(at_largest.values()) * 0.95


@pytest.mark.parametrize("regime", ["strong", "limited", "extra"])
def test_fig11_largek_runtime(benchmark, regime):
    runs = benchmark.pedantic(
        run_benchmark_sweep, args=("largeK", regime), rounds=1, iterations=1
    )
    series = runtime_series(runs, SPEC, overlap=True)
    print_series(f"Figure 11 ({regime} scaling, largeK)", series, "simulated seconds")
    geomeans = {
        name: geometric_mean([t for _, t in points]) for name, points in series.items()
    }
    assert geomeans["COSMA"] <= min(geomeans.values()) * 1.15
    largest_p = max(run.scenario.p for run in runs)
    at_largest = {
        run.algorithm: simulated_time(run, SPEC, overlap=True)
        for run in runs
        if run.scenario.p == largest_p
    }
    assert at_largest["COSMA"] <= min(at_largest.values()) * 1.1


def test_fig10_limited_memory_worst_cosma_beats_best_2d(benchmark):
    """Paper, Figure 13/14 discussion: for tall-and-skinny matrices with limited
    memory, COSMA's lowest achieved performance exceeds ScaLAPACK's best."""
    runs = benchmark.pedantic(
        run_benchmark_sweep,
        args=("largeK", "limited", ("COSMA", "ScaLAPACK")),
        rounds=1,
        iterations=1,
    )
    cosma = [percent_of_peak(r, SPEC) for r in runs if r.algorithm == "COSMA"]
    scalapack = [percent_of_peak(r, SPEC) for r in runs if r.algorithm == "ScaLAPACK"]
    print(f"\nFigure 10 (largeK limited): COSMA %peak {cosma} vs ScaLAPACK {scalapack}")
    assert min(cosma) > max(scalapack) * 0.9
