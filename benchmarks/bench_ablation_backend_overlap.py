"""Ablation: communication back-end (two-sided vs RMA) and overlap (sections 7.3-7.4).

Two design choices of the COSMA implementation are ablated here:

* **one-sided (RMA) vs two-sided (broadcast-tree) back-end** -- the volume is
  identical by construction; what changes is the round/latency accounting
  (passive-target gets charge only the origin);
* **communication-computation overlap** -- double buffering pipelines each
  round's panel fetch behind the previous round's multiplication; the benefit
  grows with the number of rounds.
"""

import numpy as np
from _common import print_rows

from repro.core.cosma import cosma_multiply
from repro.core.overlap import even_rounds
from repro.experiments.perf_model import time_breakdown
from repro.experiments.harness import run_algorithm
from repro.machine.topology import MachineSpec
from repro.workloads.scaling import Scenario
from repro.workloads.shapes import square_shape

SPEC = MachineSpec(name="bandwidth-bound", network_latency_s=0.0)


def _backend_comparison(n: int = 64, p: int = 8, s: int = 1024):
    rng = np.random.default_rng(0)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    rows = []
    for use_rma in (False, True):
        run = cosma_multiply(a, b, p, memory_words=s, use_rma=use_rma)
        rows.append(
            {
                "backend": "RMA (one-sided)" if use_rma else "two-sided (tree)",
                "total_words": run.counters.total_words_sent,
                "max_rounds": run.counters.max_rounds(),
                "correct": bool(np.allclose(run.matrix, a @ b)),
            }
        )
    return rows


def test_ablation_rma_backend(benchmark):
    rows = benchmark.pedantic(_backend_comparison, rounds=1, iterations=1)
    print_rows("Ablation: two-sided vs RMA back-end (64^3, p=8, S=1024)", rows)
    assert all(row["correct"] for row in rows)
    two_sided, rma = rows
    # Identical volume, different latency accounting (one-sided is passive-target).
    assert two_sided["total_words"] == rma["total_words"]
    assert rma["max_rounds"] <= two_sided["max_rounds"]


def _overlap_study():
    scenario = Scenario(
        name="square-overlap", shape=square_shape(96), p=16, memory_words=1024, regime="strong"
    )
    run = run_algorithm("COSMA", scenario, seed=0)
    breakdown = time_breakdown(run, SPEC)
    rows = [
        {
            "rounds": rounds,
            "no_overlap_s": even_rounds(breakdown.communication, breakdown.computation, rounds).total_no_overlap,
            "with_overlap_s": even_rounds(breakdown.communication, breakdown.computation, rounds).total_with_overlap,
        }
        for rounds in (1, 2, 4, 8, 16)
    ]
    return rows


def test_ablation_overlap_rounds(benchmark):
    rows = benchmark.pedantic(_overlap_study, rounds=1, iterations=1)
    print_rows("Ablation: overlap benefit vs number of rounds (square 96^3, p=16)", rows)
    savings = [1 - row["with_overlap_s"] / row["no_overlap_s"] for row in rows]
    # A single round cannot overlap anything; more rounds hide more communication.
    assert savings[0] == 0.0
    assert savings[-1] > savings[0]
    assert all(b >= a - 1e-12 for a, b in zip(savings, savings[1:]))
