"""Figure 1: summary of achieved % of peak across all experiment classes.

Figure 1 condenses the whole evaluation into maximum and geometric-mean
achieved performance for square and tall matrices, in the strong-scaling /
limited-memory / extra-memory regimes, for all four libraries.  This benchmark
aggregates the simulated campaign the same way.
"""

from _common import print_rows, run_benchmark_sweep

from repro.experiments.report import geometric_mean, performance_distribution
from repro.machine.topology import MachineSpec

SPEC = MachineSpec(name="bandwidth-bound", network_latency_s=0.0)

CLASSES = {
    "square/strong": ("square", "strong"),
    "square/limited": ("square", "limited"),
    "square/extra": ("square", "extra"),
    "tall/strong": ("largeK", "strong"),
    "tall/limited": ("largeK", "limited"),
    "tall/extra": ("largeK", "extra"),
}


def _summary():
    rows = []
    for label, (family, regime) in CLASSES.items():
        runs = run_benchmark_sweep(family, regime)
        summary = performance_distribution(runs, SPEC)
        row = {"experiment": label}
        for algo, stats in sorted(summary.items()):
            row[f"{algo}_geomean"] = round(stats["geomean"], 2)
            row[f"{algo}_max"] = round(stats["max"], 2)
        rows.append(row)
    return rows


def test_fig1_summary(benchmark):
    rows = benchmark.pedantic(_summary, rounds=1, iterations=1)
    print_rows("Figure 1: % of peak, geometric mean and maximum per experiment class", rows)
    # COSMA's geometric mean is the best (or tied) in every experiment class.
    for row in rows:
        cosma = row["COSMA_geomean"]
        others = [value for key, value in row.items() if key.endswith("_geomean") and not key.startswith("COSMA")]
        assert cosma >= max(others) * 0.85, row["experiment"]
    # Overall geometric-mean advantage across classes is positive.
    cosma_means = [row["COSMA_geomean"] for row in rows]
    scalapack_means = [row["ScaLAPACK_geomean"] for row in rows]
    assert geometric_mean(cosma_means) > geometric_mean(scalapack_means)
