"""Pluggable payload transports for the distributed machine simulator.

The simulator's communication accounting only ever inspects the *shape* of a
payload (``block.size`` words per transfer), never its values.  That makes the
physical representation of a payload a policy choice, factored out here into
three interchangeable transports:

``legacy``
    The original reference semantics: every delivery is a private, writable
    ``numpy`` copy, so sender and receiver never alias the same buffer (the
    strictest reading of MPI's no-aliasing rule).  A binomial-tree broadcast
    over ``q`` ranks therefore performs ``q - 1`` physical copies.

``zerocopy``
    Deliveries are shared *read-only* views (``writeable=False``) of the
    sender's buffer.  Numerics are bit-identical to ``legacy`` -- receivers
    only ever read delivered panels -- but the O(q) payload copies per
    collective disappear.  Any attempt to write through a delivered view
    raises, which keeps MPI no-aliasing semantics enforceable for writers.

``volume``
    Payloads are :class:`ShapeToken` objects: lightweight shape descriptors
    with no numpy allocation at all.  Local multiplies update only the flop
    counters and result verification is skipped.  All communication counters
    (words, messages, rounds, input/output split) are byte-identical to the
    other modes because every counter update is derived from payload shapes
    alone -- this is what lets scenario sweeps run at the paper's true scale
    (``p`` in the thousands, matrices of 10^4+ rows).

Algorithms stay mode-agnostic by building payloads through
:meth:`~repro.machine.simulator.DistributedMachine.zeros` and the helpers in
this module (:func:`as_payload`, :func:`ascontiguous`,
:func:`concat_payloads`) instead of calling numpy directly.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

#: The supported execution modes, in "most faithful" to "fastest" order.
MODES = ("legacy", "zerocopy", "volume")


class ShapeToken:
    """A counters-only payload: a shape with no backing storage.

    Supports exactly the subset of the ``numpy.ndarray`` interface the
    simulator's algorithms use on payloads -- ``shape``/``size``/``ndim``,
    basic and boolean-mask ``__getitem__`` (returning new tokens),
    size-checked no-op ``__setitem__`` and ``+=``, ``copy`` and ``T`` -- so
    algorithm code paths are identical across modes and the communication
    counters come out byte-for-byte the same.
    """

    __slots__ = ("shape",)

    #: Tokens stand in for float64 payloads (one word per element).
    dtype = np.dtype(np.float64)

    def __init__(self, shape: Sequence[int]) -> None:
        self.shape = tuple(int(extent) for extent in shape)
        if any(extent < 0 for extent in self.shape):
            raise ValueError(f"negative extent in token shape {self.shape}")

    @property
    def size(self) -> int:
        return math.prod(self.shape)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def T(self) -> "ShapeToken":  # noqa: N802 - numpy interface
        return ShapeToken(self.shape[::-1])

    def copy(self) -> "ShapeToken":
        return ShapeToken(self.shape)

    def __len__(self) -> int:
        if not self.shape:
            raise TypeError("len() of a 0-d ShapeToken")
        return self.shape[0]

    def __repr__(self) -> str:
        return f"ShapeToken(shape={self.shape})"

    # -- indexing ---------------------------------------------------------
    def __getitem__(self, key) -> "ShapeToken":
        if isinstance(key, np.ndarray) and key.dtype == np.bool_:
            if key.shape != self.shape:
                raise IndexError(
                    f"boolean mask of shape {key.shape} does not match token shape {self.shape}"
                )
            return ShapeToken((int(np.count_nonzero(key)),))
        if not isinstance(key, tuple):
            key = (key,)
        if any(entry is Ellipsis for entry in key):
            position = key.index(Ellipsis)
            fill = len(self.shape) - (len(key) - 1)
            key = key[:position] + (slice(None),) * max(0, fill) + key[position + 1 :]
        if len(key) > len(self.shape):
            raise IndexError(f"too many indices for token of shape {self.shape}")
        dims: list[int] = []
        for axis, entry in enumerate(key):
            extent = self.shape[axis]
            if isinstance(entry, slice):
                dims.append(len(range(*entry.indices(extent))))
            elif isinstance(entry, (int, np.integer)):
                if not -extent <= int(entry) < extent:
                    raise IndexError(f"index {entry} out of bounds for extent {extent}")
                # integer index drops the axis
            else:
                raise TypeError(f"ShapeToken does not support index {entry!r}")
        dims.extend(self.shape[len(key) :])
        return ShapeToken(tuple(dims))

    def __setitem__(self, key, value) -> None:
        # Writes carry no data in volume mode; broadcast compatibility of the
        # assignment is still checked so shape bugs surface exactly where the
        # numpy-backed modes would raise.
        _check_broadcastable(self[key].shape, value, "assign")

    # -- arithmetic (accumulation no-ops) ---------------------------------
    def __iadd__(self, other) -> "ShapeToken":
        _check_broadcastable(self.shape, other, "add")
        return self

    def __add__(self, other) -> "ShapeToken":
        _check_broadcastable(self.shape, other, "add")
        return ShapeToken(self.shape)

    __radd__ = __add__


def _check_broadcastable(target_shape: tuple[int, ...], value, verb: str) -> None:
    """Raise (like numpy would) unless ``value`` broadcasts to ``target_shape``."""
    value_shape = getattr(value, "shape", None)
    if value_shape is None:  # plain scalar
        return
    value_shape = tuple(int(extent) for extent in value_shape)
    # Numpy broadcasting: align trailing axes; extra leading axes of the value
    # must have extent 1.
    if len(value_shape) > len(target_shape):
        extra, value_shape = (
            value_shape[: len(value_shape) - len(target_shape)],
            value_shape[len(value_shape) - len(target_shape) :],
        )
        if any(extent != 1 for extent in extra):
            raise ValueError(
                f"cannot {verb} payload of shape {extra + value_shape} "
                f"into a region of shape {target_shape}"
            )
    for have, expect in zip(value_shape[::-1], target_shape[::-1]):
        if have != expect and have != 1:
            raise ValueError(
                f"cannot {verb} payload of shape {value_shape} "
                f"into a region of shape {target_shape}"
            )


def is_token(block) -> bool:
    """Whether ``block`` is a counters-only payload."""
    return isinstance(block, ShapeToken)


def payload_words(block) -> int:
    """Number of words a payload occupies (mode-agnostic)."""
    if isinstance(block, ShapeToken):
        return block.size
    return int(np.asarray(block).size)


def payload_shape(block) -> tuple[int, ...]:
    if isinstance(block, ShapeToken):
        return block.shape
    return tuple(np.asarray(block).shape)


def as_payload(block):
    """Normalize an algorithm's global operand: float64 array, or a token."""
    if isinstance(block, ShapeToken):
        return block
    return np.asarray(block, dtype=np.float64)


def payload_view(block):
    """A cheap read view of a payload (``np.asarray`` without dtype coercion)."""
    if isinstance(block, ShapeToken):
        return block
    return np.asarray(block)


def ascontiguous(block):
    """``np.ascontiguousarray`` for arrays, identity for tokens."""
    if isinstance(block, ShapeToken):
        return block
    return np.ascontiguousarray(block)


def concat_payloads(parts: Sequence, axis: int = 0):
    """Concatenate payloads along ``axis`` (shape algebra for tokens)."""
    if not parts:
        raise ValueError("concat_payloads needs at least one part")
    if not any(isinstance(part, ShapeToken) for part in parts):
        return np.concatenate(parts, axis=axis)
    shapes = [payload_shape(part) for part in parts]
    base = list(shapes[0])
    for shape in shapes[1:]:
        if len(shape) != len(base):
            raise ValueError(f"cannot concatenate payloads of ranks {shapes}")
        for dim, (have, expect) in enumerate(zip(shape, base)):
            if dim != axis % len(base) and have != expect:
                raise ValueError(f"off-axis shape mismatch concatenating {shapes}")
    base[axis % len(base)] = sum(shape[axis % len(base)] for shape in shapes)
    return ShapeToken(base)


class Transport:
    """Delivery policy for payloads moved through the machine.

    Subclasses decide what a receiver physically gets; the *accounting* of a
    transfer is identical in every mode because it only reads payload shapes.
    """

    #: Mode name, one of :data:`MODES`.
    mode = "legacy"
    #: True when payloads carry no numerics (result verification impossible).
    counters_only = False

    def deliver(self, block):
        """The buffer the receiver of a counted transfer obtains."""
        raise NotImplementedError

    def self_copy(self, block):
        """A rank's local handle on its own payload (uncounted self-send)."""
        raise NotImplementedError

    def clone(self, block):
        """A private buffer safe to accumulate into (reduction partials)."""
        if isinstance(block, ShapeToken):
            return block.copy()
        return np.array(block, copy=True)

    def zeros(self, shape: Sequence[int]):
        """A zero-initialized local payload of the given shape."""
        raise NotImplementedError


class LegacyTransport(Transport):
    """Reference semantics: every delivery is a private writable copy."""

    mode = "legacy"

    def deliver(self, block):
        if isinstance(block, ShapeToken):
            return block.copy()
        return np.asarray(block).copy()

    self_copy = deliver

    def zeros(self, shape):
        return np.zeros(tuple(shape))


class ZeroCopyTransport(Transport):
    """Deliveries are shared read-only views; writers still get copies."""

    mode = "zerocopy"

    def deliver(self, block):
        if isinstance(block, ShapeToken):
            return block.copy()
        view = np.asarray(block).view()
        view.flags.writeable = False
        return view

    self_copy = deliver

    def zeros(self, shape):
        return np.zeros(tuple(shape))


class VolumeTransport(Transport):
    """Counters-only payloads: deliveries are shape tokens, never arrays."""

    mode = "volume"
    counters_only = True

    def deliver(self, block):
        return ShapeToken(payload_shape(block))

    self_copy = deliver

    def clone(self, block):
        return ShapeToken(payload_shape(block))

    def zeros(self, shape):
        return ShapeToken(shape)


_TRANSPORTS = {
    "legacy": LegacyTransport,
    "zerocopy": ZeroCopyTransport,
    "volume": VolumeTransport,
}


def make_transport(mode: str) -> Transport:
    """Build the transport for ``mode`` (one of :data:`MODES`)."""
    try:
        return _TRANSPORTS[mode]()
    except KeyError:
        raise ValueError(f"unknown transport mode {mode!r}; known: {MODES}") from None
