"""Pluggable payload transports for the distributed machine simulator.

The simulator's communication accounting only ever inspects the *shape* of a
payload (``block.size`` words per transfer), never its values.  That makes the
physical representation of a payload a policy choice, factored out here into
three interchangeable transports:

``legacy``
    The original reference semantics: every delivery is a private, writable
    ``numpy`` copy, so sender and receiver never alias the same buffer (the
    strictest reading of MPI's no-aliasing rule).  A binomial-tree broadcast
    over ``q`` ranks therefore performs ``q - 1`` physical copies.

``zerocopy``
    Deliveries are shared *read-only* views (``writeable=False``) of the
    sender's buffer.  Numerics are bit-identical to ``legacy`` -- receivers
    only ever read delivered panels -- but the O(q) payload copies per
    collective disappear.  Any attempt to write through a delivered view
    raises, which keeps MPI no-aliasing semantics enforceable for writers.

``plane``
    The stacked-array numeric engine.  Deliveries behave exactly like
    ``zerocopy`` (shared read-only views), so every algorithm runs
    unmodified; algorithms that *opt in* (``machine.transport.planar``)
    additionally keep each logical operand (A-panels, B-panels, C-partials)
    in one dense stacked array with a leading participant axis -- a
    :class:`PayloadPlane` -- so a collective delivery becomes a fancy-indexed
    gather into the plane, a round's local multiplies become one batched
    ``np.matmul`` over the stack, and output reductions become a single
    ``np.add.reduce`` over plane slices.  Counter accounting rides the same
    batched ``post_transfers``/``CounterMatrix`` path as ``volume`` mode, so
    counters stay byte-identical to the other modes while numerics (and
    result verification) are preserved.

``volume``
    Payloads are :class:`ShapeToken` objects: lightweight shape descriptors
    with no numpy allocation at all.  Local multiplies update only the flop
    counters and result verification is skipped.  All communication counters
    (words, messages, rounds, input/output split) are byte-identical to the
    other modes because every counter update is derived from payload shapes
    alone -- this is what lets scenario sweeps run at the paper's true scale
    (``p`` in the thousands, matrices of 10^4+ rows).

Algorithms stay mode-agnostic by building payloads through
:meth:`~repro.machine.simulator.DistributedMachine.zeros` and the helpers in
this module (:func:`as_payload`, :func:`ascontiguous`,
:func:`concat_payloads`) instead of calling numpy directly.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

#: The supported execution modes, in "most faithful" to "fastest" order.
MODES = ("legacy", "zerocopy", "plane", "volume")

#: Modes that carry real numerics (result verification is possible).
NUMERIC_MODES = ("legacy", "zerocopy", "plane")


class ShapeToken:
    """A counters-only payload: a shape with no backing storage.

    Supports exactly the subset of the ``numpy.ndarray`` interface the
    simulator's algorithms use on payloads -- ``shape``/``size``/``ndim``,
    basic and boolean-mask ``__getitem__`` (returning new tokens),
    size-checked no-op ``__setitem__`` and ``+=``, ``copy`` and ``T`` -- so
    algorithm code paths are identical across modes and the communication
    counters come out byte-for-byte the same.
    """

    __slots__ = ("shape",)

    #: Tokens stand in for float64 payloads (one word per element).
    dtype = np.dtype(np.float64)

    def __init__(self, shape: Sequence[int]) -> None:
        self.shape = tuple(int(extent) for extent in shape)
        if any(extent < 0 for extent in self.shape):
            raise ValueError(f"negative extent in token shape {self.shape}")

    @property
    def size(self) -> int:
        return math.prod(self.shape)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def T(self) -> "ShapeToken":  # noqa: N802 - numpy interface
        return ShapeToken(self.shape[::-1])

    def copy(self) -> "ShapeToken":
        return ShapeToken(self.shape)

    def __len__(self) -> int:
        if not self.shape:
            raise TypeError("len() of a 0-d ShapeToken")
        return self.shape[0]

    def __repr__(self) -> str:
        return f"ShapeToken(shape={self.shape})"

    # -- indexing ---------------------------------------------------------
    def __getitem__(self, key) -> "ShapeToken":
        if isinstance(key, np.ndarray) and key.dtype == np.bool_:
            # Numpy semantics: the mask covers the *leading* axes (which it
            # must match exactly) and those axes collapse into one axis of
            # extent count_nonzero(mask); trailing axes -- the masked row
            # structure -- are preserved.  A full-shape mask therefore
            # flattens to 1-D, a 1-D mask on a 2-D token keeps the row width.
            if key.ndim > self.ndim or key.shape != self.shape[: key.ndim]:
                raise IndexError(
                    f"boolean mask of shape {key.shape} does not match the "
                    f"leading axes of token shape {self.shape}"
                )
            return ShapeToken(
                (int(np.count_nonzero(key)),) + self.shape[key.ndim :]
            )
        if not isinstance(key, tuple):
            key = (key,)
        if any(entry is Ellipsis for entry in key):
            position = key.index(Ellipsis)
            fill = len(self.shape) - (len(key) - 1)
            key = key[:position] + (slice(None),) * max(0, fill) + key[position + 1 :]
        if len(key) > len(self.shape):
            raise IndexError(f"too many indices for token of shape {self.shape}")
        dims: list[int] = []
        for axis, entry in enumerate(key):
            extent = self.shape[axis]
            if isinstance(entry, slice):
                dims.append(len(range(*entry.indices(extent))))
            elif isinstance(entry, (int, np.integer)):
                if not -extent <= int(entry) < extent:
                    raise IndexError(f"index {entry} out of bounds for extent {extent}")
                # integer index drops the axis
            else:
                raise TypeError(f"ShapeToken does not support index {entry!r}")
        dims.extend(self.shape[len(key) :])
        return ShapeToken(tuple(dims))

    def __setitem__(self, key, value) -> None:
        # Writes carry no data in volume mode; broadcast compatibility of the
        # assignment is still checked so shape bugs surface exactly where the
        # numpy-backed modes would raise.
        _check_broadcastable(self[key].shape, value, "assign")

    # -- arithmetic (accumulation no-ops) ---------------------------------
    def __iadd__(self, other) -> "ShapeToken":
        _check_broadcastable(self.shape, other, "add")
        return self

    def __add__(self, other) -> "ShapeToken":
        _check_broadcastable(self.shape, other, "add")
        return ShapeToken(self.shape)

    __radd__ = __add__


def _check_broadcastable(target_shape: tuple[int, ...], value, verb: str) -> None:
    """Raise (like numpy would) unless ``value`` broadcasts to ``target_shape``."""
    value_shape = getattr(value, "shape", None)
    if value_shape is None:  # plain scalar
        return
    value_shape = tuple(int(extent) for extent in value_shape)
    # Numpy broadcasting: align trailing axes; extra leading axes of the value
    # must have extent 1.
    if len(value_shape) > len(target_shape):
        extra, value_shape = (
            value_shape[: len(value_shape) - len(target_shape)],
            value_shape[len(value_shape) - len(target_shape) :],
        )
        if any(extent != 1 for extent in extra):
            raise ValueError(
                f"cannot {verb} payload of shape {extra + value_shape} "
                f"into a region of shape {target_shape}"
            )
    for have, expect in zip(value_shape[::-1], target_shape[::-1]):
        if have != expect and have != 1:
            raise ValueError(
                f"cannot {verb} payload of shape {value_shape} "
                f"into a region of shape {target_shape}"
            )


def is_token(block) -> bool:
    """Whether ``block`` is a counters-only payload."""
    return isinstance(block, ShapeToken)


def payload_words(block) -> int:
    """Number of words a payload occupies (mode-agnostic).

    This sits on the hot accounting path (every ``send``, every ``put``);
    arrays and tokens both expose ``.size`` directly, so the ``np.asarray``
    round-trip is reserved for plain Python sequences.
    """
    size = getattr(block, "size", None)
    if size is not None:
        return int(size)
    return int(np.asarray(block).size)


def payload_shape(block) -> tuple[int, ...]:
    shape = getattr(block, "shape", None)
    if shape is not None:
        return tuple(shape)
    return tuple(np.asarray(block).shape)


#: Plane dtypes the numeric engines accept.  Words are *elements*, not bytes,
#: so counters are identical across dtypes; float32 halves the memory and
#: roughly doubles GEMM throughput at a relative-tolerance verification.
PLANE_DTYPES = ("float64", "float32")


def plane_dtype_of(dtype) -> np.dtype:
    """Validate and canonicalize a plane dtype (``None`` means float64)."""
    resolved = np.dtype(np.float64 if dtype is None else dtype)
    if resolved.name not in PLANE_DTYPES:
        raise ValueError(
            f"unsupported plane dtype {resolved.name!r}; known: {PLANE_DTYPES}"
        )
    return resolved


def allclose_tolerances(dtype) -> tuple[float, float]:
    """Verification tolerances ``(rtol, atol_per_k_word)`` for a product dtype.

    float64 keeps the historical tolerances (numpy's default rtol, the
    harness's ``1e-8 * k`` atol); float32 relaxes both to the dtype's ~7
    significant digits so a correctly computed float32 product verifies
    against a float64 (or float32) reference.
    """
    if np.dtype(dtype) == np.float32:
        return 1e-4, 1e-6
    return 1e-5, 1e-8


def as_payload(block, dtype=None):
    """Normalize an algorithm's global operand: float array, or a token.

    The default dtype stays ``float64`` (the reference semantics); numeric
    engines running a ``float32`` plane pass their dtype so operands are
    never silently round-tripped through float64.
    """
    if isinstance(block, ShapeToken):
        return block
    return np.asarray(block, dtype=np.float64 if dtype is None else dtype)


def payload_view(block):
    """A cheap read view of a payload (``np.asarray`` without dtype coercion)."""
    if isinstance(block, ShapeToken):
        return block
    return np.asarray(block)


def ascontiguous(block):
    """``np.ascontiguousarray`` for arrays, identity for tokens."""
    if isinstance(block, ShapeToken):
        return block
    return np.ascontiguousarray(block)


def concat_payloads(parts: Sequence, axis: int = 0):
    """Concatenate payloads along ``axis`` (shape algebra for tokens)."""
    if not parts:
        raise ValueError("concat_payloads needs at least one part")
    if not any(isinstance(part, ShapeToken) for part in parts):
        return np.concatenate(parts, axis=axis)
    shapes = [payload_shape(part) for part in parts]
    base = list(shapes[0])
    for shape in shapes[1:]:
        if len(shape) != len(base):
            raise ValueError(f"cannot concatenate payloads of ranks {shapes}")
        for dim, (have, expect) in enumerate(zip(shape, base)):
            if dim != axis % len(base) and have != expect:
                raise ValueError(f"off-axis shape mismatch concatenating {shapes}")
    base[axis % len(base)] = sum(shape[axis % len(base)] for shape in shapes)
    return ShapeToken(base)


class PayloadPlane:
    """One logical operand stored as a dense stacked array with a leading axis.

    ``data`` has shape ``(slots, rows, cols)``: each slot is one 2-D sheet of
    the operand (one rank's block, or one reduction layer shared by a fiber
    of ranks).  A rank's handle on the operand is a rectangular *view* into a
    sheet (:meth:`attach` / :meth:`block`), so rank stores and memory
    accounting see ordinary per-rank payloads while the engine operates on
    the whole stack at once:

    * collective delivery = fancy-indexed / strided gather into ``data``;
    * per-round local multiplies = one batched ``np.matmul`` over the
      leading axis;
    * output reduction = a single ``np.add.reduce`` over slot slices
      (:meth:`reduce_slots`).

    Planes are registered per-name on the machine
    (:meth:`~repro.machine.simulator.DistributedMachine.register_plane`);
    sheets may be zero-padded to a uniform shape -- padding rows/columns stay
    zero and therefore never contribute to a product or a reduction, while
    all counter accounting is derived from the attached views' true shapes.
    """

    __slots__ = ("name", "data", "_views")

    def __init__(self, name: str, shape: Sequence[int] | None = None,
                 data: np.ndarray | None = None, dtype=None) -> None:
        if (shape is None) == (data is None):
            raise ValueError("PayloadPlane needs exactly one of shape= or data=")
        if data is None:
            data = np.zeros(
                tuple(int(extent) for extent in shape), dtype=plane_dtype_of(dtype)
            )
        if data.ndim != 3:
            raise ValueError(f"a plane is a stack of 2-D sheets, got shape {data.shape}")
        self.name = str(name)
        self.data = data
        #: rank -> (slot, row slice, column slice)
        self._views: dict[int, tuple[int, slice, slice]] = {}

    @property
    def slots(self) -> int:
        return int(self.data.shape[0])

    def attach(self, rank: int, slot: int, rows: slice = slice(None),
               cols: slice = slice(None)) -> np.ndarray:
        """Declare ``rank``'s block to be ``data[slot][rows, cols]``; return the view."""
        if not 0 <= int(slot) < self.slots:
            raise IndexError(f"slot {slot} out of range for plane with {self.slots} slots")
        self._views[int(rank)] = (int(slot), rows, cols)
        return self.block(rank)

    def block(self, rank: int) -> np.ndarray:
        """The (true-shape, writable) view of ``rank``'s block."""
        slot, rows, cols = self._views[int(rank)]
        return self.data[slot][rows, cols]

    def attached_ranks(self) -> tuple[int, ...]:
        return tuple(self._views)

    def reduce_slots(self) -> np.ndarray:
        """Sum the stacked sheets: one ``np.add.reduce`` over the slot axis."""
        return np.add.reduce(self.data, axis=0)

    def __repr__(self) -> str:
        return f"PayloadPlane({self.name!r}, shape={self.data.shape})"


class Transport:
    """Delivery policy for payloads moved through the machine.

    Subclasses decide what a receiver physically gets; the *accounting* of a
    transfer is identical in every mode because it only reads payload shapes.
    """

    #: Mode name, one of :data:`MODES`.
    mode = "legacy"
    #: Element dtype of payloads the transport allocates (``zeros``) and of
    #: planes built for it.  Words are elements, not bytes, so every counter
    #: is dtype-independent; only numerics (and verification tolerances) see
    #: the difference.  Set per-instance via :func:`make_transport`.
    dtype = np.dtype(np.float64)
    #: True when payloads carry no numerics (result verification impossible).
    counters_only = False
    #: True when algorithms should take their stacked-array (plane) fast
    #: path: counters posted batched, numerics on :class:`PayloadPlane`
    #: stacks.  Algorithms without a plane path simply ignore the flag and
    #: fall back to the per-hop delivery semantics of the transport.
    planar = False
    #: Delivery observer (a :class:`repro.obs.trace.MachineTrace`), set by
    #: the machine only while tracing is enabled.  ``None`` costs a single
    #: attribute check per delivery; observers only count, never copy, so
    #: payload semantics (and counters) are identical either way.  Self-copy
    #: shortcuts share the delivery path and are therefore observed too.
    observer = None

    def deliver(self, block):
        """The buffer the receiver of a counted transfer obtains."""
        raise NotImplementedError

    def self_copy(self, block):
        """A rank's local handle on its own payload (uncounted self-send)."""
        raise NotImplementedError

    def clone(self, block):
        """A private buffer safe to accumulate into (reduction partials)."""
        if isinstance(block, ShapeToken):
            return block.copy()
        return np.array(block, copy=True)

    def zeros(self, shape: Sequence[int]):
        """A zero-initialized local payload of the given shape."""
        raise NotImplementedError


class LegacyTransport(Transport):
    """Reference semantics: every delivery is a private writable copy."""

    mode = "legacy"

    def deliver(self, block):
        if self.observer is not None:
            self.observer.delivery(payload_words(block))
        if isinstance(block, ShapeToken):
            return block.copy()
        return np.asarray(block).copy()

    self_copy = deliver

    def zeros(self, shape):
        return np.zeros(tuple(shape), dtype=self.dtype)


class ZeroCopyTransport(Transport):
    """Deliveries are shared read-only views; writers still get copies."""

    mode = "zerocopy"

    def deliver(self, block):
        if self.observer is not None:
            self.observer.delivery(payload_words(block))
        if isinstance(block, ShapeToken):
            return block.copy()
        # setflags(write=False) is the cheapest way to freeze a fresh view:
        # the .flags descriptor route costs an extra attribute protocol hop
        # per delivery, measurable on the tiny-payload sweeps where delivery
        # count, not bytes, dominates.
        view = np.asarray(block).view()
        view.setflags(write=False)
        return view

    self_copy = deliver

    def zeros(self, shape):
        return np.zeros(tuple(shape), dtype=self.dtype)


class PlaneTransport(ZeroCopyTransport):
    """Stacked-array numeric engine: zerocopy semantics + the planar fast path.

    Per-payload behaviour is identical to :class:`ZeroCopyTransport` (shared
    read-only deliveries), which is what makes the mode a transparent
    fallback for algorithms without a plane path.  Opted-in algorithms see
    :attr:`planar` and route storage through :class:`PayloadPlane` stacks,
    posting their counters through the same batched path as ``volume`` mode.
    """

    mode = "plane"
    planar = True


class VolumeTransport(Transport):
    """Counters-only payloads: deliveries are shape tokens, never arrays."""

    mode = "volume"
    counters_only = True

    def deliver(self, block):
        if self.observer is not None:
            self.observer.delivery(payload_words(block))
        return ShapeToken(payload_shape(block))

    self_copy = deliver

    def clone(self, block):
        return ShapeToken(payload_shape(block))

    def zeros(self, shape):
        return ShapeToken(shape)


_TRANSPORTS = {
    "legacy": LegacyTransport,
    "zerocopy": ZeroCopyTransport,
    "plane": PlaneTransport,
    "volume": VolumeTransport,
}


def make_transport(mode: str, dtype=None) -> Transport:
    """Build the transport for ``mode`` (one of :data:`MODES`).

    ``dtype`` selects the plane/payload element type for the numeric modes
    (default float64); volume mode carries no numerics and ignores it.
    """
    try:
        transport = _TRANSPORTS[mode]()
    except KeyError:
        raise ValueError(f"unknown transport mode {mode!r}; known: {MODES}") from None
    if not transport.counters_only:
        transport.dtype = plane_dtype_of(dtype)
    return transport
