"""Persistent shard-worker pool for the plane engine's numeric execution.

The plane transport executes a whole machine's batched GEMMs in-process
(:mod:`repro.core.cosma` ``_cosma_batched``).  This module shards that work
across a pool of worker *processes* over ``multiprocessing.shared_memory``:

* the parent creates shared segments for each operand, copies the operand in
  once, and workers **attach** to the segments at pool start -- after that,
  every job message carries only ``(job id, kernel name, slice spec)``, never
  an array payload (zero-copy handoff);
* each worker owns one contiguous stripe of the leading axis
  (:func:`split_offsets`) and runs a named kernel from :data:`KERNELS` over
  its stripe, writing results straight into the shared output segment;
* BLAS threading inside each worker is pinned via environment variables at
  spawn time (``OPENBLAS_NUM_THREADS`` et al. read at import), so ``shards``
  workers split the machine's cores instead of oversubscribing them.

Counter accounting never enters this module: all counters stay in the parent
on the :class:`~repro.machine.counters.CounterMatrix` path, which is what
makes counters byte-identical across shard counts by construction.

Supervision is SIGKILL-safe: the parent waits on each worker's pipe *and*
its process sentinel (:func:`multiprocessing.connection.wait`); a worker
that dies without replying surfaces a structured :class:`ShardWorkerError`
(never a hang), and the broken pool is evicted from the module cache.

``shards=1`` callers must not construct a pool at all -- the in-process
engine is the provable baseline (:func:`available_shards` reports whether a
multi-shard pool is even worth building on this host).
"""

from __future__ import annotations

import atexit
import os
import time
import traceback
from contextlib import contextmanager
from typing import Sequence

import numpy as np

#: Environment variables that pin the BLAS/OpenMP thread count in a freshly
#: spawned interpreter (read at numpy import, hence set before spawn).
_BLAS_ENV_VARS = (
    "OPENBLAS_NUM_THREADS",
    "OMP_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)


class ShardWorkerError(RuntimeError):
    """A shard worker failed: crashed/killed mid-job, or raised in a kernel.

    Attributes
    ----------
    shard:
        Index of the failing worker.
    exitcode:
        The dead process's exit code (``None`` when the worker survived but
        its kernel raised).
    """

    def __init__(self, message: str, shard: int, exitcode: int | None = None) -> None:
        super().__init__(message)
        self.shard = int(shard)
        self.exitcode = exitcode


def split_offsets(extent: int, parts: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` stripes splitting ``extent`` into ``parts``.

    Uneven extents spread the remainder over the leading stripes (numpy
    ``array_split`` convention), so e.g. 10 rows over 3 shards become
    ``(0,4) (4,7) (7,10)``.  Stripes for ``parts > extent`` degenerate to
    empty trailing ranges, which kernels treat as no-ops.
    """
    parts = max(1, int(parts))
    base, remainder = divmod(int(extent), parts)
    offsets = []
    start = 0
    for index in range(parts):
        stop = start + base + (1 if index < remainder else 0)
        offsets.append((start, stop))
        start = stop
    return offsets


def available_shards(requested: int) -> tuple[int, str | None]:
    """Effective shard count for this host, with a skip reason when reduced.

    Returns ``(effective, None)`` when a multi-process pool makes sense, or
    ``(1, reason)`` when the host cannot profit from one (single core) or
    cannot run one (no usable ``shared_memory``).  Callers that received an
    *explicit* shard count should honor it regardless -- this helper only
    governs defaults (the benchmark's recorded-fallback path).
    """
    requested = int(requested)
    if requested <= 1:
        return 1, None
    cpus = os.cpu_count() or 1
    if cpus < 2:
        return 1, f"cpu_count={cpus}"
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=8)
        probe.close()
        probe.unlink()
    except Exception as exc:  # pragma: no cover - platform-specific
        return 1, f"shared_memory unavailable: {type(exc).__name__}: {exc}"
    return min(requested, cpus), None


# ----------------------------------------------------------------------
# kernels (resolved by name inside the worker -- specs stay picklable)
# ----------------------------------------------------------------------

def _kernel_gemm_rows(segments: dict[str, np.ndarray], spec: dict) -> None:
    """``out[r0:r1] = a[r0:r1] @ b`` over this shard's row stripe.

    Fuses the per-slot GEMM and the k-reduction of the unsharded plane path:
    each shard computes its stripe of the *final* product directly, so no
    ``(slots, m, n)`` intermediate stack is ever materialized.
    """
    r0, r1 = (int(edge) for edge in spec["rows"])
    if r0 >= r1:
        return
    a = segments[spec["a"]]
    b = segments[spec["b"]]
    out = segments[spec["out"]]
    np.matmul(a[r0:r1], b, out=out[r0:r1])


#: Named kernels a worker may be asked to run.  Workers resolve the name in
#: their own interpreter, so job messages stay tiny and picklable.
KERNELS = {
    "gemm_rows": _kernel_gemm_rows,
}


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------

def _worker_main(conn, shard_index: int) -> None:  # pragma: no cover - subprocess
    """Shard worker loop: attach to segments once, then run slice-spec jobs."""
    from multiprocessing import resource_tracker, shared_memory

    # The parent owns every segment's lifetime.  Spawned workers share the
    # parent's resource-tracker process, and Python < 3.13 has no
    # ``SharedMemory(track=False)``: an attach would re-register the name
    # and the tracker would try to unlink it again at exit.  Suppress
    # shared-memory registration for this worker (it only ever attaches).
    _original_register = resource_tracker.register

    def _register(name, rtype):
        if rtype != "shared_memory":
            _original_register(name, rtype)

    resource_tracker.register = _register

    segments: dict[str, tuple] = {}

    def _drop_segments() -> None:
        for tag in list(segments):
            shm, _array = segments.pop(tag)
            try:
                shm.close()
            except BufferError:
                pass

    try:
        while True:
            message = conn.recv()
            op = message[0]
            if op == "attach":
                _, tag, shm_name, shape, dtype_name = message
                shm = shared_memory.SharedMemory(name=shm_name)
                array = np.ndarray(
                    tuple(shape), dtype=np.dtype(dtype_name), buffer=shm.buf
                )
                segments[tag] = (shm, array)
                conn.send(("ok", None, {}))
            elif op == "run":
                _, job_id, kernel_name, spec = message
                try:
                    views = {tag: array for tag, (_shm, array) in segments.items()}
                    start = time.perf_counter()
                    KERNELS[kernel_name](views, spec)
                    seconds = time.perf_counter() - start
                    del views
                    conn.send(("ok", job_id, {"seconds": seconds}))
                except Exception as exc:
                    tail = traceback.format_exc(limit=4)
                    conn.send(("error", job_id, type(exc).__name__, str(exc), tail))
            elif op == "release":
                _drop_segments()
                conn.send(("ok", None, {}))
            elif op == "stop":
                _drop_segments()
                conn.send(("ok", None, {}))
                return
            else:
                conn.send(("error", None, "ValueError", f"unknown op {op!r}", ""))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        _drop_segments()
        conn.close()


# ----------------------------------------------------------------------
# parent-side pool
# ----------------------------------------------------------------------

@contextmanager
def _pinned_blas_env(threads_per_shard: int):
    """Temporarily pin BLAS thread env vars while spawning workers.

    Spawned interpreters re-import numpy and read these variables during
    BLAS initialization, so the pin applies per-worker without touching the
    parent's already-initialized BLAS.
    """
    saved = {name: os.environ.get(name) for name in _BLAS_ENV_VARS}
    os.environ.update({name: str(threads_per_shard) for name in _BLAS_ENV_VARS})
    try:
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


class ShardPool:
    """A persistent pool of shard workers over shared-memory segments.

    Lifecycle: construct (spawns workers) -> :meth:`share` operands ->
    :meth:`run` jobs (any number of rounds) -> :meth:`release` segments ->
    repeat share/run/release -> :meth:`shutdown`.  A worker death at any
    point raises :class:`ShardWorkerError` and poisons the pool
    (:attr:`broken`); poisoned pools refuse further work.
    """

    def __init__(self, shards: int, blas_threads: int | None = None) -> None:
        import multiprocessing as mp

        if int(shards) < 2:
            raise ValueError("ShardPool needs shards >= 2; shards=1 is the in-process engine")
        self.shards = int(shards)
        self.broken = False
        self._job_counter = 0
        #: tag -> (SharedMemory, parent ndarray view)
        self._segments: dict[str, tuple] = {}
        if blas_threads is None:
            blas_threads = max(1, (os.cpu_count() or 1) // self.shards)
        self.blas_threads = int(blas_threads)
        context = mp.get_context("spawn")
        self._conns = []
        self._procs = []
        with _pinned_blas_env(self.blas_threads):
            for index in range(self.shards):
                parent_conn, child_conn = context.Pipe()
                proc = context.Process(
                    target=_worker_main,
                    args=(child_conn, index),
                    name=f"repro-shard-{index}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)

    # -- supervision ------------------------------------------------------
    def _await_replies(self, pending: set[int]) -> list:
        """One reply per pending worker; SIGKILL-safe via process sentinels."""
        from multiprocessing import connection

        replies: list = [None] * self.shards
        pending = set(pending)
        while pending:
            conn_of = {self._conns[i]: i for i in pending}
            sentinel_of = {self._procs[i].sentinel: i for i in pending}
            ready = connection.wait(list(conn_of) + list(sentinel_of))
            for handle in ready:
                index = conn_of.get(handle)
                if index is not None:
                    try:
                        replies[index] = self._conns[index].recv()
                    except (EOFError, OSError):
                        self._fail(index)
                    pending.discard(index)
                    continue
                index = sentinel_of[handle]
                if index in pending and not self._conns[index].poll():
                    # Sentinel fired with no buffered reply: the worker died
                    # mid-job (crash or SIGKILL).
                    self._fail(index)
        return replies

    def _fail(self, index: int) -> None:
        proc = self._procs[index]
        proc.join(timeout=1.0)
        exitcode = proc.exitcode
        self.broken = True
        self._terminate()
        raise ShardWorkerError(
            f"shard worker {index}/{self.shards} died with exit code {exitcode} "
            "before replying (crashed or killed); pool discarded",
            shard=index,
            exitcode=exitcode,
        )

    def _send(self, index: int, message) -> None:
        try:
            self._conns[index].send(message)
        except (BrokenPipeError, OSError):
            # The worker died before we could even hand it the job.
            self._fail(index)

    def _broadcast(self, message) -> list:
        if self.broken:
            raise ShardWorkerError("pool is broken; build a new one", shard=-1)
        for index in range(self.shards):
            self._send(index, message)
        return self._await_replies(set(range(self.shards)))

    # -- shared segments --------------------------------------------------
    def share(self, tag: str, array: np.ndarray) -> np.ndarray:
        """Copy ``array`` into a fresh shared segment attached on every worker.

        Returns the parent-side view of the segment.  The pool owns the
        segment (and the only long-lived references to its buffer), so
        :meth:`release` can close and unlink it without ``BufferError``.
        """
        array = np.ascontiguousarray(array)
        return self._create(tag, array.shape, array.dtype, fill=array)

    def share_zeros(self, tag: str, shape: Sequence[int], dtype) -> np.ndarray:
        """A zero-initialized shared segment attached on every worker."""
        return self._create(tag, tuple(int(e) for e in shape), np.dtype(dtype))

    def _create(self, tag, shape, dtype, fill=None) -> np.ndarray:
        from multiprocessing import shared_memory

        if tag in self._segments:
            raise ValueError(f"segment {tag!r} already shared; release() first")
        nbytes = max(1, int(np.prod(shape)) * np.dtype(dtype).itemsize)
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        if fill is None:
            view.fill(0)
        else:
            view[...] = fill
        self._segments[tag] = (shm, view)
        try:
            self._broadcast(("attach", tag, shm.name, tuple(shape), np.dtype(dtype).name))
        except ShardWorkerError:
            raise
        return view

    def release(self) -> None:
        """Detach workers from and destroy every shared segment."""
        if not self._segments:
            return
        if not self.broken:
            self._broadcast(("release",))
        for tag in list(self._segments):
            self._destroy_segment(*self._segments.pop(tag))

    # -- jobs -------------------------------------------------------------
    def run(self, kernel: str, specs: Sequence[dict]) -> list[dict]:
        """Run one slice-spec job per shard; return each worker's info dict.

        ``specs[i]`` goes to worker ``i`` (one message of a few hundred
        bytes -- arrays travel only through the shared segments).  Raises
        :class:`ShardWorkerError` if any worker dies or its kernel raises.
        """
        if len(specs) != self.shards:
            raise ValueError(f"need {self.shards} specs, got {len(specs)}")
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; known: {tuple(KERNELS)}")
        if self.broken:
            raise ShardWorkerError("pool is broken; build a new one", shard=-1)
        self._job_counter += 1
        job_id = self._job_counter
        for index, spec in enumerate(specs):
            self._send(index, ("run", job_id, kernel, spec))
        replies = self._await_replies(set(range(self.shards)))
        infos = []
        for index, reply in enumerate(replies):
            if reply[0] == "error":
                _, _, type_name, text, tail = reply
                self.broken = True
                self._terminate()
                raise ShardWorkerError(
                    f"shard worker {index} kernel {kernel!r} raised "
                    f"{type_name}: {text}\n{tail}",
                    shard=index,
                )
            infos.append(reply[2])
        return infos

    # -- teardown ---------------------------------------------------------
    def _terminate(self) -> None:
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=2.0)
        for tag in list(self._segments):
            self._destroy_segment(*self._segments.pop(tag))

    @staticmethod
    def _destroy_segment(shm, view) -> None:
        # A caller still holding a view of the segment makes close() raise
        # BufferError; unlink the name regardless so the segment cannot leak
        # past the last mapping.
        del view
        try:
            shm.close()
        except BufferError:  # pragma: no cover - caller kept a view alive
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass

    def shutdown(self) -> None:
        """Stop every worker and destroy all segments (idempotent)."""
        if not self.broken and any(proc.is_alive() for proc in self._procs):
            try:
                self._broadcast(("stop",))
            except ShardWorkerError:
                pass
        self.broken = True
        self._terminate()


# ----------------------------------------------------------------------
# module-level pool cache (pools are expensive to spawn; reuse per count)
# ----------------------------------------------------------------------

_POOLS: dict[int, ShardPool] = {}


def get_pool(shards: int) -> ShardPool:
    """The cached persistent pool for ``shards`` workers (spawned on demand)."""
    pool = _POOLS.get(int(shards))
    if pool is not None and not pool.broken:
        return pool
    pool = ShardPool(int(shards))
    _POOLS[int(shards)] = pool
    return pool


def evict_pool(shards: int) -> None:
    """Drop (and shut down) the cached pool for ``shards``, if any."""
    pool = _POOLS.pop(int(shards), None)
    if pool is not None:
        pool.shutdown()


@atexit.register
def _shutdown_all_pools() -> None:  # pragma: no cover - interpreter teardown
    for shards in list(_POOLS):
        try:
            evict_pool(shards)
        except Exception:
            pass
