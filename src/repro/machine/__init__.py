"""Machine models: two-level memory hierarchy and distributed machine simulator.

The paper's experiments measure two kinds of data movement:

* **vertical I/O** -- transfers between a small-and-fast and a large-and-slow
  memory on a single processor (the red-blue pebble game setting).  This is
  modelled by :class:`repro.machine.memory.MemoryHierarchy`.
* **horizontal I/O** -- words communicated between processors of a distributed
  machine.  This is modelled by :class:`repro.machine.simulator.DistributedMachine`
  whose communication layer counts every word moved, playing the role of the
  mpiP profiler used in the paper.
"""

from repro.machine.counters import (
    COUNTER_FIELDS,
    CommCounters,
    ConservationError,
    CounterMatrix,
    RankCounters,
    RoundCompressor,
    RoundDelta,
)
from repro.machine.memory import AccessStats, LRUCacheMemory, MemoryHierarchy
from repro.machine.simulator import DistributedMachine, Rank
from repro.machine.topology import MachineSpec, PIZ_DAINT_LIKE, laptop_spec
from repro.machine.transport import MODES, ShapeToken, Transport, make_transport
from repro.machine.tree import BroadcastTree, binomial_tree, topology_aware_tree

__all__ = [
    "MemoryHierarchy",
    "LRUCacheMemory",
    "AccessStats",
    "DistributedMachine",
    "Rank",
    "CommCounters",
    "CounterMatrix",
    "COUNTER_FIELDS",
    "RankCounters",
    "RoundCompressor",
    "RoundDelta",
    "ConservationError",
    "MODES",
    "ShapeToken",
    "Transport",
    "make_transport",
    "MachineSpec",
    "PIZ_DAINT_LIKE",
    "laptop_spec",
    "BroadcastTree",
    "binomial_tree",
    "topology_aware_tree",
]
