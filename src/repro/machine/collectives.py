"""Collective communication operations on the distributed machine simulator.

COSMA's communication pattern (section 7.2 of the paper) broadcasts panels of
``A`` and ``B`` along the ``i``/``j`` dimensions of the processor grid and
reduces partial results of ``C`` along ``k``.  The paper implements its own
binary (binomial) broadcast/reduction trees; we do the same here so that both
the communicated volume *and* the number of communication rounds (the latency
proxy) are modelled faithfully.

All collectives operate on an explicit list of participating ranks (a
"sub-communicator").  Each collective derives its hop schedule once (the
binomial-tree pair lists are memoized per communicator size); with payload
transports that carry real data every hop goes through
:meth:`repro.machine.simulator.DistributedMachine.send`, while in
counters-only (``volume``) mode the whole schedule is accounted as **one
batched update for all participating ranks**
(:meth:`~repro.machine.simulator.DistributedMachine.post_transfers`) and the
deliveries are shared shape tokens.  Both paths walk the same hop lists, so
the communication counters are byte-identical across modes.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.machine.simulator import DistributedMachine
from repro.machine.transport import ShapeToken, payload_shape, payload_view, payload_words


def _reorder_for_root(ranks: Sequence[int], root: int) -> list[int]:
    """Return ``ranks`` rotated so that ``root`` comes first.

    The binomial-tree helpers index positions relative to the root.
    """
    ranks = list(ranks)
    if root not in ranks:
        raise ValueError(f"root rank {root} is not part of the communicator {ranks}")
    idx = ranks.index(root)
    return ranks[idx:] + ranks[:idx]


@lru_cache(maxsize=256)
def broadcast_hops(q: int) -> tuple[tuple[int, int], ...]:
    """Binomial-tree hops ``(src_pos, dst_pos)`` in send order for ``q`` ranks.

    In round ``r``, position ``i < 2**r`` sends to position ``i + 2**r``; each
    non-root position receives exactly once, matching MPI_Bcast's volume.
    Positions are relative to the root (position 0); plane-mode engines map
    them onto fiber rank lists to precompute whole-schedule hop arrays.
    """
    hops: list[tuple[int, int]] = []
    span = 1
    while span < q:
        for pos in range(span):
            partner = pos + span
            if partner >= q:
                break
            hops.append((pos, partner))
        span *= 2
    return tuple(hops)


@lru_cache(maxsize=256)
def reduce_hops(q: int) -> tuple[tuple[int, int], ...]:
    """Mirror of the broadcast tree: ``(src_pos, dst_pos)`` accumulation hops."""
    hops: list[tuple[int, int]] = []
    span = 1
    while span < q:
        span *= 2
    span //= 2
    while span >= 1:
        for pos in range(span):
            partner = pos + span
            if partner >= q:
                continue
            hops.append((partner, pos))
        span //= 2
    return tuple(hops)


def _post_hops(machine, order, hops, words, kind, combine: bool) -> None:
    """Post one tree schedule's hops batched; ``combine`` adds reduce flops."""
    if not hops:
        return
    dsts = [order[d] for _, d in hops]
    machine.post_transfers([order[s] for s, _ in hops], dsts, words, kind=kind)
    if combine:
        # One combine per hop, charged to the accumulating rank, exactly as
        # the per-hop path's local_combine would.
        machine.counters.add_flops(dsts, words)


def post_broadcast(
    machine: DistributedMachine,
    root: int,
    ranks: Sequence[int],
    words: int,
    kind: str = "input",
) -> None:
    """Counter-only accounting of a binomial broadcast of ``words`` words.

    Posts the exact hop schedule :func:`broadcast` walks (one batched
    ``post_transfers`` update), without delivering any payload.  Shared by
    the ``volume`` branch of :func:`broadcast` and the plane-mode engines,
    which deliver the payload separately via stacked-array gathers.
    """
    order = _reorder_for_root(ranks, root)
    if machine.trace is not None:
        machine.trace.collective("broadcast", len(order))
    _post_hops(machine, order, broadcast_hops(len(order)), words, kind, combine=False)


def post_reduce(
    machine: DistributedMachine,
    root: int,
    ranks: Sequence[int],
    words: int,
    kind: str = "output",
) -> None:
    """Counter-only accounting of a binomial reduction of ``words``-word blocks.

    Posts :func:`reduce`'s hop schedule plus one combine (``words`` flops)
    per hop charged to the accumulating rank.
    """
    order = _reorder_for_root(ranks, root)
    if machine.trace is not None:
        machine.trace.collective("reduce", len(order))
    _post_hops(machine, order, reduce_hops(len(order)), words, kind, combine=True)


def broadcast(
    machine: DistributedMachine,
    root: int,
    ranks: Sequence[int],
    block: np.ndarray,
    kind: str = "input",
) -> dict[int, np.ndarray]:
    """Binomial-tree broadcast of ``block`` from ``root`` to every rank in ``ranks``.

    Returns a mapping ``rank -> local copy of block``.  With ``q`` ranks the
    tree has ``ceil(log2 q)`` levels; each non-root rank receives the payload
    exactly once, so the per-rank received volume matches MPI_Bcast.  In
    counters-only mode the non-root deliveries share one shape token (tokens
    are never written through).
    """
    order = _reorder_for_root(ranks, root)
    q = len(order)
    if machine.trace is not None:
        machine.trace.collective("broadcast", q)
    hops = broadcast_hops(q)
    if machine.transport.counters_only and hops:
        _post_hops(machine, order, hops, payload_words(block), kind, combine=False)
        token = ShapeToken(payload_shape(block))
        received: dict[int, np.ndarray] = dict.fromkeys(order, token)
        received[root] = payload_view(block)
        return received
    received = {root: payload_view(block)}
    for s, d in hops:
        received[order[d]] = machine.send(order[s], order[d], received[order[s]], kind=kind)
    return received


def reduce(
    machine: DistributedMachine,
    root: int,
    ranks: Sequence[int],
    blocks: Mapping[int, np.ndarray],
    kind: str = "output",
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """Binomial-tree reduction of per-rank ``blocks`` onto ``root``.

    Each participating rank contributes one array of identical shape; the
    result (element-wise sum by default) ends up on ``root`` and is returned.
    Every non-root rank sends its partial exactly once, matching the volume of
    MPI_Reduce.  Both the default sum and custom operators are combined
    through the machine so the reduction flops are accounted either way.
    """
    order = _reorder_for_root(ranks, root)
    q = len(order)
    if machine.trace is not None:
        machine.trace.collective("reduce", q)
    for r in order:
        if r not in blocks:
            raise ValueError(f"rank {r} has no block to reduce")
    hops = reduce_hops(q)
    if machine.transport.counters_only:
        # Shape compatibility is still enforced exactly where the per-hop
        # path's local_combine would raise.
        shape = payload_shape(blocks[root])
        for r in order:
            if payload_shape(blocks[r]) != shape:
                raise ValueError(
                    f"shape mismatch in local_add: {shape} vs {payload_shape(blocks[r])}"
                )
        _post_hops(machine, order, hops, payload_words(blocks[root]), kind, combine=True)
        return machine.transport.clone(blocks[root])
    partial: dict[int, np.ndarray] = {r: machine.transport.clone(blocks[r]) for r in order}
    for s, d in hops:
        src, dst = order[s], order[d]
        incoming = machine.send(src, dst, partial[src], kind=kind)
        partial[dst] = machine.local_combine(dst, partial[dst], incoming, op=op)
    return partial[root]


def allreduce(
    machine: DistributedMachine,
    ranks: Sequence[int],
    blocks: Mapping[int, np.ndarray],
    kind: str = "output",
) -> dict[int, np.ndarray]:
    """Reduce-then-broadcast allreduce; returns the summed block on every rank."""
    root = ranks[0]
    total = reduce(machine, root, ranks, blocks, kind=kind)
    return broadcast(machine, root, ranks, total, kind=kind)


def reduce_scatter_blocks(
    machine: DistributedMachine,
    ranks: Sequence[int],
    contributions: Mapping[int, Mapping[int, np.ndarray]],
    kind: str = "output",
) -> dict[int, np.ndarray]:
    """Reduce-scatter where rank ``r`` ends up owning the sum of everyone's piece ``r``.

    ``contributions[src][dst]`` is the partial block that ``src`` has computed
    for the portion owned by ``dst``.  Every off-rank partial is sent directly
    to its owner, which accumulates it -- the communicated volume equals that
    of MPI_Reduce_scatter with the same block sizes.
    """
    results: dict[int, np.ndarray] = {}
    if machine.trace is not None:
        machine.trace.collective("reduce_scatter", len(ranks))
    if machine.transport.counters_only:
        srcs: list[int] = []
        dsts: list[int] = []
        words: list[int] = []
        for dst in ranks:
            own = contributions.get(dst, {}).get(dst)
            if own is None:
                raise ValueError(f"rank {dst} is missing its own contribution")
            own_shape = payload_shape(own)
            for src in ranks:
                if src == dst:
                    continue
                piece = contributions.get(src, {}).get(dst)
                if piece is None:
                    continue
                if payload_shape(piece) != own_shape:
                    raise ValueError(
                        f"shape mismatch in local_add: {own_shape} vs {payload_shape(piece)}"
                    )
                srcs.append(src)
                dsts.append(dst)
                words.append(payload_words(piece))
            results[dst] = machine.transport.clone(own)
        machine.post_transfers(srcs, dsts, words, kind=kind)
        # local_add charges one flop per accumulated element on the owner.
        machine.counters.add_flops(dsts, words)
        return results
    for dst in ranks:
        own = contributions.get(dst, {}).get(dst)
        if own is None:
            raise ValueError(f"rank {dst} is missing its own contribution")
        acc = machine.transport.clone(own)
        for src in ranks:
            if src == dst:
                continue
            piece = contributions.get(src, {}).get(dst)
            if piece is None:
                continue
            incoming = machine.send(src, dst, piece, kind=kind)
            machine.local_add(dst, acc, incoming)
        results[dst] = acc
    return results


def allgather(
    machine: DistributedMachine,
    ranks: Sequence[int],
    blocks: Mapping[int, np.ndarray],
    kind: str = "input",
) -> dict[int, list[np.ndarray]]:
    """Ring allgather: every rank ends up with every rank's block (in rank order).

    The per-rank received volume is ``(q - 1) * block_size``, identical to
    MPI_Allgather.
    """
    order = list(ranks)
    q = len(order)
    if machine.trace is not None:
        machine.trace.collective("allgather", q)
    if machine.transport.counters_only and q > 1:
        # Whole-ring schedule in one batched update: over the q-1 steps the
        # rank at position pos forwards the blocks of positions pos, pos-1,
        # ..., pos-(q-2) to its right neighbour; every step costs each rank
        # one round.
        sizes = np.array([payload_words(blocks[r]) for r in order], dtype=np.int64)
        positions = np.arange(q)
        send_pos = (positions[:, None] - np.arange(q - 1)[None, :]) % q  # (pos, step)
        srcs = np.repeat(np.asarray(order, dtype=np.intp), q - 1)
        dsts = np.repeat(np.asarray(order, dtype=np.intp)[(positions + 1) % q], q - 1)
        machine.post_transfers(srcs, dsts, sizes[send_pos].ravel(), kind=kind,
                               count_rounds=False)
        machine.counters.add_rounds(order, q - 1)
        tokens = [ShapeToken(payload_shape(blocks[r])) for r in order]
        return {
            r: [payload_view(blocks[r]) if pos == own else tokens[pos] for pos in range(q)]
            for own, r in enumerate(order)
        }
    gathered: dict[int, list[np.ndarray]] = {r: [None] * q for r in order}  # type: ignore[list-item]
    for pos, r in enumerate(order):
        gathered[r][pos] = payload_view(blocks[r])
    # Ring: in step s, rank at position pos sends the block it received s steps
    # ago to its right neighbour.
    for step in range(q - 1):
        for pos, r in enumerate(order):
            send_pos = (pos - step) % q
            dst = order[(pos + 1) % q]
            payload = gathered[r][send_pos]
            delivered = machine.send(r, dst, payload, kind=kind, count_round=False)
            gathered[dst][send_pos] = delivered
        for r in order:
            machine.rank(r).counters.rounds += 1
    return gathered


def scatter(
    machine: DistributedMachine,
    root: int,
    ranks: Sequence[int],
    pieces: Mapping[int, np.ndarray],
    kind: str = "input",
) -> dict[int, np.ndarray]:
    """Scatter per-rank ``pieces`` from ``root``; returns the piece on each rank."""
    for r in ranks:
        if r not in pieces:
            raise ValueError(f"scatter is missing the piece for rank {r}")
    if machine.trace is not None:
        machine.trace.collective("scatter", len(ranks))
    if machine.transport.counters_only:
        others = [r for r in ranks if r != root]
        machine.post_transfers(
            [root] * len(others), others,
            [payload_words(pieces[r]) for r in others], kind=kind,
        )
        out = {r: ShapeToken(payload_shape(pieces[r])) for r in others}
        if root in ranks:
            out[root] = machine.transport.self_copy(pieces[root])
        return out
    out = {}
    for r in ranks:
        if r == root:
            out[r] = machine.transport.self_copy(pieces[r])
        else:
            out[r] = machine.send(root, r, pieces[r], kind=kind)
    return out


def ring_shift(
    machine: DistributedMachine,
    ranks: Sequence[int],
    blocks: Mapping[int, np.ndarray],
    displacement: int = 1,
    kind: str = "input",
) -> dict[int, np.ndarray]:
    """Cyclically shift blocks along ``ranks`` by ``displacement`` positions.

    Used by Cannon's algorithm: the block held by the rank at position ``pos``
    moves to the rank at position ``pos - displacement`` (i.e. data flows
    "left/up" as in the classical formulation).
    """
    order = list(ranks)
    q = len(order)
    if machine.trace is not None:
        machine.trace.collective("ring_shift", q)
    if machine.transport.counters_only:
        srcs: list[int] = []
        dsts: list[int] = []
        words: list[int] = []
        out: dict[int, np.ndarray] = {}
        for pos, r in enumerate(order):
            dst = order[(pos - displacement) % q]
            if dst == r:
                out[r] = machine.transport.self_copy(blocks[r])
            else:
                srcs.append(r)
                dsts.append(dst)
                words.append(payload_words(blocks[r]))
                out[dst] = ShapeToken(payload_shape(blocks[r]))
        machine.post_transfers(srcs, dsts, words, kind=kind, count_rounds=False)
        machine.counters.add_rounds(order)
        return out
    out = {}
    for pos, r in enumerate(order):
        dst = order[(pos - displacement) % q]
        if dst == r:
            out[r] = machine.transport.self_copy(blocks[r])
        else:
            out[dst] = machine.send(r, dst, blocks[r], kind=kind, count_round=False)
    for r in order:
        machine.rank(r).counters.rounds += 1
    return out
