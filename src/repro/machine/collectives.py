"""Collective communication operations on the distributed machine simulator.

COSMA's communication pattern (section 7.2 of the paper) broadcasts panels of
``A`` and ``B`` along the ``i``/``j`` dimensions of the processor grid and
reduces partial results of ``C`` along ``k``.  The paper implements its own
binary (binomial) broadcast/reduction trees; we do the same here so that both
the communicated volume *and* the number of communication rounds (the latency
proxy) are modelled faithfully.

All collectives operate on an explicit list of participating ranks (a
"sub-communicator") and account every word through
:meth:`repro.machine.simulator.DistributedMachine.send`.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.machine.simulator import DistributedMachine
from repro.machine.transport import payload_view


def _reorder_for_root(ranks: Sequence[int], root: int) -> list[int]:
    """Return ``ranks`` rotated so that ``root`` comes first.

    The binomial-tree helpers index positions relative to the root.
    """
    ranks = list(ranks)
    if root not in ranks:
        raise ValueError(f"root rank {root} is not part of the communicator {ranks}")
    idx = ranks.index(root)
    return ranks[idx:] + ranks[:idx]


def broadcast(
    machine: DistributedMachine,
    root: int,
    ranks: Sequence[int],
    block: np.ndarray,
    kind: str = "input",
) -> dict[int, np.ndarray]:
    """Binomial-tree broadcast of ``block`` from ``root`` to every rank in ``ranks``.

    Returns a mapping ``rank -> local copy of block``.  With ``q`` ranks the
    tree has ``ceil(log2 q)`` levels; each non-root rank receives the payload
    exactly once, so the per-rank received volume matches MPI_Bcast.
    """
    order = _reorder_for_root(ranks, root)
    q = len(order)
    received: dict[int, np.ndarray] = {root: payload_view(block)}
    # Binomial tree: in round r, position i < 2**r sends to position i + 2**r.
    span = 1
    while span < q:
        for pos in range(span):
            partner = pos + span
            if partner >= q:
                break
            src, dst = order[pos], order[partner]
            received[dst] = machine.send(src, dst, received[src], kind=kind)
        span *= 2
    return received


def reduce(
    machine: DistributedMachine,
    root: int,
    ranks: Sequence[int],
    blocks: Mapping[int, np.ndarray],
    kind: str = "output",
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] | None = None,
) -> np.ndarray:
    """Binomial-tree reduction of per-rank ``blocks`` onto ``root``.

    Each participating rank contributes one array of identical shape; the
    result (element-wise sum by default) ends up on ``root`` and is returned.
    Every non-root rank sends its partial exactly once, matching the volume of
    MPI_Reduce.
    """
    order = _reorder_for_root(ranks, root)
    q = len(order)
    partial: dict[int, np.ndarray] = {}
    for r in order:
        if r not in blocks:
            raise ValueError(f"rank {r} has no block to reduce")
        partial[r] = machine.transport.clone(blocks[r])
    # Mirror of the broadcast tree: in round r (from the top), position
    # i + span sends to position i, which accumulates.  Both the default sum
    # and custom operators are combined through the machine so the reduction
    # flops are accounted either way.
    span = 1
    while span < q:
        span *= 2
    span //= 2
    while span >= 1:
        for pos in range(span):
            partner = pos + span
            if partner >= q:
                continue
            src, dst = order[partner], order[pos]
            incoming = machine.send(src, dst, partial[src], kind=kind)
            partial[dst] = machine.local_combine(dst, partial[dst], incoming, op=op)
        span //= 2
    return partial[root]


def allreduce(
    machine: DistributedMachine,
    ranks: Sequence[int],
    blocks: Mapping[int, np.ndarray],
    kind: str = "output",
) -> dict[int, np.ndarray]:
    """Reduce-then-broadcast allreduce; returns the summed block on every rank."""
    root = ranks[0]
    total = reduce(machine, root, ranks, blocks, kind=kind)
    return broadcast(machine, root, ranks, total, kind=kind)


def reduce_scatter_blocks(
    machine: DistributedMachine,
    ranks: Sequence[int],
    contributions: Mapping[int, Mapping[int, np.ndarray]],
    kind: str = "output",
) -> dict[int, np.ndarray]:
    """Reduce-scatter where rank ``r`` ends up owning the sum of everyone's piece ``r``.

    ``contributions[src][dst]`` is the partial block that ``src`` has computed
    for the portion owned by ``dst``.  Every off-rank partial is sent directly
    to its owner, which accumulates it -- the communicated volume equals that
    of MPI_Reduce_scatter with the same block sizes.
    """
    results: dict[int, np.ndarray] = {}
    for dst in ranks:
        own = contributions.get(dst, {}).get(dst)
        if own is None:
            raise ValueError(f"rank {dst} is missing its own contribution")
        acc = machine.transport.clone(own)
        for src in ranks:
            if src == dst:
                continue
            piece = contributions.get(src, {}).get(dst)
            if piece is None:
                continue
            incoming = machine.send(src, dst, piece, kind=kind)
            machine.local_add(dst, acc, incoming)
        results[dst] = acc
    return results


def allgather(
    machine: DistributedMachine,
    ranks: Sequence[int],
    blocks: Mapping[int, np.ndarray],
    kind: str = "input",
) -> dict[int, list[np.ndarray]]:
    """Ring allgather: every rank ends up with every rank's block (in rank order).

    The per-rank received volume is ``(q - 1) * block_size``, identical to
    MPI_Allgather.
    """
    order = list(ranks)
    q = len(order)
    gathered: dict[int, list[np.ndarray]] = {r: [None] * q for r in order}  # type: ignore[list-item]
    for pos, r in enumerate(order):
        gathered[r][pos] = payload_view(blocks[r])
    # Ring: in step s, rank at position pos sends the block it received s steps
    # ago to its right neighbour.
    for step in range(q - 1):
        for pos, r in enumerate(order):
            send_pos = (pos - step) % q
            dst = order[(pos + 1) % q]
            payload = gathered[r][send_pos]
            delivered = machine.send(r, dst, payload, kind=kind, count_round=False)
            gathered[dst][send_pos] = delivered
        for r in order:
            machine.rank(r).counters.rounds += 1
    return gathered


def scatter(
    machine: DistributedMachine,
    root: int,
    ranks: Sequence[int],
    pieces: Mapping[int, np.ndarray],
    kind: str = "input",
) -> dict[int, np.ndarray]:
    """Scatter per-rank ``pieces`` from ``root``; returns the piece on each rank."""
    out: dict[int, np.ndarray] = {}
    for r in ranks:
        if r not in pieces:
            raise ValueError(f"scatter is missing the piece for rank {r}")
        if r == root:
            out[r] = machine.transport.self_copy(pieces[r])
        else:
            out[r] = machine.send(root, r, pieces[r], kind=kind)
    return out


def ring_shift(
    machine: DistributedMachine,
    ranks: Sequence[int],
    blocks: Mapping[int, np.ndarray],
    displacement: int = 1,
    kind: str = "input",
) -> dict[int, np.ndarray]:
    """Cyclically shift blocks along ``ranks`` by ``displacement`` positions.

    Used by Cannon's algorithm: the block held by the rank at position ``pos``
    moves to the rank at position ``pos - displacement`` (i.e. data flows
    "left/up" as in the classical formulation).
    """
    order = list(ranks)
    q = len(order)
    out: dict[int, np.ndarray] = {}
    for pos, r in enumerate(order):
        dst = order[(pos - displacement) % q]
        if dst == r:
            out[r] = machine.transport.self_copy(blocks[r])
        else:
            out[dst] = machine.send(r, dst, blocks[r], kind=kind, count_round=False)
    for r in order:
        machine.rank(r).counters.rounds += 1
    return out
