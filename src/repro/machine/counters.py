"""Communication counters -- the simulator's stand-in for the mpiP profiler.

Every point-to-point transfer and every collective performed on the
:class:`~repro.machine.simulator.DistributedMachine` updates these counters.
The experiment harness reads them to produce the "MB communicated per core"
series of Figures 6-7 and the per-rank averages of Table 4.

Batched counter engine
----------------------

All per-rank counters of one machine live in a single dense
:class:`CounterMatrix` -- one ``int64`` row per counter field, one column per
rank.  :class:`RankCounters` objects are *lazy views* onto one column: every
pre-existing caller (``rank.counters.words_sent += n``, harness metric reads,
dataclass-style equality) keeps working, while collectives can post **one
batched update for all participating ranks** (:meth:`CommCounters.
post_transfers`) instead of iterating Python ``Rank`` objects, and every
machine-wide aggregate (totals, means, maxima, conservation, round deltas)
is one vectorized numpy reduction.

The matrix layout is also what makes steady-state **round compression**
possible (:class:`RoundCompressor`): the counter delta of a whole
communication round is a ``fields x p`` integer array that can be captured
once and replayed with a single vectorized add for every structurally
identical round that follows.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np

#: Per-rank counter fields, in matrix row order.  ``round_start_words`` is the
#: ``total_words`` recorded at the last ``mark_round_start`` call --
#: incremental round-delta tracking that replaces per-round deep copies.
COUNTER_FIELDS = (
    "words_sent",
    "words_received",
    "messages_sent",
    "messages_received",
    "flops",
    "rounds",
    "input_words",
    "output_words",
    "round_start_words",
)

#: Matrix row indices, one per entry of :data:`COUNTER_FIELDS`.
(
    WORDS_SENT,
    WORDS_RECEIVED,
    MESSAGES_SENT,
    MESSAGES_RECEIVED,
    FLOPS,
    ROUNDS,
    INPUT_WORDS,
    OUTPUT_WORDS,
    ROUND_START_WORDS,
) = range(len(COUNTER_FIELDS))


class ConservationError(RuntimeError):
    """Raised when the machine-wide sent and received word totals disagree."""


#: Batches at least this large take the ``np.bincount`` scatter-add path
#: (roughly an order of magnitude faster than ``np.add.at``); tiny batches
#: are not worth the length-``p`` count allocation.
_BINCOUNT_MIN_BATCH = 32


def _scatter_add(row: np.ndarray, idx: np.ndarray, values) -> None:
    """Exact ``row[idx] += values`` with duplicate indices accumulating.

    ``row`` is an int64 counter row; both computation paths are exact:
    scalar ``values`` use integer bincounts, per-entry values use float64
    bincount weights only while every partial sum is exactly representable
    (< 2**53 -- integer-valued float64 arithmetic is lossless below that),
    falling back to ``np.add.at`` otherwise.
    """
    if idx.size < _BINCOUNT_MIN_BATCH:
        np.add.at(row, idx, values)
        return
    if np.ndim(values) == 0:
        counts = np.bincount(idx, minlength=row.size)
        row += counts if values == 1 else counts * int(values)
        return
    values = np.asarray(values, dtype=np.int64)
    if int(values.sum()) < 2**53:
        row += np.bincount(
            idx, weights=values.astype(np.float64), minlength=row.size
        ).astype(np.int64)
    else:
        np.add.at(row, idx, values)


class CounterMatrix:
    """Dense backing store: one ``int64`` row per counter field, one column per rank."""

    __slots__ = ("data",)

    def __init__(self, p: int, data: np.ndarray | None = None) -> None:
        if data is None:
            data = np.zeros((len(COUNTER_FIELDS), int(p)), dtype=np.int64)
        self.data = data

    @property
    def p(self) -> int:
        return int(self.data.shape[1])

    def copy(self) -> "CounterMatrix":
        return CounterMatrix(self.p, data=self.data.copy())

    def zero(self) -> None:
        self.data[...] = 0


def _rank_property(row: int):
    def fget(self) -> int:
        return int(self._matrix.data[row, self._rank])

    def fset(self, value) -> None:
        self._matrix.data[row, self._rank] = value

    return property(fget, fset)


class RankCounters:
    """Per-rank communication and computation counters.

    A lazy view onto one column of a :class:`CounterMatrix`.  Constructed
    standalone (``RankCounters(words_sent=5)``) it owns a private one-column
    matrix, so the historic value-object usage keeps working; the counters of
    a :class:`~repro.machine.simulator.DistributedMachine` are views into the
    machine's shared matrix, which is what lets collectives batch their
    updates and aggregates vectorize.
    """

    __slots__ = ("_matrix", "_rank")

    def __init__(
        self, *values: int, _matrix: CounterMatrix | None = None, _rank: int = 0, **named: int
    ) -> None:
        if _matrix is None:
            _matrix = CounterMatrix(1)
            _rank = 0
        self._matrix = _matrix
        self._rank = _rank
        # Dataclass-compatible construction: positional values bind to
        # COUNTER_FIELDS in order, keywords by name, duplicates rejected.
        if len(values) > len(COUNTER_FIELDS):
            raise TypeError(
                f"RankCounters takes at most {len(COUNTER_FIELDS)} counter values, "
                f"got {len(values)}"
            )
        for name, value in zip(COUNTER_FIELDS, values):
            if name in named:
                raise TypeError(f"RankCounters got multiple values for {name!r}")
            setattr(self, name, value)
        for name, value in named.items():
            if name not in COUNTER_FIELDS:
                raise TypeError(f"unknown counter field {name!r}; known: {COUNTER_FIELDS}")
            setattr(self, name, value)

    # Field properties (words_sent, ..., round_start_words) are attached
    # below the class body, one per COUNTER_FIELDS row.

    @property
    def total_words(self) -> int:
        """Total words moved through this rank (sent + received)."""
        return self.words_sent + self.words_received

    @property
    def total_messages(self) -> int:
        return self.messages_sent + self.messages_received

    def mark_round_start(self) -> None:
        """Remember the current total words so the round's delta can be read off."""
        self.round_start_words = self.words_sent + self.words_received

    def round_delta_words(self) -> int:
        """Words moved through this rank since the last :meth:`mark_round_start`."""
        return self.words_sent + self.words_received - self.round_start_words

    def as_tuple(self) -> tuple[int, ...]:
        """The column values in :data:`COUNTER_FIELDS` order."""
        return tuple(int(v) for v in self._matrix.data[:, self._rank])

    def copy(self) -> "RankCounters":
        """A standalone (privately backed) copy of this column's values."""
        clone = RankCounters()
        clone._matrix.data[:, 0] = self._matrix.data[:, self._rank]
        return clone

    def __eq__(self, other) -> bool:
        if isinstance(other, RankCounters):
            return self.as_tuple() == other.as_tuple()
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join(f"{name}={getattr(self, name)}" for name in COUNTER_FIELDS)
        return f"RankCounters({body})"


for _row, _name in enumerate(COUNTER_FIELDS):
    setattr(RankCounters, _name, _rank_property(_row))
del _row, _name


class CommCounters:
    """Aggregated counters for a whole distributed run.

    Owns the machine's :class:`CounterMatrix`; ``per_rank`` is the list of
    per-column :class:`RankCounters` views.  Constructing from an existing
    ``per_rank`` list *copies* the given values into a fresh matrix (the
    simulator shares state the other way around: it hands the matrix's views
    to its ranks).
    """

    __slots__ = ("matrix", "per_rank")

    def __init__(
        self,
        per_rank: Sequence[RankCounters] | None = None,
        matrix: CounterMatrix | None = None,
    ) -> None:
        if matrix is None:
            matrix = CounterMatrix(0 if per_rank is None else len(per_rank))
            if per_rank is not None:
                for column, counters in enumerate(per_rank):
                    matrix.data[:, column] = counters.as_tuple()
        self.matrix = matrix
        self.per_rank = [RankCounters(_matrix=matrix, _rank=i) for i in range(matrix.p)]

    @classmethod
    def for_ranks(cls, p: int) -> "CommCounters":
        return cls(matrix=CounterMatrix(p))

    # -- aggregate views (vectorized) -----------------------------------
    @property
    def p(self) -> int:
        return self.matrix.p

    @property
    def total_words_sent(self) -> int:
        return int(self.matrix.data[WORDS_SENT].sum())

    @property
    def total_words_received(self) -> int:
        return int(self.matrix.data[WORDS_RECEIVED].sum())

    @property
    def total_messages(self) -> int:
        return int(self.matrix.data[MESSAGES_SENT].sum())

    @property
    def total_flops(self) -> int:
        return int(self.matrix.data[FLOPS].sum())

    def _total_words_per_rank(self) -> np.ndarray:
        return self.matrix.data[WORDS_SENT] + self.matrix.data[WORDS_RECEIVED]

    def max_words_per_rank(self) -> int:
        """Maximum words moved through any single rank (critical-path volume)."""
        if not self.p:
            return 0
        return int(self._total_words_per_rank().max())

    def mean_words_per_rank(self) -> float:
        """Average words moved per rank -- the quantity reported in Table 4."""
        if not self.p:
            return 0.0
        return float(self._total_words_per_rank().sum()) / self.p

    def mean_received_per_rank(self) -> float:
        if not self.p:
            return 0.0
        return self.total_words_received / self.p

    def max_received_per_rank(self) -> int:
        if not self.p:
            return 0
        return int(self.matrix.data[WORDS_RECEIVED].max())

    def max_flops_per_rank(self) -> int:
        if not self.p:
            return 0
        return int(self.matrix.data[FLOPS].max())

    def max_messages_per_rank(self) -> int:
        """Messages (sent + received) on the busiest rank."""
        if not self.p:
            return 0
        return int((self.matrix.data[MESSAGES_SENT] + self.matrix.data[MESSAGES_RECEIVED]).max())

    def mean_input_words_per_rank(self) -> float:
        return float(self.matrix.data[INPUT_WORDS].sum()) / max(1, self.p)

    def mean_output_words_per_rank(self) -> float:
        return float(self.matrix.data[OUTPUT_WORDS].sum()) / max(1, self.p)

    def max_rounds(self) -> int:
        """Latency proxy: maximum number of communication rounds on any rank."""
        if not self.p:
            return 0
        return int(self.matrix.data[ROUNDS].max())

    def mean_megabytes_per_rank(self, word_bytes: int = 8) -> float:
        """Average megabytes moved per rank, matching Table 4's units."""
        return self.mean_words_per_rank() * word_bytes / 1e6

    def conservation_ok(self) -> bool:
        """Every word sent must have been received by exactly one rank."""
        return self.total_words_sent == self.total_words_received

    def assert_conservation(self) -> None:
        """Raise :class:`ConservationError` unless sent == received machine-wide."""
        if not self.conservation_ok():
            raise ConservationError(
                f"word conservation violated: {self.total_words_sent} words sent "
                f"but {self.total_words_received} received"
            )

    def mark_round_start(self) -> None:
        """Mark the start of a communication round on every rank (vectorized)."""
        data = self.matrix.data
        np.add(data[WORDS_SENT], data[WORDS_RECEIVED], out=data[ROUND_START_WORDS])

    def max_round_delta(self) -> int:
        """Maximum words any rank moved since the last :meth:`mark_round_start`."""
        if not self.p:
            return 0
        return int((self._total_words_per_rank() - self.matrix.data[ROUND_START_WORDS]).max())

    # -- batched updates -------------------------------------------------
    def post_transfers(
        self,
        srcs,
        dsts,
        words,
        kind: str = "input",
        count_rounds: bool = True,
    ) -> None:
        """One batched accounting update for many point-to-point transfers.

        Equivalent to calling :meth:`DistributedMachine.send` once per
        ``(srcs[i], dsts[i], words[i])`` triple -- words/messages/rounds and
        the input/output split are incremented identically (``np.add.at``
        handles ranks that appear several times).  ``words`` may be a scalar
        (every transfer moves the same payload) or a per-transfer sequence.
        """
        srcs = np.asarray(srcs, dtype=np.intp)
        dsts = np.asarray(dsts, dtype=np.intp)
        if srcs.size == 0:
            return
        data = self.matrix.data
        _scatter_add(data[WORDS_SENT], srcs, words)
        _scatter_add(data[WORDS_RECEIVED], dsts, words)
        _scatter_add(data[MESSAGES_SENT], srcs, 1)
        _scatter_add(data[MESSAGES_RECEIVED], dsts, 1)
        split = OUTPUT_WORDS if kind == "output" else INPUT_WORDS
        _scatter_add(data[split], srcs, words)
        _scatter_add(data[split], dsts, words)
        if count_rounds:
            _scatter_add(data[ROUNDS], srcs, 1)
            _scatter_add(data[ROUNDS], dsts, 1)

    def add_flops(self, ranks, amounts) -> None:
        """Batched flop accounting (reduction combines, local updates)."""
        _scatter_add(self.matrix.data[FLOPS], np.asarray(ranks, dtype=np.intp), amounts)

    def add_rounds(self, ranks: Iterable[int], amount: int = 1) -> None:
        """Advance the round counter of every rank in ``ranks`` by ``amount``."""
        np.add.at(self.matrix.data[ROUNDS], np.asarray(list(ranks), dtype=np.intp), amount)

    # -- lifecycle -------------------------------------------------------
    def reset(self) -> None:
        # Matrix-driven: every counter field is a row of the backing store by
        # construction, so newly added counters can never be silently missed.
        self.matrix.zero()

    def snapshot(self) -> "CommCounters":
        """Deep copy of the current counters (for before/after diffing)."""
        return CommCounters(matrix=self.matrix.copy())


# ---------------------------------------------------------------------------
# Steady-state round compression
# ---------------------------------------------------------------------------
class RoundDelta:
    """The counter delta of one executed communication round.

    A ``fields x p`` integer array: everything one round added to the
    machine's :class:`CounterMatrix`.  Replaying it is a single vectorized
    add, byte-identical to re-executing the round's schedule.
    """

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray) -> None:
        self.data = data

    @property
    def max_words_delta(self) -> int:
        """Maximum words any rank moved in the round (the per-round volume)."""
        if not self.data.shape[1]:
            return 0
        return int((self.data[WORDS_SENT] + self.data[WORDS_RECEIVED]).max())


class RoundCompressor:
    """Replay cached counter deltas for structurally identical rounds.

    Algorithms fingerprint each communication round (participants and payload
    shapes -- anything that determines the round's schedule).  The first time
    a fingerprint is seen its executed delta is captured; afterwards
    :meth:`replay` applies the cached delta without re-executing the
    schedule.  Only meaningful with counters-only payloads (``volume`` mode),
    where skipping a round's execution loses no numerical state.

    Cache keys are ``(previous fingerprint, fingerprint)`` pairs: the
    ``round_start_words`` row of a round's delta depends on how many words
    the *previous* round moved (``mark_round_start`` records a running
    total), so a delta is only reused when the preceding round was
    structurally identical too.  This is what makes the replayed counters
    provably byte-identical to uncompressed execution.
    """

    #: Sentinel "no previous round" fingerprint.
    _START: Hashable = object()

    def __init__(self, counters: CommCounters) -> None:
        self._counters = counters
        self._cache: dict[tuple[Hashable, Hashable], RoundDelta] = {}
        self._last_fp: Hashable = self._START
        self._pending_fp: Hashable | None = None
        self._start_data: np.ndarray | None = None
        #: Rounds answered from the delta cache / executed for real.
        self.replayed_rounds = 0
        self.executed_rounds = 0

    def replay(self, fingerprint: Hashable) -> RoundDelta | None:
        """Replay the cached delta for ``fingerprint``, or begin capturing.

        Returns the applied :class:`RoundDelta` on a cache hit (the caller
        must then *skip* the round's execution), or ``None`` on a miss --
        in which case capture starts and the caller must execute the round
        and call :meth:`commit`.
        """
        delta = self._cache.get((self._last_fp, fingerprint))
        if delta is not None:
            self._counters.matrix.data += delta.data
            self._last_fp = fingerprint
            self.replayed_rounds += 1
            return delta
        self._pending_fp = fingerprint
        self._start_data = self._counters.matrix.data.copy()
        return None

    def commit(self) -> RoundDelta:
        """Capture the executed round's delta and cache it."""
        if self._start_data is None:
            raise RuntimeError("commit() without a preceding replay() miss")
        delta = RoundDelta(self._counters.matrix.data - self._start_data)
        self._cache[(self._last_fp, self._pending_fp)] = delta
        self._last_fp = self._pending_fp
        self._pending_fp = None
        self._start_data = None
        self.executed_rounds += 1
        return delta

    def clear(self) -> None:
        """Drop every cached delta (counter reset, machine reuse)."""
        self._cache.clear()
        self._last_fp = self._START
        self._pending_fp = None
        self._start_data = None
