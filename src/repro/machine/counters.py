"""Communication counters -- the simulator's stand-in for the mpiP profiler.

Every point-to-point transfer and every collective performed on the
:class:`~repro.machine.simulator.DistributedMachine` updates these counters.
The experiment harness reads them to produce the "MB communicated per core"
series of Figures 6-7 and the per-rank averages of Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


class ConservationError(RuntimeError):
    """Raised when the machine-wide sent and received word totals disagree."""


@dataclass
class RankCounters:
    """Per-rank communication and computation counters."""

    words_sent: int = 0
    words_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    flops: int = 0
    #: Number of communication rounds this rank participated in.  Used as the
    #: latency proxy ``L`` (maximum number of messages on the critical path).
    rounds: int = 0
    #: Words communicated attributable to input matrices A and B (Figure 12
    #: splits "sending inputs A and B" from "sending output C").
    input_words: int = 0
    #: Words communicated attributable to the output matrix C.
    output_words: int = 0
    #: ``total_words`` recorded at the last :meth:`mark_round_start` call --
    #: incremental round-delta tracking that replaces per-round deep copies.
    round_start_words: int = 0

    @property
    def total_words(self) -> int:
        """Total words moved through this rank (sent + received)."""
        return self.words_sent + self.words_received

    @property
    def total_messages(self) -> int:
        return self.messages_sent + self.messages_received

    def mark_round_start(self) -> None:
        """Remember the current total words so the round's delta can be read off."""
        self.round_start_words = self.words_sent + self.words_received

    def round_delta_words(self) -> int:
        """Words moved through this rank since the last :meth:`mark_round_start`."""
        return self.words_sent + self.words_received - self.round_start_words

    def copy(self) -> "RankCounters":
        return RankCounters(**{f.name: getattr(self, f.name) for f in fields(RankCounters)})


@dataclass
class CommCounters:
    """Aggregated counters for a whole distributed run."""

    per_rank: list[RankCounters] = field(default_factory=list)

    @classmethod
    def for_ranks(cls, p: int) -> "CommCounters":
        return cls(per_rank=[RankCounters() for _ in range(p)])

    # -- aggregate views -------------------------------------------------
    @property
    def p(self) -> int:
        return len(self.per_rank)

    @property
    def total_words_sent(self) -> int:
        return sum(r.words_sent for r in self.per_rank)

    @property
    def total_words_received(self) -> int:
        return sum(r.words_received for r in self.per_rank)

    @property
    def total_messages(self) -> int:
        return sum(r.messages_sent for r in self.per_rank)

    @property
    def total_flops(self) -> int:
        return sum(r.flops for r in self.per_rank)

    def max_words_per_rank(self) -> int:
        """Maximum words moved through any single rank (critical-path volume)."""
        if not self.per_rank:
            return 0
        return max(r.total_words for r in self.per_rank)

    def mean_words_per_rank(self) -> float:
        """Average words moved per rank -- the quantity reported in Table 4."""
        if not self.per_rank:
            return 0.0
        return sum(r.total_words for r in self.per_rank) / len(self.per_rank)

    def mean_received_per_rank(self) -> float:
        if not self.per_rank:
            return 0.0
        return self.total_words_received / len(self.per_rank)

    def max_rounds(self) -> int:
        """Latency proxy: maximum number of communication rounds on any rank."""
        if not self.per_rank:
            return 0
        return max(r.rounds for r in self.per_rank)

    def mean_megabytes_per_rank(self, word_bytes: int = 8) -> float:
        """Average megabytes moved per rank, matching Table 4's units."""
        return self.mean_words_per_rank() * word_bytes / 1e6

    def conservation_ok(self) -> bool:
        """Every word sent must have been received by exactly one rank."""
        return self.total_words_sent == self.total_words_received

    def assert_conservation(self) -> None:
        """Raise :class:`ConservationError` unless sent == received machine-wide."""
        if not self.conservation_ok():
            raise ConservationError(
                f"word conservation violated: {self.total_words_sent} words sent "
                f"but {self.total_words_received} received"
            )

    def mark_round_start(self) -> None:
        """Mark the start of a communication round on every rank."""
        for rank in self.per_rank:
            rank.mark_round_start()

    def max_round_delta(self) -> int:
        """Maximum words any rank moved since the last :meth:`mark_round_start`."""
        return max((r.round_delta_words() for r in self.per_rank), default=0)

    def reset(self) -> None:
        # Field-driven so newly added counters can never be silently missed; a
        # fresh instance per rank supplies every field's default (covering
        # default_factory fields too, without sharing mutable defaults).
        for rank in self.per_rank:
            blank = RankCounters()
            for spec in fields(RankCounters):
                setattr(rank, spec.name, getattr(blank, spec.name))

    def snapshot(self) -> "CommCounters":
        """Deep copy of the current counters (for before/after diffing)."""
        return CommCounters(per_rank=[r.copy() for r in self.per_rank])
