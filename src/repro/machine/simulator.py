"""Distributed machine simulator with exact communication accounting.

The paper's machine model (section 2.1): ``p`` processors, each with a local
memory of ``S`` words; any processor can exchange up to ``S`` words with any
other; all operands of a computation must reside in local memory.

Algorithms in :mod:`repro.core` and :mod:`repro.baselines` are written as
coordinator-style programs that keep one :class:`Rank` object per simulated
processor and move numpy blocks between ranks *only* through the machine's
communication primitives.  Every primitive updates the per-rank
:class:`~repro.machine.counters.RankCounters`, so the harness can read off the
same "MB communicated per rank" quantity that the paper measures with mpiP.

The simulator does not try to model time directly; the analytic performance
model in :mod:`repro.experiments.perf_model` converts the counters into
simulated runtimes using an alpha-beta-gamma model.

Execution modes
---------------

The physical representation of payloads is pluggable (``mode=`` argument,
see :mod:`repro.machine.transport`); all communication counters are identical
across modes because accounting only ever reads payload shapes:

``legacy``
    Every delivery is a private writable numpy copy -- the reference
    semantics.  Preserves numerics; slowest (O(q) copies per binomial-tree
    collective over ``q`` ranks).
``zerocopy``
    Deliveries are shared read-only numpy views (``writeable=False``).
    Preserves numerics bit-for-bit (receivers only read payloads; writers
    that would violate MPI no-aliasing semantics raise); eliminates the
    per-hop payload copies.
``plane``
    The stacked-array numeric engine: per-payload deliveries behave like
    ``zerocopy`` (so unported algorithms run unchanged), but opted-in
    algorithms keep each logical operand in a
    :class:`~repro.machine.transport.PayloadPlane` registered per-name on
    the machine (:meth:`DistributedMachine.register_plane`) and execute
    collectives/multiplies/reductions as whole-stack numpy operations while
    posting counters through the same batched path as ``volume`` mode.
    Preserves numerics (results verify) at a large fraction of volume-mode
    speed.
``volume``
    Payloads are :class:`~repro.machine.transport.ShapeToken` shape
    descriptors with no numpy allocation at all; local multiplies update only
    the flop counters and results cannot be verified numerically.  Preserves
    every communication counter exactly; orders of magnitude faster, enabling
    sweeps at the paper's true scale (thousands of ranks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.machine.counters import (
    INPUT_WORDS,
    MESSAGES_RECEIVED,
    MESSAGES_SENT,
    OUTPUT_WORDS,
    ROUNDS,
    WORDS_RECEIVED,
    WORDS_SENT,
    CommCounters,
    RankCounters,
    RoundCompressor,
    RoundDelta,
)
from repro.machine.topology import MachineSpec, laptop_spec
from repro.machine.transport import (
    PayloadPlane,
    ShapeToken,
    Transport,
    is_token,
    make_transport,
    payload_shape,
    payload_words,
)
from repro.obs.trace import MachineTrace, active_tracer
from repro.utils.validation import check_positive_int


class LocalMemoryExceededError(RuntimeError):
    """Raised when a rank's resident data exceeds its local memory ``S``."""


@dataclass
class Rank:
    """State of one simulated processor.

    Attributes
    ----------
    rank_id:
        Processor index in ``[0, p)``.
    store:
        Named local blocks (numpy arrays).  Algorithms are free to use any
        naming convention; the memory accounting sums the sizes of all stored
        arrays.
    counters:
        Per-rank communication/computation counters.
    """

    rank_id: int
    store: dict[str, np.ndarray] = field(default_factory=dict)
    counters: RankCounters = field(default_factory=RankCounters)
    #: Incrementally maintained resident footprint (kept in sync by put/pop,
    #: so check_memory never has to rescan the whole store).
    _resident_words: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        self._resident_words = int(sum(payload_words(b) for b in self.store.values()))

    def resident_words(self) -> int:
        """Number of words currently resident in this rank's local memory."""
        return self._resident_words

    def put(self, name: str, block: np.ndarray) -> None:
        """Place ``block`` into the local store under ``name``."""
        old = self.store.get(name)
        if old is not None:
            self._resident_words -= payload_words(old)
        self.store[name] = block
        self._resident_words += payload_words(block)

    def get(self, name: str) -> np.ndarray:
        return self.store[name]

    def pop(self, name: str) -> np.ndarray:
        block = self.store.pop(name)
        self._resident_words -= payload_words(block)
        return block

    def has(self, name: str) -> bool:
        return name in self.store


class DistributedMachine:
    """A ``p``-processor distributed-memory machine with word-exact accounting.

    Parameters
    ----------
    p:
        Number of processors (ranks).
    memory_words:
        Local memory size ``S`` per rank, in words.  When ``enforce_memory``
        is true, :meth:`check_memory` raises if any rank's resident data
        exceeds this budget.
    spec:
        Optional :class:`~repro.machine.topology.MachineSpec` used by the
        performance model; defaults to a laptop-like spec with the given
        ``memory_words``.
    enforce_memory:
        Whether :meth:`check_memory` raises (True) or merely records the peak
        usage (False).  Algorithms call ``check_memory`` at the end of every
        communication round.
    mode:
        Payload transport: ``"legacy"`` (copy per delivery), ``"zerocopy"``
        (shared read-only views) or ``"volume"`` (counters-only shape tokens);
        see the module docstring and :mod:`repro.machine.transport`.
    compress_rounds:
        Opt into steady-state round compression: algorithms fingerprint each
        communication round and, when consecutive rounds repeat, the cached
        batched counter delta is replayed instead of re-executing the
        schedule (:class:`~repro.machine.counters.RoundCompressor`).
        Counters are byte-identical to uncompressed execution; only active
        with counters-only payloads (``volume`` mode) -- silently ignored
        otherwise, because replaying a round would skip real data movement.
        Replayed rounds do not appear in ``round_log``.
    shards:
        Numeric execution policy for plane-mode algorithms: the number of
        worker processes the batched GEMMs are sharded across
        (:mod:`repro.machine.shard`).  ``1`` (the default) keeps the
        in-process engine -- no pool, no shared memory.  Counters are
        byte-identical across shard counts because all accounting stays in
        the parent on the :class:`~repro.machine.counters.CounterMatrix`
        path; like ``compress_rounds``, shards never participates in a
        run's identity key.
    plane_dtype:
        Element dtype for numeric payloads/planes (``"float64"`` default,
        ``"float32"`` opt-in).  Counters are dtype-independent (words are
        elements); verification uses relative tolerances scaled to the
        dtype.  Ignored by ``volume`` mode.
    """

    def __init__(
        self,
        p: int,
        memory_words: int | None = None,
        spec: MachineSpec | None = None,
        enforce_memory: bool = False,
        mode: str = "legacy",
        compress_rounds: bool = False,
        shards: int = 1,
        plane_dtype: str = "float64",
    ) -> None:
        self.p = check_positive_int(p, "p")
        self.shards = check_positive_int(shards, "shards")
        self.transport: Transport = make_transport(mode, dtype=plane_dtype)
        if spec is None:
            spec = laptop_spec(memory_words or (1 << 20))
        self.spec = spec
        self.memory_words = int(memory_words) if memory_words is not None else spec.memory_words_per_core
        if self.memory_words <= 0:
            raise ValueError(f"memory_words must be positive, got {self.memory_words}")
        self.enforce_memory = bool(enforce_memory)
        # One shared counter matrix; every rank's counters are views into it.
        self.counters = CommCounters.for_ranks(self.p)
        self.ranks = [
            Rank(rank_id=i, counters=self.counters.per_rank[i]) for i in range(self.p)
        ]
        self.compressor: RoundCompressor | None = (
            RoundCompressor(self.counters)
            if compress_rounds and self.transport.counters_only
            else None
        )
        self.peak_resident_words = 0
        #: Log of (round_label, participating_ranks) entries, useful for debugging.
        self.round_log: list[str] = []
        #: Named :class:`~repro.machine.transport.PayloadPlane` stacks
        #: registered by plane-mode algorithms (one per logical operand).
        self.planes: dict[str, PayloadPlane] = {}
        #: Round-span accumulator, attached only while tracing is enabled
        #: (:mod:`repro.obs.trace`).  Every instrumentation site guards on
        #: ``is not None`` and only ever *reads* machine state, so counters
        #: are byte-identical traced vs untraced.
        tracer = active_tracer()
        self.trace: MachineTrace | None = (
            MachineTrace(tracer, self.counters.matrix.data, self.transport.mode)
            if tracer is not None
            else None
        )
        if self.trace is not None:
            self.transport.observer = self.trace

    # ------------------------------------------------------------------
    # basic rank access
    # ------------------------------------------------------------------
    def rank(self, rank_id: int) -> Rank:
        if not 0 <= rank_id < self.p:
            raise IndexError(f"rank {rank_id} out of range for machine with p={self.p}")
        return self.ranks[rank_id]

    def __len__(self) -> int:
        return self.p

    @property
    def mode(self) -> str:
        """The active transport mode (``legacy`` / ``zerocopy`` / ``volume``)."""
        return self.transport.mode

    def zeros(self, shape: Sequence[int]):
        """A zero-initialized local payload (an array, or a token in volume mode)."""
        return self.transport.zeros(shape)

    # ------------------------------------------------------------------
    # payload planes (stacked-array numeric engine)
    # ------------------------------------------------------------------
    def register_plane(
        self, name: str, plane: PayloadPlane, replace: bool = False
    ) -> PayloadPlane:
        """Register a named operand plane (one per logical operand per run).

        Planes are per-run state.  Algorithms register their own operands
        with ``replace=True`` so a machine reused for a second plane-mode
        run (counters accumulating, like every other transport) simply
        supersedes the previous run's planes; registering a foreign name
        twice without ``replace`` is an error.
        """
        if name in self.planes and not replace:
            raise ValueError(f"plane {name!r} is already registered")
        self.planes[name] = plane
        return plane

    def clear_planes(self) -> None:
        """Drop every registered operand plane (machine reuse)."""
        self.planes.clear()

    def new_plane(self, name: str, shape: Sequence[int]) -> PayloadPlane:
        """Allocate and register a zero-initialized ``(slots, rows, cols)`` plane."""
        return self.register_plane(
            name, PayloadPlane(name, shape=shape, dtype=self.transport.dtype),
            replace=True,
        )

    def get_plane(self, name: str) -> PayloadPlane:
        return self.planes[name]

    def post_flops(self, ranks, amounts) -> None:
        """Batched flop accounting: the plane-mode counterpart of the per-rank
        flop updates done by :meth:`local_multiply` / :meth:`local_add`."""
        self.counters.add_flops(ranks, amounts)

    # ------------------------------------------------------------------
    # point-to-point communication
    # ------------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        block: np.ndarray,
        kind: str = "input",
        count_round: bool = True,
    ) -> np.ndarray:
        """Transfer ``block`` from rank ``src`` to rank ``dst``.

        Returns the payload delivered at ``dst``: a private copy in legacy
        mode (sender and receiver never alias the same buffer, mirroring MPI
        semantics), a shared read-only view in zerocopy mode, or a shape
        token in volume mode.  A transfer from a rank to itself is free, as
        in MPI shared-memory shortcuts -- no counters are updated.

        ``kind`` is either ``"input"`` (matrices A/B) or ``"output"``
        (partial/final C); Figure 12 reports these separately.
        """
        if src == dst:
            return self.transport.self_copy(block)
        if not 0 <= src < self.p:
            raise IndexError(f"rank {src} out of range for machine with p={self.p}")
        if not 0 <= dst < self.p:
            raise IndexError(f"rank {dst} out of range for machine with p={self.p}")
        words = payload_words(block)
        # Scalar update straight into the shared counter matrix (the batched
        # equivalent for whole collectives is post_transfers).
        data = self.counters.matrix.data
        data[WORDS_SENT, src] += words
        data[MESSAGES_SENT, src] += 1
        data[WORDS_RECEIVED, dst] += words
        data[MESSAGES_RECEIVED, dst] += 1
        split = OUTPUT_WORDS if kind == "output" else INPUT_WORDS
        data[split, src] += words
        data[split, dst] += words
        if count_round:
            data[ROUNDS, src] += 1
            data[ROUNDS, dst] += 1
        if self.trace is not None:
            self.trace.hop()
        return self.transport.deliver(block)

    def post_transfers(
        self,
        srcs: Sequence[int],
        dsts: Sequence[int],
        words,
        kind: str = "input",
        count_rounds: bool = True,
    ) -> None:
        """Batched accounting for many point-to-point transfers at once.

        Counter-equivalent to one :meth:`send` per ``(srcs[i], dsts[i])``
        pair moving ``words`` (a scalar, or one entry per pair); no payload
        is delivered.  Collectives use this in counters-only (``volume``)
        mode to post a single vectorized update for all participating ranks
        instead of iterating :class:`Rank` objects.
        """
        self.counters.post_transfers(srcs, dsts, words, kind=kind, count_rounds=count_rounds)
        if self.trace is not None:
            self.trace.hops_batch(len(srcs))

    def sendrecv(
        self,
        a_src: int,
        a_dst: int,
        a_block: np.ndarray,
        b_src: int,
        b_dst: int,
        b_block: np.ndarray,
        kind: str = "input",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Two simultaneous transfers counted as a single round on each rank."""
        out_a = self.send(a_src, a_dst, a_block, kind=kind, count_round=False)
        out_b = self.send(b_src, b_dst, b_block, kind=kind, count_round=False)
        for r in {a_src, a_dst, b_src, b_dst}:
            self.rank(r).counters.rounds += 1
        return out_a, out_b

    # ------------------------------------------------------------------
    # local compute accounting
    # ------------------------------------------------------------------
    def local_multiply(
        self,
        rank_id: int,
        a_block: np.ndarray,
        b_block: np.ndarray,
        accumulate_into: np.ndarray | None = None,
    ) -> np.ndarray:
        """Perform a local (BLAS-like) multiplication on ``rank_id``.

        Counts ``2 * m * n * k`` flops and returns the (possibly accumulated)
        product.  With token payloads (volume mode) only the flop counter is
        updated and a token of the product's shape is returned.
        """
        rank = self.rank(rank_id)
        counters_only = is_token(a_block) or is_token(b_block) or is_token(accumulate_into)
        if not counters_only:
            # A float32 x float32 multiply stays float32 (the opt-in plane
            # dtype must never silently round-trip through float64); any
            # other operand mix is normalized to the float64 reference path.
            a_block = np.asarray(a_block)
            b_block = np.asarray(b_block)
            if not (a_block.dtype == np.float32 and b_block.dtype == np.float32):
                a_block = np.asarray(a_block, dtype=np.float64)
                b_block = np.asarray(b_block, dtype=np.float64)
        # Validation and flop accounting are shared across modes so the two
        # representations can never diverge.
        a_shape = payload_shape(a_block)
        b_shape = payload_shape(b_block)
        if len(a_shape) != 2 or len(b_shape) != 2:
            raise ValueError("local_multiply expects 2-D blocks")
        if a_shape[1] != b_shape[0]:
            raise ValueError(f"inner dimensions do not match: {a_shape} x {b_shape}")
        m, k = a_shape
        n = b_shape[1]
        if accumulate_into is not None and payload_shape(accumulate_into) != (m, n):
            raise ValueError(
                f"accumulation buffer shape {payload_shape(accumulate_into)} "
                f"does not match product {(m, n)}"
            )
        rank.counters.flops += 2 * m * n * k
        if counters_only:
            return ShapeToken((m, n)) if accumulate_into is None else accumulate_into
        product = a_block @ b_block
        if accumulate_into is None:
            return product
        accumulate_into += product
        return accumulate_into

    def local_add(self, rank_id: int, target: np.ndarray, other: np.ndarray) -> np.ndarray:
        """Accumulate ``other`` into ``target`` on ``rank_id`` (reduction flops)."""
        rank = self.rank(rank_id)
        if is_token(target) or is_token(other):
            if payload_shape(target) != payload_shape(other):
                raise ValueError(
                    f"shape mismatch in local_add: {payload_shape(target)} vs {payload_shape(other)}"
                )
            rank.counters.flops += payload_words(target)
            return target
        other = np.asarray(other)
        if target.shape != other.shape:
            raise ValueError(f"shape mismatch in local_add: {target.shape} vs {other.shape}")
        rank.counters.flops += int(target.size)
        target += other
        return target

    def local_combine(
        self,
        rank_id: int,
        target: np.ndarray,
        other: np.ndarray,
        op=None,
    ) -> np.ndarray:
        """Combine ``other`` into ``target`` with a reduction operator.

        ``op=None`` is element-wise addition (in place, via
        :meth:`local_add`).  A custom ``op`` is applied out of place and its
        result returned; either way one flop per output element is charged to
        ``rank_id``, so reductions are accounted identically no matter which
        operator the collective uses.  In volume mode the operator is not
        invoked (payloads carry no data) and the target token is returned.
        """
        if op is None:
            return self.local_add(rank_id, target, other)
        rank = self.rank(rank_id)
        rank.counters.flops += payload_words(target)
        if is_token(target) or is_token(other):
            return target
        return op(target, other)

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def check_memory(self, extra_words: Mapping[int, int] | None = None) -> int:
        """Record (and optionally enforce) the per-rank resident footprint.

        Parameters
        ----------
        extra_words:
            Optional per-rank extra words (e.g. communication buffers not kept
            in ``store``).

        Returns the current maximum resident words over all ranks.
        """
        worst = 0
        offender = -1
        for rank in self.ranks:
            resident = rank.resident_words()
            if extra_words is not None:
                resident += int(extra_words.get(rank.rank_id, 0))
            if resident > worst:
                worst = resident
                offender = rank.rank_id
        if worst > self.peak_resident_words:
            self.peak_resident_words = worst
        if self.enforce_memory and worst > self.memory_words:
            raise LocalMemoryExceededError(
                f"rank {offender} holds {worst} words which exceeds the local memory S={self.memory_words}"
            )
        return worst

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def gather_results(self, name: str, ranks: Iterable[int] | None = None) -> dict[int, np.ndarray]:
        """Collect the block called ``name`` from each rank (no accounting).

        This is a *debug/verification* helper, equivalent to the test harness
        reading back the distributed result; it does not represent algorithmic
        communication and therefore does not touch the counters.
        """
        selected = range(self.p) if ranks is None else ranks
        return {r: self.rank(r).get(name) for r in selected if self.rank(r).has(name)}

    def log_round(self, label: str) -> None:
        self.round_log.append(label)
        if self.trace is not None:
            self.trace.end_round(label, self.peak_resident_words)

    # ------------------------------------------------------------------
    # steady-state round compression
    # ------------------------------------------------------------------
    def replay_round(self, fingerprint) -> RoundDelta | None:
        """Replay a structurally identical round from the compressor cache.

        ``fingerprint`` must uniquely determine the round's communication
        schedule (participants, payload shapes, local compute) for the
        algorithm running on this machine.  Returns the applied
        :class:`~repro.machine.counters.RoundDelta` on a hit -- the caller
        skips the round's body -- or ``None``, in which case the round must
        execute and end with :meth:`commit_round`.  Always ``None`` when
        compression is inactive (``compress_rounds=False`` or a transport
        that carries real payloads).
        """
        if self.compressor is None:
            return None
        delta = self.compressor.replay(fingerprint)
        # Replayed rounds skip log_round; emit their span here so a traced
        # compressed run still shows one span per counted round.
        if delta is not None and self.trace is not None:
            self.trace.end_round("replay", self.peak_resident_words, replayed=True)
        return delta

    def commit_round(self) -> None:
        """Capture the just-executed round's counter delta for future replays."""
        if self.trace is not None:
            self.trace.commit_round(self.peak_resident_words)
        if self.compressor is not None:
            self.compressor.commit()

    def reset_counters(self) -> None:
        self.counters.reset()
        if self.compressor is not None:
            self.compressor.clear()
        self.peak_resident_words = 0
        self.round_log.clear()
        self.clear_planes()
