"""Distributed machine simulator with exact communication accounting.

The paper's machine model (section 2.1): ``p`` processors, each with a local
memory of ``S`` words; any processor can exchange up to ``S`` words with any
other; all operands of a computation must reside in local memory.

Algorithms in :mod:`repro.core` and :mod:`repro.baselines` are written as
coordinator-style programs that keep one :class:`Rank` object per simulated
processor and move numpy blocks between ranks *only* through the machine's
communication primitives.  Every primitive updates the per-rank
:class:`~repro.machine.counters.RankCounters`, so the harness can read off the
same "MB communicated per rank" quantity that the paper measures with mpiP.

The simulator does not try to model time directly; the analytic performance
model in :mod:`repro.experiments.perf_model` converts the counters into
simulated runtimes using an alpha-beta-gamma model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.machine.counters import CommCounters, RankCounters
from repro.machine.topology import MachineSpec, laptop_spec
from repro.utils.validation import check_positive_int


class LocalMemoryExceededError(RuntimeError):
    """Raised when a rank's resident data exceeds its local memory ``S``."""


@dataclass
class Rank:
    """State of one simulated processor.

    Attributes
    ----------
    rank_id:
        Processor index in ``[0, p)``.
    store:
        Named local blocks (numpy arrays).  Algorithms are free to use any
        naming convention; the memory accounting sums the sizes of all stored
        arrays.
    counters:
        Per-rank communication/computation counters.
    """

    rank_id: int
    store: dict[str, np.ndarray] = field(default_factory=dict)
    counters: RankCounters = field(default_factory=RankCounters)

    def resident_words(self) -> int:
        """Number of words currently resident in this rank's local memory."""
        return int(sum(block.size for block in self.store.values()))

    def put(self, name: str, block: np.ndarray) -> None:
        """Place ``block`` into the local store under ``name``."""
        self.store[name] = block

    def get(self, name: str) -> np.ndarray:
        return self.store[name]

    def pop(self, name: str) -> np.ndarray:
        return self.store.pop(name)

    def has(self, name: str) -> bool:
        return name in self.store


class DistributedMachine:
    """A ``p``-processor distributed-memory machine with word-exact accounting.

    Parameters
    ----------
    p:
        Number of processors (ranks).
    memory_words:
        Local memory size ``S`` per rank, in words.  When ``enforce_memory``
        is true, :meth:`check_memory` raises if any rank's resident data
        exceeds this budget.
    spec:
        Optional :class:`~repro.machine.topology.MachineSpec` used by the
        performance model; defaults to a laptop-like spec with the given
        ``memory_words``.
    enforce_memory:
        Whether :meth:`check_memory` raises (True) or merely records the peak
        usage (False).  Algorithms call ``check_memory`` at the end of every
        communication round.
    """

    def __init__(
        self,
        p: int,
        memory_words: int | None = None,
        spec: MachineSpec | None = None,
        enforce_memory: bool = False,
    ) -> None:
        self.p = check_positive_int(p, "p")
        if spec is None:
            spec = laptop_spec(memory_words or (1 << 20))
        self.spec = spec
        self.memory_words = int(memory_words) if memory_words is not None else spec.memory_words_per_core
        if self.memory_words <= 0:
            raise ValueError(f"memory_words must be positive, got {self.memory_words}")
        self.enforce_memory = bool(enforce_memory)
        self.ranks = [Rank(rank_id=i) for i in range(self.p)]
        self.counters = CommCounters(per_rank=[rank.counters for rank in self.ranks])
        self.peak_resident_words = 0
        #: Log of (round_label, participating_ranks) entries, useful for debugging.
        self.round_log: list[str] = []

    # ------------------------------------------------------------------
    # basic rank access
    # ------------------------------------------------------------------
    def rank(self, rank_id: int) -> Rank:
        if not 0 <= rank_id < self.p:
            raise IndexError(f"rank {rank_id} out of range for machine with p={self.p}")
        return self.ranks[rank_id]

    def __len__(self) -> int:
        return self.p

    # ------------------------------------------------------------------
    # point-to-point communication
    # ------------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        block: np.ndarray,
        kind: str = "input",
        count_round: bool = True,
    ) -> np.ndarray:
        """Transfer ``block`` from rank ``src`` to rank ``dst``.

        Returns the array object delivered at ``dst`` (a copy, so that sender
        and receiver never alias the same buffer, mirroring MPI semantics).
        A transfer from a rank to itself is free, as in MPI shared-memory
        shortcuts -- no counters are updated.

        ``kind`` is either ``"input"`` (matrices A/B) or ``"output"``
        (partial/final C); Figure 12 reports these separately.
        """
        block = np.asarray(block)
        if src == dst:
            return block.copy()
        sender = self.rank(src)
        receiver = self.rank(dst)
        words = int(block.size)
        sender.counters.words_sent += words
        sender.counters.messages_sent += 1
        receiver.counters.words_received += words
        receiver.counters.messages_received += 1
        if kind == "output":
            sender.counters.output_words += words
            receiver.counters.output_words += words
        else:
            sender.counters.input_words += words
            receiver.counters.input_words += words
        if count_round:
            sender.counters.rounds += 1
            receiver.counters.rounds += 1
        return block.copy()

    def sendrecv(
        self,
        a_src: int,
        a_dst: int,
        a_block: np.ndarray,
        b_src: int,
        b_dst: int,
        b_block: np.ndarray,
        kind: str = "input",
    ) -> tuple[np.ndarray, np.ndarray]:
        """Two simultaneous transfers counted as a single round on each rank."""
        out_a = self.send(a_src, a_dst, a_block, kind=kind, count_round=False)
        out_b = self.send(b_src, b_dst, b_block, kind=kind, count_round=False)
        for r in {a_src, a_dst, b_src, b_dst}:
            self.rank(r).counters.rounds += 1
        return out_a, out_b

    # ------------------------------------------------------------------
    # local compute accounting
    # ------------------------------------------------------------------
    def local_multiply(
        self,
        rank_id: int,
        a_block: np.ndarray,
        b_block: np.ndarray,
        accumulate_into: np.ndarray | None = None,
    ) -> np.ndarray:
        """Perform a local (BLAS-like) multiplication on ``rank_id``.

        Counts ``2 * m * n * k`` flops and returns the (possibly accumulated)
        product.
        """
        rank = self.rank(rank_id)
        a_block = np.asarray(a_block, dtype=np.float64)
        b_block = np.asarray(b_block, dtype=np.float64)
        if a_block.ndim != 2 or b_block.ndim != 2:
            raise ValueError("local_multiply expects 2-D blocks")
        if a_block.shape[1] != b_block.shape[0]:
            raise ValueError(
                f"inner dimensions do not match: {a_block.shape} x {b_block.shape}"
            )
        m, k = a_block.shape
        _, n = b_block.shape
        rank.counters.flops += 2 * m * n * k
        product = a_block @ b_block
        if accumulate_into is None:
            return product
        if accumulate_into.shape != product.shape:
            raise ValueError(
                f"accumulation buffer shape {accumulate_into.shape} does not match product {product.shape}"
            )
        accumulate_into += product
        return accumulate_into

    def local_add(self, rank_id: int, target: np.ndarray, other: np.ndarray) -> np.ndarray:
        """Accumulate ``other`` into ``target`` on ``rank_id`` (reduction flops)."""
        rank = self.rank(rank_id)
        other = np.asarray(other)
        if target.shape != other.shape:
            raise ValueError(f"shape mismatch in local_add: {target.shape} vs {other.shape}")
        rank.counters.flops += int(target.size)
        target += other
        return target

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def check_memory(self, extra_words: Mapping[int, int] | None = None) -> int:
        """Record (and optionally enforce) the per-rank resident footprint.

        Parameters
        ----------
        extra_words:
            Optional per-rank extra words (e.g. communication buffers not kept
            in ``store``).

        Returns the current maximum resident words over all ranks.
        """
        worst = 0
        offender = -1
        for rank in self.ranks:
            resident = rank.resident_words()
            if extra_words is not None:
                resident += int(extra_words.get(rank.rank_id, 0))
            if resident > worst:
                worst = resident
                offender = rank.rank_id
        if worst > self.peak_resident_words:
            self.peak_resident_words = worst
        if self.enforce_memory and worst > self.memory_words:
            raise LocalMemoryExceededError(
                f"rank {offender} holds {worst} words which exceeds the local memory S={self.memory_words}"
            )
        return worst

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def gather_results(self, name: str, ranks: Iterable[int] | None = None) -> dict[int, np.ndarray]:
        """Collect the block called ``name`` from each rank (no accounting).

        This is a *debug/verification* helper, equivalent to the test harness
        reading back the distributed result; it does not represent algorithmic
        communication and therefore does not touch the counters.
        """
        selected = range(self.p) if ranks is None else ranks
        return {r: self.rank(r).get(name) for r in selected if self.rank(r).has(name)}

    def log_round(self, label: str) -> None:
        self.round_log.append(label)

    def reset_counters(self) -> None:
        self.counters.reset()
        self.peak_resident_words = 0
        self.round_log.clear()
