"""Two-level memory hierarchy simulator (vertical I/O).

This is the machine model of the red-blue pebble game (section 2.1 of the
paper): a small-and-fast memory of ``S`` words and an unbounded slow memory.
Sequential MMM kernels in :mod:`repro.sequential` run against this model and
the number of load/store operations they perform is compared with the
Theorem 1 lower bound ``2mnk/sqrt(S) + mn``.

Two management policies are provided:

* :class:`MemoryHierarchy` -- *explicit* management: the kernel decides what to
  load, store, and evict, exactly like placing and removing red pebbles.
* :class:`LRUCacheMemory` -- *automatic* LRU management, useful to show how far
  a hardware-like cache policy is from the explicitly scheduled optimum.

Addresses are hashable tokens; the MMM kernels use tuples such as
``("A", i, k)`` or ``("C", i, j)``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Iterable

Address = Hashable


@dataclass
class AccessStats:
    """Counters of slow-memory traffic produced by a kernel run."""

    loads: int = 0
    stores: int = 0
    #: number of compute operations (fused multiply-adds for MMM kernels)
    computes: int = 0
    #: peak number of words simultaneously resident in fast memory
    peak_resident: int = 0

    @property
    def io(self) -> int:
        """Total vertical I/O ``Q`` (loads + stores)."""
        return self.loads + self.stores

    def as_dict(self) -> dict[str, int]:
        return {
            "loads": self.loads,
            "stores": self.stores,
            "io": self.io,
            "computes": self.computes,
            "peak_resident": self.peak_resident,
        }


class FastMemoryFullError(RuntimeError):
    """Raised when a kernel tries to exceed the fast-memory capacity ``S``."""


class MemoryHierarchy:
    """Explicitly managed two-level memory.

    Parameters
    ----------
    capacity_words:
        Size ``S`` of the fast memory in words (the number of red pebbles).
    initial_slow:
        Addresses initially resident in slow memory (the CDAG inputs, i.e. the
        vertices that initially carry blue pebbles).  Loading an address that
        is in neither memory raises ``KeyError`` -- it would correspond to an
        illegal pebble-game move.

    Notes
    -----
    The class deliberately mirrors the four legal moves of the red-blue pebble
    game:

    ============== =========================================
    pebble game    :class:`MemoryHierarchy` method
    ============== =========================================
    load           :meth:`load`
    store          :meth:`store`
    compute        :meth:`compute`
    free memory    :meth:`evict` / :meth:`discard_slow`
    ============== =========================================
    """

    def __init__(self, capacity_words: int, initial_slow: Iterable[Address] = ()) -> None:
        if capacity_words <= 0:
            raise ValueError(f"fast-memory capacity must be positive, got {capacity_words}")
        self.capacity = int(capacity_words)
        self._fast: set[Address] = set()
        self._slow: set[Address] = set(initial_slow)
        self.stats = AccessStats()

    # -- inspection -------------------------------------------------------
    @property
    def resident(self) -> frozenset[Address]:
        """Addresses currently in fast memory."""
        return frozenset(self._fast)

    @property
    def in_slow(self) -> frozenset[Address]:
        """Addresses currently in slow memory."""
        return frozenset(self._slow)

    def in_fast(self, address: Address) -> bool:
        return address in self._fast

    def free_words(self) -> int:
        return self.capacity - len(self._fast)

    # -- pebble-game moves ------------------------------------------------
    def _load_one(self, address: Address) -> None:
        """The blue-to-red move itself, without peak tracking."""
        if address in self._fast:
            return
        if address not in self._slow:
            raise KeyError(f"cannot load {address!r}: not present in slow memory")
        self._ensure_space(1)
        self._fast.add(address)
        self.stats.loads += 1

    def load(self, address: Address) -> None:
        """Load ``address`` from slow into fast memory (a blue-to-red move)."""
        self._load_one(address)
        self._track_peak()

    def load_many(self, addresses: Iterable[Address]) -> None:
        """Batched :meth:`load`: one peak-tracking update for the whole batch.

        Sequential kernels load whole tiles at a time; residency only grows
        during a batch, so tracking the peak once at the end (or at the point
        of failure) is exact while the pebble-game semantics -- including
        partial loads before an error -- are untouched.
        """
        try:
            for address in addresses:
                self._load_one(address)
        finally:
            self._track_peak()

    def store(self, address: Address) -> None:
        """Store ``address`` from fast into slow memory (a red-to-blue move)."""
        if address not in self._fast:
            raise KeyError(f"cannot store {address!r}: not resident in fast memory")
        if address in self._slow:
            return
        self._slow.add(address)
        self.stats.stores += 1

    def compute(self, result: Address, operands: Iterable[Address] = ()) -> None:
        """Produce ``result`` in fast memory from resident ``operands``.

        All operands must already be resident (all parents carry red pebbles).
        """
        operands = list(operands)
        missing = [op for op in operands if op not in self._fast]
        if missing:
            raise FastMemoryFullError(
                f"compute of {result!r} requires operands {missing!r} to be resident in fast memory"
            )
        if result not in self._fast:
            self._ensure_space(1)
            self._fast.add(result)
        self.stats.computes += 1
        self._track_peak()

    def evict(self, address: Address) -> None:
        """Remove a red pebble.  Data not previously stored is lost."""
        self._fast.discard(address)

    def evict_many(self, addresses: Iterable[Address]) -> None:
        for address in addresses:
            self.evict(address)

    def discard_slow(self, address: Address) -> None:
        """Remove a blue pebble (free slow memory)."""
        self._slow.discard(address)

    # -- helpers ----------------------------------------------------------
    def _ensure_space(self, words: int) -> None:
        if len(self._fast) + words > self.capacity:
            raise FastMemoryFullError(
                f"fast memory over capacity: {len(self._fast)} resident + {words} requested "
                f"> capacity {self.capacity}"
            )

    def _track_peak(self) -> None:
        if len(self._fast) > self.stats.peak_resident:
            self.stats.peak_resident = len(self._fast)


class LRUCacheMemory:
    """Automatically managed (LRU) two-level memory.

    ``access(address)`` touches an address: a miss loads it (evicting the
    least-recently-used resident word if necessary, counting a store if that
    word is dirty), a hit is free.  ``write(address)`` marks an address dirty.

    This models how a plain cache would execute the same instruction stream and
    lets the benchmarks contrast scheduled (pebbling-aware) against
    hardware-managed data movement.
    """

    def __init__(self, capacity_words: int) -> None:
        if capacity_words <= 0:
            raise ValueError(f"cache capacity must be positive, got {capacity_words}")
        self.capacity = int(capacity_words)
        self._lru: OrderedDict[Address, bool] = OrderedDict()  # address -> dirty
        self.stats = AccessStats()

    @property
    def resident(self) -> frozenset[Address]:
        return frozenset(self._lru.keys())

    def access(self, address: Address, write: bool = False) -> bool:
        """Touch ``address``; return True on a hit, False on a miss."""
        hit = address in self._lru
        if hit:
            self._lru.move_to_end(address)
            if write:
                self._lru[address] = True
        else:
            self.stats.loads += 1
            if len(self._lru) >= self.capacity:
                _victim, dirty = self._lru.popitem(last=False)
                if dirty:
                    self.stats.stores += 1
            self._lru[address] = write
            if len(self._lru) > self.stats.peak_resident:
                self.stats.peak_resident = len(self._lru)
        return hit

    def write(self, address: Address) -> None:
        """Write ``address`` (allocating on write miss)."""
        self.access(address, write=True)

    def compute(self) -> None:
        self.stats.computes += 1

    def flush(self) -> None:
        """Write back all dirty lines (end of kernel)."""
        for address, dirty in self._lru.items():
            if dirty:
                self.stats.stores += 1
                self._lru[address] = False
