"""Topology-aware broadcast/reduction trees (section 7.2).

The paper replaces the generic MPI broadcast with a hand-crafted binary tree
that exploits static knowledge of the data layout and processor grid: parent
and child ranks are chosen to be close to each other in the grid, which on a
dragonfly network translates into fewer expensive inter-group hops (the paper
reports ~10% faster collectives than Cray-MPICH's defaults).

The simulator cannot measure switch contention, but it can measure *hop
counts*: this module builds trees that minimize the total parent-child
distance under a pluggable distance function (grid Manhattan distance by
default, or node-granularity distance for a "nodes of 36 cores" placement) and
exposes the per-tree hop statistics that the ablation benchmark compares
against a placement-oblivious binomial tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.utils.validation import check_positive_int

DistanceFn = Callable[[int, int], float]


@dataclass(frozen=True)
class BroadcastTree:
    """A rooted tree over a set of ranks, given as a parent map."""

    root: int
    parent: Mapping[int, int]

    @property
    def ranks(self) -> list[int]:
        return [self.root] + sorted(self.parent)

    def children(self, rank: int) -> list[int]:
        return sorted(r for r, p in self.parent.items() if p == rank)

    def depth(self) -> int:
        """Longest root-to-leaf path length (the latency of the broadcast)."""
        longest = 0
        for rank in self.parent:
            length = 0
            current = rank
            while current != self.root:
                current = self.parent[current]
                length += 1
                if length > len(self.parent) + 1:  # pragma: no cover - cycle guard
                    raise ValueError("parent map contains a cycle")
            longest = max(longest, length)
        return longest

    def total_hops(self, distance: DistanceFn) -> float:
        """Sum of parent-child distances: the metric the tree construction minimizes."""
        return sum(distance(parent, child) for child, parent in self.parent.items())

    def max_children(self) -> int:
        counts: dict[int, int] = {}
        for parent in self.parent.values():
            counts[parent] = counts.get(parent, 0) + 1
        return max(counts.values(), default=0)


def grid_distance(grid_shape: tuple[int, int, int]) -> DistanceFn:
    """Manhattan distance between two ranks' coordinates in a processor grid.

    Ranks are mapped to grid coordinates row-major, matching
    :meth:`repro.core.decomposition.CosmaDecomposition.coords_to_rank`.
    """
    pm, pn, pk = grid_shape
    check_positive_int(pm, "pm")
    check_positive_int(pn, "pn")
    check_positive_int(pk, "pk")

    def coords(rank: int) -> tuple[int, int, int]:
        pi, rest = divmod(rank, pn * pk)
        pj, pkk = divmod(rest, pk)
        return pi, pj, pkk

    def distance(a: int, b: int) -> float:
        ca, cb = coords(a), coords(b)
        return float(abs(ca[0] - cb[0]) + abs(ca[1] - cb[1]) + abs(ca[2] - cb[2]))

    return distance


def node_distance(cores_per_node: int) -> DistanceFn:
    """0 for ranks on the same node, 1 otherwise (placement at node granularity)."""
    check_positive_int(cores_per_node, "cores_per_node")

    def distance(a: int, b: int) -> float:
        return 0.0 if a // cores_per_node == b // cores_per_node else 1.0

    return distance


def binomial_tree(ranks: Sequence[int], root: int) -> BroadcastTree:
    """The placement-oblivious binomial tree used by generic MPI broadcasts."""
    order = list(ranks)
    if root not in order:
        raise ValueError(f"root {root} is not among the ranks {order}")
    order.remove(root)
    order.insert(0, root)
    parent: dict[int, int] = {}
    span = 1
    while span < len(order):
        for pos in range(span):
            partner = pos + span
            if partner >= len(order):
                break
            parent[order[partner]] = order[pos]
        span *= 2
    return BroadcastTree(root=root, parent=parent)


def topology_aware_tree(
    ranks: Sequence[int],
    root: int,
    distance: DistanceFn,
    max_degree: int = 2,
) -> BroadcastTree:
    """Build a distance-minimizing broadcast tree (greedy Prim-style construction).

    Starting from the root, repeatedly attach the unattached rank whose
    distance to some already-attached rank (with spare fan-out) is smallest.
    With ``max_degree = 2`` the result is a binary tree as in the paper; the
    greedy rule keeps parent-child pairs close in the processor grid.
    """
    ranks = list(dict.fromkeys(ranks))
    if root not in ranks:
        raise ValueError(f"root {root} is not among the ranks {ranks}")
    check_positive_int(max_degree, "max_degree")
    attached = {root}
    fanout: dict[int, int] = {root: 0}
    parent: dict[int, int] = {}
    remaining = [r for r in ranks if r != root]
    while remaining:
        best_pair: tuple[float, int, int] | None = None
        for child in remaining:
            for candidate_parent in attached:
                if fanout[candidate_parent] >= max_degree:
                    continue
                d = distance(candidate_parent, child)
                key = (d, child, candidate_parent)
                if best_pair is None or key < best_pair:
                    best_pair = key
        if best_pair is None:
            # Every attached rank is saturated; allow one extra child on the
            # least-loaded rank (can only happen for max_degree * depth < p).
            candidate_parent = min(attached, key=lambda r: fanout[r])
            child = remaining[0]
            best_pair = (distance(candidate_parent, child), child, candidate_parent)
        _d, child, chosen_parent = best_pair
        parent[child] = chosen_parent
        fanout[chosen_parent] = fanout.get(chosen_parent, 0) + 1
        fanout[child] = 0
        attached.add(child)
        remaining.remove(child)
    return BroadcastTree(root=root, parent=parent)


def compare_trees(
    ranks: Sequence[int],
    root: int,
    distance: DistanceFn,
) -> dict[str, dict[str, float]]:
    """Hop statistics of the generic binomial tree vs the topology-aware tree."""
    generic = binomial_tree(ranks, root)
    aware = topology_aware_tree(ranks, root, distance)
    return {
        "binomial": {
            "total_hops": generic.total_hops(distance),
            "depth": generic.depth(),
            "max_children": generic.max_children(),
        },
        "topology_aware": {
            "total_hops": aware.total_hops(distance),
            "depth": aware.depth(),
            "max_children": aware.max_children(),
        },
    }
