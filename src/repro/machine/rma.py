"""One-sided (RMA-style) communication primitives.

Section 7.4 of the paper implements COSMA's communication both with MPI
two-sided primitives and with MPI RMA (``MPI_Get`` / ``MPI_Accumulate``) to
exploit RDMA.  In the simulator the transferred volume is identical; what
differs is the latency accounting: a one-sided epoch charges a round only to
the origin rank (the target is passive), which is how RDMA lowers the latency
cost in practice.

These wrappers let the COSMA executor switch between back-ends with a flag so
that the latency difference shows up in the simulated round counts.
"""

from __future__ import annotations

import numpy as np

from repro.machine.simulator import DistributedMachine
from repro.machine.transport import payload_words


def rma_get(
    machine: DistributedMachine,
    origin: int,
    target: int,
    block: np.ndarray,
    kind: str = "input",
) -> np.ndarray:
    """One-sided get: ``origin`` reads ``block`` from ``target``'s memory.

    The words travel from ``target`` to ``origin`` (same volume as a send),
    but only the origin's round counter advances -- the target does not
    participate actively.
    """
    if origin == target:
        return machine.transport.self_copy(block)
    delivered = machine.send(target, origin, block, kind=kind, count_round=False)
    machine.rank(origin).counters.rounds += 1
    return delivered


def rma_put(
    machine: DistributedMachine,
    origin: int,
    target: int,
    block: np.ndarray,
    kind: str = "input",
) -> np.ndarray:
    """One-sided put: ``origin`` writes ``block`` into ``target``'s memory."""
    if origin == target:
        return machine.transport.self_copy(block)
    delivered = machine.send(origin, target, block, kind=kind, count_round=False)
    machine.rank(origin).counters.rounds += 1
    return delivered


def rma_accumulate(
    machine: DistributedMachine,
    origin: int,
    target: int,
    block: np.ndarray,
    target_buffer: np.ndarray,
    kind: str = "output",
) -> np.ndarray:
    """One-sided accumulate: add ``block`` into ``target_buffer`` on ``target``.

    Returns the updated target buffer.  The addition is charged to the target
    rank's flop counter (the NIC/host performs it there), the round only to the
    origin.
    """
    if origin == target:
        machine.rank(target).counters.flops += payload_words(block)
        target_buffer += block
        return target_buffer
    delivered = machine.send(origin, target, block, kind=kind, count_round=False)
    machine.rank(origin).counters.rounds += 1
    machine.local_add(target, target_buffer, delivered)
    return target_buffer
