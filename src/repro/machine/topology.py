"""Machine specifications used by the performance model.

The paper evaluates on the CPU partition of Piz Daint (Cray XC40): dual-socket
Intel Xeon E5-2695 v4 nodes (36 cores at 3.30 GHz), 64 GiB RAM per node and a
Cray Aries dragonfly interconnect.  We capture the handful of parameters that
the analytic performance model needs (per-core peak flop rate, per-core memory
size, network latency and bandwidth).  The absolute values only scale the
simulated runtimes; the comparisons between algorithms depend on communication
volumes measured by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class MachineSpec:
    """A distributed-machine specification for the performance model.

    Attributes
    ----------
    name:
        Human-readable identifier.
    cores_per_node:
        Number of cores (MPI ranks in the paper's flat runs) per node.
    peak_flops_per_core:
        Peak double-precision flop/s of a single core.  Piz Daint's
        E5-2695 v4 delivers 3.3 GHz x 16 DP flop/cycle = 52.8 Gflop/s/core.
    memory_words_per_core:
        Size ``S`` of the local memory per core, in 8-byte words.
    network_latency_s:
        Per-message latency (the alpha term).
    network_bandwidth_words_per_s:
        Per-link bandwidth in words/s (the inverse of the beta term).
    word_bytes:
        Bytes per matrix element (8 for float64).
    """

    name: str
    cores_per_node: int = 36
    peak_flops_per_core: float = 52.8e9
    memory_words_per_core: int = 64 * 1024 ** 3 // (36 * 8)
    network_latency_s: float = 1.5e-6
    network_bandwidth_words_per_s: float = 10e9 / 8.0
    word_bytes: int = 8
    injection_overhead_s: float = 0.5e-6
    extra: dict = field(default_factory=dict, compare=False)

    @property
    def beta_s_per_word(self) -> float:
        """Time to transfer one word (the beta term of the alpha-beta model)."""
        return 1.0 / self.network_bandwidth_words_per_s

    def compute_time(self, flops: float) -> float:
        """Time to execute ``flops`` floating point operations on one core."""
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        return flops / self.peak_flops_per_core

    def communication_time(self, words: float, messages: float = 0.0) -> float:
        """Alpha-beta time for moving ``words`` in ``messages`` messages."""
        if words < 0 or messages < 0:
            raise ValueError("words and messages must be non-negative")
        return messages * self.network_latency_s + words * self.beta_s_per_word


#: A Piz-Daint-like specification (XC40 CPU partition) used as the default in
#: the performance-model experiments (Figures 1, 8-14).
PIZ_DAINT_LIKE = MachineSpec(
    name="piz-daint-xc40-like",
    cores_per_node=36,
    peak_flops_per_core=52.8e9,
    memory_words_per_core=64 * 1024 ** 3 // (36 * 8),
    network_latency_s=1.5e-6,
    network_bandwidth_words_per_s=10.5e9 / 8.0,
)


def laptop_spec(memory_words_per_core: int = 1 << 20) -> MachineSpec:
    """A small machine spec convenient for examples and fast tests."""
    return MachineSpec(
        name="laptop",
        cores_per_node=8,
        peak_flops_per_core=8e9,
        memory_words_per_core=memory_words_per_core,
        network_latency_s=1e-6,
        network_bandwidth_words_per_s=2e9,
    )


def scaled_spec(base: MachineSpec, memory_words_per_core: int) -> MachineSpec:
    """Return a copy of ``base`` with a different per-core memory size.

    The paper's "limited memory" and "extra memory" regimes (section 8) fix the
    ratio of the problem footprint to the aggregate memory; in the simulator we
    instead shrink the per-core memory so that the same regimes are exercised
    at laptop scale.
    """
    return MachineSpec(
        name=f"{base.name}-S{memory_words_per_core}",
        cores_per_node=base.cores_per_node,
        peak_flops_per_core=base.peak_flops_per_core,
        memory_words_per_core=memory_words_per_core,
        network_latency_s=base.network_latency_s,
        network_bandwidth_words_per_s=base.network_bandwidth_words_per_s,
        word_bytes=base.word_bytes,
        injection_overhead_s=base.injection_overhead_s,
    )
