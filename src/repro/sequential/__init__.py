"""Sequential MMM kernels executed against the two-level memory hierarchy.

These kernels compute real numerical products with numpy while *simultaneously*
simulating their slow-memory traffic on a
:class:`~repro.machine.memory.MemoryHierarchy` (explicit management, i.e. a
pebbling) or an :class:`~repro.machine.memory.LRUCacheMemory` (hardware-like
cache).  They are the executable counterpart of Listing 1 and back the
sequential I/O experiments (Theorem 1 benchmarks).
"""

from repro.sequential.kernels import (
    TiledRunResult,
    naive_multiply_lru,
    rank1_multiply,
    tiled_multiply,
)

__all__ = [
    "naive_multiply_lru",
    "rank1_multiply",
    "tiled_multiply",
    "TiledRunResult",
]
