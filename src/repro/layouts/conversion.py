"""Redistribution between matrix layouts, with communication accounting.

COSMA advertises "transparent integration with the ScaLAPACK data format":
inputs arriving in block-cyclic layout are converted to COSMA's blocked layout
in a preprocessing step.  These helpers quantify that preprocessing cost and
perform the actual data movement on the simulator.

Layouts only need to expose ``element_owners()`` returning an integer matrix of
linear owner indices, which both :class:`~repro.layouts.blocked.BlockedLayout`
and :class:`~repro.layouts.block_cyclic.BlockCyclicLayout` do.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.machine.simulator import DistributedMachine


class _OwnerLayout(Protocol):
    rows: int
    cols: int

    def element_owners(self) -> np.ndarray:  # pragma: no cover - protocol
        ...


def redistribution_volume(src_layout: _OwnerLayout, dst_layout: _OwnerLayout) -> int:
    """Number of words that change owner when converting ``src`` to ``dst``.

    This is the minimum possible redistribution traffic: every element whose
    source owner differs from its destination owner must be moved exactly once.
    """
    src_owners = src_layout.element_owners()
    dst_owners = dst_layout.element_owners()
    if src_owners.shape != dst_owners.shape:
        raise ValueError(
            f"layouts describe different matrices: {src_owners.shape} vs {dst_owners.shape}"
        )
    return int(np.count_nonzero(src_owners != dst_owners))


def redistribute(
    machine: DistributedMachine,
    matrix: np.ndarray,
    src_layout: _OwnerLayout,
    dst_layout: _OwnerLayout,
    src_ranks: Sequence[int] | None = None,
    dst_ranks: Sequence[int] | None = None,
    kind: str = "input",
) -> dict[int, np.ndarray]:
    """Move a matrix from ``src_layout`` to ``dst_layout`` on the simulator.

    ``src_ranks`` / ``dst_ranks`` map the layouts' linear owner indices onto
    machine ranks (identity by default).  Elements are grouped by
    (source rank, destination rank) pair and each group is transferred as a
    single message, so both the volume and the message counts are realistic.

    Returns a mapping ``machine rank -> dense local matrix`` holding the
    destination-owned elements (elements not owned are zero); tests reassemble
    it with the destination layout's owner mask.
    """
    if matrix.shape != (src_layout.rows, src_layout.cols):
        raise ValueError(
            f"matrix shape {matrix.shape} does not match source layout "
            f"{src_layout.rows}x{src_layout.cols}"
        )
    src_owners = src_layout.element_owners()
    dst_owners = dst_layout.element_owners()
    if src_owners.shape != dst_owners.shape:
        raise ValueError("source and destination layouts describe different matrices")

    n_src = int(src_owners.max()) + 1
    n_dst = int(dst_owners.max()) + 1
    src_ranks = list(range(n_src)) if src_ranks is None else list(src_ranks)
    dst_ranks = list(range(n_dst)) if dst_ranks is None else list(dst_ranks)
    if len(src_ranks) < n_src:
        raise ValueError(f"need at least {n_src} source ranks, got {len(src_ranks)}")
    if len(dst_ranks) < n_dst:
        raise ValueError(f"need at least {n_dst} destination ranks, got {len(dst_ranks)}")

    local: dict[int, np.ndarray] = {}
    for owner_idx in range(n_dst):
        local[dst_ranks[owner_idx]] = np.zeros_like(matrix, dtype=np.float64)

    # Group elements by (source owner, destination owner).
    for src_idx in range(n_src):
        src_mask = src_owners == src_idx
        if not src_mask.any():
            continue
        for dst_idx in range(n_dst):
            pair_mask = src_mask & (dst_owners == dst_idx)
            count = int(np.count_nonzero(pair_mask))
            if count == 0:
                continue
            values = matrix[pair_mask]
            src_rank = src_ranks[src_idx]
            dst_rank = dst_ranks[dst_idx]
            delivered = machine.send(src_rank, dst_rank, values, kind=kind)
            local[dst_rank][pair_mask] = delivered
    return local


def assemble_from_locals(
    local: dict[int, np.ndarray],
    dst_layout: _OwnerLayout,
    dst_ranks: Sequence[int] | None = None,
) -> np.ndarray:
    """Rebuild the global matrix from the per-rank output of :func:`redistribute`."""
    dst_owners = dst_layout.element_owners()
    n_dst = int(dst_owners.max()) + 1
    dst_ranks = list(range(n_dst)) if dst_ranks is None else list(dst_ranks)
    out = np.zeros(dst_owners.shape)
    for owner_idx in range(n_dst):
        rank = dst_ranks[owner_idx]
        mask = dst_owners == owner_idx
        out[mask] = local[rank][mask]
    return out
