"""ScaLAPACK-style block-cyclic layout.

A matrix is tiled with fixed-size ``block_rows x block_cols`` tiles; tile
``(ti, tj)`` is owned by process ``(ti mod grid_rows, tj mod grid_cols)`` of a
``grid_rows x grid_cols`` process grid.  COSMA's blocked layout (section 7.6)
is designed to be fully compatible with this format; the conversion routines
in :mod:`repro.layouts.conversion` measure the cost of moving between the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.intmath import ceil_div
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class BlockCyclicLayout:
    """Block-cyclic distribution of a ``rows x cols`` matrix.

    Parameters
    ----------
    rows, cols:
        Global matrix dimensions.
    block_rows, block_cols:
        Tile dimensions (ScaLAPACK's ``MB x NB``).
    grid_rows, grid_cols:
        Process grid dimensions (ScaLAPACK's ``Pr x Pc``).
    """

    rows: int
    cols: int
    block_rows: int
    block_cols: int
    grid_rows: int
    grid_cols: int

    def __post_init__(self) -> None:
        for name in ("rows", "cols", "block_rows", "block_cols", "grid_rows", "grid_cols"):
            check_positive_int(getattr(self, name), name)

    # -- geometry ---------------------------------------------------------
    @property
    def num_ranks(self) -> int:
        return self.grid_rows * self.grid_cols

    @property
    def tile_rows(self) -> int:
        """Number of tile rows covering the matrix."""
        return ceil_div(self.rows, self.block_rows)

    @property
    def tile_cols(self) -> int:
        return ceil_div(self.cols, self.block_cols)

    def tile_of_element(self, i: int, j: int) -> tuple[int, int]:
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise IndexError(f"element ({i}, {j}) outside {self.rows}x{self.cols} matrix")
        return (i // self.block_rows, j // self.block_cols)

    def owner_of_tile(self, tile_row: int, tile_col: int) -> tuple[int, int]:
        """Process-grid coordinates owning a tile."""
        return (tile_row % self.grid_rows, tile_col % self.grid_cols)

    def owner_index(self, i: int, j: int) -> int:
        """Linear rank index (row-major over the process grid) of element ``(i, j)``."""
        ti, tj = self.tile_of_element(i, j)
        pr, pc = self.owner_of_tile(ti, tj)
        return pr * self.grid_cols + pc

    def tile_range(self, tile_row: int, tile_col: int) -> tuple[tuple[int, int], tuple[int, int]]:
        r0 = tile_row * self.block_rows
        r1 = min(r0 + self.block_rows, self.rows)
        c0 = tile_col * self.block_cols
        c1 = min(c0 + self.block_cols, self.cols)
        if r0 >= self.rows or c0 >= self.cols:
            raise IndexError(f"tile ({tile_row}, {tile_col}) outside the matrix")
        return ((r0, r1), (c0, c1))

    # -- data movement helpers ---------------------------------------------
    def local_tiles(self, rank_row: int, rank_col: int) -> list[tuple[int, int]]:
        """All tiles owned by process ``(rank_row, rank_col)``, row-major order."""
        return [
            (ti, tj)
            for ti in range(rank_row, self.tile_rows, self.grid_rows)
            for tj in range(rank_col, self.tile_cols, self.grid_cols)
        ]

    def split(self, matrix: np.ndarray) -> dict[int, dict[tuple[int, int], np.ndarray]]:
        """Split a global matrix into per-rank tile dictionaries."""
        if matrix.shape != (self.rows, self.cols):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match layout {self.rows}x{self.cols}"
            )
        out: dict[int, dict[tuple[int, int], np.ndarray]] = {}
        for pr in range(self.grid_rows):
            for pc in range(self.grid_cols):
                rank = pr * self.grid_cols + pc
                tiles: dict[tuple[int, int], np.ndarray] = {}
                for (ti, tj) in self.local_tiles(pr, pc):
                    (r0, r1), (c0, c1) = self.tile_range(ti, tj)
                    tiles[(ti, tj)] = np.ascontiguousarray(matrix[r0:r1, c0:c1])
                out[rank] = tiles
        return out

    def assemble(self, per_rank_tiles: dict[int, dict[tuple[int, int], np.ndarray]]) -> np.ndarray:
        """Reassemble the global matrix from per-rank tiles."""
        out = np.zeros((self.rows, self.cols))
        for tiles in per_rank_tiles.values():
            for (ti, tj), tile in tiles.items():
                (r0, r1), (c0, c1) = self.tile_range(ti, tj)
                if tile.shape != (r1 - r0, c1 - c0):
                    raise ValueError(
                        f"tile ({ti}, {tj}) has shape {tile.shape}, expected {(r1 - r0, c1 - c0)}"
                    )
                out[r0:r1, c0:c1] = tile
        return out

    def element_owners(self) -> np.ndarray:
        """Matrix of linear owner indices of each element."""
        owners = np.empty((self.rows, self.cols), dtype=np.int64)
        for ti in range(self.tile_rows):
            for tj in range(self.tile_cols):
                (r0, r1), (c0, c1) = self.tile_range(ti, tj)
                pr, pc = self.owner_of_tile(ti, tj)
                owners[r0:r1, c0:c1] = pr * self.grid_cols + pc
        return owners

    def words_per_owner(self) -> list[int]:
        """Number of words each rank stores, in linear rank order."""
        owners = self.element_owners()
        return [int(np.count_nonzero(owners == r)) for r in range(self.num_ranks)]
