"""Blocked matrix layout (section 7.6 of the paper).

A matrix of shape ``rows x cols`` is split into a ``grid_rows x grid_cols``
grid of contiguous blocks, as evenly as possible (the first few block rows /
columns are one element larger when the dimensions do not divide).  Block
``(bi, bj)`` is owned by rank ``ranks[bi * grid_cols + bj]`` where ``ranks`` is
the rank list of the communicator that stores the matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.intmath import split_offsets
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class BlockedLayout:
    """A 2-D blocked distribution of a ``rows x cols`` matrix.

    Parameters
    ----------
    rows, cols:
        Global matrix dimensions.
    grid_rows, grid_cols:
        Number of block rows / block columns.  The number of owning ranks is
        ``grid_rows * grid_cols``.
    """

    rows: int
    cols: int
    grid_rows: int
    grid_cols: int

    def __post_init__(self) -> None:
        check_positive_int(self.rows, "rows")
        check_positive_int(self.cols, "cols")
        check_positive_int(self.grid_rows, "grid_rows")
        check_positive_int(self.grid_cols, "grid_cols")
        if self.grid_rows > self.rows:
            raise ValueError(
                f"grid_rows={self.grid_rows} exceeds matrix rows={self.rows}"
            )
        if self.grid_cols > self.cols:
            raise ValueError(
                f"grid_cols={self.grid_cols} exceeds matrix cols={self.cols}"
            )

    # -- geometry ---------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return self.grid_rows * self.grid_cols

    def row_ranges(self) -> list[tuple[int, int]]:
        """(start, stop) row range of every block row."""
        return split_offsets(self.rows, self.grid_rows)

    def col_ranges(self) -> list[tuple[int, int]]:
        """(start, stop) column range of every block column."""
        return split_offsets(self.cols, self.grid_cols)

    def block_shape(self, block_row: int, block_col: int) -> tuple[int, int]:
        r0, r1 = self.row_ranges()[block_row]
        c0, c1 = self.col_ranges()[block_col]
        return (r1 - r0, c1 - c0)

    def block_range(self, block_row: int, block_col: int) -> tuple[tuple[int, int], tuple[int, int]]:
        """((row_start, row_stop), (col_start, col_stop)) of a block."""
        return (self.row_ranges()[block_row], self.col_ranges()[block_col])

    def block_of_element(self, i: int, j: int) -> tuple[int, int]:
        """Return the (block_row, block_col) owning global element ``(i, j)``."""
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise IndexError(f"element ({i}, {j}) outside {self.rows}x{self.cols} matrix")
        for bi, (r0, r1) in enumerate(self.row_ranges()):
            if r0 <= i < r1:
                break
        else:  # pragma: no cover - unreachable
            raise AssertionError("row ranges do not cover the matrix")
        for bj, (c0, c1) in enumerate(self.col_ranges()):
            if c0 <= j < c1:
                break
        else:  # pragma: no cover - unreachable
            raise AssertionError("column ranges do not cover the matrix")
        return (bi, bj)

    def owner_index(self, i: int, j: int) -> int:
        """Linear index (into the owning rank list) of element ``(i, j)``."""
        bi, bj = self.block_of_element(i, j)
        return bi * self.grid_cols + bj

    # -- data movement helpers ---------------------------------------------
    def extract_block(self, matrix: np.ndarray, block_row: int, block_col: int) -> np.ndarray:
        """Slice the block ``(block_row, block_col)`` out of the global matrix."""
        self._check_matrix(matrix)
        (r0, r1), (c0, c1) = self.block_range(block_row, block_col)
        return np.ascontiguousarray(matrix[r0:r1, c0:c1])

    def split(self, matrix: np.ndarray) -> dict[tuple[int, int], np.ndarray]:
        """Split the global matrix into all of its blocks."""
        self._check_matrix(matrix)
        return {
            (bi, bj): self.extract_block(matrix, bi, bj)
            for bi in range(self.grid_rows)
            for bj in range(self.grid_cols)
        }

    def assemble(self, blocks: dict[tuple[int, int], np.ndarray]) -> np.ndarray:
        """Reassemble the global matrix from its blocks (inverse of :meth:`split`)."""
        out = np.zeros((self.rows, self.cols))
        for (bi, bj), block in blocks.items():
            (r0, r1), (c0, c1) = self.block_range(bi, bj)
            expected = (r1 - r0, c1 - c0)
            if block.shape != expected:
                raise ValueError(
                    f"block ({bi}, {bj}) has shape {block.shape}, expected {expected}"
                )
            out[r0:r1, c0:c1] = block
        return out

    def element_owners(self) -> np.ndarray:
        """Matrix of shape ``rows x cols`` giving the linear owner index of each element."""
        owners = np.empty((self.rows, self.cols), dtype=np.int64)
        for bi, (r0, r1) in enumerate(self.row_ranges()):
            for bj, (c0, c1) in enumerate(self.col_ranges()):
                owners[r0:r1, c0:c1] = bi * self.grid_cols + bj
        return owners

    def words_per_owner(self) -> list[int]:
        """Number of words each owner stores (in linear owner order)."""
        sizes = []
        for bi in range(self.grid_rows):
            for bj in range(self.grid_cols):
                h, w = self.block_shape(bi, bj)
                sizes.append(h * w)
        return sizes

    def _check_matrix(self, matrix: np.ndarray) -> None:
        if matrix.shape != (self.rows, self.cols):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match layout {self.rows}x{self.cols}"
            )
