"""Data layouts: blocked (COSMA) and block-cyclic (ScaLAPACK) distributions.

COSMA's schedule induces a *blocked* initial layout (section 7.6): each rank
owns a contiguous sub-block of every matrix it touches, and the blocks are
arranged so that ranks which communicate first own neighbouring blocks.  For
compatibility with the rest of the linear-algebra ecosystem the library also
implements the ScaLAPACK block-cyclic layout and counted redistribution
between any two layouts.
"""

from repro.layouts.blocked import BlockedLayout
from repro.layouts.block_cyclic import BlockCyclicLayout
from repro.layouts.conversion import redistribute, redistribution_volume

__all__ = [
    "BlockedLayout",
    "BlockCyclicLayout",
    "redistribute",
    "redistribution_volume",
]
