"""Matrix shapes used in the paper's evaluation (section 8).

Four shape families are benchmarked:

* **square** -- ``m = n = k``;
* **largeK** -- ``m = n << k`` ("tall-and-skinny" inputs, e.g. the RPA
  application);
* **largeM** -- ``m >> n = k`` (the symmetric case);
* **flat** -- ``m = n >> k`` (rank-k updates as they appear in factorizations).

The RPA (random-phase approximation) application sizes follow the paper:
for ``w`` water molecules ``m = n = 136 w`` and ``k = 228 w^2``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive_int

#: Total words the input-matrix cache may pin (~0.5 GB of float64); evicted
#: least-recently-used first so multi-shape campaigns stay bounded.
_MATRIX_CACHE_MAX_WORDS = 1 << 26
_MATRIX_CACHE: "OrderedDict[tuple, tuple[np.ndarray, np.ndarray]]" = OrderedDict()
_MATRIX_CACHE_WORDS = 0


def _cached_matrices(shape: "ProblemShape", seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic input matrices, cached (footprint-bounded) and read-only.

    Sweeps and benchmark harnesses run the same (shape, seed) point once per
    algorithm and once per transport mode; regenerating identical gigaword
    matrices dominates small runs.  The cache hands out the same arrays each
    time, marked read-only so one run cannot contaminate another -- callers
    that need a private writable copy must ``.copy()``.  Entries are evicted
    least-recently-used once the cached inputs exceed ~0.5 GB, so campaigns
    over many distinct large shapes do not pin dead arrays.
    """
    global _MATRIX_CACHE_WORDS
    key = (shape, int(seed))
    hit = _MATRIX_CACHE.get(key)
    if hit is not None:
        _MATRIX_CACHE.move_to_end(key)
        return hit
    rng = np.random.default_rng(seed)
    a_matrix = rng.standard_normal((shape.m, shape.k))
    b_matrix = rng.standard_normal((shape.k, shape.n))
    a_matrix.setflags(write=False)
    b_matrix.setflags(write=False)
    words = a_matrix.size + b_matrix.size
    if words <= _MATRIX_CACHE_MAX_WORDS:
        _MATRIX_CACHE[key] = (a_matrix, b_matrix)
        _MATRIX_CACHE_WORDS += words
        while _MATRIX_CACHE_WORDS > _MATRIX_CACHE_MAX_WORDS:
            _, (old_a, old_b) = _MATRIX_CACHE.popitem(last=False)
            _MATRIX_CACHE_WORDS -= old_a.size + old_b.size
    return a_matrix, b_matrix


@dataclass(frozen=True)
class ProblemShape:
    """A matrix-multiplication problem instance ``C(m x n) = A(m x k) B(k x n)``."""

    m: int
    n: int
    k: int
    family: str = "custom"

    def __post_init__(self) -> None:
        check_positive_int(self.m, "m")
        check_positive_int(self.n, "n")
        check_positive_int(self.k, "k")

    @property
    def flops(self) -> int:
        """Total floating-point operations ``2 m n k``."""
        return 2 * self.m * self.n * self.k

    @property
    def multiplications(self) -> int:
        return self.m * self.n * self.k

    @property
    def footprint_words(self) -> int:
        """Words needed to store A, B and C once: ``mn + mk + nk``."""
        return self.m * self.n + self.m * self.k + self.n * self.k

    def scaled(self, factor: float) -> "ProblemShape":
        """Return a shape with every dimension scaled by ``factor`` (min 1)."""
        return ProblemShape(
            m=max(1, int(round(self.m * factor))),
            n=max(1, int(round(self.n * factor))),
            k=max(1, int(round(self.k * factor))),
            family=self.family,
        )

    def random_matrices(self, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
        """Reproducible random input matrices for this shape.

        The arrays are cached per ``(shape, seed)`` and returned *read-only*
        (copy before mutating); algorithms only ever read their inputs.
        """
        return _cached_matrices(self, int(seed))


def square_shape(n: int) -> ProblemShape:
    """``m = n = k``."""
    n = check_positive_int(n, "n")
    return ProblemShape(m=n, n=n, k=n, family="square")


def large_k_shape(mn: int, k: int) -> ProblemShape:
    """``m = n = mn`` with a much larger ``k`` ("tall-and-skinny" inputs)."""
    mn = check_positive_int(mn, "mn")
    k = check_positive_int(k, "k")
    return ProblemShape(m=mn, n=mn, k=k, family="largeK")


def large_m_shape(m: int, nk: int) -> ProblemShape:
    """``n = k = nk`` with a much larger ``m``."""
    m = check_positive_int(m, "m")
    nk = check_positive_int(nk, "nk")
    return ProblemShape(m=m, n=nk, k=nk, family="largeM")


def flat_shape(mn: int, k: int) -> ProblemShape:
    """``m = n = mn`` with a much smaller ``k`` (rank-k update)."""
    mn = check_positive_int(mn, "mn")
    k = check_positive_int(k, "k")
    return ProblemShape(m=mn, n=mn, k=k, family="flat")


def rpa_water_shape(molecules: int, scale: float = 1.0) -> ProblemShape:
    """The RPA water-molecule benchmark shape: ``m = n = 136 w``, ``k = 228 w^2``.

    ``scale`` proportionally shrinks the dimensions so the shape can be run on
    the simulator (the paper uses ``w = 128``, i.e. ``k`` of 3.7 million).
    """
    molecules = check_positive_int(molecules, "molecules")
    m = max(1, int(round(136 * molecules * scale)))
    k = max(1, int(round(228 * molecules * molecules * scale)))
    return ProblemShape(m=m, n=m, k=k, family="largeK")
