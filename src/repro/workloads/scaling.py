"""Scaling scenarios: strong scaling, "limited memory" and "extra memory" (section 8).

The paper benchmarks every matrix shape in three regimes:

* **strong scaling** -- the problem size is fixed and the core count grows;
* **limited memory** -- the per-core input size is fixed at the memory size
  (``p S / I = const`` with ``I = mn + mk + nk``), so no redundant copies of
  the inputs fit anywhere;
* **extra memory** -- ``p^{2/3} S / I = const``, so roughly ``p^{1/3}`` extra
  copies of the inputs fit in aggregate memory and 3D-style replication pays
  off.

The simulator runs at laptop scale, so the sweeps keep the *regime
definitions* but scale the absolute sizes down: dimensions are derived from
the target footprint ``p S`` (or ``p^{2/3} S``) exactly as the paper derives
its dimensions from Piz Daint's per-core memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.utils.validation import check_positive_int
from repro.workloads.shapes import ProblemShape

#: Aspect ratio used for largeK / largeM / flat shapes at the baseline scale:
#: the long dimension is ``_ASPECT`` times the short one at p = 1.
_ASPECT = 16


@dataclass(frozen=True)
class Scenario:
    """One benchmark point: a shape, a processor count and a memory size."""

    name: str
    shape: ProblemShape
    p: int
    memory_words: int
    regime: str

    @property
    def aggregate_memory(self) -> int:
        return self.p * self.memory_words

    @property
    def memory_ratio(self) -> float:
        """Aggregate memory divided by the input footprint (>= 1 for feasible runs)."""
        return self.aggregate_memory / self.shape.footprint_words


def shape_for_footprint(family: str, footprint: float) -> ProblemShape:
    """Derive a shape of the given family whose footprint is ~``footprint`` words.

    This is the one place the footprint -> dimensions convention lives; the
    weak-scaling generators below and the sweep engine's strong-regime
    expansion (:mod:`repro.sweeps.spec`) all derive their shapes through it.
    """
    if footprint < 12:
        footprint = 12.0
    if family == "square":
        n = max(2, int(math.sqrt(footprint / 3.0)))
        return ProblemShape(m=n, n=n, k=n, family="square")
    if family == "largeK":
        # m = n, k = _ASPECT * m at this footprint: I = m^2 + 2 m k = (1 + 2A) m^2.
        m = max(2, int(math.sqrt(footprint / (1.0 + 2.0 * _ASPECT))))
        return ProblemShape(m=m, n=m, k=_ASPECT * m, family="largeK")
    if family == "largeM":
        n = max(2, int(math.sqrt(footprint / (1.0 + 2.0 * _ASPECT))))
        return ProblemShape(m=_ASPECT * n, n=n, k=n, family="largeM")
    if family == "flat":
        m = max(2, int(math.sqrt(footprint / (1.0 + 2.0 / _ASPECT))))
        k = max(2, m // _ASPECT)
        return ProblemShape(m=m, n=m, k=k, family="flat")
    raise ValueError(f"unknown shape family {family!r}")


def strong_scaling_sweep(
    shape: ProblemShape,
    p_values: Sequence[int],
    memory_words: int | None = None,
) -> list[Scenario]:
    """Fixed problem, growing core count.

    ``memory_words`` defaults to twice the per-core footprint at the smallest
    core count, so the smallest runs are memory-tight and the largest have
    plenty of spare memory -- the same situation as the paper's strong-scaling
    experiments.
    """
    if not p_values:
        raise ValueError("p_values must not be empty")
    p_values = [check_positive_int(p, "p") for p in p_values]
    if memory_words is None:
        memory_words = max(16, 2 * shape.footprint_words // min(p_values))
    return [
        Scenario(
            name=f"{shape.family}-strong-p{p}",
            shape=shape,
            p=p,
            memory_words=memory_words,
            regime="strong",
        )
        for p in p_values
    ]


def limited_memory_sweep(
    family: str,
    p_values: Sequence[int],
    memory_words: int,
) -> list[Scenario]:
    """Weak scaling at constant per-core input size ``p S / I = const ~ 1``.

    The footprint is kept at ``~ p S / 2`` so the inputs fill half the
    aggregate memory -- matrices barely fit and no input replication is
    possible, the "limited memory" regime.
    """
    memory_words = check_positive_int(memory_words, "memory_words")
    scenarios = []
    for p in p_values:
        p = check_positive_int(p, "p")
        shape = shape_for_footprint(family, p * memory_words / 2.0)
        scenarios.append(
            Scenario(
                name=f"{family}-limited-p{p}",
                shape=shape,
                p=p,
                memory_words=memory_words,
                regime="limited",
            )
        )
    return scenarios


def extra_memory_sweep(
    family: str,
    p_values: Sequence[int],
    memory_words: int,
) -> list[Scenario]:
    """Weak scaling at ``p^{2/3} S / I = const``: ~``p^{1/3}`` extra copies fit."""
    memory_words = check_positive_int(memory_words, "memory_words")
    scenarios = []
    for p in p_values:
        p = check_positive_int(p, "p")
        shape = shape_for_footprint(family, (p ** (2.0 / 3.0)) * memory_words / 2.0)
        scenarios.append(
            Scenario(
                name=f"{family}-extra-p{p}",
                shape=shape,
                p=p,
                memory_words=memory_words,
                regime="extra",
            )
        )
    return scenarios


def all_regime_sweeps(
    family: str,
    p_values: Sequence[int],
    memory_words: int,
    strong_shape: ProblemShape | None = None,
) -> dict[str, list[Scenario]]:
    """Convenience bundle of the three regimes for one shape family."""
    if strong_shape is None:
        strong_shape = shape_for_footprint(family, max(p_values) * memory_words / 2.0)
    return {
        "strong": strong_scaling_sweep(strong_shape, p_values, memory_words=memory_words),
        "limited": limited_memory_sweep(family, p_values, memory_words),
        "extra": extra_memory_sweep(family, p_values, memory_words),
    }
