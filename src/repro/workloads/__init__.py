"""Workload generators: matrix shapes and scaling scenarios of section 8."""

from repro.workloads.shapes import (
    ProblemShape,
    flat_shape,
    large_k_shape,
    large_m_shape,
    rpa_water_shape,
    square_shape,
)
from repro.workloads.scaling import (
    Scenario,
    extra_memory_sweep,
    limited_memory_sweep,
    strong_scaling_sweep,
)

__all__ = [
    "ProblemShape",
    "square_shape",
    "large_k_shape",
    "large_m_shape",
    "flat_shape",
    "rpa_water_shape",
    "Scenario",
    "strong_scaling_sweep",
    "limited_memory_sweep",
    "extra_memory_sweep",
]
