"""Aggregation: stored campaign records -> tidy rows joined with the models.

Each ``"ok"`` record becomes one tidy row carrying (a) the scenario identity,
(b) the simulator-measured counters, (c) the alpha-beta-gamma runtime and
%-of-peak from :mod:`repro.experiments.perf_model`, and (d) the analytic
Table 3 prediction from :func:`repro.baselines.costs.predict` plus the
measured/predicted I/O ratio.  Failed records become rows with a ``status``
of ``"failed"`` and the error attached, so campaign reports never silently
drop points.

Rows contain only values that are pure functions of the run parameters (no
timestamps, no durations), which is what makes serial and parallel campaigns
aggregate byte-identically -- asserted by ``tests/test_sweeps_runner.py``.
The successful rows are also convertible back into
:class:`~repro.experiments.harness.AlgorithmRun` lists for the existing
figure machinery (:mod:`repro.experiments.report`, ``plotting``).
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping, Sequence

from repro.baselines.costs import predict
from repro.experiments.harness import AlgorithmRun
from repro.experiments.perf_model import analytic_time, percent_of_peak, simulated_time
from repro.experiments.report import format_table
from repro.machine.topology import PIZ_DAINT_LIKE, MachineSpec
from repro.sweeps.store import record_to_run, scenario_from_dict

#: Column order of a tidy row (kept explicit so tables render stably).
TIDY_COLUMNS = (
    "scenario",
    "family",
    "regime",
    "p",
    "m",
    "n",
    "k",
    "memory_words",
    "algorithm",
    "mode",
    "status",
    "correct",
    "mean_words_per_rank",
    "mean_received_per_rank",
    "max_words_per_rank",
    "rounds",
    "max_messages_per_rank",
    "total_flops",
    "simulated_time_s",
    "percent_of_peak",
    "predicted_io_words_per_rank",
    "predicted_latency_rounds",
    "analytic_time_s",
    "io_vs_predicted",
    "error_type",
    "error_message",
)


def tidy_rows(
    records: Iterable[Mapping],
    spec: MachineSpec = PIZ_DAINT_LIKE,
    overlap: bool = True,
) -> list[dict]:
    """Join campaign records with both models into tidy, sortable rows."""
    rows: list[dict] = []
    for record in records:
        scenario = scenario_from_dict(record["scenario"])
        shape = scenario.shape
        row: dict = {
            "scenario": scenario.name,
            "family": shape.family,
            "regime": scenario.regime,
            "p": scenario.p,
            "m": shape.m,
            "n": shape.n,
            "k": shape.k,
            "memory_words": scenario.memory_words,
            "algorithm": record["algorithm"],
            "mode": record["mode"],
            "status": record.get("status", "ok"),
        }
        try:
            prediction = predict(record["algorithm"], scenario)
        except KeyError:
            # Algorithms outside the Table 3 registry still aggregate; they
            # just carry no analytic columns.
            prediction = None
        if prediction is not None:
            row["predicted_io_words_per_rank"] = prediction.io_words_per_rank
            row["predicted_latency_rounds"] = prediction.latency_rounds
            row["analytic_time_s"] = analytic_time(prediction, spec=spec)
        if row["status"] == "ok":
            run = record_to_run(record)
            row["correct"] = run.correct
            row["mean_words_per_rank"] = run.mean_words_per_rank
            row["mean_received_per_rank"] = run.mean_received_per_rank
            row["max_words_per_rank"] = run.max_words_per_rank
            row["rounds"] = run.rounds
            row["max_messages_per_rank"] = run.max_messages_per_rank
            row["total_flops"] = run.total_flops
            row["simulated_time_s"] = simulated_time(run, spec, overlap=overlap)
            row["percent_of_peak"] = percent_of_peak(run, spec, overlap=overlap)
            if prediction is not None and prediction.io_words_per_rank > 0:
                row["io_vs_predicted"] = run.mean_received_per_rank / prediction.io_words_per_rank
        else:
            error = record.get("error", {})
            row["error_type"] = error.get("type")
            row["error_message"] = error.get("message")
        rows.append(row)
    rows.sort(key=_row_sort_key)
    return rows


def _row_sort_key(row: Mapping) -> tuple:
    return (row["family"], row["regime"], row["p"], row["m"], row["n"], row["k"],
            row["scenario"], row["algorithm"], row["mode"])


def rows_to_json(rows: Sequence[Mapping]) -> str:
    """Canonical JSON of tidy rows (the byte-identity contract of the tests)."""
    return json.dumps(list(rows), sort_keys=True, separators=(",", ":"))


def runs_from_records(records: Iterable[Mapping]) -> list[AlgorithmRun]:
    """The successful records as :class:`AlgorithmRun` objects, record order."""
    return [record_to_run(r) for r in records if r.get("status") == "ok"]


def campaign_table(
    rows: Sequence[Mapping],
    columns: Sequence[str] = (
        "scenario", "p", "algorithm", "mean_received_per_rank",
        "predicted_io_words_per_rank", "io_vs_predicted", "simulated_time_s", "status",
    ),
) -> str:
    """Render tidy rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    body = [[row.get(column, "") for column in columns] for row in rows]
    return format_table(list(columns), body)


def scenario_summary_table(rows: Sequence[Mapping]) -> str:
    """One line per scenario: words/rank per algorithm plus the fastest pick
    (by the ``simulated_time_s`` the rows were aggregated with)."""
    by_scenario: dict[str, list[Mapping]] = {}
    for row in rows:
        by_scenario.setdefault(row["scenario"], []).append(row)
    algorithms = sorted({row["algorithm"] for row in rows})
    headers = ["scenario", "p"] + [f"{a} words/rank" for a in algorithms] + ["fastest (simulated)"]
    body = []
    for name in sorted(by_scenario, key=lambda s: (by_scenario[s][0]["family"],
                                                   by_scenario[s][0]["regime"],
                                                   by_scenario[s][0]["p"])):
        group = by_scenario[name]
        line: list[object] = [name, group[0]["p"]]
        ok_rows = {row["algorithm"]: row for row in group if row["status"] == "ok"}
        for algorithm in algorithms:
            row = ok_rows.get(algorithm)
            line.append(round(row["mean_received_per_rank"]) if row else "failed")
        if ok_rows:
            fastest = min(ok_rows.values(), key=lambda row: row["simulated_time_s"])
            line.append(fastest["algorithm"])
        else:
            line.append("-")
        body.append(line)
    return format_table(headers, body)
