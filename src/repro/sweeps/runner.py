"""Campaign runner: fault-tolerant fan-out over supervised worker processes.

The runner is the layer between "one harness run" and "a paper figure": it
expands a :class:`~repro.sweeps.spec.SweepSpec` (or takes explicit
:class:`~repro.sweeps.spec.RunRequest` lists), skips every run whose key the
:class:`~repro.sweeps.store.ResultStore` already holds (``resume``), executes
the rest, and appends each record to the store as soon as it lands.  Workers
execute via :func:`repro.experiments.harness.run_algorithm_safe`, so an
infeasible point becomes a ``"failed"`` record instead of aborting the
campaign.

Fault tolerance: instead of a bare ``multiprocessing.Pool.imap`` (where one
OOM-killed or hung worker wedges the whole campaign), parallel execution
runs under a **supervisor** that owns one duplex pipe per worker process.
The supervisor enforces a per-run wall-clock deadline (``timeout_s``),
detects hard worker deaths (SIGKILL / OOM / segfault) without hanging,
re-executes failed attempts under a :class:`RetryPolicy` (bounded attempts,
exponential backoff with deterministic jitter, retryable-error
classification), and -- once a run's budget is exhausted -- quarantines it
as a structured ``"failed"`` record carrying the failure taxonomy
(``attempts`` / ``duration_s`` / ``exit_signal`` / ``traceback_tail`` /
``retryable``) instead of killing the campaign.  Successful records stay
pure functions of the run parameters: attempt counts and injected faults
never leak into ok-records or run keys, which is the chaos-harness
invariant (``tests/test_sweeps_chaos.py``).

Graceful degradation: with ``memory_budget_words`` set, each pending run's
predicted working set (:func:`predicted_working_set_words`, derived from
the memoized analytic plans and the scenario footprint) gates admission --
runs that cannot fit the budget at all are *refused* as structured
``MemoryBudgetExceeded`` records without executing, and runs too large to
run concurrently are *serialized* through a single worker after the
parallel wave.  ``KeyboardInterrupt`` / ``SIGTERM`` cancel cooperatively:
finished results still sitting in worker pipes are drained to the store
before the interrupt re-raises.

Concurrent campaigns sharing one store coordinate through leases
(:meth:`~repro.sweeps.store.ResultStore.acquire_leases`): keys leased by a
live campaign are *deferred* -- this campaign waits for their records to
appear instead of executing them twice -- and leases lapse after their TTL
so a crashed campaign cannot wedge the keys it held.

Determinism: records are reported in expansion order regardless of worker
completion order, and every stored ok-value is a pure function of the run's
parameters -- a 2-job campaign aggregates byte-identically to a serial one,
faulted or not.
"""

from __future__ import annotations

import heapq
import json
import multiprocessing
import os
import signal
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing.connection import wait as _connection_wait
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.algorithms import get_algorithm
from repro.experiments.harness import AlgorithmRun, RunFailure, run_algorithm_safe
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import active_tracer
from repro.sweeps.faults import FaultPlan, _uniform
from repro.sweeps.spec import RunRequest, SweepSpec, request_from_dict
from repro.sweeps.store import (
    ResultStore,
    failure_to_record,
    record_to_run,
    run_to_record,
)

_LOG = get_logger("sweeps")

#: Filename of the campaign-metrics sidecar written beside the result store.
#: Metrics live here -- never inside ok-records, which stay pure functions of
#: the run parameters (the chaos-harness invariant).
METRICS_SIDECAR = "campaign_metrics.json"

#: Default store directory, relative to the current working directory.
DEFAULT_STORE_PATH = ".sweep-cache"

#: Error classes worth re-executing: injected transients, hard worker
#: deaths, deadline trips and environment-induced failures.  Deterministic
#: simulation errors (infeasible schedules, conservation violations, value
#: errors) are *not* here -- the simulator is deterministic, so they would
#: fail identically on every attempt.
RETRYABLE_ERRORS = (
    "TransientFault",
    "WorkerCrash",
    "RunTimeout",
    "MemoryError",
    "OSError",
    "BrokenPipeError",
    "ConnectionResetError",
    "EOFError",
)


@dataclass(frozen=True)
class RetryPolicy:
    """How failed attempts are re-executed before a run is quarantined.

    Backoff is exponential with a *deterministic* jitter derived from the
    run key and attempt number (SHA-256, never ``random``), so two campaigns
    replaying the same fault schedule retry on the same cadence.
    """

    #: Total attempts per run (1 = never retry).
    max_attempts: int = 3
    #: Backoff before attempt 2; grows by ``backoff_factor`` per attempt.
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    #: Deterministic jitter amplitude added on top of the base backoff.
    jitter_s: float = 0.02
    #: Error type names eligible for retry (see :data:`RETRYABLE_ERRORS`).
    retryable_errors: tuple[str, ...] = RETRYABLE_ERRORS
    #: Retry every error class (chaos/debug knob; deterministic failures
    #: will burn the whole budget and quarantine anyway).
    retry_all: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def is_retryable(self, error_type: str) -> bool:
        return self.retry_all or error_type in self.retryable_errors

    def backoff(self, key: str, attempt: int) -> float:
        """Seconds to wait before re-dispatching ``key`` after ``attempt``."""
        base = min(self.backoff_s * self.backoff_factor ** (attempt - 1), self.max_backoff_s)
        return base + _uniform("backoff", key, attempt) * self.jitter_s


#: A policy that never retries (the pre-supervisor behaviour).
NO_RETRY = RetryPolicy(max_attempts=1)


@dataclass
class CampaignResult:
    """Outcome of one :func:`run_campaign` invocation."""

    #: Records in expansion order (cached and fresh alike).
    records: list[dict]
    #: Number of runs actually executed by this invocation (ok or
    #: quarantined; refused / deferred / pruned runs never executed).
    executed: int
    #: Number of runs answered from the store without executing.
    cached: int
    #: Number of records (cached or fresh) whose status is ``"failed"``.
    failed: int
    elapsed_s: float
    #: Number of runs the planner rejected as infeasible without executing
    #: (their ``"failed"`` records carry error type ``InfeasiblePlan``).
    pruned: int = 0
    store_path: str = ""
    #: Retry attempts performed beyond each run's first attempt.
    retried: int = 0
    #: Runs stored as ``"failed"`` by this invocation's execution phase
    #: (retry budget exhausted or non-retryable error).
    quarantined: int = 0
    #: Runs refused at admission (predicted working set over the budget).
    refused: int = 0
    #: Runs resolved by waiting on a concurrent campaign's lease.
    deferred: int = 0
    #: Store lines a compaction would drop, as of campaign end (see
    #: :attr:`~repro.sweeps.store.ResultStore.stale_lines`).
    stale_lines: int = 0
    #: Snapshot of the supervisor's :class:`~repro.obs.metrics.MetricsRegistry`
    #: at campaign end (worker spawns/deaths, retries, queue depth, per-run
    #: latency histogram).  Also persisted as ``campaign_metrics.json`` beside
    #: the store; never part of any run record.
    metrics: dict | None = None
    _runs: list[AlgorithmRun] | None = field(default=None, repr=False)

    @property
    def ok_records(self) -> list[dict]:
        return [r for r in self.records if r.get("status") == "ok"]

    @property
    def failed_records(self) -> list[dict]:
        return [r for r in self.records if r.get("status") == "failed"]

    def runs(self) -> list[AlgorithmRun]:
        """The successful runs as :class:`AlgorithmRun` objects (cached)."""
        if self._runs is None:
            self._runs = [record_to_run(r) for r in self.ok_records]
        return self._runs

    def summary_line(self) -> str:
        """One human-readable line summarizing the campaign outcome."""
        parts = [
            f"campaign: {len(self.records)} records",
            f"ok={len(self.records) - self.failed}",
            f"failed={self.failed}",
            f"executed={self.executed}",
            f"cached={self.cached}",
        ]
        for label, value in (
            ("pruned", self.pruned), ("refused", self.refused),
            ("deferred", self.deferred), ("retried", self.retried),
            ("quarantined", self.quarantined),
        ):
            if value:
                parts.append(f"{label}={value}")
        parts.append(f"elapsed={self.elapsed_s:.2f}s")
        if self.store_path:
            parts.append(f"store={self.store_path}")
        return " ".join(parts)

    def to_dict(self, include_records: bool = True) -> dict:
        """JSON-serializable view of the campaign (``repro sweep --json``)."""
        doc = {
            "total": len(self.records),
            "ok": len(self.records) - self.failed,
            "failed": self.failed,
            "executed": self.executed,
            "cached": self.cached,
            "pruned": self.pruned,
            "refused": self.refused,
            "deferred": self.deferred,
            "retried": self.retried,
            "quarantined": self.quarantined,
            "elapsed_s": round(self.elapsed_s, 6),
            "stale_lines": self.stale_lines,
            "store_path": self.store_path,
            "metrics": self.metrics,
        }
        if include_records:
            doc["records"] = self.records
        return doc


def execute_request(request: RunRequest) -> dict:
    """Execute one request and return its store record (never raises)."""
    outcome = run_algorithm_safe(
        request.algorithm,
        request.scenario,
        seed=request.seed,
        verify=request.verify,
        mode=request.mode,
        compress_rounds=request.compress_rounds,
        shards=request.shards,
        plane_dtype=request.plane_dtype,
    )
    if isinstance(outcome, AlgorithmRun):
        return run_to_record(outcome, request.key, seed=request.seed)
    return failure_to_record(outcome, request.key, seed=request.seed)


def plan_request(request: RunRequest):
    """Plan one request through the registry (never raises; see run_campaign)."""
    try:
        return get_algorithm(request.algorithm).plan(request.scenario)
    except Exception:  # noqa: BLE001 - a broken planner must not kill a campaign
        # A planner bug must not prune real work; treat the point as feasible
        # and let execution (which captures failures) decide.
        return None


def predicted_working_set_words(request: RunRequest) -> int:
    """Predicted peak memory (words) one run pins in its worker process.

    Volume mode never materializes matrices -- the footprint is the counter
    matrix and schedule bookkeeping, O(p).  Numeric modes hold the dense
    inputs, the product, the verification reference (when verifying) and
    the per-rank resident copies bounded by ``p * S``.  This is an admission
    heuristic riding the same analytic quantities the memoized plans use,
    not a hard guarantee.
    """
    scenario = request.scenario
    shape = scenario.shape
    if request.mode == "volume":
        return 64 * scenario.p
    matrix_words = shape.m * shape.k + shape.k * shape.n + shape.m * shape.n
    copies = 3 if request.verify else 2
    return copies * matrix_words + scenario.p * scenario.memory_words


def _traceback_tail(limit: int = 6) -> str:
    """The last ``limit`` lines of the current exception's traceback."""
    lines = traceback.format_exc().strip().splitlines()
    return "\n".join(lines[-limit:])


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------
def _worker_loop(conn, faults_payload: dict | None) -> None:
    """One supervised worker: recv (payload, attempt), send the outcome.

    Messages back to the supervisor are either ``("done", record,
    duration_s)`` -- where ``record`` may itself be a captured ``"failed"``
    record -- or ``("raised", error_type, message, traceback_tail,
    duration_s)`` for exceptions outside the harness's capture (injected
    transients, interpreter-level failures).  A ``None`` message shuts the
    worker down.  SIGINT is ignored so a Ctrl-C interrupts the supervisor
    (which drains and shuts workers down cooperatively), not the workers.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread start methods
        pass
    faults = FaultPlan.from_dict(faults_payload) if faults_payload else None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if message is None:
            return
        payload, attempt = message
        start = time.perf_counter()
        try:
            request = request_from_dict(payload)
            if faults is not None:
                faults.inject(request.key, attempt)  # may crash/hang/raise
            record = execute_request(request)
            conn.send(("done", record, time.perf_counter() - start))
        except Exception as exc:  # noqa: BLE001 - shipped to the supervisor
            tail = _traceback_tail()
            try:
                conn.send((
                    "raised", type(exc).__name__, str(exc), tail,
                    time.perf_counter() - start,
                ))
            except (OSError, BrokenPipeError):
                return


class _WorkerSlot:
    """One worker process plus the supervisor's end of its pipe."""

    __slots__ = ("_ctx", "_faults_payload", "conn", "process", "task", "started")

    def __init__(self, ctx, faults_payload: dict | None):
        self._ctx = ctx
        self._faults_payload = faults_payload
        self.task = None
        self.started = 0.0
        self._spawn()

    def _spawn(self) -> None:
        self.conn, child_conn = self._ctx.Pipe()
        self.process = self._ctx.Process(
            target=_worker_loop, args=(child_conn, self._faults_payload), daemon=True,
        )
        self.process.start()
        child_conn.close()

    def respawn(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._spawn()

    def kill(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self.process.join()

    def shutdown(self) -> None:
        try:
            self.conn.send(None)
        except (OSError, BrokenPipeError):
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.kill()
            self.process.join()
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


# ---------------------------------------------------------------------------
# Supervisor side
# ---------------------------------------------------------------------------
class _Task:
    __slots__ = ("request", "key", "attempts", "duration_s", "seq", "t0_ns")

    def __init__(self, request: RunRequest, seq: int):
        self.request = request
        self.key = request.key
        self.attempts = 0
        self.duration_s = 0.0
        self.seq = seq
        #: Tracer timestamp of the first dispatch (``None`` when untraced).
        self.t0_ns: int | None = None


@dataclass
class _ExecStats:
    ok: int = 0
    quarantined: int = 0
    retried: int = 0

    @property
    def executed(self) -> int:
        return self.ok + self.quarantined

    def merge(self, other: "_ExecStats") -> None:
        self.ok += other.ok
        self.quarantined += other.quarantined
        self.retried += other.retried


class _Supervisor:
    """Crash-isolated dispatch of a request batch over worker processes.

    Each worker holds at most one in-flight run; the supervisor multiplexes
    over the pipes with :func:`multiprocessing.connection.wait`, so a dead
    or hung worker never blocks results from the others.  Worker deaths and
    deadline trips are converted into retryable attempt failures
    (``WorkerCrash`` / ``RunTimeout``) and the slot is respawned.
    """

    #: Pipe-poll tick: an upper bound on deadline-detection latency.
    POLL_S = 0.05

    def __init__(
        self,
        requests: Iterable[RunRequest],
        jobs: int,
        store: ResultStore,
        policy: RetryPolicy,
        timeout_s: float | None,
        faults: FaultPlan | None,
        progress: Callable[[dict, bool], None] | None,
        renew: Callable[[list[str]], None] | None = None,
        renew_interval_s: float = 5.0,
        metrics: MetricsRegistry | None = None,
    ):
        self.tasks = [_Task(request, seq) for seq, request in enumerate(requests)]
        self.jobs = max(1, min(jobs, len(self.tasks)))
        self.store = store
        self.policy = policy
        self.timeout_s = timeout_s
        self.faults = faults
        self.progress = progress
        self.renew = renew
        self.renew_interval_s = renew_interval_s
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = active_tracer()
        self.stats = _ExecStats()
        self.queue: deque[_Task] = deque(self.tasks)
        self.retry_heap: list[tuple[float, int, _Task]] = []
        self.unfinished: set[str] = {task.key for task in self.tasks}

    def _run_span(self, task: _Task, status: str) -> None:
        """Emit one campaign-track span covering the run's supervised lifetime."""
        if self.tracer is None or task.t0_ns is None:
            return
        self.tracer.complete(
            f"run:{task.key}", "campaign", task.t0_ns,
            self.tracer.now_ns() - task.t0_ns,
            args={"status": status, "attempts": task.attempts},
            track="campaign",
        )

    # -- outcome handling ---------------------------------------------------
    def _store(self, record: dict) -> None:
        self.store.put(record)
        if self.progress is not None:
            self.progress(record, False)

    def _finish_ok(self, task: _Task, record: dict) -> None:
        self._store(record)
        self.stats.ok += 1
        self.unfinished.discard(task.key)
        self.metrics.counter("sweeps.runs.ok").inc()
        self.metrics.histogram("sweeps.run.latency_s").observe(task.duration_s)
        self._run_span(task, "ok")

    def _quarantine(self, task: _Task, error_type: str, message: str,
                    tb_tail: str, exit_signal: int | None, retryable: bool) -> None:
        failure = RunFailure(
            algorithm=task.request.algorithm,
            scenario=task.request.scenario,
            mode=task.request.mode,
            error_type=error_type,
            error_message=message,
            attempts=task.attempts,
            duration_s=round(task.duration_s, 3),
            exit_signal=exit_signal,
            traceback_tail=tb_tail,
            retryable=retryable,
        )
        self._store(failure_to_record(failure, task.key, seed=task.request.seed))
        self.stats.quarantined += 1
        self.unfinished.discard(task.key)
        self.metrics.counter("sweeps.runs.quarantined").inc()
        self.metrics.histogram("sweeps.run.latency_s").observe(task.duration_s)
        self._run_span(task, "quarantined")
        _LOG.warning(
            "quarantined %s after %d attempt(s): %s: %s",
            task.key, task.attempts, error_type, message,
        )

    def _resolve_failure(self, task: _Task, error_type: str, message: str,
                         tb_tail: str = "", exit_signal: int | None = None,
                         allow_retry: bool = True) -> None:
        retryable = self.policy.is_retryable(error_type)
        if allow_retry and retryable and task.attempts < self.policy.max_attempts:
            self.stats.retried += 1
            self.metrics.counter("sweeps.runs.retried").inc()
            backoff = self.policy.backoff(task.key, task.attempts)
            _LOG.info(
                "retrying %s after %s (attempt %d/%d, backoff %.3fs)",
                task.key, error_type, task.attempts, self.policy.max_attempts, backoff,
            )
            eligible_at = time.monotonic() + backoff
            heapq.heappush(self.retry_heap, (eligible_at, task.seq, task))
            return
        self._quarantine(task, error_type, message, tb_tail, exit_signal, retryable)

    def _handle_message(self, slot: _WorkerSlot, message, allow_retry: bool = True) -> None:
        task = slot.task
        slot.task = None
        if message[0] == "done":
            _, record, duration = message
            task.duration_s += duration
            if record.get("status") == "ok":
                self._finish_ok(task, record)
            else:
                error = record.get("error", {})
                self._resolve_failure(
                    task, error.get("type", "UnknownError"), error.get("message", ""),
                    allow_retry=allow_retry,
                )
        else:  # "raised"
            _, error_type, message_text, tb_tail, duration = message
            task.duration_s += duration
            self._resolve_failure(
                task, error_type, message_text, tb_tail, allow_retry=allow_retry,
            )

    def _handle_death(self, slot: _WorkerSlot) -> None:
        task = slot.task
        slot.task = None
        slot.kill()  # reap (already dead, but join collects the exit code)
        exitcode = slot.process.exitcode
        exit_signal = -exitcode if exitcode is not None and exitcode < 0 else None
        task.duration_s += time.monotonic() - slot.started
        slot.respawn()
        self.metrics.counter("sweeps.workers.deaths").inc()
        self.metrics.counter("sweeps.workers.spawns").inc()
        _LOG.warning(
            "worker died mid-run on %s (exit code %s); respawned",
            task.key, exitcode,
        )
        self._resolve_failure(
            task, "WorkerCrash",
            f"worker process died mid-run (exit code {exitcode})",
            exit_signal=exit_signal,
        )

    def _handle_timeout(self, slot: _WorkerSlot) -> None:
        task = slot.task
        slot.task = None
        slot.kill()
        task.duration_s += time.monotonic() - slot.started
        slot.respawn()
        self.metrics.counter("sweeps.workers.timeouts").inc()
        self.metrics.counter("sweeps.workers.spawns").inc()
        _LOG.warning(
            "run %s exceeded the %ss deadline; worker killed and respawned",
            task.key, self.timeout_s,
        )
        self._resolve_failure(
            task, "RunTimeout",
            f"run exceeded the {self.timeout_s}s wall-clock deadline",
            exit_signal=int(signal.SIGKILL),
        )

    # -- main loop ----------------------------------------------------------
    def run(self) -> _ExecStats:
        if not self.tasks:
            return self.stats
        ctx = multiprocessing.get_context()
        faults_payload = self.faults.to_dict() if self.faults is not None else None
        workers = [_WorkerSlot(ctx, faults_payload) for _ in range(self.jobs)]
        self.metrics.counter("sweeps.workers.spawns").inc(len(workers))
        queue_depth = self.metrics.gauge("sweeps.queue.depth")
        last_renew = time.monotonic()
        try:
            while self.unfinished:
                now = time.monotonic()
                while self.retry_heap and self.retry_heap[0][0] <= now:
                    self.queue.append(heapq.heappop(self.retry_heap)[2])
                queue_depth.set(len(self.queue) + len(self.retry_heap))
                for slot in workers:
                    if slot.task is None and self.queue:
                        task = self.queue.popleft()
                        task.attempts += 1
                        try:
                            slot.conn.send((task.request.to_dict(), task.attempts))
                        except (OSError, BrokenPipeError):
                            task.attempts -= 1
                            self.queue.appendleft(task)
                            slot.respawn()
                            self.metrics.counter("sweeps.workers.spawns").inc()
                            continue
                        slot.task = task
                        slot.started = time.monotonic()
                        if self.tracer is not None and task.t0_ns is None:
                            task.t0_ns = self.tracer.now_ns()
                if self.renew is not None and time.monotonic() - last_renew >= self.renew_interval_s:
                    self.renew(sorted(self.unfinished))
                    last_renew = time.monotonic()
                busy = {slot.conn: slot for slot in workers if slot.task is not None}
                if not busy:
                    if self.retry_heap:
                        time.sleep(
                            min(max(self.retry_heap[0][0] - time.monotonic(), 0.001), self.POLL_S)
                        )
                        continue
                    raise RuntimeError(  # pragma: no cover - supervisor invariant
                        "supervisor has unfinished runs but nothing queued or in flight"
                    )
                for conn in _connection_wait(list(busy), timeout=self.POLL_S):
                    slot = busy[conn]
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        self._handle_death(slot)
                        continue
                    self._handle_message(slot, message)
                now = time.monotonic()
                for slot in workers:
                    if slot.task is None:
                        continue
                    if self.timeout_s is not None and now - slot.started > self.timeout_s:
                        self._handle_timeout(slot)
                    elif not slot.process.is_alive() and not slot.conn.poll():
                        self._handle_death(slot)
        except KeyboardInterrupt:
            # Cooperative cancellation: results already sitting in worker
            # pipes are persisted before the interrupt propagates, so a
            # Ctrl-C / SIGTERM never discards completed work.
            self._drain(workers)
            raise
        finally:
            for slot in workers:
                slot.shutdown()
        return self.stats

    def _drain(self, workers: list[_WorkerSlot]) -> None:
        for slot in workers:
            if slot.task is None:
                continue
            try:
                if not slot.conn.poll(0):
                    continue
                message = slot.conn.recv()
            except (EOFError, OSError):  # pragma: no cover - died while draining
                continue
            # Persist completed results only; a failed attempt mid-retry must
            # not be quarantined by the interrupt (a resumed campaign would
            # mistake it for a final record) -- it simply re-executes later.
            if message[0] == "done" and message[1].get("status") == "ok":
                task = slot.task
                slot.task = None
                task.duration_s += message[2]
                self._finish_ok(task, message[1])


def _execute_serially(
    requests: Iterable[RunRequest],
    store: ResultStore,
    policy: RetryPolicy,
    progress: Callable[[dict, bool], None] | None,
    renew: Callable[[list[str]], None] | None = None,
    renew_interval_s: float = 5.0,
    metrics: MetricsRegistry | None = None,
) -> _ExecStats:
    """In-process execution with the same retry/quarantine semantics.

    Used when no crash isolation is required (``jobs=1``, no deadline, no
    fault plan): transient errors still retry with backoff, and exhausted
    runs still quarantine with the full taxonomy (``exit_signal`` is always
    ``None`` in-process).
    """
    stats = _ExecStats()
    metrics = metrics if metrics is not None else MetricsRegistry()
    tracer = active_tracer()
    requests = list(requests)
    remaining = [request.key for request in requests]
    last_renew = time.monotonic()
    for request in requests:
        attempts = 0
        total_duration = 0.0
        t0_ns = tracer.now_ns() if tracer is not None else None
        while True:
            attempts += 1
            start = time.perf_counter()
            record = execute_request(request)
            total_duration += time.perf_counter() - start
            if record.get("status") == "failed":
                error_type = record["error"]["type"]
                retryable = policy.is_retryable(error_type)
                if retryable and attempts < policy.max_attempts:
                    stats.retried += 1
                    metrics.counter("sweeps.runs.retried").inc()
                    backoff = policy.backoff(request.key, attempts)
                    _LOG.info(
                        "retrying %s after %s (attempt %d/%d, backoff %.3fs)",
                        request.key, error_type, attempts, policy.max_attempts, backoff,
                    )
                    time.sleep(backoff)
                    continue
                record["error"].update(
                    attempts=attempts,
                    duration_s=round(total_duration, 3),
                    retryable=retryable,
                )
                stats.quarantined += 1
                metrics.counter("sweeps.runs.quarantined").inc()
                _LOG.warning(
                    "quarantined %s after %d attempt(s): %s: %s",
                    request.key, attempts, error_type,
                    record["error"].get("message", ""),
                )
            else:
                stats.ok += 1
                metrics.counter("sweeps.runs.ok").inc()
            metrics.histogram("sweeps.run.latency_s").observe(total_duration)
            if tracer is not None and t0_ns is not None:
                tracer.complete(
                    f"run:{request.key}", "campaign", t0_ns,
                    tracer.now_ns() - t0_ns,
                    args={
                        "status": record.get("status", "ok"),
                        "attempts": attempts,
                    },
                    track="campaign",
                )
            store.put(record)
            if progress is not None:
                progress(record, False)
            break
        remaining.pop(0)
        if renew is not None and remaining and time.monotonic() - last_renew >= renew_interval_s:
            renew(remaining)
            last_renew = time.monotonic()
    return stats


def _install_sigterm_as_interrupt():
    """Route SIGTERM through KeyboardInterrupt while a campaign executes.

    Returns an undo callable.  Outside the main thread (or where signals are
    unavailable) this is a no-op -- the interrupt drain then only covers
    KeyboardInterrupt.
    """
    if threading.current_thread() is not threading.main_thread():
        return lambda: None

    def _raise_interrupt(signum, frame):  # pragma: no cover - exercised via tests' SIGTERM
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _raise_interrupt)
    except ValueError:  # pragma: no cover - exotic embedding
        return lambda: None
    return lambda: signal.signal(signal.SIGTERM, previous)


def run_campaign(
    spec: SweepSpec | Sequence[RunRequest],
    store: ResultStore | str | None = None,
    jobs: int = 1,
    resume: bool = True,
    retry_failures: bool = False,
    prune: bool = True,
    compress_rounds: bool = False,
    progress: Callable[[dict, bool], None] | None = None,
    timeout_s: float | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    memory_budget_words: int | None = None,
    lease: bool = True,
    lease_ttl_s: float = 15.0,
    auto_compact: bool = True,
) -> CampaignResult:
    """Run every request of ``spec`` that the store cannot already answer.

    Parameters
    ----------
    spec:
        A :class:`SweepSpec` (expanded here) or an explicit request list.
    store:
        A :class:`ResultStore`, a directory path for one, or ``None`` for the
        persistent default store at :data:`DEFAULT_STORE_PATH` under the
        current working directory (shared -- and resumed -- across
        invocations run from the same directory).
    jobs:
        Worker-process count; ``1`` runs in-process (no pool) unless a
        deadline or fault plan forces supervised isolation.
    resume:
        When true (default), requests whose key is already stored are served
        from the store.  When false, every request re-executes and
        overwrites its record (appending a superseding line; see
        ``auto_compact``).
    retry_failures:
        The simulator is deterministic, so ``"failed"`` records are cached
        like successes by default.  Set true to re-execute stored failures
        (e.g. after an environment-induced crash such as ``MemoryError``)
        while still serving successful records from cache.
    prune:
        When true (default), requests whose registry plan is infeasible are
        stored as ``"failed"`` records (error type ``InfeasiblePlan``)
        without ever reaching a worker.  "Infeasible" is analytic -- the
        point violates the parallel schedule's ``p*S >= mn + mk + nk``
        precondition, not a crash prediction (the lenient simulator would
        execute it); pass ``prune=False`` to execute such points anyway.
    compress_rounds:
        Execute every run with steady-state round compression (volume mode
        only; a pure speed knob).  Counters -- and therefore records, keys
        and tidy rows -- are byte-identical with or without it, so cached
        results remain valid across the flag.
    progress:
        Optional callback invoked as ``progress(record, from_cache)`` after
        every request resolves, in expansion order for cached entries and in
        completion order for executed ones.
    timeout_s:
        Per-run wall-clock deadline.  A run past its deadline is SIGKILLed
        and treated as a retryable ``RunTimeout`` attempt failure.  Setting
        a deadline forces supervised worker processes even at ``jobs=1``.
    retry:
        The :class:`RetryPolicy` for failed attempts (default:
        ``RetryPolicy()``, 3 attempts over retryable errors only; pass
        :data:`NO_RETRY` for the historic single-attempt behaviour).
    faults:
        A deterministic :class:`~repro.sweeps.faults.FaultPlan` injected
        into workers and the store (chaos testing only).  Forces supervised
        isolation; never alters run keys or ok-record contents.
    memory_budget_words:
        Host-memory admission budget.  Runs whose
        :func:`predicted_working_set_words` exceeds the budget are refused
        as ``MemoryBudgetExceeded`` records without executing; runs over
        ``budget / jobs`` are serialized through a single worker after the
        parallel wave instead of OOMing the pool.
    lease:
        Coordinate with concurrent campaigns sharing this store via
        in-progress leases (default on).  Keys leased by a live campaign
        are deferred -- their records are awaited, not re-executed.
    lease_ttl_s:
        Lease lifetime; a campaign heartbeats its leases at a third of this
        and a crashed campaign's keys become reclaimable after it lapses.
    auto_compact:
        Compact the store at campaign end when stale (superseded or torn)
        lines outnumber live records, bounding file growth under
        ``resume=False`` / ``retry_failures=True`` rerun loops.
    """
    if isinstance(spec, SweepSpec):
        requests = spec.expand()
    else:
        requests = list(spec)
    if compress_rounds:
        requests = [
            request if request.compress_rounds else replace(request, compress_rounds=True)
            for request in requests
        ]
    if store is None or isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
        store = ResultStore(store if store is not None else DEFAULT_STORE_PATH, faults=faults)
    elif faults is not None and store.faults is None:
        store.faults = faults
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    policy = retry if retry is not None else RetryPolicy()

    start = time.perf_counter()
    # Deduplicate by key (identical requests collapse onto one execution and
    # onto one cached/executed count).
    pending: dict[str, RunRequest] = {}
    cached = 0
    considered: set[str] = set()
    for request in requests:
        key = request.key
        if key in considered:
            continue
        considered.add(key)
        if resume and key in store:
            record = store.get(key)
            if retry_failures and record.get("status") == "failed":
                pending[key] = request
                continue
            cached += 1
            if progress is not None:
                progress(record, True)
            continue
        pending[key] = request

    pruned = 0
    if prune and pending:
        executable: dict[str, RunRequest] = {}
        for key, request in pending.items():
            run_plan = plan_request(request)
            if run_plan is None or run_plan.feasible:
                executable[key] = request
                continue
            record = failure_to_record(
                RunFailure(
                    algorithm=request.algorithm,
                    scenario=request.scenario,
                    mode=request.mode,
                    error_type="InfeasiblePlan",
                    error_message=run_plan.reason,
                ),
                key,
                seed=request.seed,
            )
            store.put(record)
            pruned += 1
            if progress is not None:
                progress(record, False)
        pending = executable

    # -- admission gating against the host-memory budget --------------------
    refused = 0
    serial_tail: dict[str, RunRequest] = {}
    if memory_budget_words is not None and pending:
        admitted: dict[str, RunRequest] = {}
        for key, request in pending.items():
            need = predicted_working_set_words(request)
            if need > memory_budget_words:
                record = failure_to_record(
                    RunFailure(
                        algorithm=request.algorithm,
                        scenario=request.scenario,
                        mode=request.mode,
                        error_type="MemoryBudgetExceeded",
                        error_message=(
                            f"predicted working set {need} words exceeds the "
                            f"{memory_budget_words}-word host budget"
                        ),
                    ),
                    key,
                    seed=request.seed,
                )
                store.put(record)
                refused += 1
                if progress is not None:
                    progress(record, False)
            elif jobs > 1 and need > memory_budget_words // jobs:
                serial_tail[key] = request
            else:
                admitted[key] = request
        pending = admitted

    # -- lease coordination with concurrent campaigns ------------------------
    to_execute: dict[str, RunRequest] = {**pending, **serial_tail}
    owner = f"{os.getpid()}-{os.urandom(4).hex()}"
    deferred_keys: set[str] = set()
    granted: set[str] = set()
    if lease and to_execute:
        granted = store.acquire_leases(to_execute.keys(), owner, ttl_s=lease_ttl_s)
        deferred_keys = set(to_execute) - granted
        pending = {key: req for key, req in pending.items() if key in granted}
        serial_tail = {key: req for key, req in serial_tail.items() if key in granted}

    isolate = jobs > 1 or timeout_s is not None or faults is not None
    renew = None
    if lease and granted:
        def renew(keys, _store=store, _owner=owner, _ttl=lease_ttl_s):
            _store.renew_leases(keys, _owner, ttl_s=_ttl)
    renew_interval_s = max(lease_ttl_s / 3.0, 0.5)

    registry = MetricsRegistry()

    def _execute_batch(batch: dict[str, RunRequest], batch_jobs: int) -> _ExecStats:
        if not batch:
            return _ExecStats()
        if isolate:
            return _Supervisor(
                batch.values(), batch_jobs, store, policy, timeout_s, faults,
                progress, renew=renew, renew_interval_s=renew_interval_s,
                metrics=registry,
            ).run()
        return _execute_serially(
            batch.values(), store, policy, progress,
            renew=renew, renew_interval_s=renew_interval_s,
            metrics=registry,
        )

    stats = _ExecStats()
    deferred_resolved = 0
    restore_sigterm = _install_sigterm_as_interrupt()
    try:
        try:
            stats.merge(_execute_batch(pending, jobs))
            # Oversized-but-admissible runs execute one at a time so their
            # working sets never stack on top of each other.
            stats.merge(_execute_batch(serial_tail, 1))
        finally:
            if granted:
                store.release_leases(granted, owner)

        # -- wait on keys a concurrent campaign is executing -----------------
        lease_wait_start = time.perf_counter() if deferred_keys else None
        if deferred_keys:
            registry.counter("sweeps.lease.deferred").inc(len(deferred_keys))
        while deferred_keys:
            store.refresh()
            found = {key for key in deferred_keys if key in store}
            for key in found:
                if progress is not None:
                    progress(store.get(key), True)
            deferred_keys -= found
            deferred_resolved += len(found)
            if not deferred_keys:
                break
            # Reclaim keys whose campaign died (their leases lapsed).
            reclaimed = store.acquire_leases(deferred_keys, owner, ttl_s=lease_ttl_s)
            if reclaimed:
                registry.counter("sweeps.lease.reclaimed").inc(len(reclaimed))
                _LOG.info(
                    "reclaimed %d lapsed lease(s) from a dead campaign: %s",
                    len(reclaimed), ", ".join(sorted(reclaimed)[:4]),
                )
                try:
                    stats.merge(_execute_batch(
                        {key: to_execute[key] for key in to_execute if key in reclaimed},
                        jobs,
                    ))
                finally:
                    store.release_leases(reclaimed, owner)
                deferred_keys -= reclaimed
                continue
            time.sleep(0.05)
        if lease_wait_start is not None:
            registry.histogram("sweeps.lease.wait_s").observe(
                time.perf_counter() - lease_wait_start
            )
    finally:
        restore_sigterm()

    if auto_compact and store.stale_lines > max(len(store), 32):
        store.compact()

    records = []
    seen: set[str] = set()
    for request in requests:
        key = request.key
        if key in seen:
            continue
        seen.add(key)
        record = store.get(key)
        if record is None:  # pragma: no cover - defensive; put() always lands
            raise RuntimeError(f"campaign finished but key {key} is missing from the store")
        records.append(record)

    elapsed_s = time.perf_counter() - start
    registry.gauge("sweeps.campaign.executed").set(stats.executed)
    registry.gauge("sweeps.campaign.cached").set(cached)
    registry.gauge("sweeps.campaign.pruned").set(pruned)
    registry.gauge("sweeps.campaign.refused").set(refused)
    registry.gauge("sweeps.campaign.deferred").set(deferred_resolved)
    registry.gauge("sweeps.campaign.elapsed_s").set(round(elapsed_s, 6))
    metrics = registry.snapshot()
    _write_metrics_sidecar(store, metrics)

    return CampaignResult(
        records=records,
        executed=stats.executed,
        cached=cached,
        failed=sum(1 for r in records if r.get("status") == "failed"),
        elapsed_s=elapsed_s,
        pruned=pruned,
        store_path=str(store.path),
        retried=stats.retried,
        quarantined=stats.quarantined,
        refused=refused,
        deferred=deferred_resolved,
        stale_lines=store.stale_lines,
        metrics=metrics,
    )


def _write_metrics_sidecar(store: ResultStore, metrics: dict) -> None:
    """Persist the campaign's metrics snapshot beside the result store.

    Written atomically (temp file + rename) so a concurrent reader never
    sees a torn document; best-effort -- a read-only store directory must
    not fail the campaign whose records already landed.
    """
    try:
        directory = Path(store.path)
        tmp = directory / (METRICS_SIDECAR + ".tmp")
        tmp.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, directory / METRICS_SIDECAR)
    except OSError as exc:  # pragma: no cover - filesystem-dependent
        _LOG.warning("could not write %s: %s", METRICS_SIDECAR, exc)
