"""Campaign runner: fan a sweep out over a worker pool, persist every result.

The runner is the layer between "one harness run" and "a paper figure": it
expands a :class:`~repro.sweeps.spec.SweepSpec` (or takes explicit
:class:`~repro.sweeps.spec.RunRequest` lists), skips every run whose key the
:class:`~repro.sweeps.store.ResultStore` already holds (``resume``), executes
the rest serially or across a ``multiprocessing`` pool, and appends each
record to the store as soon as it lands.  Workers execute via
:func:`repro.experiments.harness.run_algorithm_safe`, so an infeasible point
becomes a ``"failed"`` record instead of aborting the campaign.

Planning: before any worker starts, every pending request is planned through
the algorithm registry (:meth:`repro.algorithms.AlgorithmSpec.plan`); points
whose plan is infeasible -- aggregate memory below the ``p*S >= mn + mk +
nk`` requirement of section 6.3 -- are stored as ``"failed"`` records with
error type ``InfeasiblePlan`` *without executing them*.  Feasibility is an
analytic statement about the parallel-schedule model: the simulator itself
is lenient and would produce counters for such points, but those counters
fall outside the theory the campaign compares against, so the runner refuses
to spend workers on them (``prune=False`` restores the old
execute-everything behaviour; ``KEY_VERSION`` was bumped with this change so
pre-pruning stores cannot disagree with fresh runs).

Determinism: records are reported in expansion order regardless of worker
completion order, and every stored value is a pure function of the run's
parameters -- a 2-job campaign aggregates byte-identically to a serial one.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

from repro.algorithms import get_algorithm
from repro.experiments.harness import AlgorithmRun, RunFailure, run_algorithm_safe
from repro.sweeps.spec import RunRequest, SweepSpec, request_from_dict
from repro.sweeps.store import (
    ResultStore,
    failure_to_record,
    record_to_run,
    run_to_record,
)

#: Default store directory, relative to the current working directory.
DEFAULT_STORE_PATH = ".sweep-cache"


@dataclass
class CampaignResult:
    """Outcome of one :func:`run_campaign` invocation."""

    #: Records in expansion order (cached and fresh alike).
    records: list[dict]
    #: Number of runs actually executed by this invocation.
    executed: int
    #: Number of runs answered from the store without executing.
    cached: int
    #: Number of records (cached or fresh) whose status is ``"failed"``.
    failed: int
    elapsed_s: float
    #: Number of runs the planner rejected as infeasible without executing
    #: (their ``"failed"`` records carry error type ``InfeasiblePlan``).
    pruned: int = 0
    store_path: str = ""
    _runs: list[AlgorithmRun] | None = field(default=None, repr=False)

    @property
    def ok_records(self) -> list[dict]:
        return [r for r in self.records if r.get("status") == "ok"]

    @property
    def failed_records(self) -> list[dict]:
        return [r for r in self.records if r.get("status") == "failed"]

    def runs(self) -> list[AlgorithmRun]:
        """The successful runs as :class:`AlgorithmRun` objects (cached)."""
        if self._runs is None:
            self._runs = [record_to_run(r) for r in self.ok_records]
        return self._runs


def execute_request(request: RunRequest) -> dict:
    """Execute one request and return its store record (never raises)."""
    outcome = run_algorithm_safe(
        request.algorithm,
        request.scenario,
        seed=request.seed,
        verify=request.verify,
        mode=request.mode,
        compress_rounds=request.compress_rounds,
    )
    if isinstance(outcome, AlgorithmRun):
        return run_to_record(outcome, request.key, seed=request.seed)
    return failure_to_record(outcome, request.key, seed=request.seed)


def _execute_payload(payload: dict) -> dict:
    """Pool-friendly wrapper: dict in, dict out (both picklable everywhere)."""
    return execute_request(request_from_dict(payload))


def plan_request(request: RunRequest):
    """Plan one request through the registry (never raises; see run_campaign)."""
    try:
        return get_algorithm(request.algorithm).plan(request.scenario)
    except Exception:  # noqa: BLE001 - a broken planner must not kill a campaign
        # A planner bug must not prune real work; treat the point as feasible
        # and let execution (which captures failures) decide.
        return None


def run_campaign(
    spec: SweepSpec | Sequence[RunRequest],
    store: ResultStore | str | None = None,
    jobs: int = 1,
    resume: bool = True,
    retry_failures: bool = False,
    prune: bool = True,
    compress_rounds: bool = False,
    progress: Callable[[dict, bool], None] | None = None,
) -> CampaignResult:
    """Run every request of ``spec`` that the store cannot already answer.

    Parameters
    ----------
    spec:
        A :class:`SweepSpec` (expanded here) or an explicit request list.
    store:
        A :class:`ResultStore`, a directory path for one, or ``None`` for the
        persistent default store at :data:`DEFAULT_STORE_PATH` under the
        current working directory (shared -- and resumed -- across
        invocations run from the same directory).
    jobs:
        Worker-process count; ``1`` runs in-process (no pool).
    resume:
        When true (default), requests whose key is already stored are served
        from the store.  When false, every request re-executes and
        overwrites its record.
    retry_failures:
        The simulator is deterministic, so ``"failed"`` records are cached
        like successes by default.  Set true to re-execute stored failures
        (e.g. after an environment-induced crash such as ``MemoryError``)
        while still serving successful records from cache.
    prune:
        When true (default), requests whose registry plan is infeasible are
        stored as ``"failed"`` records (error type ``InfeasiblePlan``)
        without ever reaching a worker.  "Infeasible" is analytic -- the
        point violates the parallel schedule's ``p*S >= mn + mk + nk``
        precondition, not a crash prediction (the lenient simulator would
        execute it); pass ``prune=False`` to execute such points anyway.
    compress_rounds:
        Execute every run with steady-state round compression (volume mode
        only; a pure speed knob).  Counters -- and therefore records, keys
        and tidy rows -- are byte-identical with or without it, so cached
        results remain valid across the flag.
    progress:
        Optional callback invoked as ``progress(record, from_cache)`` after
        every request resolves, in expansion order for cached entries and in
        completion order for executed ones.
    """
    if isinstance(spec, SweepSpec):
        requests = spec.expand()
    else:
        requests = list(spec)
    if compress_rounds:
        requests = [
            request if request.compress_rounds else replace(request, compress_rounds=True)
            for request in requests
        ]
    if store is None or isinstance(store, (str, bytes)) or hasattr(store, "__fspath__"):
        store = ResultStore(store if store is not None else DEFAULT_STORE_PATH)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")

    start = time.perf_counter()
    # Deduplicate by key (identical requests collapse onto one execution and
    # onto one cached/executed count).
    pending: dict[str, RunRequest] = {}
    cached = 0
    considered: set[str] = set()
    for request in requests:
        key = request.key
        if key in considered:
            continue
        considered.add(key)
        if resume and key in store:
            record = store.get(key)
            if retry_failures and record.get("status") == "failed":
                pending[key] = request
                continue
            cached += 1
            if progress is not None:
                progress(record, True)
            continue
        pending[key] = request

    pruned = 0
    if prune and pending:
        executable: dict[str, RunRequest] = {}
        for key, request in pending.items():
            run_plan = plan_request(request)
            if run_plan is None or run_plan.feasible:
                executable[key] = request
                continue
            record = failure_to_record(
                RunFailure(
                    algorithm=request.algorithm,
                    scenario=request.scenario,
                    mode=request.mode,
                    error_type="InfeasiblePlan",
                    error_message=run_plan.reason,
                ),
                key,
                seed=request.seed,
            )
            store.put(record)
            pruned += 1
            if progress is not None:
                progress(record, False)
        pending = executable

    if pending:
        if jobs == 1:
            for request in pending.values():
                record = execute_request(request)
                store.put(record)
                if progress is not None:
                    progress(record, False)
        else:
            payloads = [request.to_dict() for request in pending.values()]
            with multiprocessing.Pool(processes=jobs) as pool:
                for record in pool.imap(_execute_payload, payloads, chunksize=1):
                    store.put(record)
                    if progress is not None:
                        progress(record, False)

    records = []
    seen: set[str] = set()
    for request in requests:
        key = request.key
        if key in seen:
            continue
        seen.add(key)
        record = store.get(key)
        if record is None:  # pragma: no cover - defensive; put() always lands
            raise RuntimeError(f"campaign finished but key {key} is missing from the store")
        records.append(record)

    return CampaignResult(
        records=records,
        executed=len(pending),
        cached=cached,
        failed=sum(1 for r in records if r.get("status") == "failed"),
        elapsed_s=time.perf_counter() - start,
        pruned=pruned,
        store_path=str(store.path),
    )
