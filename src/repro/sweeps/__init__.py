"""Sweep campaign engine: parallel scenario sweeps with a resumable store.

This package is the layer between "one harness run" and "a paper figure".
The paper's headline evidence (Table 4, Figures 8-11) comes from campaigns of
hundreds of (m, n, k, p, S) points across five algorithms; here such a
campaign is

1. declared as a :class:`~repro.sweeps.spec.SweepSpec` (shape families x
   scaling regimes x core counts, plus explicit scenario points),
2. expanded into deterministic :class:`~repro.sweeps.spec.RunRequest` lists,
3. executed by :func:`~repro.sweeps.runner.run_campaign` -- serially or over
   a ``multiprocessing`` pool -- with per-run failure capture, and
4. persisted in a content-addressed
   :class:`~repro.sweeps.store.ResultStore`, then joined with the analytic
   cost models by :func:`~repro.sweeps.aggregate.tidy_rows`.

The RunKey hashing contract
---------------------------
Every run is addressed by :func:`~repro.sweeps.store.run_key`: the SHA-256
hex digest of the canonical JSON encoding (sorted keys, no whitespace) of
exactly these code-relevant parameters::

    {"key_version": KEY_VERSION,
     "algorithm":  <harness registry name>,
     "scenario":   {"name", "shape": {"m", "n", "k", "family"},
                    "p", "memory_words", "regime"},
     "mode":       <legacy | zerocopy | volume>,
     "seed":       <input-matrix seed>,
     "verify":     <bool>}

Consequences:

* Keys are **stable across processes and machines** -- no use of Python's
  randomized ``hash()`` -- so a store written by one campaign resumes in any
  later one (interrupted campaigns skip every cached key on rerun).
* Keys are **content addresses**: two requests agreeing on every field above
  share one execution, while changing any field (including the seed or the
  transport mode) yields a distinct key.
* Measured values are deliberately *not* part of the key; when a code change
  alters what the simulator would measure for the same parameters, bump
  :data:`~repro.sweeps.store.KEY_VERSION` (or delete the store directory) to
  invalidate every cached record at once.
"""

from repro.sweeps.aggregate import (
    campaign_table,
    rows_to_json,
    runs_from_records,
    scenario_summary_table,
    tidy_rows,
)
from repro.sweeps.runner import CampaignResult, run_campaign
from repro.sweeps.spec import RunRequest, SweepSpec, spec_from_scenarios
from repro.sweeps.store import KEY_VERSION, ResultStore, run_key

__all__ = [
    "CampaignResult",
    "KEY_VERSION",
    "ResultStore",
    "RunRequest",
    "SweepSpec",
    "campaign_table",
    "rows_to_json",
    "run_campaign",
    "run_key",
    "runs_from_records",
    "scenario_summary_table",
    "spec_from_scenarios",
    "tidy_rows",
]
