"""Sweep campaign engine: parallel scenario sweeps with a resumable store.

This package is the layer between "one harness run" and "a paper figure".
The paper's headline evidence (Table 4, Figures 8-11) comes from campaigns of
hundreds of (m, n, k, p, S) points across five algorithms; here such a
campaign is

1. declared as a :class:`~repro.sweeps.spec.SweepSpec` (shape families x
   scaling regimes x core counts, plus explicit scenario points),
2. expanded into deterministic :class:`~repro.sweeps.spec.RunRequest` lists,
3. executed by :func:`~repro.sweeps.runner.run_campaign` -- serially or over
   a ``multiprocessing`` pool -- with per-run failure capture, and
4. persisted in a content-addressed
   :class:`~repro.sweeps.store.ResultStore`, then joined with the analytic
   cost models by :func:`~repro.sweeps.aggregate.tidy_rows`.

The RunKey hashing contract
---------------------------
Every run is addressed by :func:`~repro.sweeps.store.run_key`: the SHA-256
hex digest of the canonical JSON encoding (sorted keys, no whitespace) of
exactly these code-relevant parameters::

    {"key_version": KEY_VERSION,
     "algorithm":  <harness registry name>,
     "scenario":   {"name", "shape": {"m", "n", "k", "family"},
                    "p", "memory_words", "regime"},
     "mode":       <legacy | zerocopy | volume>,
     "seed":       <input-matrix seed>,
     "verify":     <bool>}

Consequences:

* Keys are **stable across processes and machines** -- no use of Python's
  randomized ``hash()`` -- so a store written by one campaign resumes in any
  later one (interrupted campaigns skip every cached key on rerun).
* Keys are **content addresses**: two requests agreeing on every field above
  share one execution, while changing any field (including the seed or the
  transport mode) yields a distinct key.
* Measured values are deliberately *not* part of the key; when a code change
  alters what the simulator would measure for the same parameters, bump
  :data:`~repro.sweeps.store.KEY_VERSION` (or delete the store directory) to
  invalidate every cached record at once.
* **Execution policy never participates.**  Attempt counts, retry/timeout
  settings, worker counts and injected faults (chaos testing,
  :mod:`repro.sweeps.faults`) address the same key as a clean first-attempt
  run: a record describes *what was measured*, never *how hard it was to
  measure it*.  This is what makes a faulted campaign converge to
  byte-identical ok-records vs. a fault-free one (the chaos invariant), and
  why retried runs overwrite rather than fork their cache entries.  The one
  deliberate exception is the *failure taxonomy* on quarantined ``"failed"``
  records (attempts / duration / exit signal / traceback tail): failures are
  forensic evidence, not measurements, and they are re-executed -- not
  trusted -- under ``retry_failures=True``.
"""

from repro.sweeps.aggregate import (
    campaign_table,
    rows_to_json,
    runs_from_records,
    scenario_summary_table,
    tidy_rows,
)
from repro.sweeps.faults import FaultPlan, TransientFault
from repro.sweeps.runner import (
    METRICS_SIDECAR,
    NO_RETRY,
    CampaignResult,
    RetryPolicy,
    predicted_working_set_words,
    run_campaign,
)
from repro.sweeps.spec import RunRequest, SweepSpec, spec_from_scenarios
from repro.sweeps.store import KEY_VERSION, ResultStore, StoreVerifyReport, run_key

__all__ = [
    "CampaignResult",
    "FaultPlan",
    "KEY_VERSION",
    "METRICS_SIDECAR",
    "NO_RETRY",
    "ResultStore",
    "RetryPolicy",
    "RunRequest",
    "StoreVerifyReport",
    "SweepSpec",
    "TransientFault",
    "campaign_table",
    "predicted_working_set_words",
    "rows_to_json",
    "run_campaign",
    "run_key",
    "runs_from_records",
    "scenario_summary_table",
    "spec_from_scenarios",
    "tidy_rows",
]
