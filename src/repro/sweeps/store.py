"""Content-addressed, resumable, crash-hardened on-disk store for campaigns.

Every completed (or failed) run is one JSON object appended to
``results.jsonl`` inside the store directory, addressed by its
:func:`run_key` -- a SHA-256 digest of the canonical JSON encoding of every
code-relevant parameter of the run (see the package docstring in
:mod:`repro.sweeps` for the exact contract).

Hardening (fault-tolerant campaign execution):

* **Crash-safe appends.**  Each record is written as one line under an
  inter-process ``flock`` on ``store.lock`` and flushed before the lock
  drops; ``fsync="always"`` additionally fsyncs every append (pay per-put
  latency for power-loss durability).  A writer killed mid-append leaves at
  most one torn line, which reload skips -- including torn lines that cut a
  multibyte UTF-8 character (the file is parsed as bytes, per line).
* **Concurrent campaigns.**  The same lock serializes appends and
  compaction across processes, and a lease file (``leases.json``) lets
  concurrent campaigns sharing the store claim in-progress keys so no key
  executes twice (:meth:`ResultStore.acquire_leases` /
  :meth:`renew_leases` / :meth:`release_leases`; leases expire after their
  TTL so a crashed campaign cannot wedge the keys it held).
* **Integrity tooling.**  :meth:`ResultStore.verify` reports torn,
  duplicate (stale) and schema-drifted lines without modifying the file;
  :meth:`ResultStore.compact` atomically rewrites the file keeping the last
  record per key (``repro store verify`` / ``repro store compact``).  The
  :attr:`ResultStore.stale_lines` counter tracks how many lines compaction
  would drop, which is what keeps ``resume=False`` / ``retry_failures=True``
  reruns from growing the file without bound.
* **Deterministic write faults.**  A :class:`~repro.sweeps.faults.FaultPlan`
  attached via ``faults=`` makes :meth:`put` tear or duplicate specific
  keys' appends -- the chaos harness's store-side injection point.  Faults
  never change record *contents*, only the bytes around them.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

try:  # file locking is POSIX-only; the store degrades gracefully without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.experiments.harness import AlgorithmRun, RunFailure
from repro.sweeps.faults import FaultPlan
from repro.workloads.scaling import Scenario
from repro.workloads.shapes import ProblemShape

#: Version of the key/record schema.  Bump to invalidate every cached result
#: after a change that alters what the simulator measures for the same
#: parameters (counters semantics, scenario derivation, ...).
#: v2: the campaign runner prunes analytically infeasible points (aggregate
#: memory below the section 6.3 precondition) into ``InfeasiblePlan`` failure
#: records instead of executing them, so pre-registry stores could disagree
#: with fresh runs on those points.
#: v3: ``plane_dtype`` joined the identity (a float32 product and its
#: verification outcome are not interchangeable with a float64 run's);
#: shard count remains an execution policy and stays out of the key.
KEY_VERSION = 3

#: Name of the append-only record file inside a store directory.
RESULTS_FILENAME = "results.jsonl"
#: Inter-process lock file guarding appends, compaction and the lease file.
LOCK_FILENAME = "store.lock"
#: Lease file: in-progress key claims of concurrent campaigns.
LEASES_FILENAME = "leases.json"


# ---------------------------------------------------------------------------
# Canonical (de)serialization of scenarios and runs
# ---------------------------------------------------------------------------
def shape_to_dict(shape: ProblemShape) -> dict:
    return {"m": shape.m, "n": shape.n, "k": shape.k, "family": shape.family}


def shape_from_dict(data: Mapping) -> ProblemShape:
    return ProblemShape(m=data["m"], n=data["n"], k=data["k"], family=data["family"])


def scenario_to_dict(scenario: Scenario) -> dict:
    return {
        "name": scenario.name,
        "shape": shape_to_dict(scenario.shape),
        "p": scenario.p,
        "memory_words": scenario.memory_words,
        "regime": scenario.regime,
    }


def scenario_from_dict(data: Mapping) -> Scenario:
    return Scenario(
        name=data["name"],
        shape=shape_from_dict(data["shape"]),
        p=data["p"],
        memory_words=data["memory_words"],
        regime=data["regime"],
    )


def run_key(
    algorithm: str,
    scenario: Scenario,
    mode: str = "volume",
    seed: int = 0,
    verify: bool = True,
    plane_dtype: str = "float64",
) -> str:
    """The content address of one run: SHA-256 over its canonical JSON identity.

    Only code-relevant parameters participate -- the algorithm name, the full
    scenario (shape, p, memory, regime, name), the transport mode, the input
    seed, the verification flag, the numeric plane dtype and
    :data:`KEY_VERSION`.  Python's randomized ``hash()`` is never involved,
    so keys are stable across processes and interpreter restarts (asserted
    by ``tests/test_sweeps_store.py``).  Execution policy never
    participates: attempt counts, retry/timeout settings, fault injection
    and the plane engine's shard count all address the same key (see the
    contract in :mod:`repro.sweeps`).
    """
    identity = {
        "key_version": KEY_VERSION,
        "algorithm": algorithm,
        "scenario": scenario_to_dict(scenario),
        "mode": mode,
        "seed": seed,
        "verify": bool(verify),
        "plane_dtype": str(plane_dtype),
    }
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: AlgorithmRun fields stored under ``metrics`` (everything except the
#: identity fields, which live at the top level of the record).
_METRIC_FIELDS = (
    "correct",
    "verified",
    "mean_words_per_rank",
    "mean_received_per_rank",
    "max_words_per_rank",
    "max_received_per_rank",
    "max_flops_per_rank",
    "total_flops",
    "rounds",
    "input_words_per_rank",
    "output_words_per_rank",
    "max_messages_per_rank",
)


def run_to_record(run: AlgorithmRun, key: str, seed: int = 0) -> dict:
    """Serialize a successful run into a store record.

    Successful records are pure functions of the run's parameters -- no
    durations, attempt counts or fault metadata ever land here, which is
    what makes faulted and fault-free campaigns produce byte-identical
    ok-records (the chaos invariant).
    """
    return {
        "key": key,
        "status": "ok",
        "algorithm": run.algorithm,
        "scenario": scenario_to_dict(run.scenario),
        "mode": run.mode,
        "seed": seed,
        "metrics": {field_name: getattr(run, field_name) for field_name in _METRIC_FIELDS},
    }


def failure_to_record(failure: RunFailure, key: str, seed: int = 0) -> dict:
    """Serialize a captured per-run failure into a store record.

    Unlike ok-records, failure records carry the execution taxonomy
    (attempts, duration, exit signal, traceback tail, retryability): a
    quarantined run's record is the campaign's forensic evidence.
    """
    return {
        "key": key,
        "status": "failed",
        "algorithm": failure.algorithm,
        "scenario": scenario_to_dict(failure.scenario),
        "mode": failure.mode,
        "seed": seed,
        "error": {
            "type": failure.error_type,
            "message": failure.error_message,
            "attempts": failure.attempts,
            "duration_s": failure.duration_s,
            "exit_signal": failure.exit_signal,
            "traceback_tail": failure.traceback_tail,
            "retryable": failure.retryable,
        },
    }


def record_to_run(record: Mapping) -> AlgorithmRun:
    """Rebuild the :class:`AlgorithmRun` of an ``"ok"`` record."""
    if record.get("status") != "ok":
        raise ValueError(f"record {record.get('key')} is not a successful run")
    return AlgorithmRun(
        algorithm=record["algorithm"],
        scenario=scenario_from_dict(record["scenario"]),
        mode=record["mode"],
        **record["metrics"],
    )


# ---------------------------------------------------------------------------
# Line-level parsing (shared by reload, verify and compact)
# ---------------------------------------------------------------------------
def _parse_record_line(raw: bytes):
    """Decode one file line into (record, issue): exactly one of the two is None.

    Parsing happens on *bytes* so a line torn inside a multibyte UTF-8
    character is reported as torn instead of blowing up the whole reload
    with ``UnicodeDecodeError``.
    """
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError:
        return None, "torn"
    try:
        record = json.loads(text)
    except json.JSONDecodeError:
        return None, "torn"
    if not isinstance(record, dict) or not isinstance(record.get("key"), str):
        return None, "schema"
    return record, None


def _record_schema_issue(record: Mapping) -> str | None:
    """A human-readable schema-drift reason, or None for a well-formed record."""
    status = record.get("status")
    if status not in ("ok", "failed"):
        return f"unknown status {status!r}"
    if status == "ok" and not isinstance(record.get("metrics"), dict):
        return "ok record without metrics"
    if status == "failed" and not isinstance(record.get("error"), dict):
        return "failed record without error"
    return None


@dataclass
class StoreVerifyReport:
    """What :meth:`ResultStore.verify` found, line by line."""

    path: str
    total_lines: int = 0
    live_records: int = 0
    ok_records: int = 0
    failed_records: int = 0
    #: Lines that do not decode to a keyed JSON object (torn appends).
    torn_lines: int = 0
    #: Well-formed lines superseded by a later record with the same key.
    duplicate_lines: int = 0
    #: Keyed records violating the record schema (status/metrics/error shape).
    drifted_lines: int = 0
    #: Keys currently leased by live campaigns.
    live_leases: int = 0
    #: First few issues as ``"line N: reason"`` strings.
    issues: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """No torn, duplicate or drifted lines (``store compact`` restores this)."""
        return self.torn_lines == 0 and self.duplicate_lines == 0 and self.drifted_lines == 0

    def summary(self) -> str:
        state = "clean" if self.clean else "DIRTY"
        return (
            f"{self.path}: {state} -- {self.live_records} live records "
            f"({self.ok_records} ok, {self.failed_records} failed) in "
            f"{self.total_lines} lines; {self.torn_lines} torn, "
            f"{self.duplicate_lines} duplicate, {self.drifted_lines} drifted; "
            f"{self.live_leases} live leases"
        )

    def to_dict(self) -> dict:
        """JSON-serializable report (``repro store verify --json``)."""
        return {
            "path": self.path,
            "clean": self.clean,
            "total_lines": self.total_lines,
            "live_records": self.live_records,
            "ok_records": self.ok_records,
            "failed_records": self.failed_records,
            "torn_lines": self.torn_lines,
            "duplicate_lines": self.duplicate_lines,
            "drifted_lines": self.drifted_lines,
            "live_leases": self.live_leases,
            "issues": list(self.issues),
        }


# ---------------------------------------------------------------------------
# The store itself
# ---------------------------------------------------------------------------
class ResultStore:
    """Append-only JSON-lines store of run records, indexed by run key.

    The in-memory index is loaded once at construction; :meth:`put` updates
    both the index and the file (locked append + flush), so a store object
    stays consistent with the directory it wraps.  Reopening -- or
    :meth:`refresh`-ing -- the same directory in another process sees every
    fully written record.

    ``fsync="always"`` fsyncs every append (power-loss durability at per-put
    latency cost); the default ``"flush"`` flushes to the OS only, which is
    already process-crash-safe.  ``faults`` attaches a deterministic
    :class:`~repro.sweeps.faults.FaultPlan` whose store-side faults
    :meth:`put` injects (chaos testing only).
    """

    def __init__(self, path: str | Path, fsync: str = "flush", faults: FaultPlan | None = None):
        if fsync not in ("flush", "always"):
            raise ValueError(f"fsync policy must be 'flush' or 'always', got {fsync!r}")
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.faults = faults
        self._records: dict[str, dict] = {}
        #: Lines in the file that a compaction would drop: superseded
        #: duplicates plus torn debris (including injected ones).
        self.stale_lines = 0
        self._load()

    @property
    def results_file(self) -> Path:
        return self.path / RESULTS_FILENAME

    @property
    def lock_file(self) -> Path:
        return self.path / LOCK_FILENAME

    @property
    def leases_file(self) -> Path:
        return self.path / LEASES_FILENAME

    # -- locking ------------------------------------------------------------
    @contextmanager
    def _locked(self):
        """Hold the store's inter-process lock (no-op where flock is absent)."""
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        with self.lock_file.open("a+b") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    # -- loading ------------------------------------------------------------
    def _load(self) -> None:
        self._records = {}
        self.stale_lines = 0
        if not self.results_file.exists():
            return
        data = self.results_file.read_bytes()
        for raw in data.split(b"\n"):
            if not raw.strip():
                continue
            record, issue = _parse_record_line(raw)
            if record is None:
                # A campaign killed mid-append leaves a torn line; that run
                # simply reruns on resume.  Torn debris is stale by definition.
                self.stale_lines += 1
                continue
            if record["key"] in self._records:
                self.stale_lines += 1
            self._records[record["key"]] = record

    def refresh(self) -> None:
        """Re-read the file, picking up records appended by other processes."""
        self._load()

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[str]:
        return iter(self._records)

    def get(self, key: str) -> dict | None:
        return self._records.get(key)

    # -- writing ------------------------------------------------------------
    def put(self, record: Mapping) -> None:
        """Append one record (a dict with a ``"key"``) and index it.

        The append happens under the inter-process lock as a single
        write-and-flush, so concurrent campaigns interleave whole lines, not
        bytes.  With an attached fault plan, the key's scheduled store fault
        (torn / duplicate append) is injected here -- the record content
        itself is never altered.
        """
        record = dict(record)
        key = record.get("key")
        if key is None:
            raise ValueError("record must carry its run key under 'key'")
        line = json.dumps(record, sort_keys=True)
        fault = self.faults.store_fault(key) if self.faults is not None else None
        with self._locked():
            # Open inside the lock: a concurrent compaction swaps the file by
            # rename, and an append handle opened before the swap would write
            # to the dead inode.
            with self.results_file.open("ab") as handle:
                if fault == "torn":
                    # A writer killed mid-append, then the retry lands the
                    # full record: torn debris followed by the real line.
                    encoded = line.encode("utf-8")
                    handle.write(encoded[: max(1, len(encoded) // 2)] + b"\n")
                    self.stale_lines += 1
                payload = line + "\n"
                if fault == "duplicate":
                    payload += line + "\n"
                    self.stale_lines += 1
                handle.write(payload.encode("utf-8"))
                handle.flush()
                if self.fsync == "always":
                    os.fsync(handle.fileno())
        if key in self._records:
            self.stale_lines += 1
        self._records[key] = record

    def records(self) -> list[dict]:
        """All indexed records (last write per key wins), in file order."""
        return list(self._records.values())

    # -- integrity tooling --------------------------------------------------
    def verify(self, max_issues: int = 20) -> StoreVerifyReport:
        """Scan the file for torn / duplicate / schema-drifted lines.

        Read-only: the report says whether a compaction is needed
        (``duplicate_lines``), whether writers were killed mid-append
        (``torn_lines``) and whether foreign or drifted records snuck in
        (``drifted_lines``).  ``clean`` requires none of the three.
        """
        report = StoreVerifyReport(path=str(self.path))
        last_line_for_key: dict[str, int] = {}
        ok_for_key: dict[str, bool] = {}
        if self.results_file.exists():
            lineno = 0
            for raw in self.results_file.read_bytes().split(b"\n"):
                if not raw.strip():
                    continue
                lineno += 1
                report.total_lines += 1
                record, issue = _parse_record_line(raw)
                if record is None:
                    report.torn_lines += 1 if issue == "torn" else 0
                    report.drifted_lines += 1 if issue == "schema" else 0
                    if len(report.issues) < max_issues:
                        report.issues.append(f"line {lineno}: {issue} line")
                    continue
                drift = _record_schema_issue(record)
                if drift is not None:
                    report.drifted_lines += 1
                    if len(report.issues) < max_issues:
                        report.issues.append(f"line {lineno}: {drift}")
                    continue
                key = record["key"]
                if key in last_line_for_key:
                    report.duplicate_lines += 1
                    if len(report.issues) < max_issues:
                        report.issues.append(
                            f"line {last_line_for_key[key]}: superseded by line {lineno} (key {key[:12]}...)"
                        )
                last_line_for_key[key] = lineno
                ok_for_key[key] = record.get("status") == "ok"
        report.live_records = len(last_line_for_key)
        report.ok_records = sum(1 for ok in ok_for_key.values() if ok)
        report.failed_records = report.live_records - report.ok_records
        report.live_leases = len(self.live_leases())
        return report

    def compact(self) -> int:
        """Atomically rewrite the file keeping the last record per key.

        Drops torn debris and superseded duplicates; returns the number of
        lines removed.  Runs under the inter-process lock and swaps the new
        file in by rename, so concurrent appends (which also take the lock
        and reopen the file per put) never land on a dead inode.
        """
        with self._locked():
            records: dict[str, dict] = {}
            dropped = 0
            if self.results_file.exists():
                for raw in self.results_file.read_bytes().split(b"\n"):
                    if not raw.strip():
                        continue
                    record, _ = _parse_record_line(raw)
                    if record is None:
                        dropped += 1
                        continue
                    if record["key"] in records:
                        dropped += 1
                    records[record["key"]] = record
            tmp = self.results_file.with_suffix(".jsonl.tmp")
            with tmp.open("wb") as handle:
                for record in records.values():
                    handle.write((json.dumps(record, sort_keys=True) + "\n").encode("utf-8"))
                handle.flush()
                os.fsync(handle.fileno())
            tmp.replace(self.results_file)
            self._records = records
            self.stale_lines = 0
        return dropped

    # -- leases -------------------------------------------------------------
    def _read_leases(self) -> dict:
        if not self.leases_file.exists():
            return {}
        try:
            leases = json.loads(self.leases_file.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            return {}
        return leases if isinstance(leases, dict) else {}

    def _write_leases(self, leases: dict) -> None:
        tmp = self.leases_file.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(leases, sort_keys=True), encoding="utf-8")
        tmp.replace(self.leases_file)

    def acquire_leases(self, keys, owner: str, ttl_s: float = 15.0) -> set[str]:
        """Claim every key not currently leased by a live other owner.

        Returns the granted subset.  A campaign executes only the keys it
        holds leases for; keys leased elsewhere are *deferred* -- the other
        campaign is executing them, and its records will appear in the store
        (or its leases will lapse after ``ttl_s`` if it died, at which point
        they can be re-acquired).  Already-stored keys never need a lease.
        """
        now = time.time()
        granted: set[str] = set()
        with self._locked():
            leases = {
                key: lease for key, lease in self._read_leases().items()
                if isinstance(lease, dict) and lease.get("expires", 0) > now
            }
            for key in keys:
                held = leases.get(key)
                if held is None or held.get("owner") == owner:
                    leases[key] = {"owner": owner, "expires": now + ttl_s}
                    granted.add(key)
            self._write_leases(leases)
        return granted

    def renew_leases(self, keys, owner: str, ttl_s: float = 15.0) -> None:
        """Heartbeat: push the expiry of our own leases forward."""
        now = time.time()
        with self._locked():
            leases = self._read_leases()
            for key in keys:
                held = leases.get(key)
                if held is not None and held.get("owner") == owner:
                    leases[key] = {"owner": owner, "expires": now + ttl_s}
            self._write_leases(leases)

    def release_leases(self, keys, owner: str) -> None:
        """Drop our own leases (other owners' claims are never touched)."""
        with self._locked():
            leases = self._read_leases()
            for key in keys:
                held = leases.get(key)
                if held is not None and held.get("owner") == owner:
                    del leases[key]
            self._write_leases(leases)

    def live_leases(self) -> dict[str, str]:
        """Currently unexpired leases as ``{key: owner}`` (snapshot)."""
        now = time.time()
        return {
            key: lease.get("owner", "")
            for key, lease in self._read_leases().items()
            if isinstance(lease, dict) and lease.get("expires", 0) > now
        }
