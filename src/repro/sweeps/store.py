"""Content-addressed, resumable on-disk result store for sweep campaigns.

Every completed (or failed) run is one JSON object appended to
``results.jsonl`` inside the store directory, addressed by its
:func:`run_key` -- a SHA-256 digest of the canonical JSON encoding of every
code-relevant parameter of the run (see the package docstring in
:mod:`repro.sweeps` for the exact contract).  Appending is crash-safe in the
sense that an interrupted campaign leaves at most one truncated trailing
line, which :class:`ResultStore` skips on reload; rerunning the campaign with
``resume=True`` then executes only the missing keys.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterator, Mapping

from repro.experiments.harness import AlgorithmRun, RunFailure
from repro.workloads.scaling import Scenario
from repro.workloads.shapes import ProblemShape

#: Version of the key/record schema.  Bump to invalidate every cached result
#: after a change that alters what the simulator measures for the same
#: parameters (counters semantics, scenario derivation, ...).
#: v2: the campaign runner prunes analytically infeasible points (aggregate
#: memory below the section 6.3 precondition) into ``InfeasiblePlan`` failure
#: records instead of executing them, so pre-registry stores could disagree
#: with fresh runs on those points.
KEY_VERSION = 2

#: Name of the append-only record file inside a store directory.
RESULTS_FILENAME = "results.jsonl"


# ---------------------------------------------------------------------------
# Canonical (de)serialization of scenarios and runs
# ---------------------------------------------------------------------------
def shape_to_dict(shape: ProblemShape) -> dict:
    return {"m": shape.m, "n": shape.n, "k": shape.k, "family": shape.family}


def shape_from_dict(data: Mapping) -> ProblemShape:
    return ProblemShape(m=data["m"], n=data["n"], k=data["k"], family=data["family"])


def scenario_to_dict(scenario: Scenario) -> dict:
    return {
        "name": scenario.name,
        "shape": shape_to_dict(scenario.shape),
        "p": scenario.p,
        "memory_words": scenario.memory_words,
        "regime": scenario.regime,
    }


def scenario_from_dict(data: Mapping) -> Scenario:
    return Scenario(
        name=data["name"],
        shape=shape_from_dict(data["shape"]),
        p=data["p"],
        memory_words=data["memory_words"],
        regime=data["regime"],
    )


def run_key(
    algorithm: str,
    scenario: Scenario,
    mode: str = "volume",
    seed: int = 0,
    verify: bool = True,
) -> str:
    """The content address of one run: SHA-256 over its canonical JSON identity.

    Only code-relevant parameters participate -- the algorithm name, the full
    scenario (shape, p, memory, regime, name), the transport mode, the input
    seed, the verification flag and :data:`KEY_VERSION`.  Python's randomized
    ``hash()`` is never involved, so keys are stable across processes and
    interpreter restarts (asserted by ``tests/test_sweeps_store.py``).
    """
    identity = {
        "key_version": KEY_VERSION,
        "algorithm": algorithm,
        "scenario": scenario_to_dict(scenario),
        "mode": mode,
        "seed": seed,
        "verify": bool(verify),
    }
    canonical = json.dumps(identity, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: AlgorithmRun fields stored under ``metrics`` (everything except the
#: identity fields, which live at the top level of the record).
_METRIC_FIELDS = (
    "correct",
    "verified",
    "mean_words_per_rank",
    "mean_received_per_rank",
    "max_words_per_rank",
    "max_received_per_rank",
    "max_flops_per_rank",
    "total_flops",
    "rounds",
    "input_words_per_rank",
    "output_words_per_rank",
    "max_messages_per_rank",
)


def run_to_record(run: AlgorithmRun, key: str, seed: int = 0) -> dict:
    """Serialize a successful run into a store record."""
    return {
        "key": key,
        "status": "ok",
        "algorithm": run.algorithm,
        "scenario": scenario_to_dict(run.scenario),
        "mode": run.mode,
        "seed": seed,
        "metrics": {field: getattr(run, field) for field in _METRIC_FIELDS},
    }


def failure_to_record(failure: RunFailure, key: str, seed: int = 0) -> dict:
    """Serialize a captured per-run failure into a store record."""
    return {
        "key": key,
        "status": "failed",
        "algorithm": failure.algorithm,
        "scenario": scenario_to_dict(failure.scenario),
        "mode": failure.mode,
        "seed": seed,
        "error": {"type": failure.error_type, "message": failure.error_message},
    }


def record_to_run(record: Mapping) -> AlgorithmRun:
    """Rebuild the :class:`AlgorithmRun` of an ``"ok"`` record."""
    if record.get("status") != "ok":
        raise ValueError(f"record {record.get('key')} is not a successful run")
    return AlgorithmRun(
        algorithm=record["algorithm"],
        scenario=scenario_from_dict(record["scenario"]),
        mode=record["mode"],
        **record["metrics"],
    )


# ---------------------------------------------------------------------------
# The store itself
# ---------------------------------------------------------------------------
class ResultStore:
    """Append-only JSON-lines store of run records, indexed by run key.

    The in-memory index is loaded once at construction; :meth:`put` updates
    both the index and the file (append + flush), so a store object stays
    consistent with the directory it wraps.  Reopening the same directory in
    another process sees every fully written record.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self._records: dict[str, dict] = {}
        self._load()

    @property
    def results_file(self) -> Path:
        return self.path / RESULTS_FILENAME

    def _load(self) -> None:
        if not self.results_file.exists():
            return
        with self.results_file.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # A campaign killed mid-append leaves one truncated line;
                    # that run simply reruns on resume.
                    continue
                if isinstance(record, dict) and "key" in record:
                    self._records[record["key"]] = record

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[str]:
        return iter(self._records)

    def get(self, key: str) -> dict | None:
        return self._records.get(key)

    def put(self, record: Mapping) -> None:
        """Append one record (a dict with a ``"key"``) and index it."""
        record = dict(record)
        if "key" not in record:
            raise ValueError("record must carry its run key under 'key'")
        with self.results_file.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
        self._records[record["key"]] = record

    def records(self) -> list[dict]:
        """All indexed records (last write per key wins), in file order."""
        return list(self._records.values())
