"""Declarative sweep specifications and their deterministic expansion.

A :class:`SweepSpec` describes a campaign the way the paper describes its
benchmarks: shape families x scaling regimes x core counts x a per-core
memory size, times a set of algorithms, under one transport mode.  Expansion
reuses the scaling generators of :mod:`repro.workloads.scaling` (strong /
limited / extra, section 8) so a spec point means exactly what the
figure-reproduction benchmarks mean by it.  Explicit :class:`Scenario` points
can be added on top of (or instead of) the generated grid.

Expansion order is deterministic -- scenarios in specification order,
algorithms innermost -- which is what makes parallel campaigns reproduce the
serial row order (``tests/test_sweeps_runner.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.algorithms import DEFAULT_ALGORITHMS, resolve_algorithm
from repro.machine.transport import MODES, PLANE_DTYPES
from repro.sweeps.store import run_key, scenario_from_dict, scenario_to_dict
from repro.workloads.scaling import (
    Scenario,
    extra_memory_sweep,
    limited_memory_sweep,
    shape_for_footprint,
    strong_scaling_sweep,
)

FAMILIES = ("square", "largeK", "largeM", "flat")
REGIMES = ("strong", "limited", "extra")


@dataclass(frozen=True)
class RunRequest:
    """One executable point of a campaign: algorithm x scenario x mode.

    ``compress_rounds`` is an execution policy, not part of the run's
    identity: compressed and uncompressed executions produce byte-identical
    counters (guarded by the golden sweep and the compression-parity tests),
    so it deliberately does not participate in :attr:`key` -- a cached
    uncompressed record answers a compressed request and vice versa.  The
    same holds for ``shards`` (the plane engine's worker-process count:
    counters byte-identical, products ``allclose`` across shard counts) and
    for the campaign's fault-tolerance knobs (retry policy, deadlines,
    fault injection): attempt counts and injected faults never participate
    in keys (see the contract in :mod:`repro.sweeps`).

    ``plane_dtype`` *does* participate in the key: a float32 run's product
    (and verification outcome) is not interchangeable with a float64 run's.
    """

    algorithm: str
    scenario: Scenario
    mode: str = "volume"
    seed: int = 0
    verify: bool = True
    compress_rounds: bool = False
    shards: int = 1
    plane_dtype: str = "float64"

    @property
    def key(self) -> str:
        return run_key(
            self.algorithm, self.scenario, self.mode, self.seed, self.verify,
            plane_dtype=self.plane_dtype,
        )

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "scenario": scenario_to_dict(self.scenario),
            "mode": self.mode,
            "seed": self.seed,
            "verify": self.verify,
            "compress_rounds": self.compress_rounds,
            "shards": self.shards,
            "plane_dtype": self.plane_dtype,
        }


def request_from_dict(data: Mapping) -> RunRequest:
    return RunRequest(
        algorithm=data["algorithm"],
        scenario=scenario_from_dict(data["scenario"]),
        mode=data["mode"],
        seed=data["seed"],
        verify=data["verify"],
        compress_rounds=bool(data.get("compress_rounds", False)),
        shards=int(data.get("shards", 1)),
        plane_dtype=str(data.get("plane_dtype", "float64")),
    )


@dataclass(frozen=True)
class SweepSpec:
    """A declarative scenario grid plus the algorithms and mode to run it under.

    ``families x regimes x p_values`` expands through the section-8 scaling
    generators at ``memory_words`` words per core; ``points`` appends explicit
    scenarios (used e.g. by the benchmark suite, whose strong-scaling shapes
    are pinned).  Duplicate scenarios (same derived name) are dropped,
    first occurrence wins.
    """

    name: str = "sweep"
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS
    families: tuple[str, ...] = ("square",)
    regimes: tuple[str, ...] = ("limited",)
    p_values: tuple[int, ...] = (4, 16, 36)
    memory_words: int = 2048
    mode: str = "volume"
    seed: int = 0
    verify: bool = True
    shards: int = 1
    plane_dtype: str = "float64"
    points: tuple[Scenario, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Canonicalize through the registry (raises UnknownAlgorithmError, a
        # KeyError, for unknown names) so aliases like "SUMMA" produce the
        # same run keys as their canonical name.
        object.__setattr__(
            self, "algorithms",
            tuple(resolve_algorithm(a) for a in self.algorithms),
        )
        for family in self.families:
            if family not in FAMILIES:
                raise ValueError(f"unknown family {family!r}; known: {FAMILIES}")
        for regime in self.regimes:
            if regime not in REGIMES:
                raise ValueError(f"unknown regime {regime!r}; known: {REGIMES}")
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; known: {MODES}")
        if self.plane_dtype not in PLANE_DTYPES:
            raise ValueError(
                f"unknown plane_dtype {self.plane_dtype!r}; known: {PLANE_DTYPES}"
            )

    # -- scenario grid ------------------------------------------------------
    def scenarios(self) -> list[Scenario]:
        """The deduplicated scenario list, in deterministic grid order."""
        scenarios: list[Scenario] = []
        seen: set[str] = set()
        for family in self.families:
            for regime in self.regimes:
                for scenario in self._regime_scenarios(family, regime):
                    if scenario.name not in seen:
                        seen.add(scenario.name)
                        scenarios.append(scenario)
        for scenario in self.points:
            if scenario.name not in seen:
                seen.add(scenario.name)
                scenarios.append(scenario)
        return scenarios

    def _regime_scenarios(self, family: str, regime: str) -> list[Scenario]:
        if not self.p_values:
            return []
        if regime == "strong":
            # Same derivation as all_regime_sweeps: the strong-scaling shape
            # fills half the aggregate memory at the largest core count.
            shape = shape_for_footprint(family, max(self.p_values) * self.memory_words / 2.0)
            return strong_scaling_sweep(shape, list(self.p_values), memory_words=self.memory_words)
        if regime == "limited":
            return limited_memory_sweep(family, list(self.p_values), self.memory_words)
        return extra_memory_sweep(family, list(self.p_values), self.memory_words)

    def expand(self) -> list[RunRequest]:
        """Every run of the campaign: scenario-major, algorithm-minor order."""
        return [
            RunRequest(
                algorithm=algorithm,
                scenario=scenario,
                mode=self.mode,
                seed=self.seed,
                verify=self.verify,
                shards=self.shards,
                plane_dtype=self.plane_dtype,
            )
            for scenario in self.scenarios()
            for algorithm in self.algorithms
        ]

    def with_mode(self, mode: str) -> "SweepSpec":
        return replace(self, mode=mode)

    # -- (de)serialization --------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "algorithms": list(self.algorithms),
            "families": list(self.families),
            "regimes": list(self.regimes),
            "p_values": list(self.p_values),
            "memory_words": self.memory_words,
            "mode": self.mode,
            "seed": self.seed,
            "verify": self.verify,
            "shards": self.shards,
            "plane_dtype": self.plane_dtype,
            "points": [scenario_to_dict(s) for s in self.points],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        """Build a spec from a plain dict (e.g. a JSON file); unknown keys raise."""
        known = {
            "name", "algorithms", "families", "regimes", "p_values",
            "memory_words", "mode", "seed", "verify", "shards",
            "plane_dtype", "points",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SweepSpec fields: {sorted(unknown)}")
        kwargs: dict = dict(data)
        for tuple_field in ("algorithms", "families", "regimes", "p_values"):
            if tuple_field in kwargs:
                kwargs[tuple_field] = tuple(kwargs[tuple_field])
        if "points" in kwargs:
            kwargs["points"] = tuple(scenario_from_dict(s) for s in kwargs["points"])
        return cls(**kwargs)


def spec_from_scenarios(
    scenarios: Sequence[Scenario],
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    mode: str = "volume",
    seed: int = 0,
    verify: bool = True,
    name: str = "explicit",
) -> SweepSpec:
    """Wrap an explicit scenario list (no generated grid) into a spec."""
    return SweepSpec(
        name=name,
        algorithms=tuple(algorithms),
        families=(),
        regimes=(),
        p_values=(),
        mode=mode,
        seed=seed,
        verify=verify,
        points=tuple(scenarios),
    )
