"""Deterministic fault injection for campaign chaos testing.

A :class:`FaultPlan` is a *seeded, pure* description of which runs of a
campaign misbehave and how: every decision is a function of ``(plan seed,
run key, attempt)`` through SHA-256, never of wall-clock time, process ids
or Python's randomized ``hash()``.  Two campaigns over the same spec with
the same plan therefore inject byte-identical fault schedules -- which is
what lets the chaos suite (``tests/test_sweeps_chaos.py``, ``make chaos``)
assert that a faulted campaign converges to exactly the ok-records of a
fault-free one.

Fault kinds
-----------
Worker-side (drawn from one uniform stream per key, rates stacked):

* ``"crash"``     -- the worker process SIGKILLs itself (hard death: what an
  OOM kill or a segfault looks like from the supervisor's side);
* ``"hang"``      -- the worker sleeps ``hang_s`` seconds before executing,
  tripping the campaign's per-run deadline (requires ``timeout_s``; without
  a deadline the run merely finishes late);
* ``"transient"`` -- the worker raises :class:`TransientFault`, a retryable
  error (the moral equivalent of a flaked network or filesystem call).

Store-side (an independent stream, applied by :class:`~repro.sweeps.store.
ResultStore.put`):

* ``"torn"``      -- the first append of the key's record is cut mid-line
  (no trailing newline) before the real record lands, simulating a writer
  killed mid-append followed by a recovery append;
* ``"duplicate"`` -- the record line is appended twice (a resumed campaign
  double-writing), exercising last-wins reload and ``store compact``.

Worker faults fire on the first ``faulted_attempts`` attempts of a faulted
key only (default 1), so a campaign running under a
:class:`~repro.sweeps.runner.RetryPolicy` recovers every such run on retry.
Raise ``faulted_attempts`` past the policy's ``max_attempts`` to force
exhaustion and exercise the quarantine path.

Fault injection never participates in run keys or record contents -- see the
run-key contract in :mod:`repro.sweeps`.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import asdict, dataclass
from typing import Mapping


class TransientFault(Exception):
    """An injected retryable error (classified retryable by default policies)."""


def _uniform(*parts: object) -> float:
    """A deterministic uniform in [0, 1) from SHA-256 of the joined parts."""
    digest = hashlib.sha256(":".join(str(part) for part in parts).encode("utf-8")).hexdigest()
    return int(digest[:12], 16) / float(1 << 48)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of injected faults (see module doc)."""

    seed: int = 0
    #: Worker-side rates (fractions of keys), stacked in this order.
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    transient_rate: float = 0.0
    #: Store-side rates (independent stream), stacked in this order.
    torn_write_rate: float = 0.0
    duplicate_write_rate: float = 0.0
    #: Worker faults fire on attempts 1..faulted_attempts of a faulted key.
    faulted_attempts: int = 1
    #: How long a "hang" sleeps; make it comfortably larger than the
    #: campaign's ``timeout_s`` so the deadline, not the sleep, ends the run.
    hang_s: float = 30.0

    def __post_init__(self) -> None:
        worker = self.crash_rate + self.hang_rate + self.transient_rate
        store = self.torn_write_rate + self.duplicate_write_rate
        if not 0.0 <= worker <= 1.0 or not 0.0 <= store <= 1.0:
            raise ValueError("fault rates must be fractions whose per-stream sum is <= 1")

    # -- decisions ----------------------------------------------------------
    def worker_fault(self, key: str, attempt: int = 1) -> str | None:
        """``"crash"`` / ``"hang"`` / ``"transient"`` / None for (key, attempt)."""
        if attempt > self.faulted_attempts:
            return None
        u = _uniform(self.seed, "worker", key)
        if u < self.crash_rate:
            return "crash"
        if u < self.crash_rate + self.hang_rate:
            return "hang"
        if u < self.crash_rate + self.hang_rate + self.transient_rate:
            return "transient"
        return None

    def store_fault(self, key: str) -> str | None:
        """``"torn"`` / ``"duplicate"`` / None for the key's record append."""
        u = _uniform(self.seed, "store", key)
        if u < self.torn_write_rate:
            return "torn"
        if u < self.torn_write_rate + self.duplicate_write_rate:
            return "duplicate"
        return None

    def faulted_fraction(self, keys) -> float:
        """Fraction of ``keys`` that draw any fault (worker or store)."""
        keys = list(keys)
        if not keys:
            return 0.0
        hit = sum(
            1 for key in keys
            if self.worker_fault(key, 1) is not None or self.store_fault(key) is not None
        )
        return hit / len(keys)

    # -- worker-side execution ---------------------------------------------
    def inject(self, key: str, attempt: int) -> None:
        """Apply the worker fault for (key, attempt); called inside a worker.

        ``"crash"`` does not return (the process SIGKILLs itself);
        ``"hang"`` sleeps ``hang_s`` then returns (the supervisor's deadline
        is expected to kill the worker first); ``"transient"`` raises
        :class:`TransientFault`.
        """
        kind = self.worker_fault(key, attempt)
        if kind is None:
            return
        if kind == "crash":
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "hang":
            time.sleep(self.hang_s)
        elif kind == "transient":
            raise TransientFault(
                f"injected transient fault (seed={self.seed}, attempt={attempt})"
            )

    # -- (de)serialization (plans cross process boundaries with payloads) ---
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        return cls(**dict(data))
