"""Plain-text plotting helpers for the reproduced figures.

The paper's figures are log-log line plots (communication volume or % of peak
versus core count) and stacked bars (Figure 12).  The benchmark harness runs
in terminals and CI, so these helpers render the same data as ASCII charts --
good enough to eyeball the crossovers and orderings the paper discusses
without a plotting dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence


def _scale(value: float, lo: float, hi: float, width: int, log: bool) -> int:
    """Map ``value`` in [lo, hi] onto a column index in [0, width-1]."""
    if hi <= lo:
        return 0
    if log:
        lo_l, hi_l, v_l = math.log10(max(lo, 1e-300)), math.log10(max(hi, 1e-300)), math.log10(max(value, 1e-300))
        fraction = (v_l - lo_l) / (hi_l - lo_l) if hi_l > lo_l else 0.0
    else:
        fraction = (value - lo) / (hi - lo)
    return max(0, min(width - 1, int(round(fraction * (width - 1)))))


def ascii_series_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    log_y: bool = True,
    y_label: str = "value",
) -> str:
    """Render per-algorithm ``(x, y)`` series as horizontal ASCII bars per x.

    Every (x, algorithm) pair becomes one row whose bar length encodes the y
    value (log-scaled by default, as in the paper's log-log plots).  Rows are
    grouped by x so the per-core-count comparison is immediate.
    """
    if not series:
        return "(no data)"
    all_points = [(x, y, name) for name, points in series.items() for x, y in points]
    if not all_points:
        return "(no data)"
    ys = [y for _x, y, _name in all_points]
    lo, hi = min(ys), max(ys)
    xs = sorted({x for x, _y, _name in all_points})
    name_width = max(len(name) for name in series)
    lines = [f"{y_label}: '#' bar length is {'log-' if log_y else ''}scaled between {lo:.3g} and {hi:.3g}"]
    for x in xs:
        lines.append(f"x = {x:g}")
        for name in sorted(series):
            matching = [y for px, y in series[name] if px == x]
            if not matching:
                continue
            y = matching[0]
            bar = "#" * (1 + _scale(y, lo, hi, width, log_y))
            lines.append(f"  {name.ljust(name_width)} |{bar} {y:.4g}")
    return "\n".join(lines)


def ascii_stacked_bars(
    rows: Sequence[Mapping[str, float]],
    label_key: str,
    part_keys: Sequence[str],
    width: int = 50,
) -> str:
    """Render stacked horizontal bars (Figure 12-style breakdowns).

    Each row is one bar; ``part_keys`` name the stacked components.  Component
    symbols are assigned in order: ``=``, ``~``, ``+``, ``.``.
    """
    if not rows:
        return "(no data)"
    symbols = ["=", "~", "+", "."]
    totals = [sum(float(row[key]) for key in part_keys) for row in rows]
    biggest = max(totals) if totals else 1.0
    label_width = max(len(str(row[label_key])) for row in rows)
    lines = [
        "legend: " + ", ".join(f"'{symbols[i % len(symbols)]}' = {key}" for i, key in enumerate(part_keys))
    ]
    for row, total in zip(rows, totals):
        bar = ""
        for index, key in enumerate(part_keys):
            value = float(row[key])
            segment = int(round(width * value / biggest)) if biggest > 0 else 0
            bar += symbols[index % len(symbols)] * segment
        lines.append(f"{str(row[label_key]).ljust(label_width)} |{bar} ({total:.3g})")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line sparkline (used in quick summaries)."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    if hi == lo:
        return blocks[0] * len(values)
    return "".join(blocks[_scale(v, lo, hi, len(blocks), log=False)] for v in values)
