"""Analytic performance model: counters -> simulated runtime and % of peak.

The paper reports wall-clock runtimes and percentages of Piz Daint's peak
flop/s (Figures 1, 8-11, 13-14).  Absolute runtimes cannot be reproduced on a
simulator, but the *relative* performance of the algorithms is driven by their
communication volume, message counts and overlap -- all of which the simulator
measures exactly.  This module applies a standard alpha-beta-gamma model:

* computation time  = (flops on the busiest rank) / (peak flop rate per core),
* communication time = alpha * messages + beta * words   (busiest rank),
* without overlap the two add up; with overlap the per-round pipeline of
  :mod:`repro.core.overlap` hides whichever is smaller.

The % of peak is ``total useful flops / (p * runtime * peak per core)``, the
same definition the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.costs import CostPrediction, predict
from repro.core.overlap import even_rounds
from repro.experiments.harness import AlgorithmRun
from repro.machine.topology import PIZ_DAINT_LIKE, MachineSpec
from repro.workloads.scaling import Scenario


@dataclass(frozen=True)
class TimeBreakdown:
    """Simulated runtime split into its components (Figure 12)."""

    computation: float
    input_communication: float
    output_communication: float
    total_no_overlap: float
    total_with_overlap: float

    @property
    def communication(self) -> float:
        return self.input_communication + self.output_communication

    @property
    def communication_fraction(self) -> float:
        if self.total_no_overlap == 0:
            return 0.0
        return self.communication / self.total_no_overlap


def time_breakdown(run: AlgorithmRun, spec: MachineSpec = PIZ_DAINT_LIKE) -> TimeBreakdown:
    """Split a run's simulated time into compute / input comm / output comm."""
    comp = spec.compute_time(run.max_flops_per_rank)
    words = float(run.max_words_per_rank) / 2.0  # sent+received double-counts volume
    messages = float(run.max_messages_per_rank) / 2.0
    comm = spec.communication_time(words, messages)
    total_attrib = run.input_words_per_rank + run.output_words_per_rank
    if total_attrib > 0:
        input_fraction = run.input_words_per_rank / total_attrib
    else:
        input_fraction = 1.0
    comm_in = comm * input_fraction
    comm_out = comm * (1.0 - input_fraction)
    rounds = max(1, run.rounds)
    overlap = even_rounds(comm, comp, rounds)
    return TimeBreakdown(
        computation=comp,
        input_communication=comm_in,
        output_communication=comm_out,
        total_no_overlap=comp + comm,
        total_with_overlap=overlap.total_with_overlap,
    )


def simulated_time(
    run: AlgorithmRun,
    spec: MachineSpec = PIZ_DAINT_LIKE,
    overlap: bool = False,
) -> float:
    """Simulated wall-clock time of a run under the alpha-beta-gamma model."""
    breakdown = time_breakdown(run, spec)
    return breakdown.total_with_overlap if overlap else breakdown.total_no_overlap


def percent_of_peak(
    run: AlgorithmRun,
    spec: MachineSpec = PIZ_DAINT_LIKE,
    overlap: bool = True,
) -> float:
    """Percentage of the machine's peak flop/s the run achieves.

    Uses the *useful* flops ``2 m n k`` of the problem (not the flops actually
    executed, which may include idle-rank imbalance), divided by
    ``p * runtime * peak-per-core`` -- the paper's definition.
    """
    shape = run.scenario.shape
    runtime = simulated_time(run, spec, overlap=overlap)
    if runtime <= 0:
        return 100.0
    peak = run.scenario.p * spec.peak_flops_per_core * runtime
    return 100.0 * shape.flops / peak


def speedup(run: AlgorithmRun, baseline: AlgorithmRun, spec: MachineSpec = PIZ_DAINT_LIKE) -> float:
    """Runtime ratio baseline / run (values > 1 mean ``run`` is faster)."""
    return simulated_time(baseline, spec, overlap=True) / simulated_time(run, spec, overlap=True)


def analytic_time(
    algorithm_or_prediction: str | CostPrediction,
    scenario: Scenario | None = None,
    spec: MachineSpec = PIZ_DAINT_LIKE,
) -> float:
    """Alpha-beta-gamma runtime from the *analytic* Table 3 costs.

    Where :func:`simulated_time` prices the counters the simulator measured,
    this prices the closed-form prediction from
    :func:`repro.baselines.costs.predict` -- the sweep aggregator joins the
    two so every stored run carries its model error.  Accepts either an
    algorithm name plus a scenario, or a ready-made
    :class:`~repro.baselines.costs.CostPrediction`.
    """
    if isinstance(algorithm_or_prediction, CostPrediction):
        prediction = algorithm_or_prediction
    else:
        if scenario is None:
            raise ValueError("a scenario is required when passing an algorithm name")
        prediction = predict(algorithm_or_prediction, scenario)
    compute = spec.compute_time(prediction.flops_per_rank)
    comm = spec.communication_time(prediction.io_words_per_rank, prediction.latency_rounds)
    return compute + comm
