"""Experiment harness, performance model and report generators.

These modules regenerate every evaluation artifact of the paper:

* :mod:`repro.experiments.harness` runs any implemented algorithm on any
  :class:`~repro.workloads.scaling.Scenario` and records the measured
  communication counters (the mpiP substitute).
* :mod:`repro.experiments.perf_model` converts the counters into simulated
  runtimes and %-of-peak figures with an alpha-beta-gamma model, with and
  without communication-computation overlap.
* :mod:`repro.experiments.report` formats the per-figure/table outputs
  (Table 4, Figures 6-14) as plain-text tables/series.
"""

from repro.experiments.harness import ALGORITHMS, AlgorithmRun, run_algorithm, run_scenario, sweep
from repro.experiments.perf_model import percent_of_peak, simulated_time
from repro.experiments.report import format_table, geometric_mean

__all__ = [
    "ALGORITHMS",
    "AlgorithmRun",
    "run_algorithm",
    "run_scenario",
    "sweep",
    "simulated_time",
    "percent_of_peak",
    "format_table",
    "geometric_mean",
]
