"""Benchmark harness: run any algorithm on any scenario and collect metrics.

The harness plays the role of the paper's job scripts + mpiP profiling: it
builds a fresh :class:`~repro.machine.simulator.DistributedMachine` for every
(algorithm, scenario) pair, generates the input matrices, runs the algorithm,
verifies the numerical result against ``A @ B`` and records the communication
counters.  Every run additionally asserts word conservation (every word sent
was received by exactly one rank).

Runs accept a ``mode`` (``legacy`` / ``zerocopy`` / ``volume``, see
:mod:`repro.machine.transport`).  In volume mode the inputs are shape tokens
-- no matrices are generated or multiplied -- so numerical verification is
skipped; all communication counters are identical to the other modes, which
is what allows sweeps at the paper's true scale.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

import numpy as np

from repro.algorithms import ALGORITHMS, DEFAULT_ALGORITHMS, get_algorithm
from repro.machine.simulator import DistributedMachine
from repro.machine.transport import MODES, ShapeToken, allclose_tolerances
from repro.obs.trace import active_tracer
from repro.workloads.scaling import Scenario
from repro.workloads.shapes import ProblemShape

#: Total words the verification-reference cache may pin (~0.25 GB), evicted
#: least-recently-used first -- same policy as the input-matrix cache.
_REFERENCE_CACHE_MAX_WORDS = 1 << 25
_REFERENCE_CACHE: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
_REFERENCE_CACHE_WORDS = 0


def _reference_product(shape: ProblemShape, seed: int) -> np.ndarray:
    """The verification reference ``A @ B`` for a (shape, seed) point, cached.

    Every numeric-mode run of the same point verifies against the same
    product; sweeps that compare several algorithms (or transport modes)
    used to recompute this full-size GEMM once per run.  The cache is
    footprint-bounded so multi-shape campaigns do not pin dead products.
    """
    global _REFERENCE_CACHE_WORDS
    key = (shape, int(seed))
    hit = _REFERENCE_CACHE.get(key)
    if hit is not None:
        _REFERENCE_CACHE.move_to_end(key)
        return hit
    a_matrix, b_matrix = shape.random_matrices(seed=seed)
    reference = a_matrix @ b_matrix
    reference.setflags(write=False)
    if reference.size <= _REFERENCE_CACHE_MAX_WORDS:
        _REFERENCE_CACHE[key] = reference
        _REFERENCE_CACHE_WORDS += reference.size
        while _REFERENCE_CACHE_WORDS > _REFERENCE_CACHE_MAX_WORDS:
            _, old = _REFERENCE_CACHE.popitem(last=False)
            _REFERENCE_CACHE_WORDS -= old.size
    return reference


@dataclass
class AlgorithmRun:
    """Metrics of one algorithm execution on one scenario."""

    algorithm: str
    scenario: Scenario
    #: Whether the result matched ``A @ B`` -- True when verification was
    #: skipped (see ``verified``).
    correct: bool
    #: Average words moved (sent + received) per rank -- Table 4's metric.
    mean_words_per_rank: float
    #: Average words *received* per rank -- the quantity the I/O theory bounds.
    mean_received_per_rank: float
    #: Maximum words moved through any rank (critical path).
    max_words_per_rank: int
    #: Maximum words received by any rank.
    max_received_per_rank: int
    #: Maximum flops executed by any rank.
    max_flops_per_rank: int
    total_flops: int
    #: Maximum number of communication rounds on any rank (latency proxy).
    rounds: int
    #: Mean words attributable to the input matrices / the output matrix.
    input_words_per_rank: float
    output_words_per_rank: float
    #: Number of messages on the busiest rank.
    max_messages_per_rank: int
    #: Execution mode the run used (``legacy`` / ``zerocopy`` / ``volume``).
    mode: str = "legacy"
    #: Whether the numerical result was actually checked against ``A @ B``.
    verified: bool = True

    @property
    def mean_megabytes_per_rank(self) -> float:
        return self.mean_words_per_rank * 8.0 / 1e6

    @property
    def p(self) -> int:
        return self.scenario.p


@dataclass
class RunFailure:
    """Structured record of one run that raised instead of completing.

    Sweep campaigns must not abort wholesale because one (algorithm,
    scenario) point is infeasible -- e.g. a memory size too small for any
    schedule.  :func:`run_algorithm_safe` converts the exception into this
    record so the campaign runner (and the result store) can persist it and
    keep going.

    The taxonomy fields below are filled in by the campaign supervisor
    (:mod:`repro.sweeps.runner`) when a run is quarantined after exhausting
    its retry budget: how many attempts were made, how long they took, the
    signal that killed the worker (``9`` for a SIGKILL/OOM death, ``None``
    when the run failed in-process), the tail of the worker's traceback and
    whether the final error class was considered retryable at all.
    """

    algorithm: str
    scenario: Scenario
    mode: str
    error_type: str
    error_message: str
    #: Execution attempts made before this failure became final.
    attempts: int = 1
    #: Wall-clock seconds spent across all attempts (0.0 when unknown).
    duration_s: float = 0.0
    #: Signal number that killed the worker process, if it died hard.
    exit_signal: int | None = None
    #: Last lines of the worker-side traceback (empty for clean captures).
    traceback_tail: str = ""
    #: Whether the error class was retryable under the campaign's policy.
    retryable: bool = False

    @property
    def correct(self) -> bool:
        return False


AlgorithmFn = Callable[[np.ndarray, np.ndarray, Scenario, DistributedMachine], np.ndarray]

# ``ALGORITHMS`` and ``DEFAULT_ALGORITHMS`` are re-exported from
# :mod:`repro.algorithms` for backward compatibility: the hard-coded closure
# dict that used to live here became the registry's mapping view.  The COSMA
# delta heuristic that was inlined here is now
# :func:`repro.algorithms.cosma_idle_fraction`, shared with the API and CLI.


def run_algorithm(
    name: str,
    scenario: Scenario,
    seed: int = 0,
    verify: bool = True,
    mode: str = "legacy",
    compress_rounds: bool = False,
    shards: int = 1,
    plane_dtype: str = "float64",
) -> AlgorithmRun:
    """Run one algorithm on one scenario and collect its metrics.

    ``name`` may be any registered algorithm name or alias
    (:mod:`repro.algorithms`); the returned run carries the canonical name.
    ``mode`` selects the payload transport; in ``"volume"`` mode the inputs
    are shape tokens and numerical verification is skipped (counters only).
    ``compress_rounds`` opts into steady-state round compression (effective
    in volume mode only; counters are byte-identical either way, see
    :class:`~repro.machine.counters.RoundCompressor`).  ``shards`` shards
    the plane engine's numeric GEMMs over worker processes
    (:mod:`repro.machine.shard`; counters are byte-identical across shard
    counts) and ``plane_dtype`` selects the numeric payload dtype
    (verification uses dtype-appropriate relative tolerances).  Every run
    ends with a word-conservation assertion
    (:meth:`~repro.machine.counters.CommCounters.assert_conservation`).
    """
    spec = get_algorithm(name)
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; known: {MODES}")
    if not spec.supports_mode(mode):
        raise ValueError(f"{spec.name} does not support mode {mode!r}; supported: {spec.modes}")
    shape = scenario.shape
    if mode == "volume":
        a_matrix: np.ndarray | ShapeToken = ShapeToken((shape.m, shape.k))
        b_matrix: np.ndarray | ShapeToken = ShapeToken((shape.k, shape.n))
    else:
        a_matrix, b_matrix = shape.random_matrices(seed=seed)
    machine = DistributedMachine(
        scenario.p, memory_words=scenario.memory_words, mode=mode,
        compress_rounds=compress_rounds, shards=shards, plane_dtype=plane_dtype,
    )
    options: dict = {}
    if spec.name == "COSMA":
        # Hand the memoized planned grid to the executor so the fitting
        # search runs once per scenario, not once per (mode, repeat) -- the
        # same handshake api.multiply performs.  Planning failures fall
        # through to the executor so error behaviour is unchanged.
        try:
            run_plan = spec.plan(scenario)
        except Exception:  # noqa: BLE001 - the run itself reports the error
            run_plan = None
        if run_plan is not None and run_plan.feasible and run_plan.grid is not None:
            options["grid"] = run_plan.grid
    tracer = active_tracer()
    run_span = (
        tracer.span(
            f"run:{spec.name}", cat="run",
            args={
                "algorithm": spec.name, "scenario": scenario.name,
                "p": scenario.p, "mode": mode,
            },
            track="run",
        )
        if tracer is not None
        else nullcontext()
    )
    with run_span:
        product = spec.run(a_matrix, b_matrix, scenario, machine, **options)
        if machine.trace is not None:
            # Flush activity after the last round boundary (or the whole run,
            # for algorithms that never mark one) into a final round span.
            machine.trace.commit_round(machine.peak_resident_words)
    verified = bool(verify) and mode != "volume"
    correct = True
    if verified:
        rtol, atol_unit = allclose_tolerances(getattr(product, "dtype", np.float64))
        correct = bool(np.allclose(
            product, _reference_product(shape, seed),
            rtol=rtol, atol=atol_unit * shape.k,
        ))
    machine.counters.assert_conservation()
    counters = machine.counters
    return AlgorithmRun(
        algorithm=spec.name,
        scenario=scenario,
        correct=correct,
        mode=mode,
        verified=verified,
        mean_words_per_rank=counters.mean_words_per_rank(),
        mean_received_per_rank=counters.mean_received_per_rank(),
        max_words_per_rank=counters.max_words_per_rank(),
        max_received_per_rank=counters.max_received_per_rank(),
        max_flops_per_rank=counters.max_flops_per_rank(),
        total_flops=counters.total_flops,
        rounds=counters.max_rounds(),
        input_words_per_rank=counters.mean_input_words_per_rank(),
        output_words_per_rank=counters.mean_output_words_per_rank(),
        max_messages_per_rank=counters.max_messages_per_rank(),
    )


def run_algorithm_safe(
    name: str,
    scenario: Scenario,
    seed: int = 0,
    verify: bool = True,
    mode: str = "legacy",
    compress_rounds: bool = False,
    shards: int = 1,
    plane_dtype: str = "float64",
) -> AlgorithmRun | RunFailure:
    """Like :func:`run_algorithm` but captures failures as :class:`RunFailure`.

    Unknown algorithm names and unknown modes still raise (those are caller
    bugs, not scenario properties); everything raised while executing the
    scenario -- infeasible memory, schedule errors, conservation violations --
    comes back as a structured record.
    """
    name = get_algorithm(name).name  # raises UnknownAlgorithmError (a KeyError)
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; known: {MODES}")
    try:
        return run_algorithm(
            name, scenario, seed=seed, verify=verify, mode=mode,
            compress_rounds=compress_rounds, shards=shards, plane_dtype=plane_dtype,
        )
    except Exception as exc:  # noqa: BLE001 - the point is to capture anything
        return RunFailure(
            algorithm=name,
            scenario=scenario,
            mode=mode,
            error_type=type(exc).__name__,
            error_message=str(exc),
        )


def run_scenario(
    scenario: Scenario,
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    seed: int = 0,
    verify: bool = True,
    mode: str = "legacy",
    compress_rounds: bool = False,
) -> dict[str, AlgorithmRun]:
    """Run several algorithms on the same scenario (same input matrices)."""
    return {
        name: run_algorithm(
            name, scenario, seed=seed, verify=verify, mode=mode,
            compress_rounds=compress_rounds,
        )
        for name in algorithms
    }


def sweep(
    scenarios: Iterable[Scenario],
    algorithms: Iterable[str] = DEFAULT_ALGORITHMS,
    seed: int = 0,
    verify: bool = True,
    mode: str = "legacy",
    on_error: str = "raise",
    compress_rounds: bool = False,
) -> list[AlgorithmRun | RunFailure]:
    """Run the full cross product of scenarios and algorithms.

    ``on_error="capture"`` records a :class:`RunFailure` for any point that
    raises and keeps sweeping; the default ``"raise"`` preserves the historic
    fail-fast behaviour.
    """
    if on_error not in ("raise", "capture"):
        raise ValueError(f"on_error must be 'raise' or 'capture', got {on_error!r}")
    algorithms = tuple(algorithms)
    runner = run_algorithm if on_error == "raise" else run_algorithm_safe
    runs: list[AlgorithmRun | RunFailure] = []
    for scenario in scenarios:
        for name in algorithms:
            runs.append(
                runner(
                    name, scenario, seed=seed, verify=verify, mode=mode,
                    compress_rounds=compress_rounds,
                )
            )
    return runs


def group_by_scenario(runs: Iterable[AlgorithmRun]) -> Mapping[str, dict[str, AlgorithmRun]]:
    """Group a flat list of runs into ``{scenario name: {algorithm: run}}``."""
    grouped: dict[str, dict[str, AlgorithmRun]] = {}
    for run in runs:
        grouped.setdefault(run.scenario.name, {})[run.algorithm] = run
    return grouped
