"""Report generators: text tables and series for every paper artifact.

The benchmarks print these reports; EXPERIMENTS.md records representative
outputs next to the numbers the paper reports.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from repro.experiments.harness import AlgorithmRun, group_by_scenario
from repro.experiments.perf_model import percent_of_peak, simulated_time
from repro.machine.topology import PIZ_DAINT_LIKE, MachineSpec


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0 if the iterable is empty)."""
    values = [v for v in values]
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a plain-text table with aligned columns."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.2f}"
    return str(cell)


# ---------------------------------------------------------------------------
# Figures 6 / 7: communication volume per core vs core count
# ---------------------------------------------------------------------------
def volume_series(runs: Iterable[AlgorithmRun]) -> dict[str, list[tuple[int, float]]]:
    """Per-algorithm series of (p, MB communicated per core)."""
    series: dict[str, list[tuple[int, float]]] = {}
    for run in runs:
        series.setdefault(run.algorithm, []).append((run.scenario.p, run.mean_megabytes_per_rank))
    for points in series.values():
        points.sort()
    return series


def volume_table(runs: Iterable[AlgorithmRun]) -> str:
    """Text table of MB/core per algorithm per core count (one Figure 6/7 panel)."""
    grouped = group_by_scenario(runs)
    algorithms = sorted({run.algorithm for run in runs})
    headers = ["scenario", "p"] + [f"{a} [MB/core]" for a in algorithms]
    rows = []
    for name, by_algo in grouped.items():
        any_run = next(iter(by_algo.values()))
        row: list[object] = [name, any_run.scenario.p]
        for algo in algorithms:
            run = by_algo.get(algo)
            row.append(run.mean_megabytes_per_rank if run else float("nan"))
        rows.append(row)
    rows.sort(key=lambda r: (str(r[0]).rsplit("-", 1)[0], int(r[1])))
    return format_table(headers, rows)


# ---------------------------------------------------------------------------
# Figures 8-11, 13-14: % of peak and runtime
# ---------------------------------------------------------------------------
def performance_series(
    runs: Iterable[AlgorithmRun],
    spec: MachineSpec = PIZ_DAINT_LIKE,
    overlap: bool = True,
) -> dict[str, list[tuple[int, float]]]:
    """Per-algorithm series of (p, % of peak)."""
    series: dict[str, list[tuple[int, float]]] = {}
    for run in runs:
        series.setdefault(run.algorithm, []).append(
            (run.scenario.p, percent_of_peak(run, spec, overlap=overlap))
        )
    for points in series.values():
        points.sort()
    return series


def runtime_series(
    runs: Iterable[AlgorithmRun],
    spec: MachineSpec = PIZ_DAINT_LIKE,
    overlap: bool = True,
) -> dict[str, list[tuple[int, float]]]:
    """Per-algorithm series of (p, simulated runtime in seconds)."""
    series: dict[str, list[tuple[int, float]]] = {}
    for run in runs:
        series.setdefault(run.algorithm, []).append(
            (run.scenario.p, simulated_time(run, spec, overlap=overlap))
        )
    for points in series.values():
        points.sort()
    return series


def performance_distribution(
    runs: Iterable[AlgorithmRun],
    spec: MachineSpec = PIZ_DAINT_LIKE,
) -> dict[str, dict[str, float]]:
    """Min / geometric mean / max % of peak per algorithm (Figures 13-14, Figure 1)."""
    per_algo: dict[str, list[float]] = {}
    for run in runs:
        per_algo.setdefault(run.algorithm, []).append(percent_of_peak(run, spec))
    summary: dict[str, dict[str, float]] = {}
    for algo, values in per_algo.items():
        summary[algo] = {
            "min": min(values),
            "geomean": geometric_mean(values),
            "max": max(values),
        }
    return summary


# ---------------------------------------------------------------------------
# Table 4: mean communication volume per rank and COSMA speedups
# ---------------------------------------------------------------------------
def table4_rows(
    runs_by_benchmark: Mapping[str, list[AlgorithmRun]],
    spec: MachineSpec = PIZ_DAINT_LIKE,
) -> list[dict[str, object]]:
    """Build Table 4: one row per (shape family, regime) benchmark.

    ``runs_by_benchmark`` maps a benchmark label (e.g. ``"square-limited"``) to
    all runs of that benchmark across core counts and algorithms.
    """
    rows: list[dict[str, object]] = []
    for label, runs in runs_by_benchmark.items():
        by_algo: dict[str, list[AlgorithmRun]] = {}
        for run in runs:
            by_algo.setdefault(run.algorithm, []).append(run)
        volumes = {
            algo: sum(r.mean_megabytes_per_rank for r in algo_runs) / len(algo_runs)
            for algo, algo_runs in by_algo.items()
        }
        speedups = _cosma_speedups(runs, spec)
        row: dict[str, object] = {"benchmark": label}
        row.update({f"vol_{algo}": volume for algo, volume in sorted(volumes.items())})
        if speedups:
            row["speedup_min"] = min(speedups)
            row["speedup_geomean"] = geometric_mean(speedups)
            row["speedup_max"] = max(speedups)
        rows.append(row)
    return rows


def _cosma_speedups(runs: list[AlgorithmRun], spec: MachineSpec) -> list[float]:
    """COSMA's speedup over the second-best algorithm, per core count."""
    grouped = group_by_scenario(runs)
    speedups: list[float] = []
    for by_algo in grouped.values():
        if "COSMA" not in by_algo or len(by_algo) < 2:
            continue
        cosma_time = simulated_time(by_algo["COSMA"], spec, overlap=True)
        others = [
            simulated_time(run, spec, overlap=True)
            for algo, run in by_algo.items()
            if algo != "COSMA"
        ]
        if cosma_time <= 0 or not others:
            continue
        speedups.append(min(others) / cosma_time)
    return speedups


def table4_text(
    runs_by_benchmark: Mapping[str, list[AlgorithmRun]],
    spec: MachineSpec = PIZ_DAINT_LIKE,
) -> str:
    rows = table4_rows(runs_by_benchmark, spec)
    if not rows:
        return "(no runs)"
    keys = sorted({key for row in rows for key in row if key != "benchmark"})
    headers = ["benchmark"] + keys
    table_rows = [[row.get("benchmark")] + [row.get(key, "") for key in keys] for row in rows]
    return format_table(headers, table_rows)


# ---------------------------------------------------------------------------
# Figure 12: communication / computation breakdown
# ---------------------------------------------------------------------------
def breakdown_rows(
    runs: Iterable[AlgorithmRun],
    spec: MachineSpec = PIZ_DAINT_LIKE,
) -> list[dict[str, object]]:
    from repro.experiments.perf_model import time_breakdown

    rows = []
    for run in runs:
        breakdown = time_breakdown(run, spec)
        rows.append(
            {
                "scenario": run.scenario.name,
                "algorithm": run.algorithm,
                "p": run.scenario.p,
                "compute_s": breakdown.computation,
                "comm_inputs_s": breakdown.input_communication,
                "comm_output_s": breakdown.output_communication,
                "total_no_overlap_s": breakdown.total_no_overlap,
                "total_with_overlap_s": breakdown.total_with_overlap,
                "comm_fraction": breakdown.communication_fraction,
            }
        )
    return rows
