"""Cannon's algorithm (1969): the classical 2D decomposition.

Processors form a square ``q x q`` grid (``q = sqrt(p)``); A and B are split
into ``q x q`` blocks.  After an initial alignment (row ``i`` of A blocks is
shifted ``i`` positions left, column ``j`` of B blocks ``j`` positions up),
the algorithm performs ``q`` rounds of *multiply local blocks, shift A left by
one, shift B up by one*.  The per-rank communicated volume is about
``q * (mk + nk)/p = k (m + n) / sqrt(p)``, independent of the available
memory -- which is exactly why 2D algorithms lose to 2.5D/COSMA when extra
memory exists.

Matrix dimensions that do not divide by ``q`` are zero-padded; the padding is
reflected in the measured volume, mirroring the real implementations'
behaviour on awkward sizes.

In ``plane`` mode (``machine.transport.planar``) the executor opts into the
stacked-array engine: the ``q^2`` A / B / C blocks live in three
:class:`~repro.machine.transport.PayloadPlane` stacks, a ring shift becomes
one fancy-indexed permutation of a stack's leading axis, and each round's
``q^2`` local multiply-accumulates become a single batched ``np.matmul``.
Counters are posted through the same batched path as ``volume`` mode and are
byte-identical to the per-hop reference execution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.machine.collectives import ring_shift
from repro.machine.counters import CommCounters
from repro.machine.simulator import DistributedMachine
from repro.machine.transport import PayloadPlane, as_payload, ascontiguous
from repro.utils.intmath import ceil_div
from repro.utils.validation import check_positive_int


@dataclass
class CannonRunResult:
    """Outcome of a Cannon run."""

    matrix: np.ndarray
    grid_size: int
    counters: CommCounters

    @property
    def mean_words_per_rank(self) -> float:
        return self.counters.mean_words_per_rank()


def _largest_square(p: int) -> int:
    """Largest ``q`` with ``q*q <= p`` -- ranks beyond ``q*q`` stay idle."""
    return int(math.isqrt(p))


def cannon_multiply(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    p: int,
    machine: DistributedMachine | None = None,
    memory_words: int | None = None,
    skew: bool = True,
) -> CannonRunResult:
    """Multiply ``A @ B`` with Cannon's algorithm on a simulated machine.

    Parameters
    ----------
    a_matrix, b_matrix:
        Global inputs (``m x k`` and ``k x n``).
    p:
        Available processors; the largest ``q x q <= p`` square grid is used.
    skew:
        Whether to perform (and count) the initial alignment shifts.  Real
        implementations sometimes pre-skew the data layout instead; disabling
        it models that variant.
    """
    p = check_positive_int(p, "p")
    a_matrix = as_payload(a_matrix)
    b_matrix = as_payload(b_matrix)
    m, k = a_matrix.shape
    k2, n = b_matrix.shape
    if k != k2:
        raise ValueError(f"inner dimensions do not match: {a_matrix.shape} x {b_matrix.shape}")
    q = _largest_square(p)
    if q < 1:
        raise ValueError("Cannon's algorithm needs at least one processor")
    if machine is None:
        machine = DistributedMachine(p, memory_words=memory_words or (1 << 20))

    # Zero-pad the matrices so every block has identical shape.
    bm = ceil_div(m, q)
    bn = ceil_div(n, q)
    bk = ceil_div(k, q)
    a_pad = machine.zeros((bm * q, bk * q))
    a_pad[:m, :k] = a_matrix
    b_pad = machine.zeros((bk * q, bn * q))
    b_pad[:k, :n] = b_matrix

    def rank_of(i: int, j: int) -> int:
        return i * q + j

    if machine.transport.planar:
        c_pad = _cannon_plane(machine, a_pad, b_pad, q, bm, bn, bk, skew)
        return CannonRunResult(matrix=c_pad[:m, :n], grid_size=q, counters=machine.counters)

    # Initial blocked distribution (setup, not counted).
    a_blocks: dict[int, np.ndarray] = {}
    b_blocks: dict[int, np.ndarray] = {}
    c_blocks: dict[int, np.ndarray] = {}
    for i in range(q):
        for j in range(q):
            r = rank_of(i, j)
            a_blocks[r] = ascontiguous(a_pad[i * bm : (i + 1) * bm, j * bk : (j + 1) * bk])
            b_blocks[r] = ascontiguous(b_pad[i * bk : (i + 1) * bk, j * bn : (j + 1) * bn])
            c_blocks[r] = machine.zeros((bm, bn))
            machine.rank(r).put("A", a_blocks[r])
            machine.rank(r).put("B", b_blocks[r])
            machine.rank(r).put("C", c_blocks[r])

    # Initial alignment: shift row i of A left by i, column j of B up by j.
    if skew:
        for i in range(q):
            row = [rank_of(i, j) for j in range(q)]
            shifted = ring_shift(machine, row, {r: a_blocks[r] for r in row}, displacement=i)
            for r in row:
                a_blocks[r] = shifted[r]
        for j in range(q):
            col = [rank_of(i, j) for i in range(q)]
            shifted = ring_shift(machine, col, {r: b_blocks[r] for r in col}, displacement=j)
            for r in col:
                b_blocks[r] = shifted[r]

    # Main loop: q rounds of multiply + shift.  Every non-final round is
    # structurally identical (same grid, same block shapes, shift by one), so
    # under round compression the steady state is replayed from the cached
    # counter delta.
    for step in range(q):
        if machine.compressor is not None:
            fingerprint = ("cannon", q, bm, bn, bk, step == q - 1)
            if machine.replay_round(fingerprint) is not None:
                continue
        for i in range(q):
            for j in range(q):
                r = rank_of(i, j)
                machine.local_multiply(r, a_blocks[r], b_blocks[r], accumulate_into=c_blocks[r])
        if step == q - 1:
            machine.commit_round()
            break
        for i in range(q):
            row = [rank_of(i, j) for j in range(q)]
            shifted = ring_shift(machine, row, {r: a_blocks[r] for r in row}, displacement=1)
            for r in row:
                a_blocks[r] = shifted[r]
        for j in range(q):
            col = [rank_of(i, j) for i in range(q)]
            shifted = ring_shift(machine, col, {r: b_blocks[r] for r in col}, displacement=1)
            for r in col:
                b_blocks[r] = shifted[r]
        machine.check_memory()
        machine.commit_round()

    # Assemble (and un-pad) the result for verification (a token in volume mode).
    c_pad = machine.zeros((bm * q, bn * q))
    for i in range(q):
        for j in range(q):
            r = rank_of(i, j)
            c_pad[i * bm : (i + 1) * bm, j * bn : (j + 1) * bn] = c_blocks[r]
    return CannonRunResult(matrix=c_pad[:m, :n], grid_size=q, counters=machine.counters)


def _shift_permutation(q: int, displacement: int, axis: str) -> np.ndarray:
    """Slot permutation of one ring-shift step: ``new[slot] = old[perm[slot]]``.

    ``axis="row"`` shifts every grid row left by ``displacement`` blocks (the
    A shift); ``axis="col"`` shifts every column up (the B shift) -- exactly
    what :func:`~repro.machine.collectives.ring_shift` does rank by rank.
    """
    i_idx, j_idx = np.divmod(np.arange(q * q), q)
    if axis == "row":
        return i_idx * q + (j_idx + displacement) % q
    return ((i_idx + displacement) % q) * q + j_idx


def _post_shift(machine: DistributedMachine, perm: np.ndarray, words: int) -> None:
    """Counter accounting of one all-rows (or all-columns) ring-shift step.

    Counter-equivalent to one :func:`ring_shift` per grid row/column: every
    rank whose block actually moves posts one ``words``-word transfer, and
    every rank's round counter advances once.
    """
    slots = np.arange(perm.size)
    moving = perm != slots
    machine.post_transfers(perm[moving], slots[moving], words, kind="input",
                           count_rounds=False)
    machine.counters.add_rounds(slots)


def _cannon_plane(
    machine: DistributedMachine,
    a_pad: np.ndarray,
    b_pad: np.ndarray,
    q: int,
    bm: int,
    bn: int,
    bk: int,
    skew: bool,
) -> np.ndarray:
    """Cannon on the stacked-array engine; returns the padded global product.

    The ``q x q`` block grid of each operand is one ``(q^2, rows, cols)``
    stack; shifts permute the leading axis, multiplies are batched GEMMs,
    and counters ride the same batched posts as ``volume`` mode.
    """

    def to_stack(pad: np.ndarray, rows: int, cols: int) -> np.ndarray:
        return np.ascontiguousarray(
            pad.reshape(q, rows, q, cols).transpose(0, 2, 1, 3).reshape(q * q, rows, cols)
        )

    a_plane = machine.register_plane(
        "cannon.A", PayloadPlane("cannon.A", data=to_stack(a_pad, bm, bk)),
        replace=True,
    )
    b_plane = machine.register_plane(
        "cannon.B", PayloadPlane("cannon.B", data=to_stack(b_pad, bk, bn)),
        replace=True,
    )
    c_plane = machine.new_plane("cannon.C", (q * q, bm, bn))
    for slot in range(q * q):
        machine.rank(slot).put("A", a_plane.attach(slot, slot))
        machine.rank(slot).put("B", b_plane.attach(slot, slot))
        machine.rank(slot).put("C", c_plane.attach(slot, slot))

    # Working stacks; the registered planes keep the initial distribution,
    # matching the reference path's rank stores (shifts deliver new buffers,
    # they never overwrite the initially stored blocks).
    a_stack = a_plane.data
    b_stack = b_plane.data

    # Initial alignment: row i of A shifts left by i, column j of B up by j.
    # Each row/column has its own displacement; rounds are charged per
    # row/column, mirroring one ring_shift call each.
    if skew:
        for i in range(q):
            perm = np.arange(q * q)
            row = slice(i * q, (i + 1) * q)
            perm[row] = i * q + (np.arange(q) + i) % q
            moving = perm != np.arange(q * q)
            machine.post_transfers(
                perm[moving], np.flatnonzero(moving), bm * bk, kind="input",
                count_rounds=False,
            )
            machine.counters.add_rounds(range(i * q, (i + 1) * q))
            a_stack = a_stack[perm]
        for j in range(q):
            perm = np.arange(q * q)
            col = np.arange(q) * q + j
            perm[col] = ((np.arange(q) + j) % q) * q + j
            moving = perm != np.arange(q * q)
            machine.post_transfers(
                perm[moving], np.flatnonzero(moving), bk * bn, kind="input",
                count_rounds=False,
            )
            machine.counters.add_rounds(col)
            b_stack = b_stack[perm]

    # Main loop: q rounds of batched multiply + whole-grid shift by one.
    all_slots = np.arange(q * q)
    perm_a = _shift_permutation(q, 1, "row")
    perm_b = _shift_permutation(q, 1, "col")
    flops_each = 2 * bm * bn * bk
    for step in range(q):
        np.add(c_plane.data, a_stack @ b_stack, out=c_plane.data)
        machine.post_flops(all_slots, flops_each)
        if step == q - 1:
            break
        _post_shift(machine, perm_a, bm * bk)
        a_stack = a_stack[perm_a]
        _post_shift(machine, perm_b, bk * bn)
        b_stack = b_stack[perm_b]
        machine.check_memory()

    c_pad = np.zeros((bm * q, bn * q))
    c_view = c_plane.data.reshape(q, q, bm, bn)
    c_pad[...] = c_view.transpose(0, 2, 1, 3).reshape(bm * q, bn * q)
    return c_pad
