"""Cannon's algorithm (1969): the classical 2D decomposition.

Processors form a square ``q x q`` grid (``q = sqrt(p)``); A and B are split
into ``q x q`` blocks.  After an initial alignment (row ``i`` of A blocks is
shifted ``i`` positions left, column ``j`` of B blocks ``j`` positions up),
the algorithm performs ``q`` rounds of *multiply local blocks, shift A left by
one, shift B up by one*.  The per-rank communicated volume is about
``q * (mk + nk)/p = k (m + n) / sqrt(p)``, independent of the available
memory -- which is exactly why 2D algorithms lose to 2.5D/COSMA when extra
memory exists.

Matrix dimensions that do not divide by ``q`` are zero-padded; the padding is
reflected in the measured volume, mirroring the real implementations'
behaviour on awkward sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.machine.collectives import ring_shift
from repro.machine.counters import CommCounters
from repro.machine.simulator import DistributedMachine
from repro.machine.transport import as_payload, ascontiguous
from repro.utils.intmath import ceil_div
from repro.utils.validation import check_positive_int


@dataclass
class CannonRunResult:
    """Outcome of a Cannon run."""

    matrix: np.ndarray
    grid_size: int
    counters: CommCounters

    @property
    def mean_words_per_rank(self) -> float:
        return self.counters.mean_words_per_rank()


def _largest_square(p: int) -> int:
    """Largest ``q`` with ``q*q <= p`` -- ranks beyond ``q*q`` stay idle."""
    return int(math.isqrt(p))


def cannon_multiply(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    p: int,
    machine: DistributedMachine | None = None,
    memory_words: int | None = None,
    skew: bool = True,
) -> CannonRunResult:
    """Multiply ``A @ B`` with Cannon's algorithm on a simulated machine.

    Parameters
    ----------
    a_matrix, b_matrix:
        Global inputs (``m x k`` and ``k x n``).
    p:
        Available processors; the largest ``q x q <= p`` square grid is used.
    skew:
        Whether to perform (and count) the initial alignment shifts.  Real
        implementations sometimes pre-skew the data layout instead; disabling
        it models that variant.
    """
    p = check_positive_int(p, "p")
    a_matrix = as_payload(a_matrix)
    b_matrix = as_payload(b_matrix)
    m, k = a_matrix.shape
    k2, n = b_matrix.shape
    if k != k2:
        raise ValueError(f"inner dimensions do not match: {a_matrix.shape} x {b_matrix.shape}")
    q = _largest_square(p)
    if q < 1:
        raise ValueError("Cannon's algorithm needs at least one processor")
    if machine is None:
        machine = DistributedMachine(p, memory_words=memory_words or (1 << 20))

    # Zero-pad the matrices so every block has identical shape.
    bm = ceil_div(m, q)
    bn = ceil_div(n, q)
    bk = ceil_div(k, q)
    a_pad = machine.zeros((bm * q, bk * q))
    a_pad[:m, :k] = a_matrix
    b_pad = machine.zeros((bk * q, bn * q))
    b_pad[:k, :n] = b_matrix

    def rank_of(i: int, j: int) -> int:
        return i * q + j

    # Initial blocked distribution (setup, not counted).
    a_blocks: dict[int, np.ndarray] = {}
    b_blocks: dict[int, np.ndarray] = {}
    c_blocks: dict[int, np.ndarray] = {}
    for i in range(q):
        for j in range(q):
            r = rank_of(i, j)
            a_blocks[r] = ascontiguous(a_pad[i * bm : (i + 1) * bm, j * bk : (j + 1) * bk])
            b_blocks[r] = ascontiguous(b_pad[i * bk : (i + 1) * bk, j * bn : (j + 1) * bn])
            c_blocks[r] = machine.zeros((bm, bn))
            machine.rank(r).put("A", a_blocks[r])
            machine.rank(r).put("B", b_blocks[r])
            machine.rank(r).put("C", c_blocks[r])

    # Initial alignment: shift row i of A left by i, column j of B up by j.
    if skew:
        for i in range(q):
            row = [rank_of(i, j) for j in range(q)]
            shifted = ring_shift(machine, row, {r: a_blocks[r] for r in row}, displacement=i)
            for r in row:
                a_blocks[r] = shifted[r]
        for j in range(q):
            col = [rank_of(i, j) for i in range(q)]
            shifted = ring_shift(machine, col, {r: b_blocks[r] for r in col}, displacement=j)
            for r in col:
                b_blocks[r] = shifted[r]

    # Main loop: q rounds of multiply + shift.  Every non-final round is
    # structurally identical (same grid, same block shapes, shift by one), so
    # under round compression the steady state is replayed from the cached
    # counter delta.
    for step in range(q):
        if machine.compressor is not None:
            fingerprint = ("cannon", q, bm, bn, bk, step == q - 1)
            if machine.replay_round(fingerprint) is not None:
                continue
        for i in range(q):
            for j in range(q):
                r = rank_of(i, j)
                machine.local_multiply(r, a_blocks[r], b_blocks[r], accumulate_into=c_blocks[r])
        if step == q - 1:
            machine.commit_round()
            break
        for i in range(q):
            row = [rank_of(i, j) for j in range(q)]
            shifted = ring_shift(machine, row, {r: a_blocks[r] for r in row}, displacement=1)
            for r in row:
                a_blocks[r] = shifted[r]
        for j in range(q):
            col = [rank_of(i, j) for i in range(q)]
            shifted = ring_shift(machine, col, {r: b_blocks[r] for r in col}, displacement=1)
            for r in col:
                b_blocks[r] = shifted[r]
        machine.check_memory()
        machine.commit_round()

    # Assemble (and un-pad) the result for verification (a token in volume mode).
    c_pad = machine.zeros((bm * q, bn * q))
    for i in range(q):
        for j in range(q):
            r = rank_of(i, j)
            c_pad[i * bm : (i + 1) * bm, j * bn : (j + 1) * bn] = c_blocks[r]
    return CannonRunResult(matrix=c_pad[:m, :n], grid_size=q, counters=machine.counters)
