"""SUMMA (van de Geijn & Watts, 1997): the 2D algorithm used by ScaLAPACK.

Processors form a ``pm x pn`` grid; A and C are distributed in ``lm x .``
block rows, B and C in ``. x ln`` block columns.  The ``k`` dimension is
processed in panels of width ``nb``: in each panel step the owning column of
the grid broadcasts its ``lm x nb`` panel of A along its process row, the
owning row broadcasts its ``nb x ln`` panel of B along its process column, and
every rank performs a rank-``nb`` update of its local C block.

This serves as the library's ScaLAPACK stand-in: like ``PDGEMM`` it never uses
more memory than a 2D decomposition needs, so it is communication-inefficient
whenever extra memory is available (the paper's motivating observation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.machine.collectives import broadcast, broadcast_hops
from repro.machine.counters import CommCounters
from repro.machine.simulator import DistributedMachine
from repro.machine.transport import as_payload, ascontiguous, concat_payloads
from repro.utils.intmath import divisors, split_offsets
from repro.utils.validation import check_positive_int


@dataclass
class SummaRunResult:
    """Outcome of a SUMMA run."""

    matrix: np.ndarray
    grid: tuple[int, int]
    panel_width: int
    counters: CommCounters

    @property
    def mean_words_per_rank(self) -> float:
        return self.counters.mean_words_per_rank()


def choose_2d_grid(m: int, n: int, p: int) -> tuple[int, int]:
    """Choose a ``pm x pn`` grid with ``pm * pn = p`` matching the C aspect ratio.

    ScaLAPACK users typically pick a near-square grid; we pick the factor pair
    whose aspect ratio is closest to ``m / n`` (the best a tuned user could
    do), which is slightly favourable to the baseline.
    """
    check_positive_int(p, "p")
    target = m / n
    best = (1, 1)
    best_error = math.inf
    for pm in divisors(p):
        pn = p // pm
        if pm > m or pn > n:
            continue
        error = abs(math.log((pm / pn) / target))
        if error < best_error:
            best_error = error
            best = (pm, pn)
    return best


def summa_multiply(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    p: int,
    machine: DistributedMachine | None = None,
    memory_words: int | None = None,
    grid: tuple[int, int] | None = None,
    panel_width: int | None = None,
) -> SummaRunResult:
    """Multiply ``A @ B`` with SUMMA on a simulated machine.

    Parameters
    ----------
    p:
        Number of processors (the grid is a factor pair of ``p``).
    grid:
        Optional explicit ``(pm, pn)`` grid.
    panel_width:
        Optional panel width ``nb``; defaults to the largest panel that fits
        next to the local C block in ``memory_words`` (or 64 when no memory
        limit is given).
    """
    p = check_positive_int(p, "p")
    a_matrix = as_payload(a_matrix)
    b_matrix = as_payload(b_matrix)
    m, k = a_matrix.shape
    k2, n = b_matrix.shape
    if k != k2:
        raise ValueError(f"inner dimensions do not match: {a_matrix.shape} x {b_matrix.shape}")
    if grid is None:
        grid = choose_2d_grid(m, n, p)
    pm, pn = grid
    if pm * pn > p:
        raise ValueError(f"grid {grid} needs {pm * pn} ranks but only {p} are available")
    if machine is None:
        machine = DistributedMachine(p, memory_words=memory_words or (1 << 20))

    i_ranges = split_offsets(m, pm)
    j_ranges = split_offsets(n, pn)
    lm = max(hi - lo for lo, hi in i_ranges)
    ln = max(hi - lo for lo, hi in j_ranges)
    if panel_width is None:
        if memory_words is not None:
            free = memory_words - lm * ln
            panel_width = max(1, min(k, free // max(1, lm + ln)))
        else:
            panel_width = min(k, 64)
    panel_width = check_positive_int(panel_width, "panel_width")

    def rank_of(i: int, j: int) -> int:
        return i * pn + j

    # Initial distribution: rank (i, j) owns A[i-block, j-th k slice] and
    # B[i-th k slice, j-block]; C[i-block, j-block] accumulates locally.
    k_col_slices = split_offsets(k, pn)
    k_row_slices = split_offsets(k, pm)

    if machine.transport.planar:
        c_global = _summa_plane(
            machine, a_matrix, b_matrix, pm, pn, panel_width,
            i_ranges, j_ranges, k_col_slices, k_row_slices,
        )
        return SummaRunResult(
            matrix=c_global, grid=(pm, pn), panel_width=panel_width,
            counters=machine.counters,
        )
    local_a: dict[int, np.ndarray] = {}
    local_b: dict[int, np.ndarray] = {}
    local_c: dict[int, np.ndarray] = {}
    for i in range(pm):
        for j in range(pn):
            r = rank_of(i, j)
            i0, i1 = i_ranges[i]
            j0, j1 = j_ranges[j]
            ak0, ak1 = k_col_slices[j]
            bk0, bk1 = k_row_slices[i]
            local_a[r] = ascontiguous(a_matrix[i0:i1, ak0:ak1])
            local_b[r] = ascontiguous(b_matrix[bk0:bk1, j0:j1])
            local_c[r] = machine.zeros((i1 - i0, j1 - j0))
            machine.rank(r).put("A", local_a[r])
            machine.rank(r).put("B", local_b[r])
            machine.rank(r).put("C", local_c[r])

    # Panel loop over k.  A panel step's schedule is determined by which
    # owners contribute how many k-columns to the A/B panels; consecutive
    # panels inside the same ownership slices repeat that pattern exactly,
    # so under round compression the steady state replays from cache.
    for panel_start in range(0, k, panel_width):
        panel_stop = min(panel_start + panel_width, k)
        if machine.compressor is not None:
            fingerprint = (
                "summa", m, n, k, pm, pn, panel_width,
                tuple(
                    (j, min(ak1, panel_stop) - max(ak0, panel_start))
                    for j, (ak0, ak1) in enumerate(k_col_slices)
                    if min(ak1, panel_stop) > max(ak0, panel_start)
                ),
                tuple(
                    (i, min(bk1, panel_stop) - max(bk0, panel_start))
                    for i, (bk0, bk1) in enumerate(k_row_slices)
                    if min(bk1, panel_stop) > max(bk0, panel_start)
                ),
            )
            if machine.replay_round(fingerprint) is not None:
                continue

        # Broadcast this panel's A pieces along every process row.
        a_panel_by_row: list[np.ndarray] = []
        for i in range(pm):
            i0, i1 = i_ranges[i]
            row_ranks = [rank_of(i, j) for j in range(pn)]
            parts: list[np.ndarray] = []
            for j in range(pn):
                ak0, ak1 = k_col_slices[j]
                lo, hi = max(ak0, panel_start), min(ak1, panel_stop)
                if lo >= hi:
                    continue
                owner = rank_of(i, j)
                piece = local_a[owner][:, lo - ak0 : hi - ak0]
                received = broadcast(machine, owner, row_ranks, piece, kind="input")
                parts.append(received[owner])
            panel = concat_payloads(parts, axis=1) if parts else machine.zeros((i1 - i0, 0))
            a_panel_by_row.append(panel)

        # Broadcast this panel's B pieces along every process column.
        b_panel_by_col: list[np.ndarray] = []
        for j in range(pn):
            j0, j1 = j_ranges[j]
            col_ranks = [rank_of(i, j) for i in range(pm)]
            parts = []
            for i in range(pm):
                bk0, bk1 = k_row_slices[i]
                lo, hi = max(bk0, panel_start), min(bk1, panel_stop)
                if lo >= hi:
                    continue
                owner = rank_of(i, j)
                piece = local_b[owner][lo - bk0 : hi - bk0, :]
                received = broadcast(machine, owner, col_ranks, piece, kind="input")
                parts.append(received[owner])
            panel = concat_payloads(parts, axis=0) if parts else machine.zeros((0, j1 - j0))
            b_panel_by_col.append(panel)

        # Local rank-nb updates.
        for i in range(pm):
            for j in range(pn):
                r = rank_of(i, j)
                a_panel = a_panel_by_row[i]
                b_panel = b_panel_by_col[j]
                if a_panel.shape[1] and b_panel.shape[0]:
                    machine.local_multiply(r, a_panel, b_panel, accumulate_into=local_c[r])
        machine.check_memory()
        machine.commit_round()

    # Assemble the result for verification (a shape token in volume mode).
    c_global = machine.zeros((m, n))
    for i in range(pm):
        for j in range(pn):
            i0, i1 = i_ranges[i]
            j0, j1 = j_ranges[j]
            c_global[i0:i1, j0:j1] = local_c[rank_of(i, j)]
    return SummaRunResult(
        matrix=c_global, grid=(pm, pn), panel_width=panel_width, counters=machine.counters
    )


def _summa_plane(
    machine: DistributedMachine,
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    pm: int,
    pn: int,
    panel_width: int,
    i_ranges: list[tuple[int, int]],
    j_ranges: list[tuple[int, int]],
    k_col_slices: list[tuple[int, int]],
    k_row_slices: list[tuple[int, int]],
) -> np.ndarray:
    """SUMMA on the stacked-array engine; returns the global product.

    The grid's local A / B / C blocks live in three zero-padded
    ``(pm*pn, rows, cols)`` stacks.  Each panel step gathers the A row
    panels and B column panels with *strided* slot slices (``A[j::pn]`` is
    exactly grid column ``j``), multiplies all ``pm x pn`` blocks with one
    broadcasting ``np.matmul`` and posts the panel broadcasts' counters as
    one batched update -- byte-identical to the per-hop reference path.
    """
    m = i_ranges[-1][1]
    n = j_ranges[-1][1]
    k = k_col_slices[-1][1]
    lm = np.array([hi - lo for lo, hi in i_ranges], dtype=np.int64)
    ln = np.array([hi - lo for lo, hi in j_ranges], dtype=np.int64)
    akw = np.array([hi - lo for lo, hi in k_col_slices], dtype=np.int64)
    bkw = np.array([hi - lo for lo, hi in k_row_slices], dtype=np.int64)
    lm_max, ln_max = int(lm.max()), int(ln.max())

    a_plane = machine.new_plane("summa.A", (pm * pn, lm_max, max(1, int(akw.max()))))
    b_plane = machine.new_plane("summa.B", (pm * pn, max(1, int(bkw.max())), ln_max))
    c_plane = machine.new_plane("summa.C", (pm * pn, lm_max, ln_max))
    for i in range(pm):
        i0, i1 = i_ranges[i]
        bk0, bk1 = k_row_slices[i]
        for j in range(pn):
            j0, j1 = j_ranges[j]
            ak0, ak1 = k_col_slices[j]
            slot = i * pn + j
            a_plane.data[slot, : i1 - i0, : ak1 - ak0] = a_matrix[i0:i1, ak0:ak1]
            b_plane.data[slot, : bk1 - bk0, : j1 - j0] = b_matrix[bk0:bk1, j0:j1]
            rank = machine.rank(slot)
            rank.put("A", a_plane.attach(slot, slot, slice(0, i1 - i0), slice(0, ak1 - ak0)))
            rank.put("B", b_plane.attach(slot, slot, slice(0, bk1 - bk0), slice(0, j1 - j0)))
            rank.put("C", c_plane.attach(slot, slot, slice(0, i1 - i0), slice(0, j1 - j0)))
    # The reference path checks memory once per panel; the stores never
    # change between panels, so one check records the identical peak.
    machine.check_memory()

    # Round-invariant broadcast hop arrays (see the COSMA batched engine).
    if pn > 1:
        hops = broadcast_hops(pn)
        s_pos = np.array([s for s, _ in hops], dtype=np.int64)
        d_pos = np.array([d for _, d in hops], dtype=np.int64)
        pj_src = (np.arange(pn)[:, None] + s_pos[None, :]) % pn  # (owner, hop)
        pj_dst = (np.arange(pn)[:, None] + d_pos[None, :]) % pn
        row_srcs = np.arange(pm)[:, None, None] * pn + pj_src[None]  # (i, owner, hop)
        row_dsts = np.arange(pm)[:, None, None] * pn + pj_dst[None]
    if pm > 1:
        hops = broadcast_hops(pm)
        s_pos = np.array([s for s, _ in hops], dtype=np.int64)
        d_pos = np.array([d for _, d in hops], dtype=np.int64)
        pi_src = (np.arange(pm)[:, None] + s_pos[None, :]) % pm
        pi_dst = (np.arange(pm)[:, None] + d_pos[None, :]) % pm
        col_srcs = pi_src[None] * pn + np.arange(pn)[:, None, None]  # (j, owner, hop)
        col_dsts = pi_dst[None] * pn + np.arange(pn)[:, None, None]
    all_ranks = np.arange(pm * pn)
    mn_outer = np.multiply.outer(lm, ln).ravel()
    ak_lo = np.array([lo for lo, _ in k_col_slices], dtype=np.int64)
    ak_hi = np.array([hi for _, hi in k_col_slices], dtype=np.int64)
    bk_lo = np.array([lo for lo, _ in k_row_slices], dtype=np.int64)
    bk_hi = np.array([hi for _, hi in k_row_slices], dtype=np.int64)

    c_view = c_plane.data.reshape(pm, pn, lm_max, ln_max)
    for panel_start in range(0, k, panel_width):
        panel_stop = min(panel_start + panel_width, k)
        width = panel_stop - panel_start
        src_parts: list[np.ndarray] = []
        dst_parts: list[np.ndarray] = []
        word_parts: list[np.ndarray] = []
        w_a = np.minimum(ak_hi, panel_stop) - np.maximum(ak_lo, panel_start)
        w_b = np.minimum(bk_hi, panel_stop) - np.maximum(bk_lo, panel_start)
        if pn > 1:
            active = w_a > 0
            if active.any():
                src_parts.append(row_srcs[:, active, :].ravel())
                dst_parts.append(row_dsts[:, active, :].ravel())
                word_parts.append(np.repeat(
                    np.multiply.outer(lm, w_a[active]).ravel(), pn - 1
                ))
        if pm > 1:
            active = w_b > 0
            if active.any():
                src_parts.append(col_srcs[:, active, :].ravel())
                dst_parts.append(col_dsts[:, active, :].ravel())
                word_parts.append(np.repeat(
                    np.multiply.outer(ln, w_b[active]).ravel(), pm - 1
                ))
        if src_parts:
            machine.post_transfers(
                np.concatenate(src_parts), np.concatenate(dst_parts),
                np.concatenate(word_parts), kind="input",
            )
        machine.post_flops(all_ranks, mn_outer * (2 * width))

        # Strided panel assembly + one broadcasting batched GEMM.
        a_panels = np.zeros((pm, lm_max, width))
        for j in range(pn):
            if w_a[j] <= 0:
                continue
            lo = max(int(ak_lo[j]), panel_start)
            hi = min(int(ak_hi[j]), panel_stop)
            a_panels[:, :, lo - panel_start : hi - panel_start] = (
                a_plane.data[j::pn, :, lo - ak_lo[j] : hi - ak_lo[j]]
            )
        b_panels = np.zeros((pn, width, ln_max))
        for i in range(pm):
            if w_b[i] <= 0:
                continue
            lo = max(int(bk_lo[i]), panel_start)
            hi = min(int(bk_hi[i]), panel_stop)
            b_panels[:, lo - panel_start : hi - panel_start, :] = (
                b_plane.data[i * pn : (i + 1) * pn, lo - bk_lo[i] : hi - bk_lo[i], :]
            )
        c_view += np.matmul(a_panels[:, None], b_panels[None, :])

    c_global = np.zeros((m, n))
    for i in range(pm):
        i0, i1 = i_ranges[i]
        for j in range(pn):
            j0, j1 = j_ranges[j]
            c_global[i0:i1, j0:j1] = c_view[i, j, : i1 - i0, : j1 - j0]
    return c_global
