"""State-of-the-art baseline algorithms re-implemented on the simulator.

* :mod:`repro.baselines.cannon` -- Cannon's 2D algorithm (square grids).
* :mod:`repro.baselines.summa` -- SUMMA, the 2D algorithm behind ScaLAPACK's
  ``PDGEMM`` (our ScaLAPACK stand-in).
* :mod:`repro.baselines.grid25d` -- the 2.5D/3D decomposition of Solomonik &
  Demmel (our CTF stand-in).
* :mod:`repro.baselines.carma` -- the recursive CARMA decomposition of Demmel
  et al.
* :mod:`repro.baselines.cuboid` -- a generic executor that runs any cuboidal
  domain decomposition on the simulator (used by CARMA and by ablations).
* :mod:`repro.baselines.costs` -- the analytic per-processor I/O and latency
  costs of Table 3 for every decomposition.
"""

from repro.baselines.cannon import cannon_multiply
from repro.baselines.carma import carma_domains, carma_multiply
from repro.baselines.costs import (
    io_cost_25d,
    io_cost_2d,
    io_cost_carma,
    io_cost_cosma,
    latency_cost_25d,
    latency_cost_2d,
    latency_cost_carma,
    latency_cost_cosma,
)
from repro.baselines.cuboid import CuboidDomain, cuboid_multiply
from repro.baselines.grid25d import grid25d_multiply
from repro.baselines.summa import summa_multiply

__all__ = [
    "cannon_multiply",
    "summa_multiply",
    "grid25d_multiply",
    "carma_multiply",
    "carma_domains",
    "cuboid_multiply",
    "CuboidDomain",
    "io_cost_2d",
    "io_cost_25d",
    "io_cost_carma",
    "io_cost_cosma",
    "latency_cost_2d",
    "latency_cost_25d",
    "latency_cost_carma",
    "latency_cost_cosma",
]
