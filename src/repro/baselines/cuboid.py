"""Generic executor for cuboidal domain decompositions.

Several algorithms (CARMA's recursive splitting, explicit 3D grids, ablation
experiments) boil down to: *assign every rank a cuboid of the iteration
space, fetch the inputs its cuboid projects onto, multiply locally, and reduce
overlapping output projections*.  This module runs any such assignment on the
distributed machine simulator with honest communication accounting:

* every element of A, B and C is *owned* by exactly one rank -- the
  lowest-numbered rank whose cuboid projects onto it (so the initial layout
  stores each matrix exactly once, co-located with a rank that needs it);
* a rank receives the parts of its A / B projections it does not own from
  their owners (counted, grouped into one message per (owner, receiver) pair);
* every rank's partial C block is accumulated onto the owners of the
  corresponding output elements (counted the same way).

The per-rank *received* volume therefore equals the size of the rank's A and B
projections minus what it already owns, plus its share of the C reduction --
exactly the quantity the communication lower bounds reason about.  Cuboids may
overlap partially in their projections (as happens for CARMA with
non-power-of-two dimensions); the element-wise ownership handles that
correctly.

In ``plane`` mode (``machine.transport.planar``) the executor keeps numerics
but drops the per-owner mask loops: fetches/reductions post their counters
through the batched per-owner element counts (the same path ``volume`` mode
uses) while the values move as dense slices, and the local products run as
stacked GEMMs grouped by cuboid shape (:func:`_batched_products`).  CARMA
inherits this path through :func:`cuboid_multiply`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.counters import CommCounters
from repro.machine.simulator import DistributedMachine
from repro.machine.transport import as_payload

Range = tuple[int, int]


@dataclass(frozen=True)
class CuboidDomain:
    """The cuboid of multiplications assigned to one rank."""

    rank: int
    i_range: Range
    j_range: Range
    k_range: Range

    @property
    def shape(self) -> tuple[int, int, int]:
        return (
            self.i_range[1] - self.i_range[0],
            self.j_range[1] - self.j_range[0],
            self.k_range[1] - self.k_range[0],
        )

    @property
    def volume(self) -> int:
        lm, ln, lk = self.shape
        return lm * ln * lk


@dataclass
class CuboidRunResult:
    """Outcome of a cuboid-decomposition run."""

    matrix: np.ndarray
    domains: tuple[CuboidDomain, ...]
    counters: CommCounters

    @property
    def mean_words_per_rank(self) -> float:
        return self.counters.mean_words_per_rank()


def validate_domains(m: int, n: int, k: int, domains: list[CuboidDomain]) -> None:
    """Check that the cuboids tile the full ``m x n x k`` iteration space.

    The check is volumetric plus per-dimension bounds; together with
    disjointness of the per-rank cuboids (guaranteed by every generator in
    this library) this implies an exact tiling.
    """
    total = 0
    for domain in domains:
        for (lo, hi), extent in zip(
            (domain.i_range, domain.j_range, domain.k_range), (m, n, k)
        ):
            if not (0 <= lo <= hi <= extent):
                raise ValueError(f"domain {domain} exceeds the iteration space {m}x{n}x{k}")
        total += domain.volume
    if total != m * n * k:
        raise ValueError(
            f"domains cover {total} multiplications, expected {m * n * k}: "
            "the decomposition does not tile the iteration space"
        )


def _ownership_map(shape: tuple[int, int], regions: list[tuple[int, Range, Range]]) -> np.ndarray:
    """Element-owner map: the first listed rank whose region covers the element."""
    owners = np.full(shape, -1, dtype=np.int64)
    for rank, rows, cols in regions:
        view = owners[rows[0] : rows[1], cols[0] : cols[1]]
        view[view == -1] = rank
    return owners


def _fetch_block(
    machine: DistributedMachine,
    receiver: int,
    rows: Range,
    cols: Range,
    owners: np.ndarray,
    source: np.ndarray,
    kind: str,
) -> np.ndarray:
    """Assemble the dense ``rows x cols`` block of ``source`` on ``receiver``.

    Parts owned by other ranks are transferred (one message per owner) and
    counted; parts owned by the receiver are free.  In counters-only mode the
    per-owner element counts are derived in one vectorized pass and posted as
    a single batched update -- no per-owner masks are materialized.
    """
    local_owners = owners[rows[0] : rows[1], cols[0] : cols[1]]
    if machine.transport.counters_only or machine.transport.planar:
        unique, counts = np.unique(local_owners, return_counts=True)
        foreign = unique != receiver
        machine.post_transfers(
            unique[foreign], np.full(int(foreign.sum()), receiver),
            counts[foreign], kind=kind,
        )
        if machine.transport.counters_only:
            return machine.zeros((rows[1] - rows[0], cols[1] - cols[0]))
        # Plane mode: the assembled block's values equal the dense source
        # slice (every element is delivered exactly once), so skip the
        # per-owner masks and hand out a private copy directly.
        return np.array(source[rows[0] : rows[1], cols[0] : cols[1]])
    block = machine.zeros((rows[1] - rows[0], cols[1] - cols[0]))
    local_values = source[rows[0] : rows[1], cols[0] : cols[1]]
    for owner in np.unique(local_owners):
        mask = local_owners == owner
        values = local_values[mask]
        if owner == receiver:
            block[mask] = values
        else:
            block[mask] = machine.send(int(owner), receiver, values, kind=kind)
    return block


def _batched_products(
    machine: DistributedMachine,
    domains: list[CuboidDomain],
    a_blocks: dict[int, np.ndarray],
    b_blocks: dict[int, np.ndarray],
) -> dict[int, np.ndarray]:
    """Local products as stacked GEMMs, one ``np.matmul`` per cuboid shape.

    CARMA-style recursive decompositions produce only a handful of distinct
    cuboid shapes, so grouping by shape turns ``p`` Python-level multiplies
    into a few batched calls; flops are charged per rank exactly as
    ``local_multiply`` would.
    """
    groups: dict[tuple[int, int, int], list[CuboidDomain]] = {}
    for domain in domains:
        groups.setdefault(domain.shape, []).append(domain)
    products: dict[int, np.ndarray] = {}
    for (lm, ln, lk), members in groups.items():
        machine.post_flops(
            np.array([d.rank for d in members], dtype=np.intp), 2 * lm * ln * lk
        )
        stacked = np.matmul(
            np.stack([a_blocks[d.rank] for d in members]),
            np.stack([b_blocks[d.rank] for d in members]),
        )
        for index, domain in enumerate(members):
            products[domain.rank] = stacked[index]
    return products


def cuboid_multiply(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    domains: list[CuboidDomain],
    machine: DistributedMachine | None = None,
    p: int | None = None,
    memory_words: int | None = None,
) -> CuboidRunResult:
    """Run an arbitrary cuboidal decomposition on the simulator.

    Parameters
    ----------
    a_matrix, b_matrix:
        Global inputs.
    domains:
        One :class:`CuboidDomain` per participating rank; they must tile the
        iteration space.
    machine:
        Optional pre-built simulator; built from ``p``/``memory_words``
        otherwise (``p`` defaults to the number of domains).
    """
    a_matrix = as_payload(a_matrix)
    b_matrix = as_payload(b_matrix)
    m, k = a_matrix.shape
    k2, n = b_matrix.shape
    if k != k2:
        raise ValueError(f"inner dimensions do not match: {a_matrix.shape} x {b_matrix.shape}")
    validate_domains(m, n, k, domains)
    if machine is None:
        p = p if p is not None else max(d.rank for d in domains) + 1
        machine = DistributedMachine(p, memory_words=memory_words or (1 << 20))

    ordered = sorted(domains, key=lambda d: d.rank)
    a_owners = _ownership_map((m, k), [(d.rank, d.i_range, d.k_range) for d in ordered])
    b_owners = _ownership_map((k, n), [(d.rank, d.k_range, d.j_range) for d in ordered])
    c_owners = _ownership_map((m, n), [(d.rank, d.i_range, d.j_range) for d in ordered])

    # ------------------------------------------------------------------
    # input fetch + local multiplication
    # ------------------------------------------------------------------
    partial_c: dict[int, np.ndarray] = {}
    if machine.transport.planar:
        # Stacked-array path: fetch all blocks (counters batched per block),
        # then run the local products as stacked GEMMs grouped by shape.
        a_blocks: dict[int, np.ndarray] = {}
        b_blocks: dict[int, np.ndarray] = {}
        for domain in ordered:
            a_blocks[domain.rank] = _fetch_block(
                machine, domain.rank, domain.i_range, domain.k_range,
                a_owners, a_matrix, kind="input",
            )
            b_blocks[domain.rank] = _fetch_block(
                machine, domain.rank, domain.k_range, domain.j_range,
                b_owners, b_matrix, kind="input",
            )
            machine.rank(domain.rank).put("A", a_blocks[domain.rank])
            machine.rank(domain.rank).put("B", b_blocks[domain.rank])
        partial_c = _batched_products(machine, ordered, a_blocks, b_blocks)
        for domain in ordered:
            machine.rank(domain.rank).put("C_partial", partial_c[domain.rank])
    else:
        for domain in ordered:
            a_block = _fetch_block(
                machine, domain.rank, domain.i_range, domain.k_range, a_owners, a_matrix,
                kind="input",
            )
            b_block = _fetch_block(
                machine, domain.rank, domain.k_range, domain.j_range, b_owners, b_matrix,
                kind="input",
            )
            machine.rank(domain.rank).put("A", a_block)
            machine.rank(domain.rank).put("B", b_block)
            product = machine.local_multiply(domain.rank, a_block, b_block)
            partial_c[domain.rank] = product
            machine.rank(domain.rank).put("C_partial", product)

    # ------------------------------------------------------------------
    # reduce partial C blocks onto the element owners and assemble the result
    # ------------------------------------------------------------------
    c_global = machine.zeros((m, n))
    for domain in ordered:
        i0, i1 = domain.i_range
        j0, j1 = domain.j_range
        block = partial_c[domain.rank]
        local_owners = c_owners[i0:i1, j0:j1]
        if machine.transport.counters_only or machine.transport.planar:
            # Post the per-owner element counts (transfer + accumulation
            # flops) in one batched update -- no per-owner masks.  In plane
            # mode the values land with one dense accumulate: every element
            # of the block is added to its output position exactly once, as
            # the masked per-owner path would.
            unique, counts = np.unique(local_owners, return_counts=True)
            foreign = unique != domain.rank
            machine.post_transfers(
                np.full(int(foreign.sum()), domain.rank), unique[foreign],
                counts[foreign], kind="output",
            )
            machine.counters.add_flops(unique[foreign], counts[foreign])
            if machine.transport.planar:
                c_global[i0:i1, j0:j1] += block
            continue
        for owner in np.unique(local_owners):
            mask = local_owners == owner
            values = block[mask]
            if owner != domain.rank:
                values = machine.send(domain.rank, int(owner), values, kind="output")
                machine.rank(int(owner)).counters.flops += int(values.size)
            target = c_global[i0:i1, j0:j1]
            target[mask] += values
            c_global[i0:i1, j0:j1] = target

    machine.check_memory()
    return CuboidRunResult(matrix=c_global, domains=tuple(domains), counters=machine.counters)
