"""Analytic per-processor I/O and latency costs of Table 3.

Each formula gives the *general case* row of Table 3; the two special-case
rows (square matrices with limited memory, tall matrices with extra memory)
are obtained by instantiating the same formulas and are checked against the
paper's simplified expressions in the tests and in
``benchmarks/bench_table3_costs.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING

from repro.core.cost_model import cosma_io_cost, cosma_latency_cost
from repro.utils.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (workloads is light,
    # but costs should stay importable without the workloads package)
    from repro.workloads.scaling import Scenario


# ---------------------------------------------------------------------------
# 2D decomposition (Cannon / SUMMA / ScaLAPACK)
# ---------------------------------------------------------------------------
def io_cost_2d(m: int, n: int, k: int, p: int) -> float:
    """Per-processor I/O of the 2D decomposition: ``k(m + n)/sqrt(p) + mn/p``."""
    check_positive_int(p, "p")
    return float(k) * (m + n) / math.sqrt(p) + float(m) * n / p


def latency_cost_2d(m: int, n: int, k: int, p: int) -> float:
    """Latency of the 2D decomposition: ``2 k log2(sqrt(p))`` rounds (Table 3)."""
    check_positive_int(p, "p")
    return 2.0 * k * math.log2(max(2.0, math.sqrt(p)))


# ---------------------------------------------------------------------------
# 2.5D decomposition (CTF); the 3D decomposition is the special case c = p^(1/3)
# ---------------------------------------------------------------------------
def replication_factor_25d(m: int, n: int, k: int, p: int, s: int) -> float:
    """The 2.5D replication factor ``c = pS / (mk + nk)``, clamped to ``[1, p^(1/3)]``."""
    check_positive_int(p, "p")
    check_positive_int(s, "S")
    ideal = float(p) * s / (float(m) * k + float(n) * k)
    return min(max(1.0, ideal), float(p) ** (1.0 / 3.0))


def io_cost_25d(m: int, n: int, k: int, p: int, s: int) -> float:
    """Per-processor I/O of the 2.5D decomposition.

    With ``c`` layers each of ``p/c`` processors, a processor communicates the
    SUMMA volume of its layer's ``k/c``-deep slice plus the reduction of its
    ``C`` block across layers::

        Q = k (m + n) / sqrt(p c) + m n c / p

    Substituting ``c = pS/(k(m+n))`` recovers Table 3's
    ``(k(m+n))^{3/2} / (p sqrt(S)) + mnS/(k(m+n))``.
    """
    c = replication_factor_25d(m, n, k, p, s)
    return float(k) * (m + n) / math.sqrt(p * c) + float(m) * n * c / p


def latency_cost_25d(m: int, n: int, k: int, p: int, s: int) -> float:
    """Latency of the 2.5D decomposition (Table 3)."""
    c = replication_factor_25d(m, n, k, p, s)
    steps = max(1.0, k / c / math.sqrt(max(1.0, p / c)))
    return steps + 3.0 * math.log2(max(2.0, c))


def io_cost_3d(m: int, n: int, k: int, p: int) -> float:
    """Per-processor I/O of the 3D decomposition (``c = p^(1/3)``)."""
    c = float(p) ** (1.0 / 3.0)
    return float(k) * (m + n) / math.sqrt(p * c) + float(m) * n * c / p


# ---------------------------------------------------------------------------
# Recursive decomposition (CARMA)
# ---------------------------------------------------------------------------
def io_cost_carma(m: int, n: int, k: int, p: int, s: int) -> float:
    """Per-processor I/O of the recursive (CARMA) decomposition.

    Table 3: ``2 min{ sqrt(3) mnk / (p sqrt(S)), (mnk/p)^(2/3) } + (mnk/p)^(2/3)``.
    As with Theorem 2, the two branches correspond to the memory regimes: when
    all three faces of the cubic local domain fit in memory
    (``S >= 3 (mnk/p)^(2/3)``) the cost is ``3 (mnk/p)^(2/3)`` like COSMA's;
    otherwise the recursive schedule streams through memory-sized tiles and
    pays the ``sqrt(3)`` penalty of its cubic domains (section 6.2).
    """
    check_positive_int(p, "p")
    check_positive_int(s, "S")
    mnk = float(m) * n * k
    cubic_face = (mnk / p) ** (2.0 / 3.0)
    if s >= 3.0 * cubic_face:
        return 3.0 * cubic_face
    return 2.0 * math.sqrt(3.0) * mnk / (p * math.sqrt(s)) + cubic_face


def latency_cost_carma(m: int, n: int, k: int, p: int, s: int) -> float:
    """Latency of the recursive decomposition (Table 3)."""
    check_positive_int(p, "p")
    mnk = float(m) * n * k
    return (3.0 ** 1.5) * mnk / (p * s ** 1.5) + 3.0 * math.log2(max(2.0, p))


# ---------------------------------------------------------------------------
# COSMA (re-exported so every algorithm's cost lives in one namespace)
# ---------------------------------------------------------------------------
def io_cost_cosma(m: int, n: int, k: int, p: int, s: int) -> float:
    """Per-processor I/O of COSMA (the Theorem 2 optimum)."""
    return cosma_io_cost(m, n, k, p, s)


def latency_cost_cosma(m: int, n: int, k: int, p: int, s: int) -> float:
    """Latency of COSMA (Table 3)."""
    return cosma_latency_cost(m, n, k, p, s)


# ---------------------------------------------------------------------------
# Shared prediction entry point (used by the sweep aggregator, the CLI and the
# performance model -- the one place that maps an algorithm name onto its
# Table 3 formulas, instead of per-call-site math).
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CostPrediction:
    """Analytic per-processor cost of one algorithm on one scenario."""

    algorithm: str
    #: Table 3 per-processor I/O (words moved through the slowest processor).
    io_words_per_rank: float
    #: Table 3 latency cost (communication rounds on the critical path).
    latency_rounds: float
    #: Useful flops per processor under perfect load balance: ``2mnk / p``.
    flops_per_rank: float


#: Algorithm name -> (io, latency) formula pair, all with the uniform
#: signature ``(m, n, k, p, s)``.  The harness names map onto the paper's
#: comparison targets (ScaLAPACK ~ 2D SUMMA, CTF ~ 2.5D); the decomposition
#: aliases are accepted too.
_COST_MODELS: dict[str, tuple] = {
    "COSMA": (io_cost_cosma, latency_cost_cosma),
    "ScaLAPACK": (lambda m, n, k, p, s: io_cost_2d(m, n, k, p),
                  lambda m, n, k, p, s: latency_cost_2d(m, n, k, p)),
    "CTF": (io_cost_25d, latency_cost_25d),
    "CARMA": (io_cost_carma, latency_cost_carma),
    "Cannon": (lambda m, n, k, p, s: io_cost_2d(m, n, k, p),
               lambda m, n, k, p, s: latency_cost_2d(m, n, k, p)),
}
_COST_MODELS["SUMMA"] = _COST_MODELS["2D"] = _COST_MODELS["ScaLAPACK"]
_COST_MODELS["2.5D"] = _COST_MODELS["CTF"]


def register_cost_model(algorithm: str, io_fn, latency_fn=None, aliases=()) -> None:
    """Register the Table-3-style formulas of an algorithm (and its aliases).

    Called by :func:`repro.algorithms.registry.register` for every spec that
    carries cost formulas, so :func:`predict` / :func:`predict_mnk` -- and
    with them the sweep aggregator, the performance model and the CLI
    ``bounds`` table -- automatically cover algorithms registered from
    outside this module.  ``latency_fn`` defaults to zero rounds when the
    algorithm has no published latency analysis.
    """
    if latency_fn is None:
        def latency_fn(m, n, k, p, s):
            return 0.0
    _COST_MODELS[algorithm] = (io_fn, latency_fn)
    for alias in aliases:
        _COST_MODELS[alias] = _COST_MODELS[algorithm]
    predict_mnk.cache_clear()


def unregister_cost_model(algorithm: str, aliases=()) -> None:
    """Retract a registered cost model (the registry's unregister hook).

    Without this, ``predict`` would keep answering for an algorithm the
    registry no longer knows -- or worse, attribute a stale model to an
    unrelated algorithm registered later under the same name.
    """
    _COST_MODELS.pop(algorithm, None)
    for alias in aliases:
        _COST_MODELS.pop(alias, None)
    predict_mnk.cache_clear()


@lru_cache(maxsize=8192)
def predict_mnk(algorithm: str, m: int, n: int, k: int, p: int, s: int) -> CostPrediction:
    """Predict the Table 3 costs of ``algorithm`` on an explicit problem.

    Memoized per parameter tuple (the prediction is a frozen value object);
    sweep aggregation calls this once per tidy row, so repeated campaigns
    over the same grid stop re-evaluating the same formulas.  The cache is
    cleared whenever a cost model is (un)registered.
    """
    if algorithm not in _COST_MODELS:
        raise KeyError(f"no cost model for {algorithm!r}; known: {sorted(_COST_MODELS)}")
    io_fn, latency_fn = _COST_MODELS[algorithm]
    return CostPrediction(
        algorithm=algorithm,
        io_words_per_rank=float(io_fn(m, n, k, p, s)),
        latency_rounds=float(latency_fn(m, n, k, p, s)),
        flops_per_rank=2.0 * m * n * k / p,
    )


def predict(algorithm: str, scenario: "Scenario") -> CostPrediction:
    """Predict the Table 3 costs of ``algorithm`` on a benchmark scenario."""
    shape = scenario.shape
    return predict_mnk(algorithm, shape.m, shape.n, shape.k, scenario.p, scenario.memory_words)


# ---------------------------------------------------------------------------
# Historical algorithms for the Figure 2 "evolution" plot
# ---------------------------------------------------------------------------
def io_cost_naive_1d(m: int, n: int, k: int, p: int) -> float:
    """A 1D (row-striped) decomposition: every processor needs all of B."""
    check_positive_int(p, "p")
    return float(k) * n + float(m) * k / p + float(m) * n / p


def evolution_table(m: int, n: int, k: int, p: int, s: int) -> dict[str, float]:
    """Worst-case per-processor I/O of the algorithm lineage shown in Figure 2."""
    return {
        "naive-1D": io_cost_naive_1d(m, n, k, p),
        "Cannon-2D": io_cost_2d(m, n, k, p),
        "PUMMA/SUMMA-2D": io_cost_2d(m, n, k, p),
        "2.5D": io_cost_25d(m, n, k, p, s),
        "CARMA-recursive": io_cost_carma(m, n, k, p, s),
        "COSMA": io_cost_cosma(m, n, k, p, s),
        "lower-bound": cosma_io_cost(m, n, k, p, s),
    }
