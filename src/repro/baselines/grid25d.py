"""The 2.5D decomposition (Solomonik & Demmel, 2011) -- the CTF stand-in.

The processor grid is ``[q x q x c]`` with ``q = sqrt(p / c)``; the
replication factor ``c`` grows with the available extra memory
(``c = pS / (mk + nk)``, clamped to ``[1, p^(1/3)]``).  Layer ``l`` of the
grid computes the contribution of its own ``k/c`` slice of the inner
dimension using a 2D (SUMMA-style) algorithm, and the per-layer partial
results of C are finally reduced across the ``c`` layers.

When no memory-matching ``c`` divides ``p`` into a square layer, the
implementation falls back to smaller ``c`` (ultimately ``c = 1``, plain 2D),
mirroring how CTF's decompositions can end up far from optimal for awkward
processor counts -- one of the effects the paper's evaluation highlights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.machine.collectives import reduce
from repro.machine.counters import CommCounters
from repro.machine.simulator import DistributedMachine
from repro.machine.transport import as_payload, ascontiguous, concat_payloads, payload_words
from repro.utils.intmath import divisors, split_offsets
from repro.utils.validation import check_positive_int


@dataclass
class Grid25DRunResult:
    """Outcome of a 2.5D run."""

    matrix: np.ndarray
    grid: tuple[int, int, int]
    counters: CommCounters

    @property
    def replication_factor(self) -> int:
        return self.grid[2]

    @property
    def mean_words_per_rank(self) -> float:
        return self.counters.mean_words_per_rank()


def choose_25d_grid(m: int, n: int, k: int, p: int, memory_words: int) -> tuple[int, int, int]:
    """Pick the ``[q, q, c]`` grid: ``c`` as close as possible to the memory-ideal value.

    Only configurations where ``p / c`` is a perfect square are usable by the
    classic formulation; among those we pick the ``c`` closest to
    ``min(pS/(mk+nk), p^(1/3))`` (and at most ``k``).
    """
    check_positive_int(p, "p")
    check_positive_int(memory_words, "memory_words")
    ideal = float(p) * memory_words / (float(m) * k + float(n) * k)
    ideal = min(max(1.0, ideal), float(p) ** (1.0 / 3.0), float(k))
    best: tuple[int, int, int] | None = None
    best_error = math.inf
    for c in divisors(p):
        if c > k:
            continue
        layer = p // c
        q = int(math.isqrt(layer))
        if q * q != layer or q > min(m, n):
            continue
        error = abs(math.log(c / ideal)) if ideal > 0 else float(c)
        if error < best_error:
            best_error = error
            best = (q, q, c)
    if best is None:
        # No square layer exists at all; use the largest square that fits and
        # leave the remaining ranks idle (c = 1).
        q = int(math.isqrt(p))
        best = (max(1, q), max(1, q), 1)
    return best


def grid25d_multiply(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    p: int,
    memory_words: int,
    machine: DistributedMachine | None = None,
    grid: tuple[int, int, int] | None = None,
) -> Grid25DRunResult:
    """Multiply ``A @ B`` with the 2.5D algorithm on a simulated machine.

    Parameters
    ----------
    p:
        Available processors.
    memory_words:
        Local memory per processor; determines the replication factor ``c``.
    grid:
        Optional explicit ``(q, q, c)`` grid override.
    """
    p = check_positive_int(p, "p")
    a_matrix = as_payload(a_matrix)
    b_matrix = as_payload(b_matrix)
    m, k = a_matrix.shape
    k2, n = b_matrix.shape
    if k != k2:
        raise ValueError(f"inner dimensions do not match: {a_matrix.shape} x {b_matrix.shape}")
    if grid is None:
        grid = choose_25d_grid(m, n, k, p, memory_words)
    qm, qn, c = grid
    if qm * qn * c > p:
        raise ValueError(f"grid {grid} needs {qm * qn * c} ranks but only {p} are available")
    if machine is None:
        machine = DistributedMachine(p, memory_words=memory_words)

    def rank_of(i: int, j: int, layer: int) -> int:
        return (i * qn + j) * c + layer

    i_ranges = split_offsets(m, qm)
    j_ranges = split_offsets(n, qn)
    layer_k_ranges = split_offsets(k, c)

    # Initial distribution: layer l owns the k-slice l of A and B, 2D-distributed
    # within the layer (A by [i-block, k-sub-slice], B by [k-sub-slice, j-block]).
    local_a: dict[int, np.ndarray] = {}
    local_b: dict[int, np.ndarray] = {}
    local_c: dict[int, np.ndarray] = {}
    layer_a_slices: list[list[tuple[int, int]]] = []
    layer_b_slices: list[list[tuple[int, int]]] = []
    for layer in range(c):
        lk0, lk1 = layer_k_ranges[layer]
        a_slices = [(lk0 + lo, lk0 + hi) for lo, hi in split_offsets(lk1 - lk0, qn)]
        b_slices = [(lk0 + lo, lk0 + hi) for lo, hi in split_offsets(lk1 - lk0, qm)]
        layer_a_slices.append(a_slices)
        layer_b_slices.append(b_slices)
        for i in range(qm):
            for j in range(qn):
                r = rank_of(i, j, layer)
                i0, i1 = i_ranges[i]
                j0, j1 = j_ranges[j]
                ak0, ak1 = a_slices[j]
                bk0, bk1 = b_slices[i]
                local_a[r] = ascontiguous(a_matrix[i0:i1, ak0:ak1])
                local_b[r] = ascontiguous(b_matrix[bk0:bk1, j0:j1])
                local_c[r] = machine.zeros((i1 - i0, j1 - j0))
                machine.rank(r).put("A", local_a[r])
                machine.rank(r).put("B", local_b[r])
                machine.rank(r).put("C", local_c[r])

    # Within each layer: every rank gathers its full A row panel (from its
    # process row) and full B column panel (from its process column) for the
    # layer's k slice, then multiplies.  The panel exchange volume matches a
    # SUMMA sweep over the slice.
    for layer in range(c):
        lk0, lk1 = layer_k_ranges[layer]
        a_slices = layer_a_slices[layer]
        b_slices = layer_b_slices[layer]
        for i in range(qm):
            for j in range(qn):
                r = rank_of(i, j, layer)
                i0, i1 = i_ranges[i]
                j0, j1 = j_ranges[j]
                a_owners = [rank_of(i, jj, layer) for jj in range(qn)]
                b_owners = [rank_of(ii, j, layer) for ii in range(qm)]
                if machine.transport.counters_only:
                    # Counters-only payloads: account the whole row+column
                    # gather as one batched update per panel.
                    srcs = [o for o in a_owners if o != r]
                    machine.post_transfers(
                        srcs, [r] * len(srcs),
                        [payload_words(local_a[o]) for o in srcs], kind="input",
                    )
                    srcs = [o for o in b_owners if o != r]
                    machine.post_transfers(
                        srcs, [r] * len(srcs),
                        [payload_words(local_b[o]) for o in srcs], kind="input",
                    )
                    a_parts = [local_a[o] for o in a_owners]
                    b_parts = [local_b[o] for o in b_owners]
                else:
                    # Gather the A panel A[i-block, layer k-slice] from the
                    # process row and the B panel B[layer k-slice, j-block]
                    # from the process column.
                    a_parts = [
                        local_a[o] if o == r else machine.send(o, r, local_a[o], kind="input")
                        for o in a_owners
                    ]
                    b_parts = [
                        local_b[o] if o == r else machine.send(o, r, local_b[o], kind="input")
                        for o in b_owners
                    ]
                a_panel = concat_payloads(a_parts, axis=1)
                b_panel = concat_payloads(b_parts, axis=0)
                machine.local_multiply(r, a_panel, b_panel, accumulate_into=local_c[r])
        machine.check_memory()

    # Reduce the per-layer partial C blocks across layers onto layer 0.
    c_global = machine.zeros((m, n))
    for i in range(qm):
        for j in range(qn):
            fiber = [rank_of(i, j, layer) for layer in range(c)]
            owner = rank_of(i, j, 0)
            blocks = {r: local_c[r] for r in fiber}
            total = reduce(machine, owner, fiber, blocks, kind="output") if c > 1 else blocks[owner]
            i0, i1 = i_ranges[i]
            j0, j1 = j_ranges[j]
            c_global[i0:i1, j0:j1] = total
            machine.rank(owner).put("C_final", total)

    return Grid25DRunResult(matrix=c_global, grid=(qm, qn, c), counters=machine.counters)
