"""The 2.5D decomposition (Solomonik & Demmel, 2011) -- the CTF stand-in.

The processor grid is ``[q x q x c]`` with ``q = sqrt(p / c)``; the
replication factor ``c`` grows with the available extra memory
(``c = pS / (mk + nk)``, clamped to ``[1, p^(1/3)]``).  Layer ``l`` of the
grid computes the contribution of its own ``k/c`` slice of the inner
dimension using a 2D (SUMMA-style) algorithm, and the per-layer partial
results of C are finally reduced across the ``c`` layers.

When no memory-matching ``c`` divides ``p`` into a square layer, the
implementation falls back to smaller ``c`` (ultimately ``c = 1``, plain 2D),
mirroring how CTF's decompositions can end up far from optimal for awkward
processor counts -- one of the effects the paper's evaluation highlights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.machine.collectives import reduce, reduce_hops
from repro.machine.counters import CommCounters
from repro.machine.simulator import DistributedMachine
from repro.machine.transport import (
    as_payload,
    ascontiguous,
    concat_payloads,
    payload_words,
)
from repro.utils.intmath import divisors, split_offsets
from repro.utils.validation import check_positive_int


@dataclass
class Grid25DRunResult:
    """Outcome of a 2.5D run."""

    matrix: np.ndarray
    grid: tuple[int, int, int]
    counters: CommCounters

    @property
    def replication_factor(self) -> int:
        return self.grid[2]

    @property
    def mean_words_per_rank(self) -> float:
        return self.counters.mean_words_per_rank()


def choose_25d_grid(m: int, n: int, k: int, p: int, memory_words: int) -> tuple[int, int, int]:
    """Pick the ``[q, q, c]`` grid: ``c`` as close as possible to the memory-ideal value.

    Only configurations where ``p / c`` is a perfect square are usable by the
    classic formulation; among those we pick the ``c`` closest to
    ``min(pS/(mk+nk), p^(1/3))`` (and at most ``k``).
    """
    check_positive_int(p, "p")
    check_positive_int(memory_words, "memory_words")
    ideal = float(p) * memory_words / (float(m) * k + float(n) * k)
    ideal = min(max(1.0, ideal), float(p) ** (1.0 / 3.0), float(k))
    best: tuple[int, int, int] | None = None
    best_error = math.inf
    for c in divisors(p):
        if c > k:
            continue
        layer = p // c
        q = int(math.isqrt(layer))
        if q * q != layer or q > min(m, n):
            continue
        error = abs(math.log(c / ideal)) if ideal > 0 else float(c)
        if error < best_error:
            best_error = error
            best = (q, q, c)
    if best is None:
        # No square layer exists at all; use the largest square that fits and
        # leave the remaining ranks idle (c = 1).
        q = int(math.isqrt(p))
        best = (max(1, q), max(1, q), 1)
    return best


def grid25d_multiply(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    p: int,
    memory_words: int,
    machine: DistributedMachine | None = None,
    grid: tuple[int, int, int] | None = None,
) -> Grid25DRunResult:
    """Multiply ``A @ B`` with the 2.5D algorithm on a simulated machine.

    Parameters
    ----------
    p:
        Available processors.
    memory_words:
        Local memory per processor; determines the replication factor ``c``.
    grid:
        Optional explicit ``(q, q, c)`` grid override.
    """
    p = check_positive_int(p, "p")
    a_matrix = as_payload(a_matrix)
    b_matrix = as_payload(b_matrix)
    m, k = a_matrix.shape
    k2, n = b_matrix.shape
    if k != k2:
        raise ValueError(f"inner dimensions do not match: {a_matrix.shape} x {b_matrix.shape}")
    if grid is None:
        grid = choose_25d_grid(m, n, k, p, memory_words)
    qm, qn, c = grid
    if qm * qn * c > p:
        raise ValueError(f"grid {grid} needs {qm * qn * c} ranks but only {p} are available")
    if machine is None:
        machine = DistributedMachine(p, memory_words=memory_words)

    def rank_of(i: int, j: int, layer: int) -> int:
        return (i * qn + j) * c + layer

    i_ranges = split_offsets(m, qm)
    j_ranges = split_offsets(n, qn)
    layer_k_ranges = split_offsets(k, c)

    if machine.transport.planar:
        c_global = _grid25d_plane(
            machine, a_matrix, b_matrix, qm, qn, c,
            i_ranges, j_ranges, layer_k_ranges,
        )
        return Grid25DRunResult(matrix=c_global, grid=(qm, qn, c), counters=machine.counters)

    # Initial distribution: layer l owns the k-slice l of A and B, 2D-distributed
    # within the layer (A by [i-block, k-sub-slice], B by [k-sub-slice, j-block]).
    local_a: dict[int, np.ndarray] = {}
    local_b: dict[int, np.ndarray] = {}
    local_c: dict[int, np.ndarray] = {}
    layer_a_slices: list[list[tuple[int, int]]] = []
    layer_b_slices: list[list[tuple[int, int]]] = []
    for layer in range(c):
        lk0, lk1 = layer_k_ranges[layer]
        a_slices = [(lk0 + lo, lk0 + hi) for lo, hi in split_offsets(lk1 - lk0, qn)]
        b_slices = [(lk0 + lo, lk0 + hi) for lo, hi in split_offsets(lk1 - lk0, qm)]
        layer_a_slices.append(a_slices)
        layer_b_slices.append(b_slices)
        for i in range(qm):
            for j in range(qn):
                r = rank_of(i, j, layer)
                i0, i1 = i_ranges[i]
                j0, j1 = j_ranges[j]
                ak0, ak1 = a_slices[j]
                bk0, bk1 = b_slices[i]
                local_a[r] = ascontiguous(a_matrix[i0:i1, ak0:ak1])
                local_b[r] = ascontiguous(b_matrix[bk0:bk1, j0:j1])
                local_c[r] = machine.zeros((i1 - i0, j1 - j0))
                machine.rank(r).put("A", local_a[r])
                machine.rank(r).put("B", local_b[r])
                machine.rank(r).put("C", local_c[r])

    # Within each layer: every rank gathers its full A row panel (from its
    # process row) and full B column panel (from its process column) for the
    # layer's k slice, then multiplies.  The panel exchange volume matches a
    # SUMMA sweep over the slice.
    for layer in range(c):
        lk0, lk1 = layer_k_ranges[layer]
        a_slices = layer_a_slices[layer]
        b_slices = layer_b_slices[layer]
        for i in range(qm):
            for j in range(qn):
                r = rank_of(i, j, layer)
                i0, i1 = i_ranges[i]
                j0, j1 = j_ranges[j]
                a_owners = [rank_of(i, jj, layer) for jj in range(qn)]
                b_owners = [rank_of(ii, j, layer) for ii in range(qm)]
                if machine.transport.counters_only:
                    # Counters-only payloads: account the whole row+column
                    # gather as one batched update per panel.
                    srcs = [o for o in a_owners if o != r]
                    machine.post_transfers(
                        srcs, [r] * len(srcs),
                        [payload_words(local_a[o]) for o in srcs], kind="input",
                    )
                    srcs = [o for o in b_owners if o != r]
                    machine.post_transfers(
                        srcs, [r] * len(srcs),
                        [payload_words(local_b[o]) for o in srcs], kind="input",
                    )
                    a_parts = [local_a[o] for o in a_owners]
                    b_parts = [local_b[o] for o in b_owners]
                else:
                    # Gather the A panel A[i-block, layer k-slice] from the
                    # process row and the B panel B[layer k-slice, j-block]
                    # from the process column.
                    a_parts = [
                        local_a[o] if o == r else machine.send(o, r, local_a[o], kind="input")
                        for o in a_owners
                    ]
                    b_parts = [
                        local_b[o] if o == r else machine.send(o, r, local_b[o], kind="input")
                        for o in b_owners
                    ]
                a_panel = concat_payloads(a_parts, axis=1)
                b_panel = concat_payloads(b_parts, axis=0)
                machine.local_multiply(r, a_panel, b_panel, accumulate_into=local_c[r])
        machine.check_memory()

    # Reduce the per-layer partial C blocks across layers onto layer 0.
    c_global = machine.zeros((m, n))
    for i in range(qm):
        for j in range(qn):
            fiber = [rank_of(i, j, layer) for layer in range(c)]
            owner = rank_of(i, j, 0)
            blocks = {r: local_c[r] for r in fiber}
            total = reduce(machine, owner, fiber, blocks, kind="output") if c > 1 else blocks[owner]
            i0, i1 = i_ranges[i]
            j0, j1 = j_ranges[j]
            c_global[i0:i1, j0:j1] = total
            machine.rank(owner).put("C_final", total)

    return Grid25DRunResult(matrix=c_global, grid=(qm, qn, c), counters=machine.counters)


def _grid25d_plane(
    machine: DistributedMachine,
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    qm: int,
    qn: int,
    c: int,
    i_ranges: list[tuple[int, int]],
    j_ranges: list[tuple[int, int]],
    layer_k_ranges: list[tuple[int, int]],
) -> np.ndarray:
    """2.5D on the stacked-array engine; returns the global product.

    All ``qm*qn*c`` local blocks live in zero-padded planes (slot = rank id).
    Per layer, the row/column panel gathers are strided slot slices, the
    layer's ``qm x qn`` multiplies are one broadcasting ``np.matmul``, and
    the final cross-layer reduction is one ``np.add.reduce`` over each
    ``(i, j)`` fiber's contiguous slot run.  Counters are posted batched and
    byte-identical to the per-hop reference path.
    """
    m = i_ranges[-1][1]
    n = j_ranges[-1][1]
    lm = np.array([hi - lo for lo, hi in i_ranges], dtype=np.int64)
    ln = np.array([hi - lo for lo, hi in j_ranges], dtype=np.int64)
    lm_max, ln_max = int(lm.max()), int(ln.max())
    layer_a_slices = []
    layer_b_slices = []
    for layer in range(c):
        lk0, lk1 = layer_k_ranges[layer]
        layer_a_slices.append([(lk0 + lo, lk0 + hi) for lo, hi in split_offsets(lk1 - lk0, qn)])
        layer_b_slices.append([(lk0 + lo, lk0 + hi) for lo, hi in split_offsets(lk1 - lk0, qm)])
    aw_max = max(1, max(hi - lo for slices in layer_a_slices for lo, hi in slices))
    bw_max = max(1, max(hi - lo for slices in layer_b_slices for lo, hi in slices))

    slots = qm * qn * c
    a_plane = machine.new_plane("grid25d.A", (slots, lm_max, aw_max))
    b_plane = machine.new_plane("grid25d.B", (slots, bw_max, ln_max))
    c_plane = machine.new_plane("grid25d.C", (slots, lm_max, ln_max))

    def rank_of(i: int, j: int, layer: int) -> int:
        return (i * qn + j) * c + layer

    for layer in range(c):
        for i in range(qm):
            i0, i1 = i_ranges[i]
            bk0, bk1 = layer_b_slices[layer][i]
            for j in range(qn):
                j0, j1 = j_ranges[j]
                ak0, ak1 = layer_a_slices[layer][j]
                slot = rank_of(i, j, layer)
                a_plane.data[slot, : i1 - i0, : ak1 - ak0] = a_matrix[i0:i1, ak0:ak1]
                b_plane.data[slot, : bk1 - bk0, : j1 - j0] = b_matrix[bk0:bk1, j0:j1]
                rank = machine.rank(slot)
                rank.put("A", a_plane.attach(
                    slot, slot, slice(0, i1 - i0), slice(0, ak1 - ak0)))
                rank.put("B", b_plane.attach(
                    slot, slot, slice(0, bk1 - bk0), slice(0, j1 - j0)))
                rank.put("C", c_plane.attach(
                    slot, slot, slice(0, i1 - i0), slice(0, j1 - j0)))
    # Stores are layer-invariant; one check records the reference path's peak.
    machine.check_memory()

    # Off-diagonal (receiver, source) index pairs within a row / a column.
    pair_dst_j, pair_src_j = np.nonzero(
        np.arange(qn)[:, None] != np.arange(qn)[None, :]
    )
    pair_dst_i, pair_src_i = np.nonzero(
        np.arange(qm)[:, None] != np.arange(qm)[None, :]
    )
    all_i = np.arange(qm)
    all_j = np.arange(qn)
    mn_outer = np.multiply.outer(lm, ln).ravel()

    for layer in range(c):
        lk0, lk1 = layer_k_ranges[layer]
        lk = lk1 - lk0
        aw = np.array([hi - lo for lo, hi in layer_a_slices[layer]], dtype=np.int64)
        bw = np.array([hi - lo for lo, hi in layer_b_slices[layer]], dtype=np.int64)
        layer_ranks = ((all_i[:, None] * qn + all_j[None, :]) * c + layer).ravel()
        # Row gathers: rank (i, j) receives (i, j') for every j' != j; column
        # gathers symmetrically.  One batched post for the whole layer.
        src_parts = []
        dst_parts = []
        word_parts = []
        if qn > 1:
            src_parts.append(
                ((all_i[:, None] * qn + pair_src_j[None, :]) * c + layer).ravel())
            dst_parts.append(
                ((all_i[:, None] * qn + pair_dst_j[None, :]) * c + layer).ravel())
            word_parts.append(np.multiply.outer(lm, aw[pair_src_j]).ravel())
        if qm > 1:
            src_parts.append(
                ((pair_src_i[:, None] * qn + all_j[None, :]) * c + layer).ravel())
            dst_parts.append(
                ((pair_dst_i[:, None] * qn + all_j[None, :]) * c + layer).ravel())
            word_parts.append(np.multiply.outer(bw[pair_src_i], ln).ravel())
        if src_parts:
            machine.post_transfers(
                np.concatenate(src_parts), np.concatenate(dst_parts),
                np.concatenate(word_parts), kind="input",
            )
        machine.post_flops(layer_ranks, mn_outer * (2 * lk))

        # Panel assembly from strided slot slices + one broadcasting GEMM.
        a_panels = np.zeros((qm, lm_max, max(1, lk)))
        offset = 0
        for j in range(qn):
            if aw[j] > 0:
                a_panels[:, :, offset : offset + aw[j]] = (
                    a_plane.data[j * c + layer :: qn * c, :, : aw[j]]
                )
            offset += int(aw[j])
        b_panels = np.zeros((qn, max(1, lk), ln_max))
        offset = 0
        for i in range(qm):
            if bw[i] > 0:
                b_panels[:, offset : offset + bw[i], :] = (
                    b_plane.data[i * qn * c + layer : (i + 1) * qn * c + layer : c, : bw[i], :]
                )
            offset += int(bw[i])
        layer_c = c_plane.data[layer::c]
        layer_c += np.matmul(a_panels[:, None], b_panels[None, :]).reshape(
            qm * qn, lm_max, ln_max
        )

    # Cross-layer reduction onto layer 0: counters via the binomial schedule,
    # numerics via one np.add.reduce over each fiber's contiguous slot run.
    if c > 1:
        hops = reduce_hops(c)
        r_src = np.array([s for s, _ in hops], dtype=np.int64)
        r_dst = np.array([d for _, d in hops], dtype=np.int64)
        bases = (all_i[:, None] * qn + all_j[None, :]).ravel() * c
        hop_words = np.repeat(mn_outer, len(hops))
        dsts = (bases[:, None] + r_dst[None, :]).ravel()
        machine.post_transfers(
            (bases[:, None] + r_src[None, :]).ravel(), dsts, hop_words, kind="output",
        )
        machine.counters.add_flops(dsts, hop_words)
    totals = np.add.reduce(
        c_plane.data.reshape(qm * qn, c, lm_max, ln_max), axis=1
    )
    c_global = np.zeros((m, n))
    for i in range(qm):
        i0, i1 = i_ranges[i]
        for j in range(qn):
            j0, j1 = j_ranges[j]
            total = totals[i * qn + j, : i1 - i0, : j1 - j0]
            c_global[i0:i1, j0:j1] = total
            machine.rank(rank_of(i, j, 0)).put("C_final", total)
    return c_global
