"""CARMA (Demmel et al., 2013): communication-avoiding recursive MMM.

CARMA recursively splits the *largest* of the three dimensions ``m, n, k`` in
half, assigning half of the processors to each half of the problem, until one
processor remains.  The resulting per-processor local domains are near-cubic
(the longest side at most twice the shortest), which is asymptotically optimal
for all shapes but -- as section 6.2 of the paper shows -- communicates up to
``sqrt(3)`` times more than the optimal COSMA domains in the limited-memory
regime, and only supports processor counts that are powers of two (extra ranks
stay idle, mirroring the real implementation's restriction).

Execution rides the generic cuboid executor, so CARMA participates in every
transport mode -- including the stacked-array ``plane`` engine, where its
near-uniform recursive cuboids batch into a handful of stacked GEMMs (see
:mod:`repro.baselines.cuboid`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.baselines.cuboid import CuboidDomain, CuboidRunResult, cuboid_multiply
from repro.machine.counters import CommCounters
from repro.machine.simulator import DistributedMachine
from repro.machine.transport import as_payload
from repro.utils.validation import check_positive_int

Range = tuple[int, int]


def largest_power_of_two_at_most(p: int) -> int:
    """The largest power of two ``<= p`` (CARMA's usable processor count)."""
    check_positive_int(p, "p")
    return 1 << (p.bit_length() - 1)


def _split_range(r: Range) -> tuple[Range, Range]:
    lo, hi = r
    mid = (lo + hi) // 2
    return (lo, mid), (mid, hi)


def carma_domains(m: int, n: int, k: int, p: int) -> list[CuboidDomain]:
    """Recursively derive the CARMA cuboid of every rank.

    ``p`` is rounded down to a power of two; at every level the currently
    largest dimension of the sub-problem is halved and the processors split
    evenly between the halves.
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    p = check_positive_int(p, "p")
    usable = largest_power_of_two_at_most(p)

    domains: list[CuboidDomain] = []

    def recurse(i_range: Range, j_range: Range, k_range: Range, ranks: Range) -> None:
        lo, hi = ranks
        count = hi - lo
        if count == 1:
            domains.append(
                CuboidDomain(rank=lo, i_range=i_range, j_range=j_range, k_range=k_range)
            )
            return
        extents = {
            "m": i_range[1] - i_range[0],
            "n": j_range[1] - j_range[0],
            "k": k_range[1] - k_range[0],
        }
        # Split the largest dimension (ties broken m, then n, then k, as in the
        # reference implementation).
        dimension = max(extents, key=lambda d: (extents[d], d == "m", d == "n"))
        mid_ranks = (lo + hi) // 2
        if dimension == "m":
            first, second = _split_range(i_range)
            recurse(first, j_range, k_range, (lo, mid_ranks))
            recurse(second, j_range, k_range, (mid_ranks, hi))
        elif dimension == "n":
            first, second = _split_range(j_range)
            recurse(i_range, first, k_range, (lo, mid_ranks))
            recurse(i_range, second, k_range, (mid_ranks, hi))
        else:
            first, second = _split_range(k_range)
            recurse(i_range, j_range, first, (lo, mid_ranks))
            recurse(i_range, j_range, second, (mid_ranks, hi))

    recurse((0, m), (0, n), (0, k), (0, usable))
    return domains


@dataclass
class CarmaRunResult:
    """Outcome of a CARMA run."""

    matrix: np.ndarray
    p_used: int
    counters: CommCounters

    @property
    def mean_words_per_rank(self) -> float:
        return self.counters.mean_words_per_rank()


def carma_multiply(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    p: int,
    machine: DistributedMachine | None = None,
    memory_words: int | None = None,
) -> CarmaRunResult:
    """Multiply ``A @ B`` with the CARMA decomposition on a simulated machine."""
    a_matrix = as_payload(a_matrix)
    b_matrix = as_payload(b_matrix)
    m, k = a_matrix.shape
    k2, n = b_matrix.shape
    if k != k2:
        raise ValueError(f"inner dimensions do not match: {a_matrix.shape} x {b_matrix.shape}")
    p = check_positive_int(p, "p")
    usable = largest_power_of_two_at_most(p)
    # Guard against degenerate splits: never use more ranks than multiplications.
    while usable > 1 and usable > m * n * k:
        usable //= 2
    domains = carma_domains(m, n, k, usable)
    if machine is None:
        machine = DistributedMachine(p, memory_words=memory_words or (1 << 20))
    result: CuboidRunResult = cuboid_multiply(a_matrix, b_matrix, domains, machine=machine)
    return CarmaRunResult(matrix=result.matrix, p_used=usable, counters=result.counters)


def carma_recursion_depth(p: int) -> int:
    """Number of recursion levels CARMA performs for ``p`` processors."""
    return int(math.log2(largest_power_of_two_at_most(p)))
