"""The ``repro`` logging hierarchy.

Every module logs through ``logging.getLogger("repro.<area>")`` obtained via
:func:`get_logger`; :func:`configure_logging` attaches one stream handler to
the ``repro`` root (idempotently) and sets its level -- the CLI's global
``--log-level`` flag lands here.  Library code never calls ``basicConfig``
or touches the root logger, so embedding applications keep full control.
"""

from __future__ import annotations

import logging
import sys

ROOT_LOGGER = "repro"

#: Accepted ``--log-level`` names (any ``logging`` level name works too).
LOG_LEVELS = ("debug", "info", "warning", "error", "critical")

#: Marker attribute identifying the handler configure_logging installed.
_HANDLER_MARK = "_repro_cli_handler"


def get_logger(name: str | None = None) -> logging.Logger:
    """The ``repro`` logger, or a child like ``get_logger("sweeps")``."""
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(level: str | int = "warning", stream=None) -> logging.Logger:
    """Configure the ``repro`` root logger for console output; idempotent.

    Re-invoking replaces the level (and stream) of the previously installed
    handler instead of stacking a second one, so tests and long-lived
    sessions can reconfigure freely.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}; known: {LOG_LEVELS}")
        level = resolved
    logger = logging.getLogger(ROOT_LOGGER)
    handler = next(
        (h for h in logger.handlers if getattr(h, _HANDLER_MARK, False)), None
    )
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        setattr(handler, _HANDLER_MARK, True)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(handler)
    elif stream is not None:
        try:
            handler.setStream(stream)
        except ValueError:
            # setStream flushes the old stream first; if that stream is
            # already closed (a captured/redirected stderr torn down by a
            # test harness), swap it out directly.
            handler.stream = stream
    logger.setLevel(level)
    return logger
