"""Live progress surface for sweep campaigns.

:class:`CampaignProgress` is a ``progress(record, from_cache)`` callback for
:func:`repro.sweeps.runner.run_campaign`.  On a TTY it maintains a single
heartbeat line (carriage-return rewritten); on anything else -- CI logs,
pipes -- it prints a plain progress line at most every ``interval_s``
seconds, so logs stay readable without being silent for minutes.

The counts come from the records themselves: quarantined runs are the
freshly executed ``"failed"`` records, and their ``error.attempts`` field
recovers the retry attempts that preceded quarantine.  The exact campaign
totals (including retries of eventually-successful runs) are printed by the
final ``CampaignResult`` summary line, not the heartbeat.
"""

from __future__ import annotations

import sys
import time


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    return f"{seconds // 60}m{seconds % 60:02d}s"


class CampaignProgress:
    """Heartbeat renderer: ``done/total ok=.. quarantined=.. eta=.. store=..``."""

    def __init__(self, total: int, store_path: str = "", stream=None,
                 interval_s: float | None = None) -> None:
        self.total = int(total)
        self.store_path = str(store_path)
        self.stream = stream if stream is not None else sys.stderr
        self.is_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        # A TTY rewrites cheaply; plain streams get one line every 5s at most.
        self.interval_s = interval_s if interval_s is not None else (0.25 if self.is_tty else 5.0)
        self.done = 0
        self.ok = 0
        self.quarantined = 0
        self.retried = 0
        self.cached = 0
        self._start = time.monotonic()
        self._last_emit: float | None = None  # None: nothing emitted yet
        self._open_line = False

    # -- the run_campaign callback ------------------------------------------
    def __call__(self, record: dict, from_cache: bool) -> None:
        self.done += 1
        if from_cache:
            self.cached += 1
        status_ok = record.get("status") == "ok"
        if status_ok:
            self.ok += 1
        elif not from_cache:
            self.quarantined += 1
            error = record.get("error", {})
            self.retried += max(0, int(error.get("attempts", 1)) - 1)
        now = time.monotonic()
        if (self._last_emit is None
                or now - self._last_emit >= self.interval_s
                or self.done >= self.total):
            self._emit(now)

    def line(self) -> str:
        executed = self.done - self.cached
        elapsed = time.monotonic() - self._start
        parts = [
            f"{self.done}/{self.total}",
            f"ok={self.ok}",
            f"quarantined={self.quarantined}",
            f"retried={self.retried}",
            f"cached={self.cached}",
        ]
        if 0 < self.done < self.total:
            # Rate from executed runs when any ran (cached hits are ~free).
            pace = elapsed / executed if executed else elapsed / self.done
            parts.append(f"eta={_format_eta(pace * (self.total - self.done))}")
        if self.store_path:
            parts.append(f"store={self.store_path}")
        return "campaign: " + " ".join(parts)

    def _emit(self, now: float) -> None:
        self._last_emit = now
        text = self.line()
        if self.is_tty:
            self.stream.write("\r\x1b[2K" + text)
            self._open_line = True
        else:
            self.stream.write(text + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Finish the heartbeat (terminate the rewritten TTY line)."""
        if self.is_tty and self._open_line:
            self.stream.write("\r\x1b[2K" + self.line() + "\n")
            self._open_line = False
            self.stream.flush()
