"""Trace exporters: Chrome trace-event JSON (Perfetto) and a JSONL event log.

The Chrome format is the object form -- ``{"traceEvents": [...]}`` -- with
``ph="X"`` complete events (``ts``/``dur`` in microseconds) and ``ph="i"``
instants, one thread lane per tracer *track* (``sim`` for machine rounds,
``run`` for harness runs, ``campaign`` for the sweep supervisor).  Load the
file at https://ui.perfetto.dev or ``chrome://tracing``.

:func:`validate_chrome_trace` is the schema check the test suite (and the
``repro trace`` CLI) runs over exported documents, so a format drift fails
fast instead of producing a file Perfetto silently refuses.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.trace import Tracer

#: Stable thread-lane order for the known tracks (unknown tracks follow).
_TRACK_ORDER = ("campaign", "run", "sim", "gemm")


def _track_ids(tracer: Tracer) -> dict[str, int]:
    tracks = {event[5] for event in tracer.events}
    ordered = [t for t in _TRACK_ORDER if t in tracks]
    ordered += sorted(tracks - set(ordered))
    return {track: tid + 1 for tid, track in enumerate(ordered)}


def chrome_trace_document(tracer: Tracer, other_data: dict | None = None) -> dict:
    """The tracer's events as a Chrome trace-event JSON object."""
    tids = _track_ids(tracer)
    events: list[dict] = [
        {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
         "args": {"name": "repro"}},
    ]
    for track, tid in tids.items():
        events.append({"ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
                       "args": {"name": track}})
    for name, cat, ts_ns, dur_ns, args, track in tracer.events:
        event = {
            "name": name,
            "cat": cat,
            "pid": 1,
            "tid": tids[track],
            "ts": ts_ns / 1000.0,
        }
        if dur_ns is None:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = dur_ns / 1000.0
        if args:
            event["args"] = args
        events.append(event)
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    other = dict(tracer.meta)
    if other_data:
        other.update(other_data)
    if other:
        document["otherData"] = other
    return document


def write_chrome_trace(path, tracer: Tracer, other_data: dict | None = None) -> Path:
    """Write the Chrome trace-event JSON to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace_document(tracer, other_data)) + "\n")
    return path


def write_event_log(path, tracer: Tracer) -> Path:
    """Write the raw events as JSONL (one object per line, ns timestamps)."""
    path = Path(path)
    with path.open("w") as handle:
        for name, cat, ts_ns, dur_ns, args, track in tracer.events:
            record = {"name": name, "cat": cat, "ts_ns": ts_ns, "track": track}
            if dur_ns is not None:
                record["dur_ns"] = dur_ns
            if args:
                record["args"] = args
            handle.write(json.dumps(record) + "\n")
    return path


def validate_chrome_trace(document) -> list[str]:
    """Schema-check a Chrome trace document; returns issues ([] when valid).

    Checks the subset of the trace-event format Perfetto requires to load
    the file: a ``traceEvents`` list of objects, each with a string ``name``
    and ``ph``, numeric non-negative ``ts``, integer ``pid``/``tid``, and a
    numeric non-negative ``dur`` on every complete (``"X"``) event.
    """
    issues: list[str] = []
    if not isinstance(document, dict):
        return [f"document is {type(document).__name__}, not an object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document has no traceEvents list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            issues.append(f"{where}: not an object")
            continue
        if not isinstance(event.get("name"), str):
            issues.append(f"{where}: missing string 'name'")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            issues.append(f"{where}: missing phase 'ph'")
            continue
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                issues.append(f"{where}: missing integer {key!r}")
        if ph == "M":
            continue  # metadata events carry no timestamp
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            issues.append(f"{where}: bad timestamp {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                issues.append(f"{where}: complete event with bad dur {dur!r}")
        if len(issues) >= 20:
            issues.append("... (truncated)")
            break
    return issues
