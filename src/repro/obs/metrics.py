"""Counters, gauges and histograms for the sweep engine's supervisor.

A :class:`MetricsRegistry` is plain in-process bookkeeping -- no background
threads, no sampling -- populated by :func:`repro.sweeps.runner.run_campaign`
(worker spawns/deaths/retries, lease waits, queue depth, per-run latency)
and snapshotted into ``CampaignResult.metrics`` plus a
``campaign_metrics.json`` sidecar beside the result store.  Snapshots are
plain JSON-serializable dicts keyed by metric name.
"""

from __future__ import annotations

from bisect import bisect_left

#: Default per-run latency bucket upper bounds, in seconds.
DEFAULT_LATENCY_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0)


class Counter:
    """A monotonically increasing count (int or float increments)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got increment {amount}")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down (e.g. queue depth); tracks its maximum."""

    __slots__ = ("value", "max")

    def __init__(self) -> None:
        self.value = 0
        self.max = 0

    def set(self, value) -> None:
        self.value = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value, "max": self.max}


class Histogram:
    """Fixed-bucket histogram of observations (cumulative on snapshot).

    ``buckets`` are upper bounds in ascending order; an implicit ``+Inf``
    bucket catches the tail.  Tracks count/sum/min/max exactly, so means and
    rates never depend on the bucket layout.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets=DEFAULT_LATENCY_BUCKETS) -> None:
        self.buckets = tuple(float(b) for b in buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError(f"histogram buckets must be ascending, got {buckets}")
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value) -> None:
        value = float(value)
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def snapshot(self) -> dict:
        labels = [str(b) for b in self.buckets] + ["+Inf"]
        cumulative = []
        running = 0
        for n in self.counts:
            running += n
            cumulative.append(running)
        return {
            "type": "histogram",
            "count": self.count,
            "sum": round(self.sum, 6),
            "min": self.min,
            "max": self.max,
            "buckets": dict(zip(labels, cumulative)),
        }


class MetricsRegistry:
    """Named metrics, created on first use; snapshots to one flat dict."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = kind()
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def snapshot(self) -> dict:
        """All metrics as ``{name: {"type": ..., ...}}``, in creation order."""
        return {name: metric.snapshot() for name, metric in self._metrics.items()}
