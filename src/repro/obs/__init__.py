"""Observability: tracing, metrics, progress and logging for the simulator.

The telemetry layer threaded through the stack (PR 7):

* :mod:`repro.obs.trace` -- a low-overhead span/event :class:`Tracer`
  (process-local, off by default) plus the :class:`MachineTrace` round
  accumulator the simulator attaches when tracing is active.  Guarantee:
  counters are byte-identical traced vs untraced, and the disabled guards
  cost under 2% of a paper-scale run (gated in CI).
* :mod:`repro.obs.metrics` -- counters/gauges/histograms the sweep
  supervisor populates (``CampaignResult.metrics``).
* :mod:`repro.obs.export` -- Chrome trace-event JSON (Perfetto) and JSONL
  exporters plus the schema validator.
* :mod:`repro.obs.progress` -- the campaign heartbeat line.
* :mod:`repro.obs.log` -- the ``logging.getLogger("repro")`` hierarchy and
  the CLI's ``--log-level`` plumbing.
"""

from repro.obs.export import (
    chrome_trace_document,
    validate_chrome_trace,
    write_chrome_trace,
    write_event_log,
)
from repro.obs.log import LOG_LEVELS, configure_logging, get_logger
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.progress import CampaignProgress
from repro.obs.trace import (
    MachineTrace,
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    tracing,
)

__all__ = [
    "Tracer",
    "MachineTrace",
    "active_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "chrome_trace_document",
    "write_chrome_trace",
    "write_event_log",
    "validate_chrome_trace",
    "CampaignProgress",
    "configure_logging",
    "get_logger",
    "LOG_LEVELS",
]
