"""Low-overhead execution tracing: spans and instants on a process-local sink.

The tracer is *off by default*: :func:`active_tracer` returns ``None`` and
every instrumentation site in the simulator / harness / sweep engine guards
with ``if tracer is not None`` -- one attribute load and an identity check,
which is what keeps the disabled-tracer overhead under the 2% budget gated by
``benchmarks/check_bench_regression.py``.

When enabled (:func:`enable_tracing` / the :func:`tracing` context manager),
instrumented code records **events** -- ``(name, cat, ts_ns, dur_ns, args,
track)`` tuples on a monotonic clock relative to the tracer's creation.  A
``dur_ns`` of ``None`` marks an instant; anything else is a complete span.
Events are exported through :mod:`repro.obs.export` as Chrome trace-event
JSON (loadable in Perfetto / ``chrome://tracing``) or a JSONL event log.

Zero perturbation is a hard guarantee, not a goal: every hook only *reads*
simulator state (counter-matrix row sums at round boundaries, peak resident
words), so communication counters are byte-identical traced vs untraced --
``tests/test_obs_trace.py`` proves it across all four transports and every
registered algorithm.

:class:`MachineTrace` is the per-machine accumulator the simulator attaches
at construction when tracing is active: it aggregates one round's hop count,
collective kinds and payload deliveries, and emits one ``"round"`` span per
round (replayed compressed rounds included) carrying the round's posted
words, flops and resident-words high-water.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.machine.counters import FLOPS, WORDS_SENT


class Tracer:
    """Append-only event sink with a span/instant API.

    Timestamps are ``time.perf_counter_ns`` deltas relative to construction;
    events are plain tuples to keep the traced-path cost at one append.
    ``meta`` is free-form run context exporters copy into the trace file's
    ``otherData``.
    """

    __slots__ = ("events", "meta", "_t0")

    def __init__(self) -> None:
        self.events: list[tuple] = []
        self.meta: dict = {}
        self._t0 = time.perf_counter_ns()

    def now_ns(self) -> int:
        """Nanoseconds since this tracer was created (monotonic)."""
        return time.perf_counter_ns() - self._t0

    def complete(self, name: str, cat: str, start_ns: int, dur_ns: int,
                 args: dict | None = None, track: str = "sim") -> None:
        """Record a finished span of ``dur_ns`` starting at ``start_ns``."""
        self.events.append((name, cat, start_ns, dur_ns, args, track))

    def instant(self, name: str, cat: str = "event",
                args: dict | None = None, track: str = "sim") -> None:
        """Record a point-in-time event."""
        self.events.append((name, cat, self.now_ns(), None, args, track))

    @contextmanager
    def span(self, name: str, cat: str = "span",
             args: dict | None = None, track: str = "sim"):
        """Context manager recording the enclosed block as one complete span."""
        start = self.now_ns()
        try:
            yield self
        finally:
            self.complete(name, cat, start, self.now_ns() - start, args, track)

    def spans(self, cat: str | None = None) -> list[tuple]:
        """The recorded complete spans (``dur_ns`` not None), newest last."""
        return [e for e in self.events
                if e[3] is not None and (cat is None or e[1] == cat)]

    def __len__(self) -> int:
        return len(self.events)


# ---------------------------------------------------------------------------
# process-local activation
# ---------------------------------------------------------------------------
_ACTIVE: Tracer | None = None


def active_tracer() -> Tracer | None:
    """The enabled tracer, or ``None`` (the common case: tracing is off)."""
    return _ACTIVE


def enable_tracing(tracer: Tracer | None = None) -> Tracer:
    """Install ``tracer`` (or a fresh one) as the process-wide active tracer.

    Instrumented objects capture the active tracer *at construction* (e.g.
    :class:`~repro.machine.simulator.DistributedMachine`), so enable tracing
    before building the machine whose rounds you want to see.
    """
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else Tracer()
    return _ACTIVE


def disable_tracing() -> Tracer | None:
    """Deactivate tracing; returns the tracer that was active, if any."""
    global _ACTIVE
    tracer, _ACTIVE = _ACTIVE, None
    return tracer


@contextmanager
def tracing(tracer: Tracer | None = None):
    """``with tracing() as tracer:`` -- enable for a block, always disable."""
    active = enable_tracing(tracer)
    try:
        yield active
    finally:
        disable_tracing()


# ---------------------------------------------------------------------------
# per-machine round accumulator
# ---------------------------------------------------------------------------
class MachineTrace:
    """Aggregates one simulated machine's activity into per-round spans.

    Attached by :class:`~repro.machine.simulator.DistributedMachine` when a
    tracer is active; ``None`` otherwise.  All inputs are *read-only* views
    of machine state: words/flops come from counter-matrix row sums at round
    boundaries, never from separate bookkeeping that could drift.
    """

    __slots__ = (
        "tracer", "mode", "rounds", "hops", "deliveries", "delivered_words",
        "notifications", "_data", "_round_start_ns", "_words0", "_flops0",
        "_round_hops", "_collectives",
    )

    def __init__(self, tracer: Tracer, counter_data, mode: str) -> None:
        self.tracer = tracer
        self.mode = mode
        self._data = counter_data  # the (fields, p) int64 counter matrix
        self.rounds = 0
        self.hops = 0
        self.deliveries = 0
        self.delivered_words = 0
        #: Notification *calls* received (one per guarded call site fired),
        #: which is exactly how many ``is not None`` guards an untraced run
        #: of the same schedule evaluates -- the disabled-overhead analysis
        #: in ``benchmarks/bench_simulator_fastpath.py`` builds on it.
        self.notifications = 0
        self._round_hops = 0
        self._collectives: dict[str, int] = {}
        self._words0 = int(counter_data[WORDS_SENT].sum())
        self._flops0 = int(counter_data[FLOPS].sum())
        self._round_start_ns = tracer.now_ns()

    # -- per-event notifications (guarded call sites keep these tiny) -------
    def hop(self) -> None:
        """One point-to-point transfer went through ``machine.send``."""
        self.notifications += 1
        self._round_hops += 1

    def hops_batch(self, n: int) -> None:
        """``n`` transfers were posted in one batched ``post_transfers``."""
        self.notifications += 1
        self._round_hops += int(n)

    def collective(self, kind: str, q: int) -> None:
        """A collective of ``kind`` ran over a ``q``-rank communicator."""
        self.notifications += 1
        key = f"{kind}[{q}]"
        self._collectives[key] = self._collectives.get(key, 0) + 1

    def delivery(self, words: int) -> None:
        """The transport materialized one payload delivery of ``words`` words."""
        self.notifications += 1
        self.deliveries += 1
        self.delivered_words += int(words)

    # -- round boundaries ----------------------------------------------------
    def _dirty(self) -> bool:
        """Any traced activity since the last round span was emitted?"""
        return (
            self._round_hops > 0
            or bool(self._collectives)
            or int(self._data[WORDS_SENT].sum()) != self._words0
            or int(self._data[FLOPS].sum()) != self._flops0
        )

    def commit_round(self, peak_resident_words: int) -> None:
        """Round boundary for algorithms that commit without ``log_round``.

        The baselines (Cannon, SUMMA) end each round with
        ``machine.commit_round()`` alone, while COSMA labels its rounds via
        ``log_round`` first; emitting here only when activity accumulated
        since the last span keeps both paths at exactly one span per round.
        """
        if self._dirty():
            self.end_round("round", peak_resident_words)

    def end_round(self, label: str, peak_resident_words: int,
                  replayed: bool = False) -> None:
        """Close the current round: emit one span, reset per-round state.

        Called from ``machine.log_round`` (executed rounds) and
        ``machine.replay_round`` (compressed replays), so a traced run emits
        at least one span per counted round either way.
        """
        now = self.tracer.now_ns()
        words = int(self._data[WORDS_SENT].sum())
        flops = int(self._data[FLOPS].sum())
        args = {
            "label": label,
            "round": self.rounds,
            "mode": self.mode,
            "words_posted": words - self._words0,
            "flops": flops - self._flops0,
            "hops": self._round_hops,
            "resident_peak_words": int(peak_resident_words),
        }
        if self._collectives:
            args["collectives"] = dict(self._collectives)
        if replayed:
            args["replayed"] = True
        self.tracer.complete("round", "round", self._round_start_ns,
                             now - self._round_start_ns, args)
        self.rounds += 1
        self.hops += self._round_hops
        self._round_hops = 0
        self._collectives = {}
        self._words0 = words
        self._flops0 = flops
        self._round_start_ns = now
