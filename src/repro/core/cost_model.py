"""Analytic COSMA cost model (Theorem 2 and the COSMA column of Table 3).

These closed-form costs are used by the Table 3 / Figure 2 benchmarks and by
tests that compare the simulator's measured volumes against the theory.
"""

from __future__ import annotations

import math

from repro.pebbling.mmm_bounds import parallel_io_lower_bound
from repro.utils.validation import check_positive_int


def cosma_io_cost(m: int, n: int, k: int, p: int, s: int) -> float:
    """Per-processor I/O of the optimal COSMA schedule.

    ``Q = min{ 2mnk / (p sqrt(S)) + S, 3 (mnk/p)^(2/3) }`` -- COSMA attains the
    Theorem 2 lower bound, so its analytic cost *is* the bound.
    """
    return parallel_io_lower_bound(m, n, k, p, s)


def cosma_local_domain(m: int, n: int, k: int, p: int, s: int) -> tuple[float, float]:
    """The optimal real-valued local-domain sizes ``(a, b)`` of Equation 32."""
    check_positive_int(p, "p")
    check_positive_int(s, "S")
    mnk = float(m) * n * k
    a = min(math.sqrt(s), (mnk / p) ** (1.0 / 3.0))
    b = max(mnk / (p * s), (mnk / p) ** (1.0 / 3.0))
    return a, b


def cosma_latency_cost(m: int, n: int, k: int, p: int, s: int) -> float:
    """Latency (number of communication rounds) of the I/O-minimal COSMA schedule.

    Table 3: ``L = ceil(2ab / (S - a^2)) * log2(mn / a^2)`` rounds, where the
    logarithmic factor accounts for the broadcast/reduction trees; when the
    local domain's inputs fit in memory at once (extra-memory regime) the
    number of steps collapses to 1.
    """
    a, b = cosma_local_domain(m, n, k, p, s)
    # Shrink a to the feasible width so at least one streamed panel fits
    # alongside the accumulator (as in the feasible sequential schedule).
    a = min(a, math.sqrt(s + 1.0) - 1.0)
    free = max(2.0 * a, s - a * a)
    if 2 * a * b <= free:
        steps = 1.0
    else:
        steps = math.ceil(2.0 * a * b / free)
    tree_depth = max(1.0, math.log2(max(2.0, float(m) * n / (a * a))))
    return steps * tree_depth


def cosma_memory_per_rank(m: int, n: int, k: int, p: int, s: int) -> float:
    """Words of local memory the optimal schedule actually uses (``<= S``).

    At the limited-memory boundary ``a = sqrt(S)`` leaves no room for the
    streamed panels, so the effective width is shrunk to
    ``sqrt(S + 1) - 1`` exactly as in the feasible sequential schedule
    (section 5.2.7).
    """
    a, b = cosma_local_domain(m, n, k, p, s)
    a = min(a, math.sqrt(s + 1.0) - 1.0)
    free = s - a * a
    step = min(b, max(1.0, free / (2.0 * a)))
    return a * a + 2.0 * a * step


def communication_reduction_vs_grid(
    m: int, n: int, k: int, p: int, s: int, grid: tuple[int, int, int]
) -> float:
    """Ratio (other grid volume) / (COSMA volume) for a fixed cuboidal grid.

    Used for the Figure 3 experiment: a top-down ``p^(1/3)`` cubic
    decomposition, chosen without regard to the memory size, communicates more
    than COSMA's bottom-up decomposition whenever the cubic local output block
    does not fit in fast memory (the paper's illustration reports a 17%
    reduction for its example).  When the other grid's output block does not
    fit in ``S`` words, it must process its domain in memory-sized output
    tiles and re-fetch the remote input panels for each tile, which is what
    the degraded cost below charges.
    """
    pm, pn, pk = grid
    if pm * pn * pk > p:
        raise ValueError(f"grid {grid} uses more than p={p} processors")
    lm, ln, lk = m / pm, n / pn, k / pk
    if lm * ln > s:
        other_inputs = 2.0 * lm * ln * lk / math.sqrt(s)
    else:
        other_inputs = lm * lk + ln * lk
    other = other_inputs + (lm * ln if pk > 1 else 0.0)
    ours = cosma_io_cost(m, n, k, p, s)
    return other / ours
