"""Static communication-buffer sizing (sections 7.3 and 7.5).

CARMA allocates progressively larger buffers at every recursion level; COSMA
instead pre-allocates all buffers once, sized for the largest message, and
reuses them every round (optionally double-buffered for communication--
computation overlap).  These helpers compute the buffer sizes for a given
decomposition so that tests and the memory accounting can verify that the
whole working set still fits within ``S``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decomposition import CosmaDecomposition


@dataclass(frozen=True)
class BufferPlan:
    """Word counts of the statically allocated buffers of one rank."""

    a_receive_words: int
    b_receive_words: int
    c_accumulator_words: int
    double_buffered: bool

    @property
    def communication_words(self) -> int:
        factor = 2 if self.double_buffered else 1
        return factor * (self.a_receive_words + self.b_receive_words)

    @property
    def total_words(self) -> int:
        return self.communication_words + self.c_accumulator_words


def plan_buffers(decomposition: CosmaDecomposition, double_buffered: bool = False) -> BufferPlan:
    """Size the static buffers for the *largest* rank of a decomposition.

    Per communication round a rank receives an ``lm x step`` chunk of A and a
    ``step x ln`` chunk of B, and keeps an ``lm x ln`` accumulator of C.  With
    double buffering the receive buffers are duplicated so that round ``t+1``
    can be fetched while round ``t`` is being multiplied (section 7.3).
    """
    worst_a = 0
    worst_b = 0
    worst_c = 0
    step = decomposition.step_size
    for domain in decomposition.domains:
        lm, ln, _lk = domain.shape
        worst_a = max(worst_a, lm * step)
        worst_b = max(worst_b, ln * step)
        worst_c = max(worst_c, lm * ln)
    return BufferPlan(
        a_receive_words=worst_a,
        b_receive_words=worst_b,
        c_accumulator_words=worst_c,
        double_buffered=double_buffered,
    )


def fits_in_memory(decomposition: CosmaDecomposition, double_buffered: bool = False) -> bool:
    """Whether the statically planned working set fits within the local memory ``S``."""
    plan = plan_buffers(decomposition, double_buffered=double_buffered)
    return plan.total_words <= decomposition.s


def max_overlap_rounds(decomposition: CosmaDecomposition) -> int:
    """The largest number of rounds ``t2 >= t`` that still fits with double buffering.

    Increasing the number of rounds shrinks each round's receive buffers,
    allowing the first multiplication to start earlier (section 7.3, "number
    of rounds").  Returns the decomposition's round count when double
    buffering already fits, otherwise the smallest feasible round count.
    """
    base = decomposition.num_steps
    if fits_in_memory(decomposition, double_buffered=True):
        return base
    plan = plan_buffers(decomposition, double_buffered=False)
    available = decomposition.s - plan.c_accumulator_words
    if available <= 0:
        return base
    per_round_words = plan.a_receive_words + plan.b_receive_words
    # Shrink the per-round chunk until two rounds' worth of buffers fit.
    factor = 1
    while per_round_words // factor * 2 > available and factor < per_round_words:
        factor += 1
    return base * factor
