"""COSMA: the paper's primary contribution.

The pipeline mirrors Algorithm 1:

1. :func:`repro.core.schedule.find_sequential_schedule` derives the optimal
   local-domain width ``a`` from the sequential I/O analysis (section 5).
2. :func:`repro.core.schedule.parallelize_schedule` derives the local-domain
   depth ``b`` subject to load balance (section 6.3, Equation 32).
3. :func:`repro.core.grid.fit_ranks` fits a processor grid to the matrix
   dimensions, optionally leaving up to ``delta`` of the processors idle when
   that reduces communication (section 7.1).
4. :func:`repro.core.decomposition.build_decomposition` assigns local domains
   and the blocked data layout (section 7.6).
5. :func:`repro.core.cosma.cosma_multiply` executes the schedule on the
   distributed machine simulator, counting every communicated word.

The analytic counterparts (Theorem 2 costs, I/O-latency trade-off, buffer
sizing) live in :mod:`repro.core.cost_model`, :mod:`repro.core.tradeoff` and
:mod:`repro.core.buffers`.
"""

from repro.core.cosma import CosmaRunResult, cosma_multiply
from repro.core.cost_model import cosma_io_cost, cosma_latency_cost
from repro.core.decomposition import CosmaDecomposition, build_decomposition
from repro.core.grid import ProcessorGrid, fit_ranks
from repro.core.schedule import find_sequential_schedule, optimal_local_domain, parallelize_schedule

__all__ = [
    "cosma_multiply",
    "CosmaRunResult",
    "cosma_io_cost",
    "cosma_latency_cost",
    "build_decomposition",
    "CosmaDecomposition",
    "ProcessorGrid",
    "fit_ranks",
    "find_sequential_schedule",
    "parallelize_schedule",
    "optimal_local_domain",
]
