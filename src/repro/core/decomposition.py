"""Local domains and the blocked data decomposition (``GetDataDecomp``, section 7.6).

Given a fitted processor grid ``[pm x pn x pk]``, every used rank is assigned

* a **local domain**: the cuboid of multiplications
  ``[i-range] x [j-range] x [k-range]`` it will perform, and
* its **initially owned** pieces of ``A``, ``B`` and ``C``.

The ownership follows the paper's blocked layout: the ``lm x lk`` panel of A
needed by a grid row fiber ``(pi, *, pk)`` is stored once across that fiber --
each of the ``pn`` ranks owns a contiguous ``1/pn`` slice of the panel's
columns, namely the slice it will broadcast to the others.  Symmetrically for
B along the ``i`` fiber.  The output block ``lm x ln`` of C is owned by the
``pk = 0`` rank of each ``(pi, pj, *)`` fiber, which receives the reduced
result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.grid import GridFit, ProcessorGrid, fit_ranks
from repro.machine.transport import as_payload, ascontiguous
from repro.utils.intmath import split_offsets
from repro.utils.validation import check_positive_int

Range = tuple[int, int]


@dataclass(frozen=True)
class LocalDomain:
    """The cuboid of multiplications assigned to one rank."""

    rank: int
    coords: tuple[int, int, int]
    i_range: Range
    j_range: Range
    k_range: Range

    @property
    def shape(self) -> tuple[int, int, int]:
        return (
            self.i_range[1] - self.i_range[0],
            self.j_range[1] - self.j_range[0],
            self.k_range[1] - self.k_range[0],
        )

    @property
    def volume(self) -> int:
        lm, ln, lk = self.shape
        return lm * ln * lk

    #: Ownership slices -------------------------------------------------
    a_owned_k_range: Range = (0, 0)
    b_owned_k_range: Range = (0, 0)
    owns_c: bool = False


@dataclass(frozen=True)
class CosmaDecomposition:
    """The complete COSMA decomposition for a problem instance."""

    m: int
    n: int
    k: int
    p: int
    s: int
    grid: ProcessorGrid
    domains: tuple[LocalDomain, ...]
    idle_ranks: tuple[int, ...]
    step_size: int
    num_steps: int

    @property
    def p_used(self) -> int:
        return self.grid.p_used

    def domain_of(self, rank: int) -> LocalDomain:
        for domain in self.domains:
            if domain.rank == rank:
                return domain
        raise KeyError(f"rank {rank} has no local domain (it may be idle)")

    def coords_to_rank(self, pi: int, pj: int, pk: int) -> int:
        """Row-major mapping of grid coordinates to machine ranks."""
        return (pi * self.grid.pn + pj) * self.grid.pk + pk

    def j_fiber(self, pi: int, pk: int) -> list[int]:
        """Ranks sharing the A panel (same ``pi``/``pk``, all ``pj``)."""
        return [self.coords_to_rank(pi, pj, pk) for pj in range(self.grid.pn)]

    def i_fiber(self, pj: int, pk: int) -> list[int]:
        """Ranks sharing the B panel (same ``pj``/``pk``, all ``pi``)."""
        return [self.coords_to_rank(pi, pj, pk) for pi in range(self.grid.pm)]

    def k_fiber(self, pi: int, pj: int) -> list[int]:
        """Ranks reducing the same C block (same ``pi``/``pj``, all ``pk``)."""
        return [self.coords_to_rank(pi, pj, pk) for pk in range(self.grid.pk)]

    def max_local_words(self) -> int:
        """Peak words a rank must hold: its A panel slice + B panel slice + C block + step buffers."""
        worst = 0
        for domain in self.domains:
            lm, ln, _lk = domain.shape
            a_words = lm * (domain.a_owned_k_range[1] - domain.a_owned_k_range[0])
            b_words = ln * (domain.b_owned_k_range[1] - domain.b_owned_k_range[0])
            c_words = lm * ln
            step_words = (lm + ln) * self.step_size
            worst = max(worst, a_words + b_words + c_words + step_words)
        return worst


def build_decomposition(
    m: int,
    n: int,
    k: int,
    p: int,
    s: int,
    max_idle_fraction: float = 0.03,
    grid: ProcessorGrid | None = None,
) -> CosmaDecomposition:
    """Build the full COSMA decomposition (Algorithm 1, lines 1-7).

    Parameters
    ----------
    m, n, k:
        Matrix dimensions.
    p:
        Available processors.
    s:
        Local memory per processor, in words.
    max_idle_fraction:
        The ``delta`` parameter of ``FitRanks``.
    grid:
        Optional explicit processor grid (used by tests and ablation
        benchmarks); when omitted, :func:`repro.core.grid.fit_ranks` chooses it.
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    p = check_positive_int(p, "p")
    s = check_positive_int(s, "S")

    if grid is None:
        fit: GridFit = fit_ranks(
            m, n, k, p, max_idle_fraction=max_idle_fraction, memory_words=s
        )
        grid = fit.grid
    if grid.p_used > p:
        raise ValueError(f"grid {grid.as_tuple()} uses {grid.p_used} ranks but only {p} are available")

    i_ranges = split_offsets(m, grid.pm)
    j_ranges = split_offsets(n, grid.pn)
    k_ranges = split_offsets(k, grid.pk)

    # Latency-minimizing communication step: with lm x ln partial results
    # resident, 2 * step * max(lm, ln) extra words must fit in memory.
    lm0 = i_ranges[0][1] - i_ranges[0][0]
    ln0 = j_ranges[0][1] - j_ranges[0][0]
    lk0 = k_ranges[0][1] - k_ranges[0][0]
    free_words = s - lm0 * ln0
    if free_words >= (lm0 + ln0) * lk0:
        step_size = lk0
    else:
        step_size = max(1, free_words // (lm0 + ln0))
    num_steps = max(1, -(-lk0 // step_size))

    domains: list[LocalDomain] = []
    for pi in range(grid.pm):
        for pj in range(grid.pn):
            for pk in range(grid.pk):
                rank = (pi * grid.pn + pj) * grid.pk + pk
                i_range = i_ranges[pi]
                j_range = j_ranges[pj]
                k_range = k_ranges[pk]
                # Ownership: the local A panel's k-extent is split across the
                # pn ranks of the j fiber; rank pj owns its pj-th slice.
                a_slices = split_offsets(k_range[1] - k_range[0], grid.pn)
                a_lo, a_hi = a_slices[pj]
                a_owned = (k_range[0] + a_lo, k_range[0] + a_hi)
                # Symmetrically, the local B panel's k-extent is split across
                # the pm ranks of the i fiber.
                b_slices = split_offsets(k_range[1] - k_range[0], grid.pm)
                b_lo, b_hi = b_slices[pi]
                b_owned = (k_range[0] + b_lo, k_range[0] + b_hi)
                domains.append(
                    LocalDomain(
                        rank=rank,
                        coords=(pi, pj, pk),
                        i_range=i_range,
                        j_range=j_range,
                        k_range=k_range,
                        a_owned_k_range=a_owned,
                        b_owned_k_range=b_owned,
                        owns_c=(pk == 0),
                    )
                )
    idle = tuple(range(grid.p_used, p))
    return CosmaDecomposition(
        m=m,
        n=n,
        k=k,
        p=p,
        s=s,
        grid=grid,
        domains=tuple(domains),
        idle_ranks=idle,
        step_size=step_size,
        num_steps=num_steps,
    )


def distribute_matrices(
    decomposition: CosmaDecomposition,
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
) -> dict[int, dict[str, np.ndarray]]:
    """Split the global inputs into each rank's initially owned pieces.

    Returns ``{rank: {"A": owned A slice, "B": owned B slice}}``.  This is the
    *initial data layout*; building it involves no algorithmic communication
    (the paper likewise assumes inputs start distributed in COSMA's blocked
    layout -- converting from block-cyclic is a separate, counted
    preprocessing step, see :mod:`repro.layouts.conversion`).
    """
    a_matrix = as_payload(a_matrix)
    b_matrix = as_payload(b_matrix)
    if a_matrix.shape != (decomposition.m, decomposition.k):
        raise ValueError(
            f"A has shape {a_matrix.shape}, expected {(decomposition.m, decomposition.k)}"
        )
    if b_matrix.shape != (decomposition.k, decomposition.n):
        raise ValueError(
            f"B has shape {b_matrix.shape}, expected {(decomposition.k, decomposition.n)}"
        )
    owned: dict[int, dict[str, np.ndarray]] = {}
    for domain in decomposition.domains:
        i0, i1 = domain.i_range
        j0, j1 = domain.j_range
        ak0, ak1 = domain.a_owned_k_range
        bk0, bk1 = domain.b_owned_k_range
        owned[domain.rank] = {
            "A": ascontiguous(a_matrix[i0:i1, ak0:ak1]),
            "B": ascontiguous(b_matrix[bk0:bk1, j0:j1]),
        }
    return owned
