"""Processor-grid fitting (``FitRanks``, section 7.1).

Matrix dimensions rarely divide evenly by the ideal local-domain sizes, and
the available processor count rarely factors into a matching grid.  COSMA
therefore searches over grids that use *at most* ``p`` processors -- allowing
up to a fraction ``delta`` of them to stay idle -- and picks the grid with the
smallest per-rank communication volume.  Figure 5 of the paper shows the
flagship example: with 65 ranks and square matrices, dropping a single rank
enables a ``4 x 4 x 4`` grid that communicates ~36% less than the best
65-rank grid, at the price of 1.5% more computation per rank.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.intmath import all_factorizations_3d, ceil_div
from repro.utils.validation import check_positive_int, check_probability


@dataclass(frozen=True)
class ProcessorGrid:
    """A 3-D processor grid ``[pm x pn x pk]`` over the ``(i, j, k)`` iteration space."""

    pm: int
    pn: int
    pk: int

    def __post_init__(self) -> None:
        check_positive_int(self.pm, "pm")
        check_positive_int(self.pn, "pn")
        check_positive_int(self.pk, "pk")

    @property
    def p_used(self) -> int:
        """Number of ranks the grid actually uses."""
        return self.pm * self.pn * self.pk

    def local_extents(self, m: int, n: int, k: int) -> tuple[int, int, int]:
        """Per-rank local domain extents (rounded up for the boundary ranks)."""
        return (ceil_div(m, self.pm), ceil_div(n, self.pn), ceil_div(k, self.pk))

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.pm, self.pn, self.pk)

    def __iter__(self):
        return iter((self.pm, self.pn, self.pk))


def communication_volume_per_rank(
    grid: ProcessorGrid, m: int, n: int, k: int, memory_words: int | None = None
) -> float:
    """Words a rank *receives* during a COSMA run on this grid.

    A rank with local extents ``(lm, ln, lk)`` needs the ``lm x lk`` block of A
    and the ``lk x ln`` block of B; of these it initially owns ``1/pn`` and
    ``1/pm`` respectively (the blocked layout splits each panel across the
    ranks that will broadcast it).  When the grid is parallelized along ``k``
    (``pk > 1``) the ``lm x ln`` partial results must additionally be reduced.
    This is the discrete counterpart of ``Q = 2ab + a^2`` from section 6.3.

    When ``memory_words`` is given and the ``lm x ln`` output block does not
    fit in it, the rank cannot keep its accumulator resident: it must process
    the domain in output tiles of at most ``S`` words and re-fetch the remote
    panels for each tile, so the input traffic degrades to the sequential-style
    ``2 lm ln lk / sqrt(S)`` (the I/O constraint ``a^2 <= S`` of section 6.3).
    """
    lm, ln, lk = grid.local_extents(m, n, k)
    if memory_words is not None and lm * ln > memory_words:
        volume_inputs = 2.0 * lm * ln * lk / math.sqrt(memory_words)
    else:
        volume_a = lm * lk * (grid.pn - 1) / grid.pn
        volume_b = ln * lk * (grid.pm - 1) / grid.pm
        volume_inputs = volume_a + volume_b
    volume_c = lm * ln * (grid.pk - 1) / grid.pk if grid.pk > 1 else 0.0
    return volume_inputs + volume_c


def computation_per_rank(grid: ProcessorGrid, m: int, n: int, k: int) -> int:
    """Multiplications assigned to the busiest rank of the grid."""
    lm, ln, lk = grid.local_extents(m, n, k)
    return lm * ln * lk


def candidate_grids(p_used: int, m: int, n: int, k: int) -> list[ProcessorGrid]:
    """All grids using exactly ``p_used`` ranks, with no dimension exceeding its extent."""
    grids = []
    for pm, pn, pk in all_factorizations_3d(p_used):
        if pm <= m and pn <= n and pk <= k:
            grids.append(ProcessorGrid(pm, pn, pk))
    return grids


@dataclass(frozen=True)
class GridFit:
    """Result of :func:`fit_ranks`."""

    grid: ProcessorGrid
    p_available: int
    communication_per_rank: float
    computation_per_rank: int

    @property
    def idle_ranks(self) -> int:
        return self.p_available - self.grid.p_used

    @property
    def idle_fraction(self) -> float:
        return self.idle_ranks / self.p_available


def fit_ranks(
    m: int,
    n: int,
    k: int,
    p: int,
    max_idle_fraction: float = 0.03,
    memory_words: int | None = None,
) -> GridFit:
    """``FitRanks`` (Algorithm 1, line 3): choose the best processor grid.

    Enumerates every processor count ``p_used`` in
    ``[ceil(p * (1 - max_idle_fraction)), p]`` and every 3-D factorization of
    each, and returns the grid minimizing the per-rank communication volume.
    Ties are broken in favour of (1) more ranks used (less computation per
    rank) and (2) a more balanced grid.

    Parameters
    ----------
    m, n, k:
        Matrix dimensions.
    p:
        Available processors.
    max_idle_fraction:
        The tunable parameter ``delta``: the largest fraction of processors
        the optimizer may leave idle (3% in the paper's Piz Daint runs).
    memory_words:
        Per-rank memory ``S``; when given, grids whose local output block does
        not fit are charged the degraded (re-fetching) communication cost.
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    p = check_positive_int(p, "p")
    max_idle_fraction = check_probability(max_idle_fraction, "max_idle_fraction")

    def best_fit_at(p_used: int, incumbent: GridFit | None) -> GridFit | None:
        for grid in candidate_grids(p_used, m, n, k):
            fit = GridFit(
                grid=grid,
                p_available=p,
                communication_per_rank=communication_volume_per_rank(
                    grid, m, n, k, memory_words=memory_words
                ),
                computation_per_rank=computation_per_rank(grid, m, n, k),
            )
            if incumbent is None or _better(fit, incumbent):
                incumbent = fit
        return incumbent

    min_p_used = max(1, int(math.ceil(p * (1.0 - max_idle_fraction))))
    best: GridFit | None = None
    for p_used in range(p, min_p_used - 1, -1):
        best = best_fit_at(p_used, best)
    if best is None:
        # Every candidate grid inside the delta window was rejected (e.g.
        # every factorization of p has an extent exceeding a matrix
        # dimension).  Widen the search downward and use the largest feasible
        # processor count instead of collapsing to a single rank; the 1x1x1
        # grid remains the ultimate fallback because it is always feasible.
        for p_used in range(min_p_used - 1, 0, -1):
            best = best_fit_at(p_used, best)
            if best is not None:
                break
    return best


def _better(candidate: GridFit, incumbent: GridFit) -> bool:
    """Ordering used by :func:`fit_ranks` (lower communication first)."""
    if not math.isclose(candidate.communication_per_rank, incumbent.communication_per_rank, rel_tol=1e-9):
        return candidate.communication_per_rank < incumbent.communication_per_rank
    if candidate.computation_per_rank != incumbent.computation_per_rank:
        return candidate.computation_per_rank < incumbent.computation_per_rank
    # Prefer more balanced grids (smaller max dimension).
    cand_spread = max(candidate.grid.as_tuple()) - min(candidate.grid.as_tuple())
    inc_spread = max(incumbent.grid.as_tuple()) - min(incumbent.grid.as_tuple())
    return cand_spread < inc_spread
