"""The I/O-latency trade-off (end of section 6.3).

For a local domain of width ``a`` (with ``a <= sqrt(S)``) the per-processor
I/O and latency costs are::

    Q(a) = 2 m n k / (p a) + a^2
    L(a) = 2 m n k / (p a (S - a^2))

Growing ``a`` reduces I/O but increases latency (fewer words fit alongside the
larger accumulator, so more rounds are needed).  COSMA by default minimizes
``Q`` and spends any spare memory on reducing ``L``; these helpers expose the
whole trade-off curve for the ablation benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the I/O-latency trade-off curve."""

    a: float
    io_cost: float
    latency_cost: float
    rounds: int


def io_cost(m: int, n: int, k: int, p: int, a: float) -> float:
    """``Q(a) = 2mnk / (pa) + a^2``."""
    if a <= 0:
        raise ValueError(f"a must be positive, got {a}")
    return 2.0 * float(m) * n * k / (p * a) + a * a


def latency_cost(m: int, n: int, k: int, p: int, s: int, a: float) -> float:
    """``L(a) = 2mnk / (p a (S - a^2))``; infinite when ``a^2 >= S``."""
    if a <= 0:
        raise ValueError(f"a must be positive, got {a}")
    free = s - a * a
    if free <= 0:
        return math.inf
    return 2.0 * float(m) * n * k / (p * a * free)


def tradeoff_curve(
    m: int, n: int, k: int, p: int, s: int, samples: int = 32
) -> list[TradeoffPoint]:
    """Sample the trade-off curve for ``a`` in ``[1, sqrt(S)]``."""
    check_positive_int(samples, "samples")
    s = check_positive_int(s, "S")
    a_max = math.sqrt(s)
    points: list[TradeoffPoint] = []
    for index in range(samples):
        a = 1.0 + (a_max - 1.0) * index / max(1, samples - 1)
        q = io_cost(m, n, k, p, a)
        lat = latency_cost(m, n, k, p, s, a)
        b = float(m) * n * k / (p * a * a)
        free = s - a * a
        rounds = int(math.ceil(2.0 * a * b / free)) if free > 0 else int(b)
        points.append(TradeoffPoint(a=a, io_cost=q, latency_cost=lat, rounds=max(1, rounds)))
    return points


def min_io_point(m: int, n: int, k: int, p: int, s: int) -> TradeoffPoint:
    """The trade-off point COSMA picks by default: minimal I/O, ``a = min(sqrt(S), (mnk/p)^(1/3))``."""
    a = min(math.sqrt(s), (float(m) * n * k / p) ** (1.0 / 3.0))
    q = io_cost(m, n, k, p, a)
    lat = latency_cost(m, n, k, p, s, a)
    b = float(m) * n * k / (p * a * a)
    free = s - a * a
    rounds = int(math.ceil(2.0 * a * b / free)) if free > 0 else int(max(1.0, b))
    return TradeoffPoint(a=a, io_cost=q, latency_cost=lat, rounds=max(1, rounds))
