"""Communication-computation overlap model (section 7.3).

COSMA's rounds naturally pipeline: while round ``t`` is being multiplied, the
panels of round ``t+1`` are already being fetched (double buffering, RDMA
back-end).  Given per-round communication and computation times this module
computes the total runtime with and without overlap; the experiment harness
feeds it the simulator-measured round volumes to produce the Figure 12
breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class OverlapTimeline:
    """Total times of a pipelined execution."""

    total_no_overlap: float
    total_with_overlap: float
    communication_time: float
    computation_time: float

    @property
    def speedup(self) -> float:
        if self.total_with_overlap == 0:
            return 1.0
        return self.total_no_overlap / self.total_with_overlap

    @property
    def overlap_efficiency(self) -> float:
        """Fraction of the communication hidden behind computation."""
        hidden = self.total_no_overlap - self.total_with_overlap
        if self.communication_time == 0:
            return 1.0
        return max(0.0, min(1.0, hidden / self.communication_time))


def pipeline_times(
    comm_times: Sequence[float],
    comp_times: Sequence[float],
) -> OverlapTimeline:
    """Compute pipelined and sequential total times for per-round costs.

    Without overlap every round's communication and computation are serialized:
    ``sum(comm) + sum(comp)``.  With double buffering, round ``t``'s
    computation overlaps round ``t+1``'s communication, so the total is
    ``comm_0 + sum_{t>0} max(comm_t, comp_{t-1}) + comp_last``.
    """
    if len(comm_times) != len(comp_times):
        raise ValueError(
            f"per-round lists must have equal length, got {len(comm_times)} and {len(comp_times)}"
        )
    if any(t < 0 for t in comm_times) or any(t < 0 for t in comp_times):
        raise ValueError("round times must be non-negative")
    total_comm = float(sum(comm_times))
    total_comp = float(sum(comp_times))
    no_overlap = total_comm + total_comp
    if not comm_times:
        return OverlapTimeline(0.0, 0.0, 0.0, 0.0)
    with_overlap = comm_times[0]
    for index in range(1, len(comm_times)):
        with_overlap += max(comm_times[index], comp_times[index - 1])
    with_overlap += comp_times[-1]
    return OverlapTimeline(
        total_no_overlap=no_overlap,
        total_with_overlap=with_overlap,
        communication_time=total_comm,
        computation_time=total_comp,
    )


def even_rounds(total_comm: float, total_comp: float, rounds: int) -> OverlapTimeline:
    """Overlap model assuming the volume and work split evenly across ``rounds``."""
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    comm = [total_comm / rounds] * rounds
    comp = [total_comp / rounds] * rounds
    return pipeline_times(comm, comp)
