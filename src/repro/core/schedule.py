"""Optimal sequential and parallel COSMA schedules (sections 5 and 6.3).

The near I/O optimal *sequential* schedule processes the MMM iteration space
in ``a x a`` output tiles swept along ``k``; parallelizing it assigns each of
the ``p`` processors a local domain of ``a x a x b`` multiplications where
(Equation 32)::

    a = min( sqrt(S), (mnk / p)^(1/3) )
    b = max( mnk / (p S), (mnk / p)^(1/3) )

The first branch is the "limited memory" regime (the ``a^2 <= S`` constraint
binds, the local domain is a tall slab); the second the "extra memory" regime
(the local domain is cubic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import check_positive_int


def find_sequential_schedule(s: int, m: int, n: int, k: int, p: int) -> float:
    """``FindSeqSchedule`` (Algorithm 1, line 1): the local-domain width ``a``.

    Returns the real-valued optimum; the grid-fitting step later rounds it to
    integer block sizes.
    """
    s = check_positive_int(s, "S")
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    p = check_positive_int(p, "p")
    return min(math.sqrt(s), (float(m) * n * k / p) ** (1.0 / 3.0))


def parallelize_schedule(a: float, m: int, n: int, k: int, p: int, s: int) -> float:
    """``ParallelizeSched`` (Algorithm 1, line 2): the local-domain depth ``b``."""
    if a <= 0:
        raise ValueError(f"a must be positive, got {a}")
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    p = check_positive_int(p, "p")
    s = check_positive_int(s, "S")
    return max(float(m) * n * k / (p * s), (float(m) * n * k / p) ** (1.0 / 3.0))


@dataclass(frozen=True)
class LocalDomainShape:
    """The real-valued optimal local domain ``[a x a x b]`` and its step structure."""

    a: float
    b: float
    s: int
    #: Number of outer products communicated per round (latency-minimizing step
    #: size, Algorithm 1 line 6): ``floor((S - a^2) / (2a))``.
    step_size: int
    #: Number of communication rounds ``t = ceil(b / step)`` (Algorithm 1 line 7).
    num_steps: int

    @property
    def domain_volume(self) -> float:
        """Number of multiplications per processor ``a^2 b`` (load balance)."""
        return self.a * self.a * self.b

    @property
    def io_per_processor(self) -> float:
        """Per-processor communication ``2ab + a^2`` induced by the domain shape."""
        return 2.0 * self.a * self.b + self.a * self.a


def optimal_local_domain(m: int, n: int, k: int, p: int, s: int) -> LocalDomainShape:
    """Solve Equation 32 and derive the latency-minimizing step structure.

    Raises ``ValueError`` when the aggregate memory cannot hold the three
    matrices (the analysis requires ``p S >= mn + mk + nk``).
    """
    s = check_positive_int(s, "S")
    p = check_positive_int(p, "p")
    footprint = float(m) * n + float(m) * k + float(n) * k
    if p * s < footprint:
        raise ValueError(
            f"aggregate memory p*S = {p * s} is smaller than the matrices' footprint "
            f"mn + mk + nk = {footprint:.0f}"
        )
    a = find_sequential_schedule(s, m, n, k, p)
    b = parallelize_schedule(a, m, n, k, p, s)
    # Latency-minimizing communication step (Algorithm 1, line 6).  With a
    # cubic local domain (extra memory) the inputs of the whole domain fit at
    # once and a single step suffices.
    a_int = max(1, int(math.floor(a)))
    free_words = s - a_int * a_int
    if free_words >= 2 * a_int * math.ceil(b):
        step = int(math.ceil(b))
    else:
        step = max(1, free_words // (2 * a_int))
    num_steps = max(1, int(math.ceil(b / step)))
    return LocalDomainShape(a=a, b=b, s=s, step_size=step, num_steps=num_steps)
