"""The COSMA distributed executor (Algorithm 1 on the machine simulator).

Execution outline for a fitted grid ``[pm x pn x pk]``:

1. every used rank starts with its owned slices of A and B
   (:func:`repro.core.decomposition.distribute_matrices`);
2. the local ``k`` extent is processed in ``t`` communication rounds of
   ``step_size`` outer products each (Algorithm 1, lines 8-11): in every round
   the pieces of the A panel for the round's k-chunk are broadcast along the
   ``j`` fiber and the pieces of the B panel along the ``i`` fiber, after
   which each rank multiplies the received panels into its ``lm x ln``
   accumulator;
3. the accumulators are reduced along the ``k`` fiber onto the C owners
   (Algorithm 1, line 12).

Every transferred word is counted by the machine's communication layer; the
returned :class:`CosmaRunResult` exposes the counters, the assembled global
product and the per-round volumes needed by the overlap performance model.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.core.decomposition import CosmaDecomposition, build_decomposition, distribute_matrices
from repro.core.grid import ProcessorGrid
from repro.machine.collectives import broadcast, broadcast_hops, reduce, reduce_hops
from repro.machine.counters import CommCounters
from repro.machine.rma import rma_get
from repro.machine.simulator import DistributedMachine
from repro.machine.transport import PayloadPlane, ShapeToken, as_payload


@dataclass
class CosmaRunResult:
    """Outcome of a COSMA run on the simulator."""

    matrix: np.ndarray
    decomposition: CosmaDecomposition
    counters: CommCounters
    num_rounds: int
    #: Per-round maximum words received by any rank (drives the overlap model).
    round_volumes: list[int] = field(default_factory=list)
    peak_resident_words: int = 0

    @property
    def grid(self) -> ProcessorGrid:
        return self.decomposition.grid

    @property
    def mean_words_per_rank(self) -> float:
        return self.counters.mean_words_per_rank()

    @property
    def max_words_per_rank(self) -> int:
        return self.counters.max_words_per_rank()


def cosma_multiply(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    p: int,
    memory_words: int,
    machine: DistributedMachine | None = None,
    max_idle_fraction: float = 0.03,
    grid: ProcessorGrid | None = None,
    use_rma: bool = False,
) -> CosmaRunResult:
    """Multiply ``A @ B`` with COSMA on a simulated ``p``-processor machine.

    Parameters
    ----------
    a_matrix, b_matrix:
        Global input matrices (``m x k`` and ``k x n``).
    p:
        Number of processors.
    memory_words:
        Local memory ``S`` per processor, in words.
    machine:
        Optional pre-built simulator (its counters are *not* reset); a fresh
        one is created by default.
    max_idle_fraction:
        ``delta`` for the grid-fitting step.
    grid:
        Optional explicit grid override (ablation experiments).
    use_rma:
        Use one-sided gets for the panel exchange instead of broadcast trees
        (section 7.4); the volume is identical, the round accounting differs.
    """
    # Normalize operands at the machine's plane dtype: a float32 machine
    # receives float32 payloads directly, never a float64 round-trip.
    plane_dtype = None if machine is None else machine.transport.dtype
    a_matrix = as_payload(a_matrix, dtype=plane_dtype)
    b_matrix = as_payload(b_matrix, dtype=plane_dtype)
    m, k = a_matrix.shape
    k2, n = b_matrix.shape
    if k != k2:
        raise ValueError(f"inner dimensions do not match: {a_matrix.shape} x {b_matrix.shape}")

    decomposition = build_decomposition(
        m, n, k, p, memory_words, max_idle_fraction=max_idle_fraction, grid=grid
    )
    if machine is None:
        machine = DistributedMachine(p, memory_words=memory_words)
    if not use_rma and (machine.transport.counters_only or machine.transport.planar):
        # Batched round engine: identical schedule, vectorized accounting;
        # numerics (plane mode) run as stacked-array GEMMs.
        return _cosma_batched(a_matrix, b_matrix, machine, decomposition)
    owned = distribute_matrices(decomposition, a_matrix, b_matrix)
    for rank, pieces in owned.items():
        machine.rank(rank).put("A_own", pieces["A"])
        machine.rank(rank).put("B_own", pieces["B"])

    gridspec = decomposition.grid
    # Per-rank accumulators for the local C block.
    for domain in decomposition.domains:
        lm = domain.i_range[1] - domain.i_range[0]
        ln = domain.j_range[1] - domain.j_range[0]
        machine.rank(domain.rank).put("C_acc", machine.zeros((lm, ln)))

    domains_by_rank = {d.rank: d for d in decomposition.domains}
    round_volumes: list[int] = []
    num_rounds = 0

    # ------------------------------------------------------------------
    # main loop: process each k-fiber's local k extent in steps
    # ------------------------------------------------------------------
    # All ranks share the same number of steps because the k extents are
    # nearly equal; iterate over the global maximum.
    max_lk = max(d.k_range[1] - d.k_range[0] for d in decomposition.domains)
    step = decomposition.step_size
    offsets = list(range(0, max_lk, step))
    # Round fingerprints for steady-state compression: with the grid and the
    # domains fixed, a round's whole communication schedule (which owners
    # broadcast along which fibers, the piece and chunk shapes, the local
    # multiply sizes) is a pure function of the *overlap widths* between the
    # round's clamped chunk and each ownership slice.  The widths are
    # translation-invariant -- two offsets inside the same ownership segment
    # produce the identical counter delta -- and there are only
    # O(pk * (pm + pn)) distinct (k-range, owned-slice) classes, so the
    # fingerprint is a short tuple even at paper scale.
    ownership_classes = sorted(
        {(d.k_range, d.a_owned_k_range) for d in decomposition.domains}
        | {(d.k_range, d.b_owned_k_range) for d in decomposition.domains}
    )
    fingerprint_context = (
        "cosma", m, n, k, gridspec.pm, gridspec.pn, gridspec.pk, step, use_rma,
    )

    def round_fingerprint(chunk_offset: int) -> tuple:
        widths = []
        for (k0, k1), (o0, o1) in ownership_classes:
            c0 = min(k0 + chunk_offset, k1)
            c1 = min(c0 + step, k1)
            widths.append((c1 - c0, max(0, min(o1, c1) - max(o0, c0))))
        return fingerprint_context + tuple(widths)

    for chunk_index, chunk_offset in enumerate(offsets):
        if machine.compressor is not None:
            replayed = machine.replay_round(round_fingerprint(chunk_offset))
            if replayed is not None:
                num_rounds += 1
                round_volumes.append(replayed.max_words_delta)
                continue
        # Round-delta tracking: mark the per-rank totals instead of deep
        # copying the whole counter set every round.
        machine.counters.mark_round_start()

        def chunk_bounds(domain):
            k0, k1 = domain.k_range
            c0 = min(k0 + chunk_offset, k1)
            c1 = min(c0 + step, k1)
            return c0, c1

        # --- exchange the A panel chunks along every j fiber (tree broadcast, §7.2) ---
        a_chunks: dict[int, np.ndarray] = {}
        for pi in range(gridspec.pm):
            for pk in range(gridspec.pk):
                fiber = decomposition.j_fiber(pi, pk)
                sample = domains_by_rank[fiber[0]]
                c0, c1 = chunk_bounds(sample)
                if c0 >= c1:
                    continue
                lm = sample.i_range[1] - sample.i_range[0]
                for r in fiber:
                    a_chunks[r] = machine.zeros((lm, c1 - c0))
                for owner_rank in fiber:
                    owner = domains_by_rank[owner_rank]
                    o0, o1 = owner.a_owned_k_range
                    lo, hi = max(o0, c0), min(o1, c1)
                    if lo >= hi:
                        continue
                    piece = machine.rank(owner_rank).get("A_own")[:, lo - o0 : hi - o0]
                    if use_rma:
                        for r in fiber:
                            delivered = (
                                machine.transport.self_copy(piece)
                                if r == owner_rank
                                else rma_get(machine, r, owner_rank, piece)
                            )
                            a_chunks[r][:, lo - c0 : hi - c0] = delivered
                    else:
                        received = broadcast(machine, owner_rank, fiber, piece, kind="input")
                        for r in fiber:
                            a_chunks[r][:, lo - c0 : hi - c0] = received[r]

        # --- exchange the B panel chunks along every i fiber ---
        b_chunks: dict[int, np.ndarray] = {}
        for pj in range(gridspec.pn):
            for pk in range(gridspec.pk):
                fiber = decomposition.i_fiber(pj, pk)
                sample = domains_by_rank[fiber[0]]
                c0, c1 = chunk_bounds(sample)
                if c0 >= c1:
                    continue
                ln = sample.j_range[1] - sample.j_range[0]
                for r in fiber:
                    b_chunks[r] = machine.zeros((c1 - c0, ln))
                for owner_rank in fiber:
                    owner = domains_by_rank[owner_rank]
                    o0, o1 = owner.b_owned_k_range
                    lo, hi = max(o0, c0), min(o1, c1)
                    if lo >= hi:
                        continue
                    piece = machine.rank(owner_rank).get("B_own")[lo - o0 : hi - o0, :]
                    if use_rma:
                        for r in fiber:
                            delivered = (
                                machine.transport.self_copy(piece)
                                if r == owner_rank
                                else rma_get(machine, r, owner_rank, piece)
                            )
                            b_chunks[r][lo - c0 : hi - c0, :] = delivered
                    else:
                        received = broadcast(machine, owner_rank, fiber, piece, kind="input")
                        for r in fiber:
                            b_chunks[r][lo - c0 : hi - c0, :] = received[r]

        # --- local multiply-accumulate on every rank that has work this round ---
        for domain in decomposition.domains:
            rank = domain.rank
            if rank not in a_chunks or rank not in b_chunks:
                continue
            machine.local_multiply(
                rank, a_chunks[rank], b_chunks[rank], accumulate_into=machine.rank(rank).get("C_acc")
            )

        num_rounds += 1
        round_volumes.append(int(machine.counters.max_round_delta()))
        machine.check_memory()
        machine.log_round(f"cosma-step-{chunk_index}")
        machine.commit_round()

    # ------------------------------------------------------------------
    # reduce the partial C blocks along the k fibers onto the owners
    # ------------------------------------------------------------------
    c_global = machine.zeros((m, n))
    for pi in range(gridspec.pm):
        for pj in range(gridspec.pn):
            fiber = decomposition.k_fiber(pi, pj)
            owner = decomposition.coords_to_rank(pi, pj, 0)
            blocks = {r: machine.rank(r).get("C_acc") for r in fiber}
            if len(fiber) > 1:
                total = reduce(machine, owner, fiber, blocks, kind="output")
            else:
                total = blocks[owner]
            machine.rank(owner).put("C_final", total)
            domain = domains_by_rank[owner]
            i0, i1 = domain.i_range
            j0, j1 = domain.j_range
            c_global[i0:i1, j0:j1] = total

    machine.check_memory()
    return CosmaRunResult(
        matrix=c_global,
        decomposition=decomposition,
        counters=machine.counters,
        num_rounds=num_rounds,
        round_volumes=round_volumes,
        peak_resident_words=machine.peak_resident_words,
    )


# ---------------------------------------------------------------------------
# Batched round engine (volume + plane modes)
# ---------------------------------------------------------------------------
def _hop_positions(hops) -> tuple[np.ndarray, np.ndarray]:
    """Hop (src, dst) position lists as int64 arrays."""
    src = np.array([s for s, _ in hops], dtype=np.int64)
    dst = np.array([d for _, d in hops], dtype=np.int64)
    return src, dst


def _sharded_gemm(
    machine: DistributedMachine,
    a_data: np.ndarray,
    b_data: np.ndarray,
    c_plane: PayloadPlane,
) -> None:
    """Run the product on the shard pool: ``machine.shards`` worker processes.

    The parent copies A and B into shared-memory segments once; each worker
    owns a contiguous row stripe of the output and computes
    ``out[r0:r1] = a[r0:r1] @ b`` straight into the shared output segment
    (fusing the per-layer GEMM and the k reduction of the in-process path).
    Only (job id, slice spec) messages cross the pipes.  All counters were
    already posted in the parent -- nothing here touches accounting.
    """
    from repro.machine.shard import get_pool, split_offsets

    m = int(c_plane.data.shape[1])
    pool = get_pool(machine.shards)
    trace = machine.trace
    try:
        pool.share("cosma.A", a_data)
        pool.share("cosma.B", b_data)
        out = pool.share_zeros("cosma.OUT", c_plane.data.shape[1:], a_data.dtype)
        specs = [
            {"a": "cosma.A", "b": "cosma.B", "out": "cosma.OUT", "rows": [r0, r1]}
            for r0, r1 in split_offsets(m, machine.shards)
        ]
        start_ns = trace.tracer.now_ns() if trace is not None else 0
        infos = pool.run("gemm_rows", specs)
        if trace is not None:
            for shard, (info, rows) in enumerate(zip(infos, split_offsets(m, machine.shards))):
                trace.tracer.complete(
                    "cosma-shard-gemm", cat="gemm", start_ns=start_ns,
                    dur_ns=int(info.get("seconds", 0.0) * 1e9),
                    args={"shard": shard, "rows": list(rows)},
                    track="gemm",
                )
        # Copy the product out of shared memory before the segments die; the
        # plane (and everything downstream) must never reference pool-owned
        # buffers or releasing them would raise BufferError.
        c_plane.data[0][...] = out
        out = None
    finally:
        pool.release()


def _cosma_batched(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    machine: DistributedMachine,
    decomposition: CosmaDecomposition,
) -> CosmaRunResult:
    """Run COSMA's schedule with vectorized accounting and stacked numerics.

    Walks the exact communication schedule of the per-hop reference path --
    the same rounds, the same binomial broadcast/reduction trees, the same
    payload sizes -- but posts each round's counter updates as one batched
    :meth:`~repro.machine.simulator.DistributedMachine.post_transfers` call
    (plus one batched flop update), so the counters are byte-identical to the
    ``legacy``/``zerocopy`` execution at a fraction of the Python cost.

    In ``volume`` mode that is the whole story (payloads are tokens).  In
    ``plane`` mode the operands live in :class:`PayloadPlane` stacks:

    * A and B are single-sheet planes over the global matrices; every rank's
      owned piece and every broadcast delivery is a rectangular view;
    * the per-rank partial products are one ``(pk, m, n)`` stacked plane --
      the round-chunked multiply-accumulates of the reference path collapse
      into one GEMM per k-layer over the plane sheets (same sums, associated
      per layer instead of per chunk);
    * the C reduction along the k fibers is a single ``np.add.reduce`` over
      the plane's slot axis.

    Rank stores still hold true-shape views of the planes, so memory
    accounting (``check_memory`` / ``peak_resident_words``) matches the
    reference path.
    """
    grid = decomposition.grid
    pm, pn, pk = grid.pm, grid.pn, grid.pk
    m, n, k = decomposition.m, decomposition.n, decomposition.k
    numeric = not machine.transport.counters_only
    domains_by_coords = {d.coords: d for d in decomposition.domains}

    i_ranges = [domains_by_coords[(pi, 0, 0)].i_range for pi in range(pm)]
    j_ranges = [domains_by_coords[(0, pj, 0)].j_range for pj in range(pn)]
    k_ranges = [domains_by_coords[(0, 0, kk)].k_range for kk in range(pk)]
    lm = np.array([hi - lo for lo, hi in i_ranges], dtype=np.int64)
    ln = np.array([hi - lo for lo, hi in j_ranges], dtype=np.int64)
    # Ownership slices: the A split depends on (pj, kk) only, the B split on
    # (pi, kk) only (see build_decomposition).
    a_lo = np.array([[domains_by_coords[(0, pj, kk)].a_owned_k_range[0]
                      for pj in range(pn)] for kk in range(pk)], dtype=np.int64)
    a_hi = np.array([[domains_by_coords[(0, pj, kk)].a_owned_k_range[1]
                      for pj in range(pn)] for kk in range(pk)], dtype=np.int64)
    b_lo = np.array([[domains_by_coords[(pi, 0, kk)].b_owned_k_range[0]
                      for pi in range(pm)] for kk in range(pk)], dtype=np.int64)
    b_hi = np.array([[domains_by_coords[(pi, 0, kk)].b_owned_k_range[1]
                      for pi in range(pm)] for kk in range(pk)], dtype=np.int64)

    # ------------------------------------------------------------------
    # storage: planes + per-rank views (plane mode) or tokens (volume mode)
    # ------------------------------------------------------------------
    # Sharded numeric execution (shards > 1): the k-layer stack never
    # materializes -- shard workers write row stripes of the *final* product
    # into one shared (m, n) output, so the C plane collapses to a single
    # sheet.  Every per-rank view keeps its true shape either way, which is
    # what keeps memory accounting (and all counters) byte-identical across
    # shard counts.
    sharded = numeric and machine.shards > 1
    if numeric:
        a_plane = machine.register_plane(
            "cosma.A", PayloadPlane("cosma.A", data=np.asarray(a_matrix)[None]),
            replace=True,
        )
        b_plane = machine.register_plane(
            "cosma.B", PayloadPlane("cosma.B", data=np.asarray(b_matrix)[None]),
            replace=True,
        )
        c_plane = machine.new_plane("cosma.C", (1 if sharded else pk, m, n))
    for domain in decomposition.domains:
        rank = machine.rank(domain.rank)
        i0, i1 = domain.i_range
        j0, j1 = domain.j_range
        ak0, ak1 = domain.a_owned_k_range
        bk0, bk1 = domain.b_owned_k_range
        if numeric:
            rank.put("A_own", a_plane.attach(domain.rank, 0, slice(i0, i1), slice(ak0, ak1)))
            rank.put("B_own", b_plane.attach(domain.rank, 0, slice(bk0, bk1), slice(j0, j1)))
            rank.put("C_acc", c_plane.attach(
                domain.rank, 0 if sharded else domain.coords[2],
                slice(i0, i1), slice(j0, j1),
            ))
        else:
            rank.put("A_own", ShapeToken((i1 - i0, ak1 - ak0)))
            rank.put("B_own", ShapeToken((bk1 - bk0, j1 - j0)))
            rank.put("C_acc", ShapeToken((i1 - i0, j1 - j0)))

    # ------------------------------------------------------------------
    # round-invariant schedule structure
    # ------------------------------------------------------------------
    # Broadcast hop arrays, precomputed per owner *position* and mapped onto
    # the row-major rank layout.  A j-fiber (pi, *, kk) rooted at owner pj_o
    # performs hops fiber[(pj_o + s) % pn] -> fiber[(pj_o + d) % pn]; the
    # arrays below hold those rank ids for every (pi | pj, owner, hop) with
    # the layer offset kk added at use.
    if pn > 1:
        s_pos, d_pos = _hop_positions(broadcast_hops(pn))
        pj_src = (np.arange(pn)[:, None] + s_pos[None, :]) % pn  # (owner, hop)
        pj_dst = (np.arange(pn)[:, None] + d_pos[None, :]) % pn
        a_srcs = (np.arange(pm)[:, None, None] * pn + pj_src[None]) * pk
        a_dsts = (np.arange(pm)[:, None, None] * pn + pj_dst[None]) * pk
    if pm > 1:
        s_pos_b, d_pos_b = _hop_positions(broadcast_hops(pm))
        pi_src = (np.arange(pm)[:, None] + s_pos_b[None, :]) % pm
        pi_dst = (np.arange(pm)[:, None] + d_pos_b[None, :]) % pm
        b_srcs = (pi_src[None] * pn + np.arange(pn)[:, None, None]) * pk
        b_dsts = (pi_dst[None] * pn + np.arange(pn)[:, None, None]) * pk
    ranks_of_layer = [
        ((np.arange(pm)[:, None] * pn + np.arange(pn)[None, :]) * pk + kk).ravel()
        for kk in range(pk)
    ]
    mn_outer = np.multiply.outer(lm, ln).ravel()

    # Round fingerprints for steady-state compression (see cosma_multiply).
    step = decomposition.step_size
    max_lk = max(hi - lo for lo, hi in k_ranges)
    offsets = list(range(0, max_lk, step))
    ownership_classes = sorted(
        {(d.k_range, d.a_owned_k_range) for d in decomposition.domains}
        | {(d.k_range, d.b_owned_k_range) for d in decomposition.domains}
    )
    fingerprint_context = ("cosma", m, n, k, pm, pn, pk, step, False)

    def round_fingerprint(chunk_offset: int) -> tuple:
        widths = []
        for (k0, k1), (o0, o1) in ownership_classes:
            c0 = min(k0 + chunk_offset, k1)
            c1 = min(c0 + step, k1)
            widths.append((c1 - c0, max(0, min(o1, c1) - max(o0, c0))))
        return fingerprint_context + tuple(widths)

    # ------------------------------------------------------------------
    # main loop: one batched counter update per round
    # ------------------------------------------------------------------
    # The reference path checks memory at the end of every round, but the
    # rank stores (A_own / B_own / C_acc) do not change between rounds -- the
    # per-round check always sees the same footprint.  One check up front
    # records the identical peak and enforces the identical budget.
    machine.check_memory()
    num_rounds = 0
    round_volumes: list[int] = []
    # Traced runs split the batched accounting loop from the stacked GEMMs
    # below, so a plane-mode profile shows where the wall time actually goes.
    trace = machine.trace
    accounting_span = (
        trace.tracer.span(
            "cosma-counter-accounting", cat="phase",
            args={"rounds": len(offsets), "mode": machine.mode},
        )
        if trace is not None
        else nullcontext()
    )
    with accounting_span:
        for chunk_index, chunk_offset in enumerate(offsets):
            if machine.compressor is not None:
                replayed = machine.replay_round(round_fingerprint(chunk_offset))
                if replayed is not None:
                    num_rounds += 1
                    round_volumes.append(replayed.max_words_delta)
                    continue
            machine.counters.mark_round_start()
            src_parts: list[np.ndarray] = []
            dst_parts: list[np.ndarray] = []
            word_parts: list[np.ndarray] = []
            flop_ranks: list[np.ndarray] = []
            flop_amounts: list[np.ndarray] = []
            for kk in range(pk):
                k0, k1 = k_ranges[kk]
                c0 = min(k0 + chunk_offset, k1)
                c1 = min(c0 + step, k1)
                chunk_w = c1 - c0
                if chunk_w <= 0:
                    continue
                if pn > 1:
                    w = np.minimum(a_hi[kk], c1) - np.maximum(a_lo[kk], c0)
                    active = w > 0
                    if active.any():
                        src_parts.append((a_srcs[:, active, :] + kk).ravel())
                        dst_parts.append((a_dsts[:, active, :] + kk).ravel())
                        word_parts.append(np.repeat(
                            np.multiply.outer(lm, w[active]).ravel(), pn - 1
                        ))
                if pm > 1:
                    w = np.minimum(b_hi[kk], c1) - np.maximum(b_lo[kk], c0)
                    active = w > 0
                    if active.any():
                        src_parts.append((b_srcs[:, active, :] + kk).ravel())
                        dst_parts.append((b_dsts[:, active, :] + kk).ravel())
                        word_parts.append(np.repeat(
                            np.multiply.outer(ln, w[active]).ravel(), pm - 1
                        ))
                flop_ranks.append(ranks_of_layer[kk])
                flop_amounts.append(mn_outer * (2 * chunk_w))
            if src_parts:
                machine.post_transfers(
                    np.concatenate(src_parts), np.concatenate(dst_parts),
                    np.concatenate(word_parts), kind="input",
                )
            if flop_ranks:
                machine.post_flops(np.concatenate(flop_ranks), np.concatenate(flop_amounts))
            num_rounds += 1
            round_volumes.append(int(machine.counters.max_round_delta()))
            machine.log_round(f"cosma-step-{chunk_index}")
            machine.commit_round()

    # ------------------------------------------------------------------
    # numerics: one GEMM per k-layer into the stacked C plane
    # ------------------------------------------------------------------
    if numeric:
        gemm_span = (
            trace.tracer.span(
                "cosma-plane-gemm", cat="gemm",
                args={"layers": pk, "m": m, "n": n, "k": k,
                      "shards": machine.shards if sharded else 1},
                track="gemm",
            )
            if trace is not None
            else nullcontext()
        )
        with gemm_span:
            a_data = np.asarray(a_matrix)
            b_data = np.asarray(b_matrix)
            if sharded:
                _sharded_gemm(machine, a_data, b_data, c_plane)
            else:
                for kk in range(pk):
                    k0, k1 = k_ranges[kk]
                    np.matmul(a_data[:, k0:k1], b_data[k0:k1, :], out=c_plane.data[kk])

    # ------------------------------------------------------------------
    # C reduction along the k fibers (single np.add.reduce over the stack)
    # ------------------------------------------------------------------
    if pk > 1:
        r_src, r_dst = _hop_positions(reduce_hops(pk))
        bases = (np.arange(pm)[:, None] * pn + np.arange(pn)[None, :]).ravel() * pk
        hop_words = np.repeat(mn_outer, len(r_src))
        dsts = (bases[:, None] + r_dst[None, :]).ravel()
        machine.post_transfers(
            (bases[:, None] + r_src[None, :]).ravel(), dsts, hop_words, kind="output",
        )
        machine.counters.add_flops(dsts, hop_words)
    c_global = c_plane.reduce_slots() if numeric else ShapeToken((m, n))
    for pi in range(pm):
        for pj in range(pn):
            owner_domain = domains_by_coords[(pi, pj, 0)]
            i0, i1 = owner_domain.i_range
            j0, j1 = owner_domain.j_range
            total = c_global[i0:i1, j0:j1] if numeric else ShapeToken((i1 - i0, j1 - j0))
            machine.rank(owner_domain.rank).put("C_final", total)

    machine.check_memory()
    return CosmaRunResult(
        matrix=c_global,
        decomposition=decomposition,
        counters=machine.counters,
        num_rounds=num_rounds,
        round_volumes=round_volumes,
        peak_resident_words=machine.peak_resident_words,
    )


__all__ = ["cosma_multiply", "CosmaRunResult", "broadcast"]
