"""Integer arithmetic helpers used throughout the COSMA reproduction.

The processor-grid fitting (section 7.1 of the paper) and all the
decomposition code rely on exact integer factorizations and even splits, so
these helpers are kept dependency-free and exhaustively unit-tested.
"""

from __future__ import annotations

import math
from functools import reduce
from typing import Iterator


def ceil_div(a: int, b: int) -> int:
    """Return ``ceil(a / b)`` using only integer arithmetic.

    Parameters
    ----------
    a:
        Non-negative numerator.
    b:
        Positive denominator.
    """
    if b <= 0:
        raise ValueError(f"ceil_div requires a positive denominator, got {b}")
    if a < 0:
        raise ValueError(f"ceil_div requires a non-negative numerator, got {a}")
    return -(-a // b)


def prod(values) -> int:
    """Product of an iterable of integers (1 for an empty iterable)."""
    return reduce(lambda x, y: x * y, values, 1)


def isqrt_floor(n: int) -> int:
    """Floor of the integer square root of ``n`` (n >= 0)."""
    if n < 0:
        raise ValueError(f"isqrt_floor requires n >= 0, got {n}")
    return math.isqrt(n)


def factorize(n: int) -> dict[int, int]:
    """Return the prime factorization of ``n`` as ``{prime: exponent}``.

    Trial division is sufficient here: processor counts in the experiments are
    at most a few tens of thousands.
    """
    if n <= 0:
        raise ValueError(f"factorize requires n >= 1, got {n}")
    factors: dict[int, int] = {}
    remaining = n
    divisor = 2
    while divisor * divisor <= remaining:
        while remaining % divisor == 0:
            factors[divisor] = factors.get(divisor, 0) + 1
            remaining //= divisor
        divisor += 1 if divisor == 2 else 2
    if remaining > 1:
        factors[remaining] = factors.get(remaining, 0) + 1
    return factors


def divisors(n: int) -> list[int]:
    """Return all positive divisors of ``n`` in increasing order."""
    if n <= 0:
        raise ValueError(f"divisors requires n >= 1, got {n}")
    small: list[int] = []
    large: list[int] = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


def all_factorizations_3d(p: int) -> Iterator[tuple[int, int, int]]:
    """Yield every ordered triple ``(pm, pn, pk)`` with ``pm * pn * pk == p``.

    Used to enumerate candidate processor grids when fitting ranks to matrix
    dimensions (section 7.1).  The number of such triples is
    ``d_3(p)`` which stays small for realistic processor counts.
    """
    if p <= 0:
        raise ValueError(f"all_factorizations_3d requires p >= 1, got {p}")
    for pm in divisors(p):
        rest = p // pm
        for pn in divisors(rest):
            yield (pm, pn, rest // pn)


def split_evenly(extent: int, parts: int) -> list[int]:
    """Split ``extent`` items into ``parts`` contiguous chunks as evenly as possible.

    Returns a list of chunk sizes summing to ``extent``; the first
    ``extent % parts`` chunks are one element larger.  This matches how the
    decomposition code assigns trailing "boundary" rows/columns.
    """
    if parts <= 0:
        raise ValueError(f"split_evenly requires parts >= 1, got {parts}")
    if extent < 0:
        raise ValueError(f"split_evenly requires extent >= 0, got {extent}")
    base, extra = divmod(extent, parts)
    return [base + 1 if i < extra else base for i in range(parts)]


def split_offsets(extent: int, parts: int) -> list[tuple[int, int]]:
    """Return ``(start, stop)`` index ranges for :func:`split_evenly`."""
    sizes = split_evenly(extent, parts)
    offsets: list[tuple[int, int]] = []
    start = 0
    for size in sizes:
        offsets.append((start, start + size))
        start += size
    return offsets


def nearly_equal(a: float, b: float, rel: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Relative/absolute float comparison used in cost-model tests."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)


def round_to_multiple(value: int, multiple: int, up: bool = True) -> int:
    """Round ``value`` to the nearest multiple of ``multiple`` (up or down)."""
    if multiple <= 0:
        raise ValueError(f"round_to_multiple requires multiple >= 1, got {multiple}")
    if value < 0:
        raise ValueError(f"round_to_multiple requires value >= 0, got {value}")
    if up:
        return ceil_div(value, multiple) * multiple
    return (value // multiple) * multiple


def closest_divisor(n: int, target: int) -> int:
    """Return the divisor of ``n`` closest to ``target`` (ties resolved downward).

    Grid fitting uses this to snap an ideal (real-valued) grid dimension onto a
    divisor of the processor count.
    """
    if target <= 0:
        raise ValueError(f"closest_divisor requires target >= 1, got {target}")
    best = 1
    best_distance = abs(target - 1)
    for d in divisors(n):
        distance = abs(d - target)
        if distance < best_distance or (distance == best_distance and d < best):
            best = d
            best_distance = distance
    return best
