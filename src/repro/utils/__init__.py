"""Small shared utilities: integer math, factorization, validation helpers."""

from repro.utils.intmath import (
    all_factorizations_3d,
    ceil_div,
    divisors,
    factorize,
    isqrt_floor,
    nearly_equal,
    prod,
    split_evenly,
)
from repro.utils.validation import check_positive_int, check_probability, require

__all__ = [
    "ceil_div",
    "divisors",
    "factorize",
    "all_factorizations_3d",
    "isqrt_floor",
    "prod",
    "split_evenly",
    "nearly_equal",
    "require",
    "check_positive_int",
    "check_probability",
]
