"""Argument validation helpers.

The public API of the library validates its inputs eagerly so that user errors
surface as clear ``ValueError``/``TypeError`` messages instead of as confusing
failures deep inside the simulator.
"""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``.

    numpy integer scalars are accepted (and converted) because workload
    generators frequently produce them.
    """
    try:
        as_int = int(value)
    except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
        raise TypeError(f"{name} must be an integer, got {value!r}") from exc
    if isinstance(value, float) and not value.is_integer():
        raise TypeError(f"{name} must be an integer, got {value!r}")
    if as_int <= 0:
        raise ValueError(f"{name} must be positive, got {as_int}")
    return as_int


def check_nonnegative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    try:
        as_int = int(value)
    except (TypeError, ValueError) as exc:  # pragma: no cover - defensive
        raise TypeError(f"{name} must be an integer, got {value!r}") from exc
    if isinstance(value, float) and not value.is_integer():
        raise TypeError(f"{name} must be an integer, got {value!r}")
    if as_int < 0:
        raise ValueError(f"{name} must be non-negative, got {as_int}")
    return as_int


def check_probability(value: Any, name: str) -> float:
    """Validate that ``value`` lies in [0, 1] and return it as ``float``."""
    as_float = float(value)
    if not 0.0 <= as_float <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {as_float}")
    return as_float
