"""Command-line interface.

Exposes the library's main entry points without writing any Python::

    python -m repro multiply --m 256 --n 320 --k 192 --processors 16 --memory 16384
    python -m repro multiply --m 256 --n 256 --k 256 --processors 16 --memory 16384 --algorithm CARMA
    python -m repro plan     --m 4096 --n 4096 --k 4096 --processors 1024 --memory 65536 --algorithm CTF
    python -m repro compare  --family square --regime limited --processors 4 16 36
    python -m repro compare  --family square --regime limited --processors 256 1024 --mode volume
    python -m repro sweep    --families square largeK --regimes limited extra --processors 4 16 36 64 --jobs 4
    python -m repro bounds   --m 4096 --n 4096 --k 4096 --processors 512 --memory 65536
    python -m repro grid     --m 4096 --n 4096 --k 4096 --processors 65
    python -m repro sequential --size 32 --memory 64 128 256
    python -m repro store verify  --store .sweep-cache
    python -m repro store compact --store .sweep-cache
    python -m repro trace --out trace.json multiply --processors 16 --mode plane
    python -m repro trace --out trace.json sweep --processors 4 16

Algorithm names (and their choice lists) come from the algorithm registry
(:mod:`repro.algorithms`); aliases like ``SUMMA`` or ``2.5D`` are accepted
anywhere an algorithm is named.

Each subcommand prints a plain-text report; exit code 0 means every executed
multiplication verified against numpy.  ``store verify`` has a documented
exit-code contract: 0 = store is clean, 1 = store holds torn / duplicate /
drifted lines, 2 = no store at the given path.

Observability: the global ``--log-level`` flag configures the ``repro``
logger hierarchy; ``multiply`` and ``sweep`` accept ``--trace FILE`` (write a
Perfetto-loadable Chrome trace of the run) and ``--profile [N]`` (cProfile
the command and print the top N cumulative entries); the ``trace``
subcommand is the spelled-out form of ``--trace``.
"""

from __future__ import annotations

import argparse
import cProfile
import json
import pstats
import sys
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.algorithms import (
    DEFAULT_ALGORITHMS,
    algorithm_choices,
    algorithm_specs,
    registered_algorithms,
    resolve_algorithm,
)
from repro.api import lower_bound_parallel, lower_bound_sequential, multiply, plan
from repro.baselines.costs import predict_mnk
from repro.core.grid import fit_ranks
from repro.experiments.harness import sweep
from repro.experiments.perf_model import simulated_time
from repro.experiments.report import format_table, group_by_scenario
from repro.machine.topology import MachineSpec
from repro.machine.transport import MODES, PLANE_DTYPES
from repro.obs import (
    LOG_LEVELS,
    CampaignProgress,
    configure_logging,
    tracing,
    write_chrome_trace,
    write_event_log,
)
from repro.pebbling.mmm_bounds import near_optimal_sequential_io
from repro.sequential import tiled_multiply
from repro.sweeps import ResultStore, RetryPolicy, SweepSpec, run_campaign, scenario_summary_table, tidy_rows
from repro.sweeps.runner import DEFAULT_STORE_PATH
from repro.sweeps.spec import FAMILIES, REGIMES
from repro.workloads.scaling import extra_memory_sweep, limited_memory_sweep, strong_scaling_sweep
from repro.workloads.shapes import square_shape


def _add_multiply_args(p_mult: argparse.ArgumentParser) -> None:
    p_mult.add_argument("--m", type=int, default=256)
    p_mult.add_argument("--n", type=int, default=256)
    p_mult.add_argument("--k", type=int, default=256)
    p_mult.add_argument("--processors", type=int, default=16)
    p_mult.add_argument("--memory", type=int, default=16384, help="words of local memory per processor")
    p_mult.add_argument("--seed", type=int, default=0)
    p_mult.add_argument("--algorithm", choices=algorithm_choices(), default="COSMA")
    p_mult.add_argument(
        "--mode", choices=list(MODES), default="legacy",
        help=(
            "payload transport; 'plane' runs verified numerics on stacked "
            "arrays, 'volume' counts communication only (no numerics)"
        ),
    )
    p_mult.add_argument(
        "--compress-rounds", action="store_true",
        help=(
            "replay cached counter deltas for structurally identical rounds "
            "(volume mode only; counters are byte-identical, runs much faster)"
        ),
    )
    p_mult.add_argument(
        "--shards", type=int, default=1,
        help=(
            "shard the plane engine's numeric GEMMs across this many worker "
            "processes over shared memory (counters are byte-identical across "
            "shard counts; 1 = in-process engine)"
        ),
    )
    p_mult.add_argument(
        "--plane-dtype", choices=list(PLANE_DTYPES), default="float64",
        help=(
            "element dtype for numeric payloads; float32 halves memory and "
            "speeds up GEMMs, verified at relative tolerance"
        ),
    )


def _add_instrumentation_flags(p: argparse.ArgumentParser) -> None:
    """``--trace`` / ``--profile``, shared by the multiply and sweep commands."""
    p.add_argument(
        "--trace", default=None, metavar="TRACE.json",
        help="run with tracing enabled and write a Chrome trace (open in ui.perfetto.dev)",
    )
    p.add_argument(
        "--profile", type=int, nargs="?", const=25, default=None, metavar="N",
        help="cProfile the command and print the top N cumulative entries (default 25)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="COSMA reproduction: communication-optimal matrix multiplication on a simulated machine",
    )
    parser.add_argument(
        "--log-level", choices=list(LOG_LEVELS), default="warning",
        help="threshold for the 'repro' logger hierarchy on stderr (default: warning)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_mult = sub.add_parser("multiply", help="run one algorithm on random matrices and report its communication")
    _add_multiply_args(p_mult)
    _add_instrumentation_flags(p_mult)

    p_plan = sub.add_parser("plan", help="plan a run (grid / rounds / predicted words) without executing it")
    p_plan.add_argument("--m", type=int, required=True)
    p_plan.add_argument("--n", type=int, required=True)
    p_plan.add_argument("--k", type=int, required=True)
    p_plan.add_argument("--processors", type=int, required=True)
    p_plan.add_argument("--memory", type=int, required=True)
    p_plan.add_argument("--algorithm", choices=algorithm_choices(), default="COSMA")

    p_cmp = sub.add_parser("compare", help="compare COSMA against the baselines on a scenario sweep")
    p_cmp.add_argument("--family", choices=list(FAMILIES), default="square")
    p_cmp.add_argument("--regime", choices=list(REGIMES), default="limited")
    p_cmp.add_argument("--processors", type=int, nargs="+", default=[4, 16, 36])
    p_cmp.add_argument("--memory", type=int, default=2048)
    p_cmp.add_argument(
        "--algorithms", nargs="+", choices=algorithm_choices(),
        default=list(DEFAULT_ALGORITHMS),
        help="registry names or aliases (e.g. SUMMA for ScaLAPACK)",
    )
    p_cmp.add_argument(
        "--mode",
        choices=list(MODES),
        default="legacy",
        help=(
            "execution mode: 'legacy' copies payloads per hop, 'zerocopy' shares "
            "read-only views (same numerics, faster), 'plane' runs verified "
            "numerics on stacked arrays (fastest numeric mode), 'volume' "
            "simulates counters only (no numerics; enables paper-scale "
            "processor counts)"
        ),
    )

    p_sweep = sub.add_parser(
        "sweep",
        help="run a cached, parallel scenario campaign (the sweep engine)",
    )
    _add_sweep_args(p_sweep)
    _add_instrumentation_flags(p_sweep)

    p_bounds = sub.add_parser("bounds", help="print the analytic lower bounds and per-algorithm costs")
    p_bounds.add_argument("--m", type=int, required=True)
    p_bounds.add_argument("--n", type=int, required=True)
    p_bounds.add_argument("--k", type=int, required=True)
    p_bounds.add_argument("--processors", type=int, required=True)
    p_bounds.add_argument("--memory", type=int, required=True)

    p_grid = sub.add_parser("grid", help="show the processor grid COSMA would fit (FitRanks)")
    p_grid.add_argument("--m", type=int, required=True)
    p_grid.add_argument("--n", type=int, required=True)
    p_grid.add_argument("--k", type=int, required=True)
    p_grid.add_argument("--processors", type=int, required=True)
    p_grid.add_argument("--memory", type=int, default=None)
    p_grid.add_argument("--max-idle", type=float, default=0.03)

    p_seq = sub.add_parser("sequential", help="measure sequential I/O of the tiled kernel vs the bound")
    p_seq.add_argument("--size", type=int, default=32, help="m = n = k")
    p_seq.add_argument("--memory", type=int, nargs="+", default=[64, 128, 256])
    p_seq.add_argument("--seed", type=int, default=0)

    p_store = sub.add_parser("store", help="inspect and maintain a sweep result store")
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_verify = store_sub.add_parser(
        "verify",
        help="scan the store for torn, duplicate and schema-drifted lines (read-only)",
        description=(
            "Scan a result store without modifying it.  Exit codes: "
            "0 = clean, 1 = dirty (torn / duplicate / drifted lines; "
            "'repro store compact' restores cleanliness), 2 = no store at "
            "the given path."
        ),
    )
    p_verify.add_argument(
        "--store", default=DEFAULT_STORE_PATH,
        help=f"result-store directory (default: {DEFAULT_STORE_PATH})",
    )
    p_verify.add_argument(
        "--json", action="store_true",
        help="print the verify report as a JSON document instead of prose",
    )
    p_compact = store_sub.add_parser(
        "compact", help="atomically rewrite the store keeping the last record per key",
    )
    p_compact.add_argument(
        "--store", default=DEFAULT_STORE_PATH,
        help=f"result-store directory (default: {DEFAULT_STORE_PATH})",
    )

    p_trace = sub.add_parser(
        "trace",
        help="run multiply or sweep with tracing enabled and export a Chrome trace",
    )
    p_trace.add_argument(
        "--out", dest="trace_out", default="trace.json", metavar="TRACE.json",
        help="Chrome trace-event output file (default: trace.json; open in ui.perfetto.dev)",
    )
    p_trace.add_argument(
        "--events", dest="trace_events", default=None, metavar="EVENTS.jsonl",
        help="also write the raw span/event stream as JSON lines",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    t_mult = trace_sub.add_parser("multiply", help="traced variant of 'repro multiply'")
    _add_multiply_args(t_mult)
    t_sweep = trace_sub.add_parser("sweep", help="traced variant of 'repro sweep'")
    _add_sweep_args(t_sweep)
    return parser


def _add_sweep_args(p_sweep: argparse.ArgumentParser) -> None:
    # Campaign flags default to None so _cmd_sweep can tell "explicitly
    # passed" from "defaulted" (a --spec file replaces all of them); the real
    # defaults live in _SWEEP_FLAG_DEFAULTS.
    p_sweep.add_argument("--families", nargs="+", choices=list(FAMILIES), default=None)
    p_sweep.add_argument("--regimes", nargs="+", choices=list(REGIMES), default=None)
    p_sweep.add_argument("--processors", type=int, nargs="+", default=None)
    p_sweep.add_argument("--memory", type=int, default=None, help="words of local memory per processor (default: 2048)")
    p_sweep.add_argument("--algorithms", nargs="+", choices=algorithm_choices(), default=None)
    p_sweep.add_argument(
        "--mode", choices=list(MODES), default=None,
        help="payload transport; 'volume' (default) simulates counters only and scales to paper-size grids",
    )
    p_sweep.add_argument("--seed", type=int, default=None)
    p_sweep.add_argument("--jobs", type=int, default=1, help="worker processes (1 = in-process)")
    p_sweep.add_argument(
        "--timeout-s", type=float, default=None,
        help="per-run wall-clock deadline; expired runs are killed and retried, then quarantined",
    )
    p_sweep.add_argument(
        "--max-attempts", type=int, default=None,
        help="attempts per run for retryable failures (default: 3; 1 disables retries)",
    )
    p_sweep.add_argument(
        "--memory-budget", type=int, default=None, metavar="WORDS",
        help=(
            "host-memory admission budget in words: runs predicted to exceed it are "
            "refused as structured records, oversized-but-fitting runs are serialized"
        ),
    )
    p_sweep.add_argument(
        "--out", default=DEFAULT_STORE_PATH,
        help=f"result-store directory (default: {DEFAULT_STORE_PATH}); delete it to invalidate the cache",
    )
    p_sweep.add_argument(
        "--no-resume", dest="resume", action="store_false",
        help="re-execute every point even if its key is already stored",
    )
    p_sweep.add_argument(
        "--retry-failures", action="store_true",
        help="re-execute cached 'failed' records (successes still come from cache)",
    )
    p_sweep.add_argument(
        "--compress-rounds", action="store_true",
        help=(
            "execute runs with steady-state round compression (volume mode "
            "only); a pure speed knob -- records and cache keys are identical"
        ),
    )
    p_sweep.add_argument(
        "--spec", default=None, metavar="SPEC.json",
        help=(
            "load the whole campaign (grid, algorithms, mode, seed) from a "
            "SweepSpec JSON file; combining it with campaign flags is an error"
        ),
    )
    p_sweep.add_argument("--full-table", action="store_true", help="print the full tidy table, not the per-scenario summary")
    p_sweep.add_argument(
        "--json", action="store_true",
        help="print the campaign result (summary, metrics, records) as one JSON document",
    )
    p_sweep.add_argument(
        "--no-progress", dest="show_progress", action="store_false",
        help="disable the live campaign heartbeat on stderr",
    )


def _cmd_multiply(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    a = rng.standard_normal((args.m, args.k))
    b = rng.standard_normal((args.k, args.n))
    result = multiply(
        a, b, processors=args.processors, memory_words=args.memory,
        algorithm=args.algorithm, mode=args.mode,
        compress_rounds=args.compress_rounds,
        shards=args.shards, plane_dtype=args.plane_dtype,
    )
    print(f"problem              : C({args.m}x{args.n}) = A({args.m}x{args.k}) B({args.k}x{args.n})")
    print(f"algorithm            : {result.algorithm}")
    print(f"processor grid       : {result.grid} ({result.processors_used}/{args.processors} used)")
    print(f"rounds               : {result.rounds}")
    print(f"words received/rank  : {result.mean_received_per_rank:,.0f}")
    print(f"Theorem 2 bound      : {result.lower_bound_per_rank:,.0f}")
    print(f"optimality ratio     : {result.optimality_ratio:.3f}")
    if not result.verified:
        print("verified against numpy: SKIPPED (volume mode: counters-only payloads)")
        return 0
    print(f"verified against numpy: {'OK' if result.correct else 'MISMATCH'}")
    return 0 if result.correct else 1


def _cmd_plan(args: argparse.Namespace) -> int:
    run_plan = plan(
        args.m, args.n, args.k, processors=args.processors,
        memory_words=args.memory, algorithm=args.algorithm,
    )
    print(f"algorithm            : {run_plan.algorithm}")
    print(f"feasible             : {'yes' if run_plan.feasible else 'no'}")
    if not run_plan.feasible:
        print(f"reason               : {run_plan.reason}")
        return 1
    print(f"fitted grid          : {run_plan.grid}")
    print(f"ranks used/available : {run_plan.processors_used}/{args.processors}")
    print(f"scheduled steps      : {run_plan.rounds}")
    print(f"predicted words/rank : {run_plan.predicted_words_per_rank:,.0f}")
    print(f"Theorem 2 bound      : {run_plan.lower_bound_per_rank:,.0f}")
    print(f"predicted ratio      : {run_plan.predicted_optimality_ratio:.3f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    # Registry aliases (e.g. SUMMA) are valid on the command line; runs are
    # recorded under canonical names, so canonicalize before grouping.
    args.algorithms = [resolve_algorithm(name) for name in args.algorithms]
    if args.regime == "strong":
        scenarios = strong_scaling_sweep(square_shape(96), args.processors, memory_words=8 * args.memory)
    elif args.regime == "limited":
        scenarios = limited_memory_sweep(args.family, args.processors, args.memory)
    else:
        scenarios = extra_memory_sweep(args.family, args.processors, args.memory)
    runs = sweep(scenarios, algorithms=args.algorithms, seed=0, mode=args.mode)
    spec = MachineSpec(name="bandwidth-bound", network_latency_s=0.0)
    grouped = group_by_scenario(runs)
    headers = ["p", "m", "n", "k"] + [f"{a} words/rank" for a in args.algorithms] + ["fastest (simulated)"]
    rows = []
    all_correct = all(run.correct for run in runs)
    for name in sorted(grouped, key=lambda s: int(s.rsplit("p", 1)[-1])):
        by_algo = grouped[name]
        shape = next(iter(by_algo.values())).scenario.shape
        row = [next(iter(by_algo.values())).scenario.p, shape.m, shape.n, shape.k]
        for algo in args.algorithms:
            row.append(round(by_algo[algo].mean_received_per_rank))
        fastest = min(by_algo, key=lambda algo: simulated_time(by_algo[algo], spec, overlap=True))
        row.append(fastest)
        rows.append(row)
    print(format_table(headers, rows))
    if args.mode == "volume":
        print("\nnumerical verification skipped (volume mode: counters-only payloads)")
    else:
        print(f"\nall runs verified against numpy: {'OK' if all_correct else 'MISMATCH'}")
    return 0 if all_correct else 1


def _cmd_bounds(args: argparse.Namespace) -> int:
    m, n, k, p, s = args.m, args.n, args.k, args.processors, args.memory
    rows = [
        ["sequential lower bound (Theorem 1)", lower_bound_sequential(m, n, k, s)],
        ["sequential feasible schedule", near_optimal_sequential_io(m, n, k, s)],
        ["parallel lower bound / COSMA (Theorem 2)", lower_bound_parallel(m, n, k, p, s)],
    ]
    # One cost row per registered algorithm that has a Table 3 model.
    for spec in algorithm_specs():
        if spec.io_cost is None:
            continue
        label = spec.name + (f" ({', '.join(spec.aliases)})" if spec.aliases else "")
        rows.append([f"{label} cost", predict_mnk(spec.name, m, n, k, p, s).io_words_per_rank])
    print(format_table(["quantity", "words per processor"], rows))
    return 0


#: Campaign flags a --spec file fully replaces, with their effective defaults
#: (the parser deliberately defaults them all to None, see _build_parser).
_SWEEP_FLAG_DEFAULTS = {
    "families": ("square",),
    "regimes": ("limited",),
    "processors": (4, 16, 36, 64),
    "memory": 2048,
    "algorithms": registered_algorithms(),
    "mode": "volume",
    "seed": 0,
}


def _cmd_sweep(args: argparse.Namespace) -> int:
    passed = {name: getattr(args, name) for name in _SWEEP_FLAG_DEFAULTS
              if getattr(args, name) is not None}
    if args.spec is not None:
        if passed:
            # A spec file defines the whole campaign; silently ignoring
            # explicit flags (e.g. --mode legacy) would mislead the user.
            flags = " ".join(f"--{name}" for name in passed)
            print(f"error: --spec replaces the campaign flags; drop {flags}", file=sys.stderr)
            return 2
        spec = SweepSpec.from_dict(json.loads(Path(args.spec).read_text()))
    else:
        values = dict(_SWEEP_FLAG_DEFAULTS, **passed)
        spec = SweepSpec(
            name="cli-sweep",
            algorithms=tuple(values["algorithms"]),
            families=tuple(values["families"]),
            regimes=tuple(values["regimes"]),
            p_values=tuple(values["processors"]),
            memory_words=values["memory"],
            mode=values["mode"],
            seed=values["seed"],
        )
    total = len(spec.expand())
    json_out = getattr(args, "json", False)
    if not json_out:
        print(
            f"campaign '{spec.name}': {total} runs "
            f"({len(spec.scenarios())} scenarios x {len(spec.algorithms)} algorithms, "
            f"mode={spec.mode}, jobs={args.jobs}, store={args.out})"
        )
    retry = RetryPolicy(max_attempts=args.max_attempts) if args.max_attempts is not None else None
    heartbeat = (
        CampaignProgress(total, store_path=args.out)
        if getattr(args, "show_progress", True)
        else None
    )
    try:
        result = run_campaign(
            spec, store=args.out, jobs=args.jobs, resume=args.resume,
            retry_failures=args.retry_failures, compress_rounds=args.compress_rounds,
            timeout_s=args.timeout_s, retry=retry,
            memory_budget_words=args.memory_budget,
            progress=heartbeat,
        )
    finally:
        if heartbeat is not None:
            heartbeat.close()
    rows = tidy_rows(result.records)
    exit_code = 0 if result.failed == 0 and all(row.get("correct", True) for row in rows) else 1
    if json_out:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return exit_code
    print(result.summary_line())
    if result.stale_lines:
        print(f"store holds {result.stale_lines} stale lines; run 'repro store compact' to drop them")
    if args.full_table:
        from repro.sweeps import campaign_table

        print(campaign_table(rows))
    else:
        print(scenario_summary_table(rows))
    for row in rows:
        if row["status"] == "failed":
            print(f"FAILED {row['scenario']} {row['algorithm']}: {row['error_type']}: {row['error_message']}")
    if spec.mode == "volume":
        print("\nnumerical verification skipped (volume mode: counters-only payloads)")
    return exit_code


def _cmd_grid(args: argparse.Namespace) -> int:
    fit = fit_ranks(
        args.m, args.n, args.k, args.processors,
        max_idle_fraction=args.max_idle, memory_words=args.memory,
    )
    print(f"fitted grid            : {fit.grid.as_tuple()}")
    print(f"ranks used / available : {fit.grid.p_used} / {args.processors} ({fit.idle_ranks} idle)")
    print(f"words received per rank: {fit.communication_per_rank:,.0f}")
    print(f"multiplications per rank: {fit.computation_per_rank:,}")
    return 0


def _cmd_sequential(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    n = args.size
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    rows = []
    ok = True
    for s in args.memory:
        run = tiled_multiply(a, b, memory_words=s)
        ok = ok and bool(np.allclose(run.matrix, a @ b))
        bound = lower_bound_sequential(n, n, n, s)
        rows.append([s, f"{run.schedule.a}x{run.schedule.b}", round(bound), run.io, round(run.io / bound, 3)])
    print(format_table(["S", "tile", "lower bound", "measured I/O", "ratio"], rows))
    print(f"\nnumerics verified: {'OK' if ok else 'MISMATCH'}")
    return 0 if ok else 1


def _cmd_store(args: argparse.Namespace) -> int:
    """Exit codes: 0 = clean store, 1 = dirty store, 2 = no store at the path."""
    store_dir = Path(args.store)
    if not (store_dir / "results.jsonl").exists() and not store_dir.exists():
        print(f"error: no result store at {store_dir}", file=sys.stderr)
        return 2
    store = ResultStore(store_dir)
    if args.store_command == "verify":
        report = store.verify()
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.summary())
            for issue in report.issues:
                print(f"  {issue}")
        return 0 if report.clean else 1
    dropped = store.compact()
    report = store.verify()
    print(f"dropped {dropped} stale lines; {report.summary()}")
    return 0 if report.clean else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run the wrapped multiply/sweep under tracing, then export the trace."""
    handler = _COMMANDS[args.trace_command]
    with tracing() as tracer:
        code = handler(args)
    write_chrome_trace(args.trace_out, tracer)
    # Stderr so 'trace ... sweep --json' keeps machine-readable stdout.
    print(
        f"wrote Chrome trace ({len(tracer.events)} events) to {args.trace_out}; "
        "open in ui.perfetto.dev",
        file=sys.stderr,
    )
    if args.trace_events:
        write_event_log(args.trace_events, tracer)
        print(f"wrote event log to {args.trace_events}", file=sys.stderr)
    return code


def _profiled(handler: Callable[[argparse.Namespace], int], top_n: int):
    def run(args: argparse.Namespace) -> int:
        profiler = cProfile.Profile()
        code = profiler.runcall(handler, args)
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(top_n)
        return code
    return run


_COMMANDS = {
    "multiply": _cmd_multiply,
    "plan": _cmd_plan,
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "bounds": _cmd_bounds,
    "grid": _cmd_grid,
    "sequential": _cmd_sequential,
    "store": _cmd_store,
    "trace": _cmd_trace,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    handler = _COMMANDS[args.command]
    profile_n = getattr(args, "profile", None)
    if profile_n is not None:
        handler = _profiled(handler, profile_n)
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return handler(args)
    # The --trace flag is the inline spelling of the 'trace' subcommand.
    with tracing() as tracer:
        code = handler(args)
    write_chrome_trace(trace_path, tracer)
    print(
        f"wrote Chrome trace ({len(tracer.events)} events) to {trace_path}; "
        "open in ui.perfetto.dev",
        file=sys.stderr,
    )
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
