"""A naive 1D (row-striped) all-gather baseline, self-registered on import.

This is the leftmost point of the paper's Figure 2 "algorithm evolution":
every processor owns a stripe of A's rows (and the matching stripe of C) and
must see *all* of B, which the ranks exchange with a ring all-gather.  Its
per-processor I/O cost ``kn + mk/p + mn/p`` is dominated by the ``kn`` term
-- replicating B everywhere -- which is exactly what the 2D, 2.5D and COSMA
decompositions progressively eliminate.

The module doubles as the reference example for extending the algorithm
registry (README: "adding a new algorithm"): a runner with the uniform
``(a, b, scenario, machine)`` signature, decorated with
:func:`~repro.algorithms.register_algorithm`, optionally carrying a planner
and a Table 3-style cost model.  Importing this module is all it takes for
``AllGather1D`` to work in ``api.multiply`` / ``api.plan``, the harness, the
sweep engine and every campaign table.
"""

from __future__ import annotations

from repro.algorithms import Plan, register_algorithm
from repro.baselines.costs import io_cost_naive_1d
from repro.machine.collectives import allgather
from repro.machine.transport import as_payload, concat_payloads
from repro.pebbling.mmm_bounds import parallel_io_lower_bound
from repro.utils.intmath import split_offsets
from repro.workloads.scaling import Scenario


def _usable_ranks(m: int, k: int, p: int) -> int:
    """Ranks that get a non-empty row stripe of both A and B."""
    return max(1, min(p, m, k))


def _plan_allgather(scenario: Scenario) -> Plan:
    shape = scenario.shape
    q = _usable_ranks(shape.m, shape.k, scenario.p)
    return Plan(
        algorithm="AllGather1D", scenario=scenario, feasible=True,
        grid=(q,), processors_used=q,
        rounds=max(1, q - 1),  # ring all-gather steps
        predicted_words_per_rank=io_cost_naive_1d(shape.m, shape.n, shape.k, q),
        lower_bound_per_rank=parallel_io_lower_bound(
            shape.m, shape.n, shape.k, scenario.p, scenario.memory_words
        ),
    )


@register_algorithm(
    "AllGather1D",
    aliases=("naive-1D",),
    plan=_plan_allgather,
    io_cost=lambda m, n, k, p, s: io_cost_naive_1d(m, n, k, p),
    latency_cost=lambda m, n, k, p, s: float(max(1, p - 1)),
    description="row-striped 1D decomposition; all-gathers B (Figure 2's naive baseline)",
)
def allgather_multiply(a_matrix, b_matrix, scenario, machine):
    """Run the naive 1D algorithm; returns the assembled global product."""
    a_matrix = as_payload(a_matrix)
    b_matrix = as_payload(b_matrix)
    m, k = a_matrix.shape
    k2, n = b_matrix.shape
    if k != k2:
        raise ValueError(f"inner dimensions do not match: {a_matrix.shape} x {b_matrix.shape}")
    q = _usable_ranks(m, k, scenario.p)
    ranks = list(range(q))
    i_ranges = split_offsets(m, q)
    b_ranges = split_offsets(k, q)
    for r in ranks:
        machine.rank(r).put("A_own", a_matrix[i_ranges[r][0]:i_ranges[r][1], :])
        machine.rank(r).put("B_own", b_matrix[b_ranges[r][0]:b_ranges[r][1], :])

    gathered = allgather(
        machine, ranks, {r: machine.rank(r).get("B_own") for r in ranks}, kind="input"
    )
    c_global = machine.zeros((m, n))
    for r in ranks:
        b_full = concat_payloads(gathered[r], axis=0)
        c_block = machine.local_multiply(r, machine.rank(r).get("A_own"), b_full)
        machine.rank(r).put("C_own", c_block)
        i0, i1 = i_ranges[r]
        c_global[i0:i1, :] = c_block
    machine.check_memory()
    return c_global
