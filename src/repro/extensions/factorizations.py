"""LU / Cholesky extensions of the MMM I/O analysis.

The paper's conclusion points out that the bottom-up I/O analysis carries
over to other dense linear-algebra kernels whose flop count is dominated by
MMM-like updates.  This module provides

* sequential I/O lower bounds for LU and Cholesky factorization derived from
  the MMM bound (the trailing-matrix updates of an ``n x n`` factorization
  contain ``n^3/3`` (LU) resp. ``n^3/6`` (Cholesky) multiply-adds, so the
  MMM argument gives ``2/3 * n^3/sqrt(S)`` resp. ``1/3 * n^3/sqrt(S)``
  leading-term bounds);
* analytic parallel communication costs when the trailing updates are
  performed with a COSMA-style (communication-optimal) schedule versus a 2D
  schedule;
* an **out-of-core blocked right-looking Cholesky** that actually runs
  against the two-level :class:`~repro.machine.memory.MemoryHierarchy`,
  counting its slow-memory traffic, so the bound can be checked on a real
  execution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.machine.memory import AccessStats, MemoryHierarchy
from repro.pebbling.mmm_bounds import parallel_io_lower_bound
from repro.utils.intmath import ceil_div
from repro.utils.validation import check_positive_int


# ---------------------------------------------------------------------------
# sequential lower bounds
# ---------------------------------------------------------------------------
def lu_io_lower_bound(n: int, s: int) -> float:
    """Sequential I/O lower bound for LU factorization of an ``n x n`` matrix.

    The Schur-complement updates of LU perform ``n^3/3`` multiply-adds with the
    same projection structure as MMM, giving the leading term
    ``(2/3) n^3 / sqrt(S)``; every matrix element must additionally be read
    and written once.
    """
    n = check_positive_int(n, "n")
    s = check_positive_int(s, "S")
    return (2.0 / 3.0) * n ** 3 / math.sqrt(s) + 2.0 * n * n


def cholesky_io_lower_bound(n: int, s: int) -> float:
    """Sequential I/O lower bound for Cholesky factorization of an ``n x n`` SPD matrix.

    Cholesky performs ``n^3/6`` multiply-adds in its trailing updates, so the
    leading term halves relative to LU; only the lower triangle is touched.
    """
    n = check_positive_int(n, "n")
    s = check_positive_int(s, "S")
    return (1.0 / 3.0) * n ** 3 / math.sqrt(s) + n * n


# ---------------------------------------------------------------------------
# parallel cost models
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FactorizationCost:
    """Per-processor communication of a blocked factorization."""

    kernel: str
    update_words: float
    panel_words: float

    @property
    def total_words(self) -> float:
        return self.update_words + self.panel_words


def parallel_lu_cost(n: int, p: int, s: int, panel_width: int | None = None) -> FactorizationCost:
    """Per-processor communication of a blocked parallel LU.

    The trailing updates are rank-``b`` MMM updates executed with a
    communication-optimal schedule; their aggregate volume is that of one
    ``n^3/3``-multiply MMM, i.e. one third of the square-MMM bound.  The panel
    factorizations and pivoting broadcast ``O(n * b * log p)`` words.
    """
    n = check_positive_int(n, "n")
    p = check_positive_int(p, "p")
    s = check_positive_int(s, "S")
    if panel_width is None:
        panel_width = max(1, int(math.isqrt(s)) // 2)
    update = parallel_io_lower_bound(n, n, n, p, s) / 3.0
    panel = float(n) * panel_width * math.log2(max(2.0, p))
    return FactorizationCost(kernel="lu", update_words=update, panel_words=panel)


def parallel_cholesky_cost(n: int, p: int, s: int, panel_width: int | None = None) -> FactorizationCost:
    """Per-processor communication of a blocked parallel Cholesky (half of LU's updates)."""
    n = check_positive_int(n, "n")
    p = check_positive_int(p, "p")
    s = check_positive_int(s, "S")
    if panel_width is None:
        panel_width = max(1, int(math.isqrt(s)) // 2)
    update = parallel_io_lower_bound(n, n, n, p, s) / 6.0
    panel = float(n) * panel_width * math.log2(max(2.0, p)) / 2.0
    return FactorizationCost(kernel="cholesky", update_words=update, panel_words=panel)


# ---------------------------------------------------------------------------
# out-of-core blocked Cholesky on the memory-hierarchy simulator
# ---------------------------------------------------------------------------
@dataclass
class CholeskyResult:
    """Numerical factor plus the measured slow-memory traffic."""

    factor: np.ndarray
    stats: AccessStats
    block_size: int

    @property
    def io(self) -> int:
        return self.stats.io


def _choose_block_size(n: int, s: int) -> int:
    """Largest block size such that three blocks fit in fast memory."""
    block = int(math.isqrt(max(1, s // 3)))
    return max(1, min(n, block))


def out_of_core_cholesky(matrix: np.ndarray, memory_words: int) -> CholeskyResult:
    """Blocked right-looking Cholesky with explicit slow-memory traffic counting.

    The matrix lives in slow memory block-by-block; the fast memory holds at
    most three ``b x b`` blocks at a time (the factorization / solve / update
    operands).  Loads and stores are counted at block granularity (``b^2``
    words per block transfer), matching how an out-of-core solver would stage
    panels.

    Returns the lower-triangular factor ``L`` (with the strict upper triangle
    zeroed) and the traffic statistics.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"Cholesky needs a square matrix, got shape {matrix.shape}")
    n = matrix.shape[0]
    memory_words = check_positive_int(memory_words, "memory_words")
    block = _choose_block_size(n, memory_words)
    blocks = ceil_div(n, block)

    # Working copy of the lower triangle, updated in place block-wise.
    work = np.tril(matrix).copy()

    def block_range(index: int) -> tuple[int, int]:
        return index * block, min((index + 1) * block, n)

    # The hierarchy tracks which blocks are resident; each block counts as
    # block^2 words of capacity, so give it room for 3 blocks (+1 slack word).
    hierarchy = MemoryHierarchy(
        capacity_words=3,
        initial_slow=[("blk", i, j) for i in range(blocks) for j in range(blocks) if j <= i],
    )
    words_per_block = block * block
    stats = AccessStats()

    def load(i: int, j: int) -> None:
        if not hierarchy.in_fast(("blk", i, j)):
            hierarchy.load(("blk", i, j))
            stats.loads += words_per_block

    def store_and_evict(i: int, j: int) -> None:
        hierarchy.store(("blk", i, j))
        hierarchy.evict(("blk", i, j))
        stats.stores += words_per_block

    def evict(i: int, j: int) -> None:
        hierarchy.evict(("blk", i, j))

    for kk in range(blocks):
        k0, k1 = block_range(kk)
        # Factor the diagonal block.
        load(kk, kk)
        diag = work[k0:k1, k0:k1]
        work[k0:k1, k0:k1] = np.linalg.cholesky(diag)
        stats.computes += (k1 - k0) ** 3 // 3 + 1
        store_and_evict(kk, kk)

        # Triangular solves for the panel below the diagonal block.
        load(kk, kk)
        l_kk = work[k0:k1, k0:k1]
        for ii in range(kk + 1, blocks):
            i0, i1 = block_range(ii)
            load(ii, kk)
            # Triangular solve L_ik = A_ik @ inv(L_kk)^T, written via np.linalg.solve.
            work[i0:i1, k0:k1] = np.linalg.solve(l_kk, work[i0:i1, k0:k1].T).T
            stats.computes += (i1 - i0) * (k1 - k0) ** 2
            store_and_evict(ii, kk)
        evict(kk, kk)

        # Trailing (Schur-complement) updates: A_ij -= L_ik @ L_jk^T.
        for jj in range(kk + 1, blocks):
            j0, j1 = block_range(jj)
            load(jj, kk)
            l_jk = work[j0:j1, k0:k1]
            for ii in range(jj, blocks):
                i0, i1 = block_range(ii)
                load(ii, kk)
                load(ii, jj)
                update = work[i0:i1, k0:k1] @ l_jk.T
                if ii == jj:
                    update = np.tril(update)
                work[i0:i1, j0:j1] -= update
                stats.computes += 2 * (i1 - i0) * (j1 - j0) * (k1 - k0)
                store_and_evict(ii, jj)
                if ii != jj:
                    evict(ii, kk)
            evict(jj, kk)

    factor = np.tril(work)
    return CholeskyResult(factor=factor, stats=stats, block_size=block)
