"""Extensions beyond the paper's core results.

The paper's conclusion notes that the I/O-optimality machinery "is
generalizable to other machine models (e.g., multiple levels of memory) and
linear algebra kernels (e.g., LU or Cholesky decompositions)".  This
subpackage implements those two generalizations:

* :mod:`repro.extensions.multilevel` -- nested tiled schedules and per-level
  I/O bounds for memory hierarchies with more than two levels;
* :mod:`repro.extensions.factorizations` -- communication cost models for LU
  and Cholesky factorizations built on the MMM bounds, plus an out-of-core
  blocked Cholesky whose slow-memory traffic is measured against the
  corresponding bound.
"""

from repro.extensions.factorizations import (
    cholesky_io_lower_bound,
    lu_io_lower_bound,
    out_of_core_cholesky,
    parallel_cholesky_cost,
    parallel_lu_cost,
)
from repro.extensions.multilevel import (
    MultilevelSchedule,
    multilevel_io_lower_bounds,
    multilevel_schedule,
    simulate_multilevel_io,
)

__all__ = [
    "multilevel_schedule",
    "MultilevelSchedule",
    "multilevel_io_lower_bounds",
    "simulate_multilevel_io",
    "lu_io_lower_bound",
    "cholesky_io_lower_bound",
    "parallel_lu_cost",
    "parallel_cholesky_cost",
    "out_of_core_cholesky",
]
