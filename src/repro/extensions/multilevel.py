"""Multi-level memory hierarchies (the paper's "multiple levels of memory" extension).

The red-blue pebble game models two memory levels.  Real machines have more
(registers, L1/L2/L3, HBM, DRAM, ...).  The standard generalization applies
Theorem 1 level by level: between level ``l`` (capacity ``S_l``) and level
``l+1``, classical MMM must move at least ``2mnk / sqrt(S_l) + mn`` words,
and a *nested* tiled schedule -- tiles of size ``~sqrt(S_l)`` at every level,
each level's tile swept inside its parent's tile -- attains every level's
bound simultaneously (each level's traffic is within the usual
``sqrt(S)/(sqrt(S+1)-1)`` factor).

This module derives nested tile sizes, predicts the per-level traffic, and
*measures* it by simulating the nested schedule's access stream against a
stack of LRU levels (a simple inclusive hierarchy), so the prediction can be
checked end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.pebbling.mmm_bounds import sequential_io_lower_bound
from repro.pebbling.mmm_schedule import optimal_tile_sizes
from repro.utils.intmath import ceil_div
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class LevelPlan:
    """Tiling decisions for one memory level."""

    level: int
    capacity_words: int
    tile_m: int
    tile_n: int
    #: Predicted words moved between this level and the next larger one.
    predicted_traffic: float
    #: Theorem 1 lower bound on that traffic.
    lower_bound: float


@dataclass(frozen=True)
class MultilevelSchedule:
    """A nested tiled MMM schedule for a multi-level memory hierarchy."""

    m: int
    n: int
    k: int
    levels: tuple[LevelPlan, ...]

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def tile_sizes(self) -> list[tuple[int, int]]:
        return [(lvl.tile_m, lvl.tile_n) for lvl in self.levels]

    def traffic_summary(self) -> list[dict[str, float]]:
        return [
            {
                "level": lvl.level,
                "capacity": lvl.capacity_words,
                "predicted_traffic": lvl.predicted_traffic,
                "lower_bound": lvl.lower_bound,
                "ratio": lvl.predicted_traffic / lvl.lower_bound if lvl.lower_bound else float("inf"),
            }
            for lvl in self.levels
        ]


def multilevel_io_lower_bounds(m: int, n: int, k: int, capacities: Sequence[int]) -> list[float]:
    """Theorem 1 applied per level: traffic between level ``l`` and ``l+1``.

    ``capacities`` lists the fast-memory sizes from the smallest (innermost)
    level outwards; the returned list gives, for each level, the lower bound
    on the words crossing the boundary *above* it.
    """
    if not capacities:
        raise ValueError("at least one memory level is required")
    if list(capacities) != sorted(capacities):
        raise ValueError(f"capacities must be non-decreasing from the innermost level, got {capacities}")
    return [sequential_io_lower_bound(m, n, k, s) for s in capacities]


def multilevel_schedule(m: int, n: int, k: int, capacities: Sequence[int]) -> MultilevelSchedule:
    """Derive nested tile sizes for every level and predict per-level traffic.

    Each level gets the optimal rectangular tile of
    :func:`repro.pebbling.mmm_schedule.optimal_tile_sizes` for its capacity,
    clipped to its parent level's tile.  The predicted traffic across the
    boundary above level ``l`` is the Listing-1 count for that tile size:
    ``mnk (a_l + b_l)/(a_l b_l) + mn``.
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    if not capacities:
        raise ValueError("at least one memory level is required")
    if list(capacities) != sorted(capacities):
        raise ValueError(f"capacities must be non-decreasing from the innermost level, got {capacities}")

    plans: list[LevelPlan] = []
    outer_tile_m, outer_tile_n = m, n
    # Walk from the outermost (largest) level inwards so tiles nest.
    for index in range(len(capacities) - 1, -1, -1):
        capacity = check_positive_int(capacities[index], f"capacities[{index}]")
        a, b = optimal_tile_sizes(max(4, capacity))
        tile_m = min(a, outer_tile_m)
        tile_n = min(b, outer_tile_n)
        predicted = float(m) * n * k * (tile_m + tile_n) / (tile_m * tile_n) + float(m) * n
        plans.append(
            LevelPlan(
                level=index,
                capacity_words=capacity,
                tile_m=tile_m,
                tile_n=tile_n,
                predicted_traffic=predicted,
                lower_bound=sequential_io_lower_bound(m, n, k, capacity),
            )
        )
        outer_tile_m, outer_tile_n = tile_m, tile_n
    plans.sort(key=lambda plan: plan.level)
    return MultilevelSchedule(m=m, n=n, k=k, levels=tuple(plans))


class _LRULevel:
    """One inclusive LRU level used by :func:`simulate_multilevel_io`."""

    def __init__(self, capacity: int) -> None:
        from collections import OrderedDict

        self.capacity = capacity
        self.entries: "OrderedDict[object, None]" = OrderedDict()
        self.misses = 0

    def access(self, key: object) -> bool:
        hit = key in self.entries
        if hit:
            self.entries.move_to_end(key)
        else:
            self.misses += 1
            if len(self.entries) >= self.capacity:
                self.entries.popitem(last=False)
            self.entries[key] = None
        return hit


def simulate_multilevel_io(
    schedule: MultilevelSchedule,
    capacities: Sequence[int],
    granularity: int = 1,
) -> list[int]:
    """Replay the nested schedule's access stream through a stack of LRU levels.

    Returns the number of misses at each level (words fetched from the level
    above).  ``granularity`` coarsens the element stream (e.g. 4 simulates
    4-word lines) to keep the replay affordable for larger problems.

    The innermost tiling loop is the Listing-1 sweep of the innermost tile
    over ``k``; outer levels only re-order whole inner tiles, which is what
    makes one access stream valid for all levels of an inclusive hierarchy.
    """
    if list(capacities) != sorted(capacities):
        raise ValueError("capacities must be non-decreasing from the innermost level")
    levels = [_LRULevel(max(1, cap // granularity)) for cap in capacities]

    m, n, k = schedule.m, schedule.n, schedule.k
    inner = schedule.levels[0]
    tile_m = max(1, inner.tile_m)
    tile_n = max(1, inner.tile_n)

    def touch(key: object) -> None:
        for level in levels:
            if level.access(key):
                break

    for i0 in range(0, m, tile_m):
        i1 = min(i0 + tile_m, m)
        for j0 in range(0, n, tile_n):
            j1 = min(j0 + tile_n, n)
            for t in range(k):
                for i in range(i0, i1):
                    touch(("a", i // granularity, t))
                for j in range(j0, j1):
                    touch(("b", t, j // granularity))
                for i in range(i0, i1):
                    for j in range(j0, j1):
                        touch(("c", i // granularity, j // granularity))
    return [level.misses * granularity for level in levels]


def nested_tile_count(m: int, n: int, schedule: MultilevelSchedule) -> int:
    """Number of innermost tiles the nested schedule visits (sanity metric)."""
    inner = schedule.levels[0]
    return ceil_div(m, max(1, inner.tile_m)) * ceil_div(n, max(1, inner.tile_n))
