"""The paper's five comparison algorithms as registered :class:`AlgorithmSpec`\\ s.

The names mirror the paper's comparison targets: our SUMMA stands in for
ScaLAPACK, our 2.5D for CTF.  Each spec bundles the runner (the same closure
bodies the harness used to hard-code), a cheap planner that mirrors the
runner's grid/schedule derivation without touching matrices, and the Table 3
cost formulas of :mod:`repro.baselines.costs`.

Importing :mod:`repro.algorithms` registers everything here exactly once.
"""

from __future__ import annotations

import math

from repro.algorithms.registry import AlgorithmSpec, Plan, register
from repro.baselines import costs
from repro.baselines.cannon import cannon_multiply
from repro.baselines.carma import (
    carma_multiply,
    carma_recursion_depth,
    largest_power_of_two_at_most,
)
from repro.baselines.grid25d import choose_25d_grid, grid25d_multiply
from repro.baselines.summa import choose_2d_grid, summa_multiply
from repro.core.cosma import cosma_multiply
from repro.core.decomposition import build_decomposition
from repro.core.grid import ProcessorGrid, communication_volume_per_rank
from repro.pebbling.mmm_bounds import parallel_io_lower_bound
from repro.utils.intmath import ceil_div, split_offsets
from repro.workloads.scaling import Scenario


def cosma_idle_fraction(p: int, base: float = 0.03) -> float:
    """COSMA's grid-fitting allowance ``delta`` for a ``p``-rank machine.

    The paper uses ``delta = 3%`` on thousands of ranks; at simulator scale a
    3% allowance of e.g. 9 ranks cannot drop even one rank, so allow the grid
    optimizer to idle at least one full rank -- the trade-off ``FitRanks`` is
    designed to make (Figure 5: dropping 1 of 65 ranks cuts volume ~36%).

    This is the one home of the heuristic, shared by the harness, the public
    API (``api.multiply`` / ``api.plan`` with ``max_idle_fraction=None``) and
    the CLI; it used to be copy-adapted inside ``harness._run_cosma``.
    """
    if p <= 1:
        return 0.0
    return max(base, 1.5 / p)


def _bound(scenario: Scenario) -> float:
    shape = scenario.shape
    return parallel_io_lower_bound(
        shape.m, shape.n, shape.k, scenario.p, scenario.memory_words
    )


# ---------------------------------------------------------------------------
# COSMA
# ---------------------------------------------------------------------------
def _run_cosma(a, b, scenario, machine, max_idle_fraction=None, grid=None):
    delta = (cosma_idle_fraction(scenario.p)
             if max_idle_fraction is None else max_idle_fraction)
    if grid is not None and not isinstance(grid, ProcessorGrid):
        # api.multiply passes the planned grid back in so the fitting search
        # is not repeated by the executor.
        grid = ProcessorGrid(*grid)
    return cosma_multiply(
        a, b, scenario.p, scenario.memory_words, machine=machine,
        max_idle_fraction=delta, grid=grid,
    ).matrix


def _plan_cosma(scenario: Scenario, max_idle_fraction=None) -> Plan:
    shape = scenario.shape
    delta = (cosma_idle_fraction(scenario.p)
             if max_idle_fraction is None else max_idle_fraction)
    # The same call the executor makes before touching any matrix data, so
    # the planned grid *is* the executed grid.
    decomposition = build_decomposition(
        shape.m, shape.n, shape.k, scenario.p, scenario.memory_words,
        max_idle_fraction=delta,
    )
    grid = decomposition.grid
    return Plan(
        algorithm="COSMA", scenario=scenario, feasible=True,
        grid=grid.as_tuple(), processors_used=grid.p_used,
        rounds=decomposition.num_steps,
        predicted_words_per_rank=communication_volume_per_rank(
            grid, shape.m, shape.n, shape.k, memory_words=scenario.memory_words
        ),
        lower_bound_per_rank=_bound(scenario),
    )


# ---------------------------------------------------------------------------
# ScaLAPACK (SUMMA) and Cannon: the 2D decompositions
# ---------------------------------------------------------------------------
def _run_summa(a, b, scenario, machine):
    return summa_multiply(
        a, b, scenario.p, machine=machine, memory_words=scenario.memory_words
    ).matrix


def _plan_summa(scenario: Scenario) -> Plan:
    shape = scenario.shape
    m, n, k = shape.m, shape.n, shape.k
    pm, pn = choose_2d_grid(m, n, scenario.p)
    # Mirror summa_multiply's default panel width: the widest panel that fits
    # next to the local C block in memory.
    lm = max(hi - lo for lo, hi in split_offsets(m, pm))
    ln = max(hi - lo for lo, hi in split_offsets(n, pn))
    free = scenario.memory_words - lm * ln
    panel_width = max(1, min(k, free // max(1, lm + ln)))
    return Plan(
        algorithm="ScaLAPACK", scenario=scenario, feasible=True,
        grid=(pm, pn), processors_used=pm * pn,
        rounds=ceil_div(k, panel_width),
        predicted_words_per_rank=costs.io_cost_2d(m, n, k, pm * pn),
        lower_bound_per_rank=_bound(scenario),
    )


def _run_cannon(a, b, scenario, machine):
    return cannon_multiply(
        a, b, scenario.p, machine=machine, memory_words=scenario.memory_words
    ).matrix


def _plan_cannon(scenario: Scenario) -> Plan:
    shape = scenario.shape
    q = max(1, math.isqrt(scenario.p))
    return Plan(
        algorithm="Cannon", scenario=scenario, feasible=True,
        grid=(q, q), processors_used=q * q,
        rounds=q,
        predicted_words_per_rank=costs.io_cost_2d(shape.m, shape.n, shape.k, q * q),
        lower_bound_per_rank=_bound(scenario),
    )


# ---------------------------------------------------------------------------
# CTF (2.5D) and CARMA (recursive)
# ---------------------------------------------------------------------------
def _run_25d(a, b, scenario, machine):
    return grid25d_multiply(
        a, b, scenario.p, scenario.memory_words, machine=machine
    ).matrix


def _plan_25d(scenario: Scenario) -> Plan:
    shape = scenario.shape
    m, n, k = shape.m, shape.n, shape.k
    q, _, c = choose_25d_grid(m, n, k, scenario.p, scenario.memory_words)
    p_used = q * q * c
    return Plan(
        algorithm="CTF", scenario=scenario, feasible=True,
        grid=(q, q, c), processors_used=p_used,
        rounds=max(1, int(math.ceil(
            costs.latency_cost_25d(m, n, k, p_used, scenario.memory_words)
        ))),
        predicted_words_per_rank=costs.io_cost_25d(m, n, k, p_used, scenario.memory_words),
        lower_bound_per_rank=_bound(scenario),
    )


def _run_carma(a, b, scenario, machine):
    return carma_multiply(
        a, b, scenario.p, machine=machine, memory_words=scenario.memory_words
    ).matrix


def _plan_carma(scenario: Scenario) -> Plan:
    shape = scenario.shape
    m, n, k = shape.m, shape.n, shape.k
    usable = largest_power_of_two_at_most(scenario.p)
    # Mirror carma_multiply's degenerate-split guard.
    while usable > 1 and usable > m * n * k:
        usable //= 2
    return Plan(
        algorithm="CARMA", scenario=scenario, feasible=True,
        grid=(usable,), processors_used=usable,
        rounds=max(1, carma_recursion_depth(usable)),
        predicted_words_per_rank=costs.io_cost_carma(m, n, k, usable, scenario.memory_words),
        lower_bound_per_rank=_bound(scenario),
    )


def _register_builtins() -> None:
    register(AlgorithmSpec(
        name="COSMA", runner=_run_cosma, plan_fn=_plan_cosma,
        io_cost=costs.io_cost_cosma, latency_cost=costs.latency_cost_cosma,
        default_comparison=True,
        description="near communication-optimal MMM (this paper)",
    ))
    register(AlgorithmSpec(
        name="ScaLAPACK", runner=_run_summa, plan_fn=_plan_summa,
        io_cost=lambda m, n, k, p, s: costs.io_cost_2d(m, n, k, p),
        latency_cost=lambda m, n, k, p, s: costs.latency_cost_2d(m, n, k, p),
        aliases=("SUMMA", "2D"), default_comparison=True,
        description="2D SUMMA, the algorithm behind ScaLAPACK's PDGEMM",
    ))
    register(AlgorithmSpec(
        name="CTF", runner=_run_25d, plan_fn=_plan_25d,
        io_cost=costs.io_cost_25d, latency_cost=costs.latency_cost_25d,
        aliases=("2.5D",), default_comparison=True,
        description="2.5D decomposition of Solomonik & Demmel (CTF stand-in)",
    ))
    register(AlgorithmSpec(
        name="CARMA", runner=_run_carma, plan_fn=_plan_carma,
        io_cost=costs.io_cost_carma, latency_cost=costs.latency_cost_carma,
        default_comparison=True,
        description="recursive CARMA decomposition of Demmel et al.",
    ))
    register(AlgorithmSpec(
        name="Cannon", runner=_run_cannon, plan_fn=_plan_cannon,
        io_cost=lambda m, n, k, p, s: costs.io_cost_2d(m, n, k, p),
        latency_cost=lambda m, n, k, p, s: costs.latency_cost_2d(m, n, k, p),
        description="Cannon's 2D algorithm (square grids; subsumed by SUMMA)",
    ))


_register_builtins()
