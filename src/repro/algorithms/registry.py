"""The algorithm registry: one ``Algorithm`` interface for plan / execute / cost.

The paper's whole argument is a *comparison* -- COSMA against ScaLAPACK, CTF,
CARMA and Cannon on the same scenarios, against the same Theorem 1/2 bounds.
This module makes "an algorithm" a first-class object so that comparison is
data, not scattered special cases:

* :class:`AlgorithmSpec` bundles a uniform runner
  (``run(a, b, scenario, machine) -> ndarray``), a cheap planner
  (``plan(scenario) -> Plan``: fitted grid, round estimate, predicted
  per-rank words, feasibility -- *without* executing anything), the analytic
  Table 3 cost hook (wired into :func:`repro.baselines.costs.predict`),
  capability flags (supported transport modes, minimum memory) and aliases.
* :func:`register` / the :func:`register_algorithm` decorator add specs to
  the process-wide registry; :mod:`repro.algorithms.builtins` registers the
  paper's five comparison targets, and ``extensions/`` modules self-register
  on import (see :mod:`repro.extensions.allgather`).
* :data:`ALGORITHMS` is the backward-compatible mutable-mapping view
  (``name -> runner``) that replaces the old hard-coded dict in
  :mod:`repro.experiments.harness`.

The registry is consumed by :mod:`repro.api` (``multiply`` / ``plan``), the
benchmark harness, the CLI (choice lists and validation) and the sweep
engine (spec validation and infeasible-point pruning).
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace
from functools import lru_cache
from typing import TYPE_CHECKING, Callable, Iterator, MutableMapping

import numpy as np

from repro.baselines import costs as _costs
from repro.machine.transport import MODES
from repro.pebbling.mmm_bounds import parallel_io_lower_bound

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.machine.simulator import DistributedMachine
    from repro.workloads.scaling import Scenario


class UnknownAlgorithmError(KeyError):
    """Raised for algorithm names (or aliases) the registry does not know."""

    def __init__(self, name: str, known: tuple[str, ...]):
        super().__init__(f"unknown algorithm {name!r}; known: {sorted(known)}")
        self.name = name
        self.known = tuple(sorted(known))

    def __str__(self) -> str:  # KeyError would re-quote the message
        return self.args[0]


@dataclass(frozen=True)
class Plan:
    """What an algorithm *would* do on a scenario, derived without executing it.

    Plans are cheap (grid fitting and closed-form arithmetic only -- no
    matrices, no simulator) which is what lets the sweep runner prune
    infeasible points before fanning out worker processes, and the CLI answer
    "what grid / how many words" questions instantly at paper scale.
    """

    algorithm: str
    scenario: "Scenario"
    #: Whether the algorithm can meaningfully run this scenario.  ``False``
    #: only for points that violate a hard precondition (invalid parameters,
    #: or aggregate memory below the ``p*S >= mn + mk + nk`` requirement of
    #: the parallel schedule, section 6.3); the simulator itself is lenient,
    #: so feasibility here is an analytic statement, not a crash prediction.
    feasible: bool
    #: Human-readable explanation when infeasible; empty otherwise.
    reason: str = ""
    #: Fitted processor grid as a tuple.  The arity is algorithm-specific:
    #: ``(pm, pn, pk)`` for COSMA/2.5D, ``(pm, pn)`` for the 2D algorithms,
    #: ``(p,)`` for 1D/recursive decompositions.  ``None`` when unknown.
    grid: tuple[int, ...] | None = None
    #: Ranks the fitted grid actually uses (<= scenario.p).
    processors_used: int = 0
    #: Scheduled communication steps (panel exchanges / shifts).  An
    #: estimate: executed runs additionally count reduction/collective hops
    #: in their per-rank round totals.
    rounds: int = 0
    #: Analytically predicted words received per rank on the fitted grid.
    predicted_words_per_rank: float = 0.0
    #: Theorem 2 lower bound for the scenario (per-processor words).
    lower_bound_per_rank: float = 0.0

    @property
    def predicted_optimality_ratio(self) -> float:
        """Predicted per-rank volume divided by the Theorem 2 bound."""
        if self.lower_bound_per_rank <= 0:
            return float("inf")
        return self.predicted_words_per_rank / self.lower_bound_per_rank


#: Uniform runner signature: ``run(a, b, scenario, machine) -> ndarray``.
RunnerFn = Callable[..., np.ndarray]
#: Planner signature: ``plan(scenario, **options) -> Plan``.
PlanFn = Callable[..., Plan]
#: Table 3 cost-formula signature: ``cost(m, n, k, p, s) -> float``.
CostFn = Callable[[int, int, int, int, int], float]


@dataclass(frozen=True)
class AlgorithmSpec:
    """Everything the system needs to treat one algorithm as pluggable data."""

    #: Canonical name (the paper's comparison-target name where applicable).
    name: str
    #: ``runner(a, b, scenario, machine) -> ndarray`` -- the uniform
    #: execution entry point; payloads may be arrays or shape tokens.
    runner: RunnerFn
    #: Optional scenario planner; the generic feasibility-only plan is used
    #: when omitted.
    plan_fn: PlanFn | None = None
    #: Table 3 per-processor I/O formula ``(m, n, k, p, s) -> words``;
    #: registered into :mod:`repro.baselines.costs` so ``costs.predict`` (and
    #: with it the sweep aggregator and CLI bounds table) covers this
    #: algorithm.
    io_cost: CostFn | None = None
    #: Table 3 latency formula; defaults to zero rounds when unknown.
    latency_cost: CostFn | None = None
    #: Alternative lookup names (case-insensitive), e.g. ``SUMMA`` for
    #: ScaLAPACK.
    aliases: tuple[str, ...] = ()
    #: Transport modes the runner supports (capability flag).
    modes: tuple[str, ...] = tuple(MODES)
    #: Minimum per-rank memory in words the algorithm needs at all
    #: (capability flag; scenario-dependent requirements belong in the plan).
    min_memory_words: int = 1
    #: Whether the algorithm belongs to ``DEFAULT_ALGORITHMS`` (the subset
    #: the paper's figures compare).
    default_comparison: bool = False
    description: str = ""

    def run(self, a_matrix, b_matrix, scenario: "Scenario",
            machine: "DistributedMachine", **options) -> np.ndarray:
        """Execute the algorithm on an existing machine; returns the product."""
        return self.runner(a_matrix, b_matrix, scenario, machine, **options)

    def supports_mode(self, mode: str) -> bool:
        return mode in self.modes

    def plan(self, scenario: "Scenario", **options) -> Plan:
        """Plan the scenario without executing it (see :class:`Plan`).

        Results are memoized per ``(algorithm, scenario, options)`` in a
        process-wide LRU (:func:`plan_cache_clear` resets it; registering or
        unregistering an algorithm does so automatically), so repeated
        planning of the same point -- sweep pruning, ``api.multiply``'s
        plan-then-execute, cost aggregation -- fits the grid exactly once.
        Scenarios and plans are immutable, making the cached object safe to
        share.
        """
        if _REGISTRY.get(self.name) is not self:
            # A spec that is not (or no longer) the registered one -- built
            # standalone, unregistered, or superseded by replace=True -- must
            # plan with *its own* planner, not whatever the registry now
            # holds under its name.
            return self._plan_uncached(scenario, **options)
        try:
            return _cached_plan(self.name, scenario, tuple(sorted(options.items())))
        except TypeError:
            # Unhashable option values (e.g. a list-valued grid override)
            # bypass the cache.
            return self._plan_uncached(scenario, **options)

    def _plan_uncached(self, scenario: "Scenario", **options) -> Plan:
        reason = self._infeasibility(scenario)
        shape = scenario.shape
        bound = 0.0
        if scenario.p >= 1 and scenario.memory_words >= 1:
            bound = parallel_io_lower_bound(
                shape.m, shape.n, shape.k, scenario.p, scenario.memory_words
            )
        if reason is not None:
            return Plan(
                algorithm=self.name, scenario=scenario, feasible=False,
                reason=reason, lower_bound_per_rank=bound,
            )
        if self.plan_fn is not None:
            return self.plan_fn(scenario, **options)
        predicted = 0.0
        if self.io_cost is not None:
            predicted = float(self.io_cost(
                shape.m, shape.n, shape.k, scenario.p, scenario.memory_words
            ))
        return Plan(
            algorithm=self.name, scenario=scenario, feasible=True,
            processors_used=scenario.p, predicted_words_per_rank=predicted,
            lower_bound_per_rank=bound,
        )

    def cost(self, scenario: "Scenario") -> _costs.CostPrediction | None:
        """The Table 3 analytic prediction, or ``None`` if no model is known."""
        try:
            return _costs.predict(self.name, scenario)
        except KeyError:
            return None

    def _infeasibility(self, scenario: "Scenario") -> str | None:
        """Generic hard preconditions shared by every algorithm."""
        if scenario.p < 1:
            return f"processor count must be positive, got {scenario.p}"
        if scenario.memory_words < 1:
            return f"memory_words must be positive, got {scenario.memory_words}"
        if scenario.memory_words < self.min_memory_words:
            return (
                f"{self.name} needs at least {self.min_memory_words} words of "
                f"local memory, got {scenario.memory_words}"
            )
        footprint = scenario.shape.footprint_words
        aggregate = scenario.p * scenario.memory_words
        if aggregate < footprint:
            return (
                f"aggregate memory p*S = {aggregate} words cannot hold the "
                f"matrices' footprint mn + mk + nk = {footprint} words "
                "(parallel schedules require p*S >= mn + mk + nk, section 6.3)"
            )
        return None


# ---------------------------------------------------------------------------
# The process-wide registry
# ---------------------------------------------------------------------------
#: Canonical name -> spec, in registration order (builtins register first).
_REGISTRY: dict[str, AlgorithmSpec] = {}
#: Lowercased name/alias -> canonical name.
_LOOKUP: dict[str, str] = {}


@lru_cache(maxsize=4096)
def _cached_plan(name: str, scenario: "Scenario", options_key: tuple) -> Plan:
    """Shared plan memoization, keyed on the scenario tuple (frozen dataclass)."""
    return _REGISTRY[name]._plan_uncached(scenario, **dict(options_key))


def plan_cache_clear() -> None:
    """Drop every memoized plan (called on register/unregister)."""
    _cached_plan.cache_clear()


def register(spec: AlgorithmSpec, replace: bool = False) -> AlgorithmSpec:
    """Add ``spec`` to the registry (and its cost model to ``costs.predict``).

    ``replace=True`` allows re-registering the same canonical name (used by
    the :data:`ALGORITHMS` compatibility view and by tests); registering a
    name or alias that belongs to a *different* algorithm is always an error.
    """
    labels = (spec.name, *spec.aliases)
    for label in labels:
        owner = _LOOKUP.get(label.lower())
        if owner is not None and owner != spec.name:
            raise ValueError(
                f"cannot register {spec.name!r}: label {label!r} already "
                f"belongs to {owner!r}"
            )
    if spec.name in _REGISTRY and not replace:
        raise ValueError(
            f"algorithm {spec.name!r} is already registered "
            "(pass replace=True to overwrite)"
        )
    _REGISTRY[spec.name] = spec
    for label in labels:
        _LOOKUP[label.lower()] = spec.name
    if spec.io_cost is not None:
        _costs.register_cost_model(
            spec.name, spec.io_cost, spec.latency_cost, aliases=spec.aliases
        )
    plan_cache_clear()
    return spec


def register_algorithm(
    name: str,
    aliases: tuple[str, ...] = (),
    modes: tuple[str, ...] = tuple(MODES),
    plan: PlanFn | None = None,
    io_cost: CostFn | None = None,
    latency_cost: CostFn | None = None,
    min_memory_words: int = 1,
    default_comparison: bool = False,
    description: str = "",
    replace: bool = False,
) -> Callable[[RunnerFn], RunnerFn]:
    """Decorator: register ``fn(a, b, scenario, machine) -> ndarray`` as ``name``.

    This is the extension point: a module under ``extensions/`` (or any user
    code) decorates its runner and the algorithm immediately works everywhere
    -- ``api.multiply(..., algorithm=name)``, ``repro compare/sweep`` choice
    lists, the sweep engine, and (when ``io_cost`` is given) the analytic
    columns of every campaign table.  See the README's "adding a new
    algorithm" walkthrough and :mod:`repro.extensions.allgather`.
    """

    def decorate(fn: RunnerFn) -> RunnerFn:
        register(
            AlgorithmSpec(
                name=name, runner=fn, plan_fn=plan, io_cost=io_cost,
                latency_cost=latency_cost, aliases=tuple(aliases),
                modes=tuple(modes), min_memory_words=min_memory_words,
                default_comparison=default_comparison, description=description,
            ),
            replace=replace,
        )
        return fn

    return decorate


def unregister(name: str) -> None:
    """Remove an algorithm and its cost model (tests, compatibility view)."""
    canonical = resolve_algorithm(name)
    spec = _REGISTRY.pop(canonical)
    for label in (spec.name, *spec.aliases):
        _LOOKUP.pop(label.lower(), None)
    if spec.io_cost is not None:
        _costs.unregister_cost_model(spec.name, aliases=spec.aliases)
    plan_cache_clear()


def resolve_algorithm(name: str) -> str:
    """Canonical name for ``name`` (alias- and case-insensitive), or raise."""
    canonical = _LOOKUP.get(str(name).lower())
    if canonical is None:
        raise UnknownAlgorithmError(name, tuple(_REGISTRY))
    return canonical


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up a registered :class:`AlgorithmSpec` by name or alias."""
    return _REGISTRY[resolve_algorithm(name)]


def is_registered(name: str) -> bool:
    return str(name).lower() in _LOOKUP


def registered_algorithms() -> tuple[str, ...]:
    """Canonical algorithm names, in registration order."""
    return tuple(_REGISTRY)


def algorithm_specs() -> tuple[AlgorithmSpec, ...]:
    """Every registered spec, in registration order."""
    return tuple(_REGISTRY.values())


def algorithm_choices() -> list[str]:
    """Sorted canonical names + aliases (for CLI ``choices=`` lists)."""
    labels = {spec.name for spec in _REGISTRY.values()}
    for spec in _REGISTRY.values():
        labels.update(spec.aliases)
    return sorted(labels)


def default_algorithms() -> tuple[str, ...]:
    """The paper-figure comparison subset, in registration order."""
    return tuple(name for name, spec in _REGISTRY.items() if spec.default_comparison)


class _RunnerView(MutableMapping):
    """Backward-compatible mapping view of the registry: ``name -> runner``.

    This preserves the interface of the old hard-coded ``ALGORITHMS`` dict in
    :mod:`repro.experiments.harness` (lookup, iteration in registration
    order, and item assignment/deletion, which tests use to inject synthetic
    algorithms).  Lookup accepts aliases; iteration yields canonical names
    only.  New code should prefer :func:`get_algorithm` /
    :func:`register_algorithm`, which carry planners and cost models too.
    """

    def __getitem__(self, name: str) -> RunnerFn:
        return get_algorithm(name).runner

    def __setitem__(self, name: str, runner: RunnerFn) -> None:
        if is_registered(name):
            # Keep the existing spec's planner/cost metadata, swap the runner.
            register(_dc_replace(get_algorithm(name), runner=runner), replace=True)
        else:
            register(AlgorithmSpec(name=str(name), runner=runner))

    def __delitem__(self, name: str) -> None:
        unregister(name)

    def __iter__(self) -> Iterator[str]:
        return iter(_REGISTRY)

    def __len__(self) -> int:
        return len(_REGISTRY)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and is_registered(name)

    def __repr__(self) -> str:
        return f"ALGORITHMS({', '.join(_REGISTRY)})"


#: Deprecated mapping view kept for source compatibility with the pre-registry
#: ``experiments.harness.ALGORITHMS`` dict.
ALGORITHMS: MutableMapping[str, RunnerFn] = _RunnerView()
