"""First-class algorithm registry (see :mod:`repro.algorithms.registry`).

Importing this package registers the paper's five comparison algorithms
(COSMA, ScaLAPACK/SUMMA, CTF/2.5D, CARMA, Cannon); ``extensions/`` modules
self-register additional algorithms on import via
:func:`register_algorithm`.

Typical use::

    from repro.algorithms import get_algorithm

    spec = get_algorithm("COSMA")
    plan = spec.plan(scenario)          # grid / rounds / words, no execution
    product = spec.run(a, b, scenario, machine)
    prediction = spec.cost(scenario)    # Table 3 analytic costs
"""

from repro.algorithms.registry import (
    ALGORITHMS,
    AlgorithmSpec,
    Plan,
    UnknownAlgorithmError,
    algorithm_choices,
    algorithm_specs,
    default_algorithms,
    get_algorithm,
    is_registered,
    plan_cache_clear,
    register,
    register_algorithm,
    registered_algorithms,
    resolve_algorithm,
    unregister,
)
from repro.algorithms import builtins as _builtins  # noqa: F401 - registers the core five
from repro.algorithms.builtins import cosma_idle_fraction

#: The subset the paper's figures compare (Cannon is subsumed by
#: ScaLAPACK/SUMMA).  Derived from the registry's capability flags.
DEFAULT_ALGORITHMS: tuple[str, ...] = default_algorithms()

__all__ = [
    "ALGORITHMS",
    "DEFAULT_ALGORITHMS",
    "AlgorithmSpec",
    "Plan",
    "UnknownAlgorithmError",
    "algorithm_choices",
    "algorithm_specs",
    "cosma_idle_fraction",
    "default_algorithms",
    "get_algorithm",
    "is_registered",
    "plan_cache_clear",
    "register",
    "register_algorithm",
    "registered_algorithms",
    "resolve_algorithm",
    "unregister",
]
