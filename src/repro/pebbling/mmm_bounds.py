"""MMM I/O lower bounds and achievable costs (Theorems 1 and 2).

All functions are closed-form formulas in the matrix dimensions ``m, n, k``,
the fast-memory size ``S`` and (for the parallel case) the processor count
``p``; they are exact reproductions of the paper's statements and are used
both by the analytic cost model and by the tests that compare measured I/O of
generated schedules against the bounds.
"""

from __future__ import annotations

import math

from repro.utils.validation import check_positive_int


def sequential_io_lower_bound(m: int, n: int, k: int, s: int) -> float:
    """Theorem 1: any MMM pebbling performs at least ``2mnk / sqrt(S) + mn`` I/O operations."""
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    s = check_positive_int(s, "S")
    return 2.0 * m * n * k / math.sqrt(s) + m * n


def hong_kung_asymptotic_bound(m: int, n: int, k: int, s: int) -> float:
    """Hong & Kung's original asymptotic bound ``Omega(mnk / sqrt(S))`` (constant 1)."""
    return float(m) * n * k / math.sqrt(s)


def smith_vandegeijn_bound(m: int, n: int, k: int, s: int) -> float:
    """Smith & van de Geijn's sequential bound ``2mnk / sqrt(S) - 2S`` (prior work)."""
    return 2.0 * m * n * k / math.sqrt(s) - 2.0 * s


def near_optimal_sequential_io(m: int, n: int, k: int, s: int) -> float:
    """I/O of the feasible greedy schedule with ``a = b = sqrt(S+1) - 1`` (section 5.2.7).

    ``Q = 2mnk / (sqrt(S+1) - 1) + mn``; the ratio to the Theorem 1 bound is
    ``sqrt(S) / (sqrt(S+1) - 1)`` which approaches 1 for large ``S`` (0.03%
    above the bound for 10 MB of fast memory).
    """
    s = check_positive_int(s, "S")
    denom = math.sqrt(s + 1.0) - 1.0
    if denom <= 0:
        raise ValueError(f"S={s} too small for the near-optimal schedule")
    return 2.0 * m * n * k / denom + m * n


def greedy_schedule_io(m: int, n: int, k: int, a: int, b: int) -> float:
    """I/O of a greedy tiled schedule with tile sizes ``a x b``.

    Each of the ``mnk / (ab)`` outer products loads ``a + b`` words, and the
    ``mn`` outputs are stored once: ``Q = mnk (a + b) / (ab) + mn``.
    """
    a = check_positive_int(a, "a")
    b = check_positive_int(b, "b")
    return float(m) * n * k * (a + b) / (a * b) + m * n


def sequential_optimality_ratio(s: int) -> float:
    """The factor ``sqrt(S) / (sqrt(S+1) - 1)`` by which the feasible schedule exceeds the bound."""
    s = check_positive_int(s, "S")
    return math.sqrt(s) / (math.sqrt(s + 1.0) - 1.0)


def parallel_io_lower_bound(m: int, n: int, k: int, p: int, s: int) -> float:
    """Theorem 2: per-processor I/O of parallel MMM.

    ``Q >= min{ 2mnk / (p sqrt(S)) + S,  3 (mnk / p)^(2/3) }``

    The two branches correspond to the two memory regimes of section 6.3: the
    first applies when memory is scarce (``p <= mnk / S^(3/2)``, the optimal
    local domain is a ``sqrt(S) x sqrt(S) x b`` slab and the I/O constraint
    ``a^2 <= S`` binds); the second when there is enough memory for a cubic
    ``(mnk/p)^(1/3)`` local domain.  We evaluate the branch of the regime the
    parameters fall into -- this is the quantity COSMA's optimal schedule
    attains (Equation 33) and the one Table 3's special cases instantiate.
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    p = check_positive_int(p, "p")
    s = check_positive_int(s, "S")
    mnk = float(m) * n * k
    if p <= mnk / (s ** 1.5):
        # Limited-memory regime: tall-slab local domains.
        return 2.0 * mnk / (p * math.sqrt(s)) + s
    # Extra-memory regime: cubic local domains.
    return 3.0 * (mnk / p) ** (2.0 / 3.0)


def irony_toledo_tiskin_bound(m: int, n: int, k: int, p: int, s: int) -> float:
    """Irony et al.'s earlier parallel bound ``mnk / (2 sqrt(2) p sqrt(S)) - S`` (prior work)."""
    return float(m) * n * k / (2.0 * math.sqrt(2.0) * p * math.sqrt(s)) - s


def minimum_parallel_memory(m: int, n: int, k: int, p: int) -> float:
    """Smallest per-processor memory for which all matrices fit in aggregate memory.

    The parallel analysis assumes ``p * S >= mn + mk + nk``.
    """
    p = check_positive_int(p, "p")
    return (float(m) * n + float(m) * k + float(n) * k) / p


def memory_regime(m: int, n: int, k: int, p: int, s: int) -> str:
    """Classify the memory regime as in section 6.3.

    Returns ``"limited"`` when the I/O constraint ``a^2 <= S`` binds
    (``p <= mnk / S^(3/2)``), i.e. the local domain is a tall slab, and
    ``"extra"`` otherwise (the local domain is cubic and extra memory is
    available).
    """
    check_positive_int(p, "p")
    check_positive_int(s, "S")
    if p <= float(m) * n * k / (s ** 1.5):
        return "limited"
    return "extra"
