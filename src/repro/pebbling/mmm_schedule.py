"""Near-optimal sequential MMM schedule (Listing 1 and section 5.2.7).

The optimal greedy schedule decomposes the ``m x n x k`` iteration space into
``a x b`` tiles of the output, and for each tile sweeps over the ``k``
dimension performing rank-1 updates (outer products of an ``a``-element column
of A and a ``b``-element row of B) while the ``a*b`` partial results stay
resident in fast memory.

Two tile-size choices are provided:

* ``square``: ``a = b = floor(sqrt(S + 1)) - 1`` -- the straightforward
  feasible schedule whose I/O is a factor ``sqrt(S)/(sqrt(S+1)-1)`` above the
  lower bound (section 5.2.7, first construction);
* ``optimal``: the solution of ``max ab/(a+b)`` subject to ``ab + a + 1 <= S``
  (Equations 26-28) which keeps red pebbles on the A column but streams the B
  row one element at a time.

Both are emitted in two forms: an :class:`~repro.pebbling.partition.XPartition`
(for the lower-bound analysis) and an executable list of pebble-game moves
(validated and measured by :class:`~repro.pebbling.game.PebbleGame`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.pebbling.game import Move, PebbleMove
from repro.pebbling.mmm_cdag import MMMCdag, a_vertex, b_vertex, c_vertex
from repro.pebbling.partition import XPartition
from repro.utils.intmath import ceil_div
from repro.utils.validation import check_positive_int


def square_tile_size(s: int) -> int:
    """The simple feasible tile size ``a = b = floor(sqrt(S + 1) - 1)``.

    With ``a = b`` the fast-memory requirement ``ab + a + b <= S`` becomes
    ``(a + 1)^2 <= S + 1``.
    """
    s = check_positive_int(s, "S")
    a = int(math.isqrt(s + 1)) - 1
    return max(1, a)


def optimal_tile_sizes(s: int, method: str = "search") -> tuple[int, int]:
    """Optimal rectangular tile sizes ``(a_opt, b_opt)`` for fast memory ``S``.

    Solves ``maximize ab / (a + b)`` subject to ``ab + a + 1 <= S`` (Eq. 26).

    Parameters
    ----------
    s:
        Fast-memory size in words.  Must be at least 4 so that a 1x1 tile plus
        its operands fit.
    method:
        ``"search"`` (default) exhaustively maximizes the objective over all
        integer ``a``; ``"closed_form"`` evaluates the paper's Equations 27-28
        (which floor the real-valued optimum and can be off by one in ``b``).
    """
    s = check_positive_int(s, "S")
    if s < 4:
        raise ValueError(f"fast memory S={s} is too small for any MMM tile (need S >= 4)")
    if method == "closed_form":
        if s < 5:
            return (1, max(1, (s - 2)))
        root = math.sqrt((s - 1) ** 3)
        a = math.floor((root - s + 1) / (s - 2))
        b = math.floor(-(2 * s + root - s ** 2 - 1) / (root - s + 1))
        return (max(1, a), max(1, b))
    if method != "search":
        raise ValueError(f"unknown method {method!r}; use 'search' or 'closed_form'")

    best: tuple[int, int] = (1, 1)
    best_rho = 0.0
    max_a = int(math.isqrt(s)) + 1
    for a in range(1, max_a + 1):
        b = (s - 1 - a) // a
        if b < 1:
            continue
        rho = (a * b) / (a + b)
        if rho > best_rho + 1e-12:
            best_rho = rho
            best = (a, b)
    return best


@dataclass(frozen=True)
class TileStep:
    """One outer-product subcomputation ``V_r``: rows x cols of C at k-index ``t``."""

    rows: tuple[int, int]
    cols: tuple[int, int]
    t: int

    def c_vertices(self) -> Iterator:
        for i in range(*self.rows):
            for j in range(*self.cols):
                yield c_vertex(i, j, self.t)

    @property
    def size(self) -> int:
        return (self.rows[1] - self.rows[0]) * (self.cols[1] - self.cols[0])


@dataclass(frozen=True)
class SequentialMMMSchedule:
    """A tiled sequential MMM schedule (the output of ``FindSeqSchedule``)."""

    m: int
    n: int
    k: int
    s: int
    a: int
    b: int
    steps: tuple[TileStep, ...]

    @property
    def num_tiles(self) -> int:
        return ceil_div(self.m, self.a) * ceil_div(self.n, self.b)

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    def predicted_io(self) -> int:
        """Loads + stores this schedule will perform (exact count).

        Every outer-product step loads its ``a`` column elements of A and its
        ``b`` row elements of B; every output element is stored exactly once.
        """
        loads = sum(
            (step.rows[1] - step.rows[0]) + (step.cols[1] - step.cols[0])
            for step in self.steps
        )
        return loads + self.m * self.n

    def as_x_partition(self, mmm: MMMCdag) -> XPartition:
        """Express the schedule as an X-partition of the MMM CDAG."""
        if (mmm.m, mmm.n, mmm.k) != (self.m, self.n, self.k):
            raise ValueError("CDAG dimensions do not match the schedule dimensions")
        subsets = [set(step.c_vertices()) for step in self.steps]
        return XPartition(cdag=mmm.cdag, subcomputations=subsets)

    def as_pebbling_moves(self) -> list[PebbleMove]:
        """Emit an executable red-blue pebbling realizing the schedule.

        For each output tile the partial sums stay in fast memory across the
        ``k`` sweep; the column of A is loaded per step and the row of B is
        streamed one element at a time, so the peak red-pebble usage is
        ``a*b + a + 2`` (the ``+2`` covers the streamed B element and the
        momentary coexistence of a partial sum with its predecessor).
        """
        moves: list[PebbleMove] = []
        tiles: dict[tuple[tuple[int, int], tuple[int, int]], list[TileStep]] = {}
        for step in self.steps:
            tiles.setdefault((step.rows, step.cols), []).append(step)
        for (rows, cols), tile_steps in tiles.items():
            tile_steps = sorted(tile_steps, key=lambda st: st.t)
            for step in tile_steps:
                t = step.t
                # Load the A column for this k index.
                for i in range(*rows):
                    moves.append(PebbleMove(Move.LOAD, a_vertex(i, t)))
                # Stream the B row one element at a time.
                for j in range(*cols):
                    moves.append(PebbleMove(Move.LOAD, b_vertex(t, j)))
                    for i in range(*rows):
                        moves.append(PebbleMove(Move.COMPUTE, c_vertex(i, j, t)))
                        if t > 0:
                            moves.append(PebbleMove(Move.FREE_RED, c_vertex(i, j, t - 1)))
                    moves.append(PebbleMove(Move.FREE_RED, b_vertex(t, j)))
                for i in range(*rows):
                    moves.append(PebbleMove(Move.FREE_RED, a_vertex(i, t)))
            # Tile finished: store the final partial sums and free them.
            final_t = tile_steps[-1].t
            for i in range(*rows):
                for j in range(*cols):
                    moves.append(PebbleMove(Move.STORE, c_vertex(i, j, final_t)))
                    moves.append(PebbleMove(Move.FREE_RED, c_vertex(i, j, final_t)))
        return moves

    def required_red_pebbles(self) -> int:
        """Peak fast-memory usage of :meth:`as_pebbling_moves`."""
        return self.a * self.b + self.a + 2


def sequential_mmm_schedule(
    m: int,
    n: int,
    k: int,
    s: int,
    tile: str = "optimal",
) -> SequentialMMMSchedule:
    """Build the near I/O optimal sequential schedule of Listing 1.

    Parameters
    ----------
    m, n, k:
        Matrix dimensions (``A`` is ``m x k``, ``B`` is ``k x n``).
    s:
        Fast-memory size in words.
    tile:
        ``"optimal"`` uses :func:`optimal_tile_sizes`; ``"square"`` uses
        :func:`square_tile_size` for both dimensions.
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    s = check_positive_int(s, "S")
    if tile == "optimal":
        a, b = optimal_tile_sizes(s)
    elif tile == "square":
        a = b = square_tile_size(s)
    else:
        raise ValueError(f"unknown tile strategy {tile!r}; use 'optimal' or 'square'")
    a = min(a, m)
    b = min(b, n)
    steps: list[TileStep] = []
    for i0 in range(0, m, a):
        i1 = min(i0 + a, m)
        for j0 in range(0, n, b):
            j1 = min(j0 + b, n)
            for t in range(k):
                steps.append(TileStep(rows=(i0, i1), cols=(j0, j1), t=t))
    return SequentialMMMSchedule(m=m, n=n, k=k, s=s, a=a, b=b, steps=tuple(steps))
