"""Computational directed acyclic graphs (CDAGs).

A CDAG ``G = (V, E)`` models an execution of an algorithm (section 2.2 of the
paper): every vertex is one elementary operation (or an input value), and an
edge ``(u, v)`` says that ``v`` consumes the result of ``u``.  Inputs are
vertices without parents; outputs are vertices without children (or vertices
explicitly marked as outputs).

The class is a thin, dependency-free adjacency structure with a
``to_networkx`` bridge for algorithms (e.g. topological sorting of large
graphs) where networkx is convenient.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator

import networkx as nx

Vertex = Hashable


class CDAG:
    """A computational DAG with parent/child navigation.

    Vertices are arbitrary hashable objects.  Edges are added with
    :meth:`add_edge`; isolated vertices with :meth:`add_vertex`.
    """

    def __init__(self) -> None:
        self._parents: dict[Vertex, set[Vertex]] = {}
        self._children: dict[Vertex, set[Vertex]] = {}
        self._explicit_outputs: set[Vertex] | None = None

    # -- construction ------------------------------------------------------
    def add_vertex(self, v: Vertex) -> None:
        self._parents.setdefault(v, set())
        self._children.setdefault(v, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add edge ``u -> v`` (v depends on u); vertices are created as needed."""
        if u == v:
            raise ValueError(f"self-loop on vertex {u!r} is not allowed in a DAG")
        self.add_vertex(u)
        self.add_vertex(v)
        self._parents[v].add(u)
        self._children[u].add(v)

    def add_edges(self, edges: Iterable[tuple[Vertex, Vertex]]) -> None:
        for u, v in edges:
            self.add_edge(u, v)

    def mark_outputs(self, outputs: Iterable[Vertex]) -> None:
        """Explicitly designate the output set ``O`` (otherwise: childless vertices)."""
        outputs = set(outputs)
        missing = [v for v in outputs if v not in self._parents]
        if missing:
            raise KeyError(f"cannot mark unknown vertices as outputs: {missing!r}")
        self._explicit_outputs = outputs

    # -- basic queries -------------------------------------------------------
    def __contains__(self, v: Vertex) -> bool:
        return v in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    @property
    def vertices(self) -> frozenset[Vertex]:
        return frozenset(self._parents)

    @property
    def num_edges(self) -> int:
        return sum(len(children) for children in self._children.values())

    def parents(self, v: Vertex) -> frozenset[Vertex]:
        """``Pred(v)``: immediate predecessors of ``v``."""
        return frozenset(self._parents[v])

    def children(self, v: Vertex) -> frozenset[Vertex]:
        """``Succ(v)``: immediate successors of ``v``."""
        return frozenset(self._children[v])

    @property
    def inputs(self) -> frozenset[Vertex]:
        """Vertices without parents (the input set ``I``)."""
        return frozenset(v for v, ps in self._parents.items() if not ps)

    @property
    def outputs(self) -> frozenset[Vertex]:
        """The output set ``O``: explicitly marked outputs, else childless vertices."""
        if self._explicit_outputs is not None:
            return frozenset(self._explicit_outputs)
        return frozenset(v for v, cs in self._children.items() if not cs)

    @property
    def computation_vertices(self) -> frozenset[Vertex]:
        """Non-input vertices, i.e. vertices that must be computed."""
        return self.vertices - self.inputs

    # -- graph algorithms ------------------------------------------------------
    def topological_order(self) -> list[Vertex]:
        """Kahn topological order; raises ``ValueError`` if the graph has a cycle."""
        in_degree = {v: len(ps) for v, ps in self._parents.items()}
        ready = deque(sorted((v for v, d in in_degree.items() if d == 0), key=repr))
        order: list[Vertex] = []
        while ready:
            v = ready.popleft()
            order.append(v)
            for child in sorted(self._children[v], key=repr):
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
        if len(order) != len(self._parents):
            raise ValueError("CDAG contains a cycle")
        return order

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
        except ValueError:
            return False
        return True

    def ancestors(self, v: Vertex) -> set[Vertex]:
        """All (transitive) predecessors of ``v`` (excluding ``v``)."""
        seen: set[Vertex] = set()
        stack = list(self._parents[v])
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            stack.extend(self._parents[u])
        return seen

    def descendants(self, v: Vertex) -> set[Vertex]:
        """All (transitive) successors of ``v`` (excluding ``v``)."""
        seen: set[Vertex] = set()
        stack = list(self._children[v])
        while stack:
            u = stack.pop()
            if u in seen:
                continue
            seen.add(u)
            stack.extend(self._children[u])
        return seen

    def subgraph_vertices_reaching(self, targets: Iterable[Vertex]) -> set[Vertex]:
        """All vertices from which some vertex in ``targets`` is reachable (incl. targets)."""
        result: set[Vertex] = set()
        stack = list(targets)
        while stack:
            v = stack.pop()
            if v in result:
                continue
            result.add(v)
            stack.extend(self._parents[v])
        return result

    def iter_edges(self) -> Iterator[tuple[Vertex, Vertex]]:
        for u, children in self._children.items():
            for v in children:
                yield (u, v)

    # -- interop -----------------------------------------------------------------
    def to_networkx(self) -> nx.DiGraph:
        """Export to a :class:`networkx.DiGraph` (vertex attributes are not copied)."""
        g = nx.DiGraph()
        g.add_nodes_from(self._parents)
        g.add_edges_from(self.iter_edges())
        return g

    @classmethod
    def from_networkx(cls, graph: nx.DiGraph) -> "CDAG":
        cdag = cls()
        for v in graph.nodes:
            cdag.add_vertex(v)
        for u, v in graph.edges:
            cdag.add_edge(u, v)
        return cdag
