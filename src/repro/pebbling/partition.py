"""X-partitions, dominator sets, minimum sets and reuse sets (section 4).

An *X-partition* of a CDAG is a sequence of subcomputations ``V_1, ..., V_h``
that (1) are pairwise disjoint, (2) cover all non-input vertices, (3) have no
cyclic dependencies between them, and (4) have dominator and minimum sets of
size at most ``X``.  Hong & Kung's original construction uses ``X = 2S``; the
paper's generalized Lemmas 2-4 work with arbitrary ``X >= S`` and additionally
track per-subcomputation *reuse* sets (data already in fast memory when the
subcomputation starts) and *store* sets (data that must be written back).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.pebbling.cdag import CDAG, Vertex


def dominator_set(cdag: CDAG, subset: Iterable[Vertex]) -> set[Vertex]:
    """Return a *minimal-in-practice* dominator set ``Dom(V_i)`` of ``subset``.

    ``Dom(V_i)`` must intersect every path from a CDAG input to a vertex of
    ``V_i``.  For the subcomputations used in this library (and in the paper's
    MMM analysis) the set of *immediate out-of-subset parents* of the subset is
    exactly such a dominator: every input-to-subset path enters the subset
    through one of these boundary vertices or starts inside the subset itself
    (impossible for non-input subsets).  This matches Equation (5) of the
    paper, ``Dom(V_r) = alpha_r ∪ beta_r ∪ Gamma_r``.
    """
    subset = set(subset)
    dom: set[Vertex] = set()
    for v in subset:
        for parent in cdag.parents(v):
            if parent not in subset:
                dom.add(parent)
    return dom


def minimum_set(cdag: CDAG, subset: Iterable[Vertex]) -> set[Vertex]:
    """Return ``Min(V_i)``: vertices of the subset with no children inside it."""
    subset = set(subset)
    return {v for v in subset if not (cdag.children(v) & subset)}


def is_dominator(cdag: CDAG, subset: Iterable[Vertex], candidate: Iterable[Vertex]) -> bool:
    """Check that ``candidate`` intersects every input-to-``subset`` path.

    Implemented by removing ``candidate`` from the graph and testing whether
    any CDAG input can still reach the subset.
    """
    subset = set(subset)
    candidate = set(candidate)
    blocked = candidate
    targets = subset - blocked
    if not targets:
        return True
    # Reverse reachability from the subset avoiding blocked vertices.
    seen: set[Vertex] = set()
    stack = list(targets)
    while stack:
        v = stack.pop()
        if v in seen:
            continue
        seen.add(v)
        if v in cdag.inputs and v not in subset:
            return False
        for parent in cdag.parents(v):
            if parent in blocked or parent in seen:
                continue
            if parent in cdag.inputs:
                return False
            stack.append(parent)
    return True


@dataclass
class XPartition:
    """A candidate X-partition ``S(X) = {V_1, ..., V_h}`` of a CDAG.

    Attributes
    ----------
    cdag:
        The underlying CDAG.
    subcomputations:
        The ordered subsets ``V_i`` (each a set of non-input vertices).
    """

    cdag: CDAG
    subcomputations: Sequence[set[Vertex]] = field(default_factory=list)

    @property
    def h(self) -> int:
        """Number of subcomputations in the partition."""
        return len(self.subcomputations)

    def dominator_sets(self) -> list[set[Vertex]]:
        return [dominator_set(self.cdag, vi) for vi in self.subcomputations]

    def minimum_sets(self) -> list[set[Vertex]]:
        return [minimum_set(self.cdag, vi) for vi in self.subcomputations]

    def max_dominator_size(self) -> int:
        return max((len(d) for d in self.dominator_sets()), default=0)

    def max_minimum_size(self) -> int:
        return max((len(m) for m in self.minimum_sets()), default=0)

    def largest_subcomputation(self) -> int:
        """``|V_max|`` -- size of the largest subset (used in Lemma 3, Eq. 3)."""
        return max((len(vi) for vi in self.subcomputations), default=0)

    # -- validity -----------------------------------------------------------
    def covers_all_computations(self) -> bool:
        covered: set[Vertex] = set()
        for vi in self.subcomputations:
            covered |= vi
        return covered == set(self.cdag.computation_vertices)

    def is_pairwise_disjoint(self) -> bool:
        seen: set[Vertex] = set()
        for vi in self.subcomputations:
            if seen & vi:
                return False
            seen |= vi
        return True

    def has_no_cyclic_dependencies(self) -> bool:
        """Check that the order ``V_1, ..., V_h`` is consistent with the CDAG edges.

        A dependency from ``V_j`` to ``V_i`` with ``j > i`` (i.e. a vertex in an
        earlier subset depending on a vertex of a later subset) would violate
        the partition's acyclicity requirement.
        """
        position: dict[Vertex, int] = {}
        for index, vi in enumerate(self.subcomputations):
            for v in vi:
                position[v] = index
        for index, vi in enumerate(self.subcomputations):
            for v in vi:
                for parent in self.cdag.parents(v):
                    if parent in position and position[parent] > index:
                        return False
        return True

    def is_valid(self, x: int) -> bool:
        """Full validity check of the partition for a given ``X``."""
        return (
            self.is_pairwise_disjoint()
            and self.covers_all_computations()
            and self.has_no_cyclic_dependencies()
            and self.max_dominator_size() <= x
            and self.max_minimum_size() <= x
        )

    # -- reuse / store analysis ------------------------------------------------
    def reuse_sets(self) -> list[set[Vertex]]:
        """Upper-bound reuse sets ``V_{R,i}``.

        ``V_{R,i}`` contains vertices holding red pebbles just before ``V_i``
        starts whose children are used by ``V_i``.  Without replaying an actual
        pebbling we over-approximate it (as the paper's analysis does) by the
        intersection of ``Dom(V_i)`` with everything the previous
        subcomputation could have left in fast memory:
        ``alpha_{i-1} ∪ beta_{i-1} ∪ Min(V_{i-1})`` -- i.e. the previous
        dominator set plus the previous minimum set (Equation 11).
        """
        doms = self.dominator_sets()
        mins = self.minimum_sets()
        reuse: list[set[Vertex]] = [set()]
        for i in range(1, self.h):
            available = set(doms[i - 1]) | set(mins[i - 1]) | set(self.subcomputations[i - 1])
            reuse.append(doms[i] & available)
        return reuse

    def store_sets(self) -> list[set[Vertex]]:
        """Store sets ``W_{B,i}``: minimum-set vertices not consumed by the next subset.

        A vertex of ``Min(V_i)`` whose children all lie outside ``V_{i+1}``
        cannot stay in fast memory indefinitely (its children are pebbled much
        later), so it must be written back -- this is Equation (20).
        The last subcomputation stores all of its minimum set that are outputs.
        """
        mins = self.minimum_sets()
        stores: list[set[Vertex]] = []
        outputs = self.cdag.outputs
        for i in range(self.h):
            if i + 1 < self.h:
                next_needed = dominator_set(self.cdag, self.subcomputations[i + 1])
                stores.append({v for v in mins[i] if v not in next_needed})
            else:
                stores.append({v for v in mins[i] if v in outputs})
        return stores
