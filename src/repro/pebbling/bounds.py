"""General I/O lower-bound machinery (Lemmas 1-4 of the paper).

These functions are pure formulas parameterized by the quantities a particular
CDAG analysis provides (the number of subcomputations ``H(X)``, the maximum
reuse ``R(S)``, the minimum store ``T(S)``, the largest subcomputation
``|V_max|`` and the maximal computational intensity ``rho``).  The MMM-specific
instantiations live in :mod:`repro.pebbling.mmm_bounds`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive_int


def hong_kung_lower_bound(s: int, h_2s: int) -> int:
    """Hong & Kung's Lemma 1: ``Q >= S * (H(2S) - 1)``.

    Parameters
    ----------
    s:
        Fast-memory size (number of red pebbles).
    h_2s:
        ``H(2S)``: the minimum number of subcomputations in any valid
        ``2S``-partition of the CDAG.
    """
    s = check_positive_int(s, "s")
    h_2s = check_positive_int(h_2s, "h_2s")
    return s * (h_2s - 1)


def generalized_lower_bound(x: int, r_s: int, t_s: int, h_x: int) -> int:
    """The paper's Lemma 3: ``Q >= (X - R(S) + T(S)) * (H(X) - 1)``.

    ``R(S)`` is the maximum reuse-set size and ``T(S)`` the minimum store-set
    size over the subcomputations of the X-partition.
    """
    x = check_positive_int(x, "x")
    h_x = check_positive_int(h_x, "h_x")
    if r_s < 0 or t_s < 0:
        raise ValueError("reuse and store bounds must be non-negative")
    if r_s > x:
        raise ValueError(f"reuse bound R(S)={r_s} cannot exceed X={x}")
    return max(0, (x - r_s + t_s) * (h_x - 1))


def subcomputation_count_lower_bound(total_vertices: int, largest_subcomputation: int) -> int:
    """Equation (3): ``H(X) >= |V| / |V_max|`` (rounded up)."""
    total_vertices = check_positive_int(total_vertices, "total_vertices")
    largest_subcomputation = check_positive_int(largest_subcomputation, "largest_subcomputation")
    return -(-total_vertices // largest_subcomputation)


def computational_intensity(
    subcomputation_size: float,
    x: float,
    reuse: float,
    store: float,
) -> float:
    """Computational intensity ``rho_i = |V_i| / (X - |V_{R,i}| + |W_{B,i}|)`` (Lemma 4)."""
    denominator = x - reuse + store
    if denominator <= 0:
        raise ValueError(
            f"computational intensity undefined: X - reuse + store = {denominator} <= 0"
        )
    if subcomputation_size < 0:
        raise ValueError("subcomputation size must be non-negative")
    return subcomputation_size / denominator


def intensity_lower_bound(total_vertices: float, max_intensity: float) -> float:
    """Lemma 4: ``Q >= |V| / rho`` where ``rho`` is the maximal computational intensity."""
    if max_intensity <= 0:
        raise ValueError(f"max_intensity must be positive, got {max_intensity}")
    if total_vertices < 0:
        raise ValueError("total_vertices must be non-negative")
    return total_vertices / max_intensity


@dataclass(frozen=True)
class IntensityAnalysis:
    """Summary of a computational-intensity analysis of an X-partition.

    Produced by :func:`analyze_partition`; the resulting lower bound is the
    Lemma 4 bound using the *measured* maximal intensity of the partition, so
    it is valid for the specific schedule the partition describes.
    """

    x: int
    total_vertices: int
    max_intensity: float
    max_reuse: int
    min_store: int
    h: int

    @property
    def lower_bound(self) -> float:
        return intensity_lower_bound(self.total_vertices, self.max_intensity)


def analyze_partition(partition, x: int) -> IntensityAnalysis:
    """Measure reuse/store/intensity quantities of an :class:`~repro.pebbling.partition.XPartition`.

    The maximal computational intensity is evaluated per subcomputation using
    the partition's (over-approximated) reuse sets and store sets, exactly as
    in the proof of Lemma 5.
    """
    reuse_sets = partition.reuse_sets()
    store_sets = partition.store_sets()
    max_intensity = 0.0
    for vi, reuse, store in zip(partition.subcomputations, reuse_sets, store_sets):
        rho = computational_intensity(len(vi), x, len(reuse), len(store))
        if rho > max_intensity:
            max_intensity = rho
    total = len(partition.cdag.computation_vertices)
    return IntensityAnalysis(
        x=x,
        total_vertices=total,
        max_intensity=max_intensity,
        max_reuse=max((len(r) for r in reuse_sets), default=0),
        min_store=min((len(s) for s in store_sets), default=0),
        h=partition.h,
    )
