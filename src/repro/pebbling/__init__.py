"""Red-blue pebble game, CDAGs, X-partitions and I/O lower bounds.

This subpackage implements the theoretical machinery of sections 2, 4 and 5 of
the paper:

* :mod:`repro.pebbling.cdag` -- computational DAGs.
* :mod:`repro.pebbling.game` -- a validated red-blue pebble-game executor that
  measures the I/O (loads + stores) of a pebbling.
* :mod:`repro.pebbling.partition` -- X-partitions, dominator / minimum /
  reuse / store sets.
* :mod:`repro.pebbling.bounds` -- Hong & Kung's Lemma 1 and the paper's
  generalized Lemmas 2-4 (computational intensity).
* :mod:`repro.pebbling.mmm_cdag` -- the MMM CDAG and its projections.
* :mod:`repro.pebbling.mmm_schedule` -- the near-optimal greedy sequential MMM
  schedule (Listing 1) emitted both as an X-partition and as an executable
  pebbling.
* :mod:`repro.pebbling.mmm_bounds` -- Theorems 1 and 2: sequential and
  parallel MMM I/O lower bounds and the matching achievable costs.
"""

from repro.pebbling.cdag import CDAG
from repro.pebbling.game import IllegalMoveError, PebbleGame, PebblingResult
from repro.pebbling.mmm_bounds import (
    near_optimal_sequential_io,
    parallel_io_lower_bound,
    sequential_io_lower_bound,
)
from repro.pebbling.mmm_cdag import MMMCdag, build_mmm_cdag
from repro.pebbling.mmm_schedule import optimal_tile_sizes, sequential_mmm_schedule
from repro.pebbling.partition import XPartition, dominator_set, minimum_set

__all__ = [
    "CDAG",
    "PebbleGame",
    "PebblingResult",
    "IllegalMoveError",
    "XPartition",
    "dominator_set",
    "minimum_set",
    "MMMCdag",
    "build_mmm_cdag",
    "optimal_tile_sizes",
    "sequential_mmm_schedule",
    "sequential_io_lower_bound",
    "parallel_io_lower_bound",
    "near_optimal_sequential_io",
]
