"""Red-blue pebble game executor.

Hong & Kung's red-blue pebble game (section 2.2 of the paper) models a
two-level memory: a red pebble on a vertex means its value is in fast memory,
a blue pebble means it is in slow memory.  At most ``S`` red pebbles may be in
use at any time.  The legal moves are:

``load``
    place a red pebble on a vertex that carries a blue pebble;
``store``
    place a blue pebble on a vertex that carries a red pebble;
``compute``
    place a red pebble on a vertex all of whose parents carry red pebbles;
``free``
    remove any pebble from any vertex.

A *complete calculation* starts with blue pebbles exactly on the CDAG inputs
and ends with blue pebbles on all outputs.  Its I/O cost ``Q`` is the number
of loads plus stores.  The executor below validates every move and counts the
I/O, so any schedule the library generates can be checked for *legality* and
its measured cost compared against the lower bounds of
:mod:`repro.pebbling.mmm_bounds`.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence

import numpy as np

from repro.pebbling.cdag import CDAG, Vertex

#: Per-CDAG encoding cache for array-based runs (vertex ids + CSR parents),
#: shared by every game on the same graph and dropped with the graph.
_ENCODED_CDAGS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


class Move(str, Enum):
    """The four legal move types of the red-blue pebble game."""

    LOAD = "load"
    STORE = "store"
    COMPUTE = "compute"
    FREE_RED = "free_red"
    FREE_BLUE = "free_blue"


@dataclass(frozen=True)
class PebbleMove:
    """A single move: ``(kind, vertex)``."""

    kind: Move
    vertex: Vertex


class IllegalMoveError(RuntimeError):
    """Raised when a schedule attempts an illegal pebble-game move."""


@dataclass
class PebblingResult:
    """Outcome of executing a full pebbling schedule."""

    loads: int = 0
    stores: int = 0
    computes: int = 0
    max_red_in_use: int = 0
    moves_executed: int = 0
    complete: bool = False
    missing_outputs: frozenset = field(default_factory=frozenset)

    @property
    def io(self) -> int:
        """Total I/O cost ``Q`` = loads + stores."""
        return self.loads + self.stores


class PebbleGame:
    """Stateful red-blue pebble game on a CDAG with ``S`` red pebbles.

    Parameters
    ----------
    cdag:
        The computational DAG to pebble.
    red_pebbles:
        The fast-memory capacity ``S``.
    initial_blue:
        Vertices initially carrying blue pebbles; defaults to ``cdag.inputs``
        as required by the game's initial configuration.
    """

    def __init__(
        self,
        cdag: CDAG,
        red_pebbles: int,
        initial_blue: Iterable[Vertex] | None = None,
    ) -> None:
        if red_pebbles <= 0:
            raise ValueError(f"red_pebbles must be positive, got {red_pebbles}")
        self.cdag = cdag
        self.capacity = int(red_pebbles)
        self.red: set[Vertex] = set()
        self.blue: set[Vertex] = set(cdag.inputs if initial_blue is None else initial_blue)
        unknown = [v for v in self.blue if v not in cdag]
        if unknown:
            raise KeyError(f"initial blue pebbles on unknown vertices: {unknown!r}")
        self.result = PebblingResult()
        #: Vertices that have ever been computed (had a red pebble via compute).
        self.computed: set[Vertex] = set()

    # -- individual moves ---------------------------------------------------
    def load(self, v: Vertex) -> None:
        """Place a red pebble on ``v`` which must carry a blue pebble."""
        self._check_vertex(v)
        if v in self.red:
            return
        if v not in self.blue:
            raise IllegalMoveError(f"load of {v!r}: vertex has no blue pebble")
        self._check_capacity()
        self.red.add(v)
        self.result.loads += 1
        self._track()

    def store(self, v: Vertex) -> None:
        """Place a blue pebble on ``v`` which must carry a red pebble."""
        self._check_vertex(v)
        if v not in self.red:
            raise IllegalMoveError(f"store of {v!r}: vertex has no red pebble")
        if v in self.blue:
            return
        self.blue.add(v)
        self.result.stores += 1
        self._track()

    def compute(self, v: Vertex) -> None:
        """Place a red pebble on ``v`` whose parents must all carry red pebbles."""
        self._check_vertex(v)
        parents = self.cdag.parents(v)
        if not parents:
            raise IllegalMoveError(
                f"compute of {v!r}: vertex is an input and cannot be computed"
            )
        missing = [p for p in parents if p not in self.red]
        if missing:
            raise IllegalMoveError(
                f"compute of {v!r}: parents without red pebbles: {missing!r}"
            )
        if v not in self.red:
            self._check_capacity()
            self.red.add(v)
        self.result.computes += 1
        self.computed.add(v)
        self._track()

    def free_red(self, v: Vertex) -> None:
        """Remove the red pebble from ``v`` (no-op if absent)."""
        self.red.discard(v)

    def free_blue(self, v: Vertex) -> None:
        """Remove the blue pebble from ``v`` (no-op if absent)."""
        self.blue.discard(v)

    # -- schedule execution ----------------------------------------------------
    def run(self, moves: Sequence[PebbleMove]) -> PebblingResult:
        """Execute a full move sequence and return the accumulated result.

        The schedule is executed with array-based pebble-state updates: the
        move list is encoded into kind/vertex arrays once, per-vertex red and
        blue timelines are derived with vectorized group scans, every move's
        legality is checked against the state *at its position in the
        schedule*, and the counters (loads / stores / computes / peak red
        pebbles) come out of vectorized reductions.  Semantics are identical
        to executing the moves one at a time through :meth:`load` /
        :meth:`store` / :meth:`compute` / :meth:`free_red` /
        :meth:`free_blue`; schedules containing an illegal move fall back to
        the sequential path so the exception (and the partially executed
        state it leaves behind) match move-by-move execution exactly.

        After the run, :attr:`PebblingResult.complete` records whether every
        CDAG output ended up with a blue pebble (i.e. whether this was a
        *complete calculation*).
        """
        moves = list(moves)
        if len(moves) < 32 or not self._run_vectorized(moves):
            self._run_sequential(moves)
        return self.finish()

    def _run_sequential(self, moves: Sequence[PebbleMove]) -> None:
        """Reference move-by-move execution (also the error-reporting path)."""
        dispatch = {
            Move.LOAD: self.load,
            Move.STORE: self.store,
            Move.COMPUTE: self.compute,
            Move.FREE_RED: self.free_red,
            Move.FREE_BLUE: self.free_blue,
        }
        for move in moves:
            dispatch[move.kind](move.vertex)
            self.result.moves_executed += 1

    def _schedule_arrays(self):
        """Cached vertex encoding + CSR parent structure for array-based runs.

        Rebuilt only when the CDAG's size changes (the graphs this library
        builds are frozen before pebbling; the key guards against the
        unlikely mutate-between-runs case).
        """
        key = (len(self.cdag), self.cdag.num_edges)
        cached = _ENCODED_CDAGS.get(self.cdag)
        if cached is not None and cached[0] == key:
            return cached[1]
        index = {v: i for i, v in enumerate(self.cdag.vertices)}
        vertex_of = list(index)
        parent_lists = [None] * len(index)
        for vertex, vid in index.items():
            parent_lists[vid] = [index[p] for p in self.cdag.parents(vertex)]
        counts = np.array([len(parents) for parents in parent_lists], dtype=np.int64)
        parent_indptr = np.concatenate(([0], np.cumsum(counts)))
        parent_ids = np.array(
            [p for parents in parent_lists for p in parents], dtype=np.int64
        )
        encoded = (index, vertex_of, parent_indptr, parent_ids)
        _ENCODED_CDAGS[self.cdag] = (key, encoded)
        return encoded

    def _run_vectorized(self, moves: Sequence[PebbleMove]) -> bool:
        """Array-based execution of a legal schedule.

        Returns ``True`` when the whole schedule was validated and applied;
        ``False`` defers to :meth:`_run_sequential` (illegal or unknown-vertex
        moves, whose exception and partial-state semantics must match the
        single-move methods bit for bit).  Until the moment it applies its
        updates this method does not mutate any game state, so deferring is
        always safe.
        """
        load_c, store_c, compute_c, free_red_c, free_blue_c = range(5)
        index, vertex_of, parent_indptr, parent_ids = self._schedule_arrays()
        n_vertices = len(index)
        dummy = n_vertices  # unknown vertices in free moves: legal no-ops
        n_moves = len(moves)
        code_of = {
            Move.LOAD: load_c, Move.STORE: store_c, Move.COMPUTE: compute_c,
            Move.FREE_RED: free_red_c, Move.FREE_BLUE: free_blue_c,
        }
        index_get = index.get
        kinds = np.array([code_of[move.kind] for move in moves], dtype=np.int8)
        vids = np.array([index_get(move.vertex, dummy) for move in moves], dtype=np.int64)
        if ((vids == dummy) & (kinds <= compute_c)).any():
            return False  # _check_vertex raises KeyError

        init_red = np.zeros(n_vertices + 1, dtype=np.int8)
        init_blue = np.zeros(n_vertices + 1, dtype=np.int8)
        for v in self.red:
            init_red[index[v]] = 1
        for v in self.blue:
            init_blue[index[v]] = 1
        times = np.arange(n_moves, dtype=np.int64)

        def timeline(changer_mask: np.ndarray, after: np.ndarray, init: np.ndarray):
            """Per-vertex state scan over the changer events of one colour.

            Returns ``(prior, sorted_vids, sorted_times, sorted_after,
            group_start)`` where ``prior`` is each changer's state *before*
            it executes, in (vid, time)-sorted order.
            """
            idx = np.flatnonzero(changer_mask)
            order = np.argsort(vids[idx], kind="stable")
            s_vid = vids[idx][order]
            s_time = idx[order]
            s_after = after[order]
            group_start = np.empty(len(idx), dtype=bool)
            if len(idx):
                group_start[0] = True
                group_start[1:] = s_vid[1:] != s_vid[:-1]
            prior = np.empty_like(s_after)
            prior[1:] = s_after[:-1]
            prior[group_start] = init[s_vid[group_start]]
            return prior, s_vid, s_time, s_after, group_start

        def state_at(s_vid, s_time, s_after, init, q_vid, q_time):
            """State of vertex ``q_vid`` just before time ``q_time``."""
            stride = n_moves + 1
            pos = np.searchsorted(s_vid * stride + s_time, q_vid * stride + q_time)
            state = init[q_vid].copy()
            has_prev = pos > 0
            prev = pos[has_prev] - 1
            same = s_vid[prev] == q_vid[has_prev]
            updated = state[has_prev]
            updated[same] = s_after[prev[same]]
            state[has_prev] = updated
            return state

        # --- red timeline: LOAD / COMPUTE place, FREE_RED removes ----------
        red_changers = (kinds == load_c) | (kinds == compute_c) | (kinds == free_red_c)
        red_after = (kinds[red_changers] != free_red_c).astype(np.int8)
        r_prior, r_vid, r_time, r_after, r_start = timeline(
            red_changers, red_after, init_red
        )
        delta_t = np.zeros(n_moves, dtype=np.int64)
        delta_t[r_time] = r_after - r_prior
        prior_red_t = np.ones(n_moves, dtype=np.int8)  # queries fill below
        prior_red_t[r_time] = r_prior
        red_count = int(len(self.red)) + np.cumsum(delta_t)

        # --- blue timeline: STORE places, FREE_BLUE removes ----------------
        blue_changers = (kinds == store_c) | (kinds == free_blue_c)
        blue_after = (kinds[blue_changers] != free_blue_c).astype(np.int8)
        b_prior, b_vid, b_time, b_after, _ = timeline(
            blue_changers, blue_after, init_blue
        )

        # --- per-kind legality, in each move's own check order -------------
        load_pos = np.flatnonzero(kinds == load_c)
        load_needs_blue = load_pos[prior_red_t[load_pos] == 0]
        if len(load_needs_blue) and not state_at(
            b_vid, b_time, b_after, init_blue,
            vids[load_needs_blue], load_needs_blue,
        ).all():
            return False  # load without a blue pebble
        store_pos = np.flatnonzero(kinds == store_c)
        store_red = state_at(r_vid, r_time, r_after, init_red,
                             vids[store_pos], store_pos)
        if len(store_pos) and not store_red.all():
            return False  # store without a red pebble
        compute_pos = np.flatnonzero(kinds == compute_c)
        if len(compute_pos):
            compute_vids = vids[compute_pos]
            counts = parent_indptr[compute_vids + 1] - parent_indptr[compute_vids]
            if (counts == 0).any():
                return False  # compute of an input vertex
            # Flat (parent, query-time) pairs gathered through the CSR layout.
            total = int(counts.sum())
            starts = np.repeat(parent_indptr[compute_vids], counts)
            within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
            q_vid = parent_ids[starts + within]
            q_time = np.repeat(compute_pos, counts)
            if not state_at(r_vid, r_time, r_after, init_red, q_vid, q_time).all():
                return False  # compute with an unpebbled parent
        placements = delta_t == 1
        if (red_count[placements] > self.capacity).any():
            return False  # red-pebble capacity exceeded

        # --- apply: counters, peak, final pebble sets ----------------------
        counted_loads = load_pos[prior_red_t[load_pos] == 0]
        # A store counts (and tracks the peak) only when the vertex had no
        # blue pebble yet -- its prior on the blue timeline.
        counted_stores = b_time[(kinds[b_time] == store_c) & (b_prior == 0)]
        self.result.loads += len(counted_loads)
        self.result.stores += len(counted_stores)
        self.result.computes += len(compute_pos)
        self.result.moves_executed += n_moves
        tracked = np.concatenate((counted_loads, counted_stores, compute_pos))
        if len(tracked):
            peak = int(red_count[tracked].max())
            if peak > self.result.max_red_in_use:
                self.result.max_red_in_use = peak
        self.computed.update(vertex_of[v] for v in np.unique(vids[compute_pos]))

        def apply_final(s_vid, s_after, group_start, init, pebbles: set) -> None:
            """Rebuild a pebble set from the final per-vertex timeline states."""
            final = init.copy()
            if len(s_vid):
                group_end = np.empty(len(s_vid), dtype=bool)
                group_end[:-1] = group_start[1:]
                group_end[-1] = True
                final[s_vid[group_end]] = s_after[group_end]
            pebbles.clear()
            pebbles.update(vertex_of[v] for v in np.flatnonzero(final[:n_vertices]))

        apply_final(r_vid, r_after, r_start, init_red, self.red)
        b_start = np.empty(len(b_vid), dtype=bool)
        if len(b_vid):
            b_start[0] = True
            b_start[1:] = b_vid[1:] != b_vid[:-1]
        apply_final(b_vid, b_after, b_start, init_blue, self.blue)
        return True

    def finish(self) -> PebblingResult:
        """Finalize the result: check the terminal configuration."""
        outputs = self.cdag.outputs
        missing = frozenset(v for v in outputs if v not in self.blue)
        self.result.missing_outputs = missing
        self.result.complete = not missing
        return self.result

    # -- helpers -------------------------------------------------------------
    @property
    def red_in_use(self) -> int:
        return len(self.red)

    def _check_capacity(self) -> None:
        if len(self.red) + 1 > self.capacity:
            raise IllegalMoveError(
                f"cannot place another red pebble: {len(self.red)} already in use, capacity S={self.capacity}"
            )

    def _check_vertex(self, v: Vertex) -> None:
        if v not in self.cdag:
            raise KeyError(f"vertex {v!r} is not part of the CDAG")

    def _track(self) -> None:
        if len(self.red) > self.result.max_red_in_use:
            self.result.max_red_in_use = len(self.red)


def naive_pebbling(cdag: CDAG, red_pebbles: int) -> PebblingResult:
    """Pebble a CDAG by processing vertices in topological order.

    For every non-input vertex, all parents are loaded (if not resident), the
    vertex is computed, stored if it is an output, and then every red pebble
    whose children are all already computed is freed.  This is a simple but
    legal baseline pebbling used in tests to contrast against scheduled
    (I/O-aware) pebblings.
    """
    game = PebbleGame(cdag, red_pebbles)
    remaining_children = {v: len(cdag.children(v)) for v in cdag.vertices}
    outputs = cdag.outputs
    for v in cdag.topological_order():
        if v in cdag.inputs:
            continue
        for parent in cdag.parents(v):
            if parent not in game.red:
                if parent in game.blue:
                    game.load(parent)
                else:
                    raise IllegalMoveError(
                        f"naive pebbling needs parent {parent!r} which is neither red nor blue"
                    )
        game.compute(v)
        if v in outputs:
            game.store(v)
        # Free pebbles that are no longer needed.
        for parent in cdag.parents(v):
            remaining_children[parent] -= 1
            if remaining_children[parent] == 0:
                game.free_red(parent)
        if remaining_children[v] == 0:
            game.free_red(v)
    return game.finish()
