"""Red-blue pebble game executor.

Hong & Kung's red-blue pebble game (section 2.2 of the paper) models a
two-level memory: a red pebble on a vertex means its value is in fast memory,
a blue pebble means it is in slow memory.  At most ``S`` red pebbles may be in
use at any time.  The legal moves are:

``load``
    place a red pebble on a vertex that carries a blue pebble;
``store``
    place a blue pebble on a vertex that carries a red pebble;
``compute``
    place a red pebble on a vertex all of whose parents carry red pebbles;
``free``
    remove any pebble from any vertex.

A *complete calculation* starts with blue pebbles exactly on the CDAG inputs
and ends with blue pebbles on all outputs.  Its I/O cost ``Q`` is the number
of loads plus stores.  The executor below validates every move and counts the
I/O, so any schedule the library generates can be checked for *legality* and
its measured cost compared against the lower bounds of
:mod:`repro.pebbling.mmm_bounds`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence

from repro.pebbling.cdag import CDAG, Vertex


class Move(str, Enum):
    """The four legal move types of the red-blue pebble game."""

    LOAD = "load"
    STORE = "store"
    COMPUTE = "compute"
    FREE_RED = "free_red"
    FREE_BLUE = "free_blue"


@dataclass(frozen=True)
class PebbleMove:
    """A single move: ``(kind, vertex)``."""

    kind: Move
    vertex: Vertex


class IllegalMoveError(RuntimeError):
    """Raised when a schedule attempts an illegal pebble-game move."""


@dataclass
class PebblingResult:
    """Outcome of executing a full pebbling schedule."""

    loads: int = 0
    stores: int = 0
    computes: int = 0
    max_red_in_use: int = 0
    moves_executed: int = 0
    complete: bool = False
    missing_outputs: frozenset = field(default_factory=frozenset)

    @property
    def io(self) -> int:
        """Total I/O cost ``Q`` = loads + stores."""
        return self.loads + self.stores


class PebbleGame:
    """Stateful red-blue pebble game on a CDAG with ``S`` red pebbles.

    Parameters
    ----------
    cdag:
        The computational DAG to pebble.
    red_pebbles:
        The fast-memory capacity ``S``.
    initial_blue:
        Vertices initially carrying blue pebbles; defaults to ``cdag.inputs``
        as required by the game's initial configuration.
    """

    def __init__(
        self,
        cdag: CDAG,
        red_pebbles: int,
        initial_blue: Iterable[Vertex] | None = None,
    ) -> None:
        if red_pebbles <= 0:
            raise ValueError(f"red_pebbles must be positive, got {red_pebbles}")
        self.cdag = cdag
        self.capacity = int(red_pebbles)
        self.red: set[Vertex] = set()
        self.blue: set[Vertex] = set(cdag.inputs if initial_blue is None else initial_blue)
        unknown = [v for v in self.blue if v not in cdag]
        if unknown:
            raise KeyError(f"initial blue pebbles on unknown vertices: {unknown!r}")
        self.result = PebblingResult()
        #: Vertices that have ever been computed (had a red pebble via compute).
        self.computed: set[Vertex] = set()

    # -- individual moves ---------------------------------------------------
    def load(self, v: Vertex) -> None:
        """Place a red pebble on ``v`` which must carry a blue pebble."""
        self._check_vertex(v)
        if v in self.red:
            return
        if v not in self.blue:
            raise IllegalMoveError(f"load of {v!r}: vertex has no blue pebble")
        self._check_capacity()
        self.red.add(v)
        self.result.loads += 1
        self._track()

    def store(self, v: Vertex) -> None:
        """Place a blue pebble on ``v`` which must carry a red pebble."""
        self._check_vertex(v)
        if v not in self.red:
            raise IllegalMoveError(f"store of {v!r}: vertex has no red pebble")
        if v in self.blue:
            return
        self.blue.add(v)
        self.result.stores += 1
        self._track()

    def compute(self, v: Vertex) -> None:
        """Place a red pebble on ``v`` whose parents must all carry red pebbles."""
        self._check_vertex(v)
        parents = self.cdag.parents(v)
        if not parents:
            raise IllegalMoveError(
                f"compute of {v!r}: vertex is an input and cannot be computed"
            )
        missing = [p for p in parents if p not in self.red]
        if missing:
            raise IllegalMoveError(
                f"compute of {v!r}: parents without red pebbles: {missing!r}"
            )
        if v not in self.red:
            self._check_capacity()
            self.red.add(v)
        self.result.computes += 1
        self.computed.add(v)
        self._track()

    def free_red(self, v: Vertex) -> None:
        """Remove the red pebble from ``v`` (no-op if absent)."""
        self.red.discard(v)

    def free_blue(self, v: Vertex) -> None:
        """Remove the blue pebble from ``v`` (no-op if absent)."""
        self.blue.discard(v)

    # -- schedule execution ----------------------------------------------------
    def run(self, moves: Sequence[PebbleMove]) -> PebblingResult:
        """Execute a full move sequence and return the accumulated result.

        After the run, :attr:`PebblingResult.complete` records whether every
        CDAG output ended up with a blue pebble (i.e. whether this was a
        *complete calculation*).
        """
        dispatch = {
            Move.LOAD: self.load,
            Move.STORE: self.store,
            Move.COMPUTE: self.compute,
            Move.FREE_RED: self.free_red,
            Move.FREE_BLUE: self.free_blue,
        }
        for move in moves:
            dispatch[move.kind](move.vertex)
            self.result.moves_executed += 1
        return self.finish()

    def finish(self) -> PebblingResult:
        """Finalize the result: check the terminal configuration."""
        outputs = self.cdag.outputs
        missing = frozenset(v for v in outputs if v not in self.blue)
        self.result.missing_outputs = missing
        self.result.complete = not missing
        return self.result

    # -- helpers -------------------------------------------------------------
    @property
    def red_in_use(self) -> int:
        return len(self.red)

    def _check_capacity(self) -> None:
        if len(self.red) + 1 > self.capacity:
            raise IllegalMoveError(
                f"cannot place another red pebble: {len(self.red)} already in use, capacity S={self.capacity}"
            )

    def _check_vertex(self, v: Vertex) -> None:
        if v not in self.cdag:
            raise KeyError(f"vertex {v!r} is not part of the CDAG")

    def _track(self) -> None:
        if len(self.red) > self.result.max_red_in_use:
            self.result.max_red_in_use = len(self.red)


def naive_pebbling(cdag: CDAG, red_pebbles: int) -> PebblingResult:
    """Pebble a CDAG by processing vertices in topological order.

    For every non-input vertex, all parents are loaded (if not resident), the
    vertex is computed, stored if it is an output, and then every red pebble
    whose children are all already computed is freed.  This is a simple but
    legal baseline pebbling used in tests to contrast against scheduled
    (I/O-aware) pebblings.
    """
    game = PebbleGame(cdag, red_pebbles)
    remaining_children = {v: len(cdag.children(v)) for v in cdag.vertices}
    outputs = cdag.outputs
    for v in cdag.topological_order():
        if v in cdag.inputs:
            continue
        for parent in cdag.parents(v):
            if parent not in game.red:
                if parent in game.blue:
                    game.load(parent)
                else:
                    raise IllegalMoveError(
                        f"naive pebbling needs parent {parent!r} which is neither red nor blue"
                    )
        game.compute(v)
        if v in outputs:
            game.store(v)
        # Free pebbles that are no longer needed.
        for parent in cdag.parents(v):
            remaining_children[parent] -= 1
            if remaining_children[parent] == 0:
                game.free_red(parent)
        if remaining_children[v] == 0:
            game.free_red(v)
    return game.finish()
