"""The matrix-matrix multiplication CDAG and its projections (section 5.1).

Vertices (0-based indices, unlike the paper's 1-based notation):

* ``("a", i, t)`` -- element ``A[i, t]`` of the ``m x k`` input matrix,
* ``("b", t, j)`` -- element ``B[t, j]`` of the ``k x n`` input matrix,
* ``("c", i, j, t)`` -- the ``t``-th partial sum of output element ``C[i, j]``,
  for ``t = 0, ..., k-1``; the final partial sum ``("c", i, j, k-1)`` is the
  output vertex.

Edges: the update ``C(i,j,t) = C(i,j,t-1) + A(i,t) * B(t,j)`` contributes
edges from ``("a", i, t)``, ``("b", t, j)`` and (for ``t > 0``)
``("c", i, j, t-1)`` into ``("c", i, j, t)``.

The projections ``phi_a``, ``phi_b`` and ``phi_c`` map a partial-sum vertex to
the A element, B element and output coordinate it involves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.pebbling.cdag import CDAG
from repro.utils.validation import check_positive_int

AVertex = tuple[str, int, int]
BVertex = tuple[str, int, int]
CVertex = tuple[str, int, int, int]


def a_vertex(i: int, t: int) -> AVertex:
    """Vertex for ``A[i, t]``."""
    return ("a", i, t)


def b_vertex(t: int, j: int) -> BVertex:
    """Vertex for ``B[t, j]``."""
    return ("b", t, j)


def c_vertex(i: int, j: int, t: int) -> CVertex:
    """Vertex for the ``t``-th partial sum of ``C[i, j]``."""
    return ("c", i, j, t)


def phi_a(v: CVertex) -> AVertex:
    """Projection of a partial-sum vertex onto matrix A."""
    _, i, _j, t = v
    return a_vertex(i, t)


def phi_b(v: CVertex) -> BVertex:
    """Projection of a partial-sum vertex onto matrix B."""
    _, _i, j, t = v
    return b_vertex(t, j)


def phi_c(v: CVertex) -> tuple[int, int]:
    """Projection of a partial-sum vertex onto the output coordinate ``(i, j)``.

    Note that (as in the paper) this projection is *not* a CDAG vertex: all
    ``k`` partial sums of the same output element share the same projection.
    """
    _, i, j, _t = v
    return (i, j)


@dataclass(frozen=True)
class MMMCdag:
    """The MMM CDAG for ``C = A @ B`` with ``A (m x k)`` and ``B (k x n)``."""

    m: int
    n: int
    k: int
    cdag: CDAG

    @property
    def num_multiplications(self) -> int:
        """``|C| = m * n * k`` -- the number of elementary multiply-adds."""
        return self.m * self.n * self.k

    @property
    def num_vertices(self) -> int:
        return len(self.cdag)

    def output_vertices(self) -> frozenset[CVertex]:
        return frozenset(
            c_vertex(i, j, self.k - 1) for i in range(self.m) for j in range(self.n)
        )

    def a_vertices(self) -> Iterable[AVertex]:
        return (a_vertex(i, t) for i in range(self.m) for t in range(self.k))

    def b_vertices(self) -> Iterable[BVertex]:
        return (b_vertex(t, j) for t in range(self.k) for j in range(self.n))

    def c_vertices(self) -> Iterable[CVertex]:
        return (
            c_vertex(i, j, t)
            for i in range(self.m)
            for j in range(self.n)
            for t in range(self.k)
        )

    def projections(self, subset: Iterable[CVertex]) -> tuple[set, set, set]:
        """Return ``(alpha, beta, gamma)`` projections of a subcomputation.

        ``alpha`` is the set of A vertices touched, ``beta`` the B vertices and
        ``gamma`` the set of distinct output coordinates (section 5.1.2).
        """
        alpha: set = set()
        beta: set = set()
        gamma: set = set()
        for v in subset:
            alpha.add(phi_a(v))
            beta.add(phi_b(v))
            gamma.add(phi_c(v))
        return alpha, beta, gamma


def build_mmm_cdag(m: int, n: int, k: int) -> MMMCdag:
    """Construct the MMM CDAG for given dimensions.

    The graph has ``mk + kn + mnk`` vertices; keep the dimensions small (a few
    tens) when building it explicitly -- the I/O analysis of realistic problem
    sizes uses the closed-form bounds in :mod:`repro.pebbling.mmm_bounds`, not
    an explicit graph.
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    cdag = CDAG()
    for i in range(m):
        for t in range(k):
            cdag.add_vertex(a_vertex(i, t))
    for t in range(k):
        for j in range(n):
            cdag.add_vertex(b_vertex(t, j))
    for i in range(m):
        for j in range(n):
            for t in range(k):
                v = c_vertex(i, j, t)
                cdag.add_edge(a_vertex(i, t), v)
                cdag.add_edge(b_vertex(t, j), v)
                if t > 0:
                    cdag.add_edge(c_vertex(i, j, t - 1), v)
    cdag.mark_outputs(c_vertex(i, j, k - 1) for i in range(m) for j in range(n))
    return MMMCdag(m=m, n=n, k=k, cdag=cdag)
