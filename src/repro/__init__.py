"""COSMA reproduction: near communication-optimal parallel matrix-matrix multiplication.

This package reproduces the system described in

    Kwasniewski et al., "Red-Blue Pebbling Revisited: Near Optimal Parallel
    Matrix-Matrix Multiplication", SC 2019 (arXiv:1908.09606).

It provides:

* :mod:`repro.pebbling` -- the red-blue pebble game, CDAGs, X-partitions and
  the I/O lower-bound machinery (Lemmas 1-4, Theorems 1-2).
* :mod:`repro.machine` -- a two-level memory hierarchy simulator and a
  distributed machine simulator with exact communication-volume accounting.
* :mod:`repro.layouts` -- blocked (COSMA, section 7.6) and block-cyclic
  (ScaLAPACK) data layouts plus redistribution.
* :mod:`repro.core` -- the COSMA algorithm: optimal sequential schedule,
  parallelization, processor-grid fitting, overlap, and the distributed
  executor.
* :mod:`repro.baselines` -- Cannon, SUMMA (2D), 2.5D/3D, and CARMA-style
  recursive decompositions implemented on the same simulator.
* :mod:`repro.sequential` -- sequential MMM kernels executed against the
  memory-hierarchy simulator.
* :mod:`repro.workloads` -- matrix-shape and scaling-scenario generators used
  in the paper's evaluation (section 8).
* :mod:`repro.experiments` -- the benchmark harness, performance model and
  report generators that regenerate every table and figure.
* :mod:`repro.algorithms` -- the algorithm registry: one ``AlgorithmSpec``
  per algorithm bundling runner, planner, Table 3 cost model and capability
  flags; ``@register_algorithm`` adds new backends in a few lines.

Quick start
-----------

>>> from repro import multiply
>>> import numpy as np
>>> A = np.random.rand(64, 48); B = np.random.rand(48, 80)
>>> result = multiply(A, B, processors=8, memory_words=512)
>>> bool(np.allclose(result.matrix, A @ B))
True
"""

from repro._version import __version__
from repro.algorithms import (
    AlgorithmSpec,
    Plan,
    get_algorithm,
    register_algorithm,
    registered_algorithms,
)
from repro.api import (
    MultiplyResult,
    RunReport,
    cosma_cost,
    lower_bound_parallel,
    lower_bound_sequential,
    multiply,
    plan,
)

__all__ = [
    "__version__",
    "multiply",
    "plan",
    "RunReport",
    "MultiplyResult",
    "AlgorithmSpec",
    "Plan",
    "get_algorithm",
    "register_algorithm",
    "registered_algorithms",
    "cosma_cost",
    "lower_bound_sequential",
    "lower_bound_parallel",
]
