"""High-level public API.

Most users only need :func:`multiply` (run COSMA on a simulated distributed
machine and get the product plus its communication profile) and the analytic
cost / lower-bound helpers.  Everything else is available through the
subpackages documented in the README's architecture overview.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cosma import CosmaRunResult, cosma_multiply
from repro.core.cost_model import cosma_io_cost
from repro.pebbling.mmm_bounds import parallel_io_lower_bound, sequential_io_lower_bound
from repro.utils.validation import check_positive_int


@dataclass
class MultiplyResult:
    """Result of :func:`multiply`: the product plus its communication profile."""

    matrix: np.ndarray
    #: Processor grid used, as a ``(pm, pn, pk)`` tuple.
    grid: tuple[int, int, int]
    #: Number of processors the fitted grid actually uses.
    processors_used: int
    #: Average words moved (sent + received) per rank.
    mean_words_per_rank: float
    #: Average words received per rank (the quantity Theorem 2 bounds).
    mean_received_per_rank: float
    #: Total words transferred across the whole machine.
    total_communicated_words: int
    #: Number of communication rounds of the schedule.
    rounds: int
    #: Theorem 2 lower bound for this problem (per-processor words).
    lower_bound_per_rank: float

    @property
    def optimality_ratio(self) -> float:
        """Measured per-rank received volume divided by the Theorem 2 bound."""
        if self.lower_bound_per_rank <= 0:
            return float("inf")
        return self.mean_received_per_rank / self.lower_bound_per_rank


def multiply(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    processors: int,
    memory_words: int,
    max_idle_fraction: float = 0.03,
) -> MultiplyResult:
    """Multiply ``A @ B`` with COSMA on a simulated ``processors``-rank machine.

    Parameters
    ----------
    a_matrix, b_matrix:
        Input matrices of shapes ``(m, k)`` and ``(k, n)``.
    processors:
        Number of simulated processors.
    memory_words:
        Local memory per processor, in matrix elements (words).
    max_idle_fraction:
        Fraction of processors the grid optimizer may leave idle (section 7.1).

    Returns
    -------
    MultiplyResult
        The numerical product together with the measured communication
        profile and the matching I/O lower bound.

    Examples
    --------
    >>> import numpy as np
    >>> a = np.ones((32, 16)); b = np.ones((16, 24))
    >>> out = multiply(a, b, processors=4, memory_words=4096)
    >>> bool(np.allclose(out.matrix, a @ b))
    True
    """
    processors = check_positive_int(processors, "processors")
    memory_words = check_positive_int(memory_words, "memory_words")
    result: CosmaRunResult = cosma_multiply(
        np.asarray(a_matrix),
        np.asarray(b_matrix),
        processors,
        memory_words,
        max_idle_fraction=max_idle_fraction,
    )
    m, k = np.asarray(a_matrix).shape
    _, n = np.asarray(b_matrix).shape
    bound = parallel_io_lower_bound(m, n, k, processors, memory_words)
    counters = result.counters
    return MultiplyResult(
        matrix=result.matrix,
        grid=result.grid.as_tuple(),
        processors_used=result.grid.p_used,
        mean_words_per_rank=counters.mean_words_per_rank(),
        mean_received_per_rank=counters.mean_received_per_rank(),
        total_communicated_words=counters.total_words_sent,
        rounds=result.num_rounds,
        lower_bound_per_rank=bound,
    )


def cosma_cost(m: int, n: int, k: int, processors: int, memory_words: int) -> float:
    """Analytic per-processor I/O cost of COSMA (equals the Theorem 2 bound)."""
    return cosma_io_cost(m, n, k, processors, memory_words)


def lower_bound_sequential(m: int, n: int, k: int, memory_words: int) -> float:
    """Theorem 1: sequential MMM I/O lower bound ``2mnk/sqrt(S) + mn``."""
    return sequential_io_lower_bound(m, n, k, memory_words)


def lower_bound_parallel(m: int, n: int, k: int, processors: int, memory_words: int) -> float:
    """Theorem 2: parallel MMM per-processor I/O lower bound."""
    return parallel_io_lower_bound(m, n, k, processors, memory_words)
