"""High-level public API, built on the algorithm registry.

Most users only need :func:`multiply` (run any registered algorithm on a
simulated distributed machine and get a unified :class:`RunReport`),
:func:`plan` (the planning layer: fitted grid, predicted volume and
feasibility *without* executing anything) and the analytic cost /
lower-bound helpers.  Everything else is available through the subpackages
documented in the README's architecture overview.

Backward compatibility: :class:`MultiplyResult` is an alias of
:class:`RunReport` and every pre-registry field (``matrix``, ``grid``,
``processors_used``, ``mean_words_per_rank``, ``mean_received_per_rank``,
``total_communicated_words``, ``rounds``, ``lower_bound_per_rank``,
``optimality_ratio``) is still there; ``multiply``'s positional argument
order is unchanged, the registry arguments are keyword-only.  One behaviour
change: with ``max_idle_fraction=None`` (the new default) COSMA uses the
shared :func:`repro.algorithms.cosma_idle_fraction` heuristic instead of a
flat 3%, matching what the benchmark harness has always done.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from repro.algorithms import Plan, cosma_idle_fraction, get_algorithm, registered_algorithms
from repro.baselines.costs import CostPrediction
from repro.core.cost_model import cosma_io_cost
from repro.machine.simulator import DistributedMachine
from repro.machine.transport import MODES, ShapeToken, allclose_tolerances
from repro.obs.trace import active_tracer
from repro.pebbling.mmm_bounds import parallel_io_lower_bound, sequential_io_lower_bound
from repro.utils.validation import check_positive_int
from repro.workloads.scaling import Scenario
from repro.workloads.shapes import ProblemShape

__all__ = [
    "RunReport",
    "MultiplyResult",
    "multiply",
    "plan",
    "list_algorithms",
    "cosma_idle_fraction",
    "cosma_cost",
    "lower_bound_sequential",
    "lower_bound_parallel",
]


@dataclass
class RunReport:
    """Unified result of one algorithm execution: plan + counters + bounds.

    Shared by :func:`multiply`, the benchmark harness, the CLI and the sweep
    engine's per-run records; :class:`MultiplyResult` is its deprecated
    pre-registry alias.
    """

    #: Canonical registry name of the algorithm that ran.
    algorithm: str
    #: The numerical product, or ``None`` in ``volume`` mode (shape-token
    #: payloads carry no data).
    matrix: np.ndarray | None
    #: Processor grid the plan fitted (arity is algorithm-specific, e.g.
    #: ``(pm, pn, pk)`` for COSMA).
    grid: tuple[int, ...]
    #: Number of processors the fitted grid actually uses.
    processors_used: int
    #: Average words moved (sent + received) per rank.
    mean_words_per_rank: float
    #: Average words received per rank (the quantity Theorem 2 bounds).
    mean_received_per_rank: float
    #: Total words transferred across the whole machine.
    total_communicated_words: int
    #: Communication rounds on the busiest rank (the harness metric; the
    #: schedule's planned step count is in ``plan.rounds``).
    rounds: int
    #: Theorem 2 lower bound for this problem (per-processor words).
    lower_bound_per_rank: float
    #: The pre-execution plan (fitted grid, predicted words, feasibility).
    plan: Plan
    #: Transport mode the run used (``legacy`` / ``zerocopy`` / ``volume``).
    mode: str = "legacy"
    #: Whether the numerical result was checked against ``A @ B``.
    verified: bool = True
    #: Outcome of that check (``True`` whenever verification was skipped).
    correct: bool = True
    #: Maximum words moved through any rank (critical path).
    max_words_per_rank: int = 0
    total_flops: int = 0
    #: Table 3 analytic prediction, when the algorithm has a cost model.
    cost: CostPrediction | None = None

    @property
    def optimality_ratio(self) -> float:
        """Measured per-rank received volume divided by the Theorem 2 bound."""
        if self.lower_bound_per_rank <= 0:
            return float("inf")
        return self.mean_received_per_rank / self.lower_bound_per_rank


#: Deprecated alias: the pre-registry name of :class:`RunReport`.
MultiplyResult = RunReport


def _api_scenario(m: int, n: int, k: int, processors: int, memory_words: int) -> Scenario:
    return Scenario(
        name=f"api-{m}x{n}x{k}-p{processors}",
        shape=ProblemShape(m=m, n=n, k=k, family="api"),
        p=processors,
        memory_words=memory_words,
        regime="api",
    )


def multiply(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    processors: int,
    memory_words: int,
    max_idle_fraction: float | None = None,
    *,
    algorithm: str = "COSMA",
    mode: str = "legacy",
    compress_rounds: bool = False,
    shards: int = 1,
    plane_dtype: str = "float64",
) -> RunReport:
    """Multiply ``A @ B`` with any registered algorithm on a simulated machine.

    Parameters
    ----------
    a_matrix, b_matrix:
        Input matrices of shapes ``(m, k)`` and ``(k, n)``.
    processors:
        Number of simulated processors.
    memory_words:
        Local memory per processor, in matrix elements (words).
    max_idle_fraction:
        COSMA's grid-fitting ``delta`` (section 7.1).  ``None`` (default)
        uses the shared :func:`~repro.algorithms.cosma_idle_fraction`
        heuristic; passing a value for a non-COSMA algorithm is an error.
    algorithm:
        Registry name or alias (``"COSMA"``, ``"ScaLAPACK"``/``"SUMMA"``,
        ``"CTF"``/``"2.5D"``, ``"CARMA"``, ``"Cannon"``, or anything added
        via :func:`repro.algorithms.register_algorithm`).
    mode:
        Payload transport: ``"legacy"`` / ``"zerocopy"`` / ``"plane"`` run
        and verify real numerics (``"plane"`` on stacked arrays -- the
        fastest verified mode); ``"volume"`` counts communication only
        (``matrix`` is ``None``) and scales to paper-size grids.
    compress_rounds:
        Opt into steady-state round compression: structurally identical
        communication rounds replay a cached counter delta instead of
        re-executing the schedule.  Only effective in ``"volume"`` mode;
        counters are byte-identical either way.
    shards:
        Numeric execution policy for ``"plane"`` mode: number of worker
        processes the batched GEMMs are sharded across over shared memory
        (:mod:`repro.machine.shard`).  ``1`` (default) keeps the in-process
        engine.  Counters are byte-identical across shard counts; like
        ``compress_rounds``, shards never enters a sweep run's identity key.
    plane_dtype:
        Element dtype for numeric payloads (``"float64"`` default,
        ``"float32"`` opt-in).  Verification switches to relative
        tolerances appropriate for the dtype; counters are unchanged
        (words are elements, not bytes).

    Examples
    --------
    >>> import numpy as np
    >>> a = np.ones((32, 16)); b = np.ones((16, 24))
    >>> out = multiply(a, b, processors=4, memory_words=4096)
    >>> bool(np.allclose(out.matrix, a @ b))
    True
    >>> multiply(a, b, 4, 4096, algorithm="CARMA").correct
    True
    """
    processors = check_positive_int(processors, "processors")
    memory_words = check_positive_int(memory_words, "memory_words")
    spec = get_algorithm(algorithm)
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; known: {MODES}")
    if not spec.supports_mode(mode):
        raise ValueError(f"{spec.name} does not support mode {mode!r}; supported: {spec.modes}")
    options: dict = {}
    if max_idle_fraction is not None:
        if spec.name != "COSMA":
            raise ValueError(
                "max_idle_fraction is COSMA's grid-fitting delta; "
                f"it does not apply to {spec.name}"
            )
        options["max_idle_fraction"] = max_idle_fraction

    m, k = np.shape(a_matrix) if not isinstance(a_matrix, ShapeToken) else a_matrix.shape
    k2, n = np.shape(b_matrix) if not isinstance(b_matrix, ShapeToken) else b_matrix.shape
    if k != k2:
        raise ValueError(f"inner dimensions do not match: {(m, k)} x {(k2, n)}")
    scenario = _api_scenario(m, n, k, processors, memory_words)
    run_plan = spec.plan(scenario, **options)
    if spec.name == "COSMA" and run_plan.feasible and run_plan.grid is not None:
        # Hand the fitted grid back to the executor so the (identical)
        # fitting search is not run twice per multiply.
        options["grid"] = run_plan.grid

    machine = DistributedMachine(
        processors, memory_words=memory_words, mode=mode,
        compress_rounds=compress_rounds, shards=shards, plane_dtype=plane_dtype,
    )
    if mode == "volume":
        a_in: np.ndarray | ShapeToken = ShapeToken((m, k))
        b_in: np.ndarray | ShapeToken = ShapeToken((k, n))
    else:
        a_in = np.asarray(a_matrix)
        b_in = np.asarray(b_matrix)
    tracer = active_tracer()
    run_span = (
        tracer.span(
            f"multiply:{spec.name}", cat="run",
            args={
                "algorithm": spec.name, "scenario": scenario.name,
                "p": processors, "mode": mode,
            },
            track="run",
        )
        if tracer is not None
        else nullcontext()
    )
    with run_span:
        product = spec.run(a_in, b_in, scenario, machine, **options)
        if machine.trace is not None:
            # Flush activity after the last round boundary (or the whole run,
            # for algorithms that never mark one) into a final round span.
            machine.trace.commit_round(machine.peak_resident_words)
    machine.counters.assert_conservation()

    verified = mode != "volume"
    correct = True
    if verified:
        rtol, atol_unit = allclose_tolerances(getattr(product, "dtype", np.float64))
        correct = bool(np.allclose(product, a_in @ b_in, rtol=rtol, atol=atol_unit * k))
    counters = machine.counters
    bound = run_plan.lower_bound_per_rank  # same inputs as the Theorem 2 call
    return RunReport(
        algorithm=spec.name,
        matrix=None if mode == "volume" else product,
        grid=run_plan.grid if run_plan.grid is not None else (processors,),
        processors_used=run_plan.processors_used or processors,
        mean_words_per_rank=counters.mean_words_per_rank(),
        mean_received_per_rank=counters.mean_received_per_rank(),
        total_communicated_words=counters.total_words_sent,
        rounds=counters.max_rounds(),
        lower_bound_per_rank=bound,
        plan=run_plan,
        mode=mode,
        verified=verified,
        correct=correct,
        max_words_per_rank=counters.max_words_per_rank(),
        total_flops=counters.total_flops,
        cost=spec.cost(scenario),
    )


def plan(
    m: int,
    n: int,
    k: int,
    processors: int,
    memory_words: int,
    algorithm: str = "COSMA",
    max_idle_fraction: float | None = None,
) -> Plan:
    """Plan a run without executing it: fitted grid, predicted words, feasibility.

    This is the registry's planning layer (:meth:`AlgorithmSpec.plan`)
    exposed on explicit problem dimensions; the sweep engine uses the same
    layer to prune infeasible campaign points before fanning out workers.

    Examples
    --------
    >>> p = plan(256, 256, 256, processors=8, memory_words=65536)
    >>> p.feasible, p.processors_used <= 8
    (True, True)
    """
    m = check_positive_int(m, "m")
    n = check_positive_int(n, "n")
    k = check_positive_int(k, "k")
    processors = check_positive_int(processors, "processors")
    memory_words = check_positive_int(memory_words, "memory_words")
    spec = get_algorithm(algorithm)
    options: dict = {}
    if max_idle_fraction is not None:
        if spec.name != "COSMA":
            raise ValueError(
                "max_idle_fraction is COSMA's grid-fitting delta; "
                f"it does not apply to {spec.name}"
            )
        options["max_idle_fraction"] = max_idle_fraction
    return spec.plan(_api_scenario(m, n, k, processors, memory_words), **options)


def list_algorithms() -> tuple[str, ...]:
    """Canonical names of every registered algorithm, in registration order."""
    return registered_algorithms()


def cosma_cost(m: int, n: int, k: int, processors: int, memory_words: int) -> float:
    """Analytic per-processor I/O cost of COSMA (equals the Theorem 2 bound)."""
    return cosma_io_cost(m, n, k, processors, memory_words)


def lower_bound_sequential(m: int, n: int, k: int, memory_words: int) -> float:
    """Theorem 1: sequential MMM I/O lower bound ``2mnk/sqrt(S) + mn``."""
    return sequential_io_lower_bound(m, n, k, memory_words)


def lower_bound_parallel(m: int, n: int, k: int, processors: int, memory_words: int) -> float:
    """Theorem 2: parallel MMM per-processor I/O lower bound."""
    return parallel_io_lower_bound(m, n, k, processors, memory_words)

