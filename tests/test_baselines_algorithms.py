"""Tests for the baseline algorithm executors (Cannon, SUMMA, 2.5D, CARMA, cuboid)."""

import numpy as np
import pytest

from repro.baselines.cannon import cannon_multiply
from repro.baselines.carma import carma_domains, carma_multiply, largest_power_of_two_at_most
from repro.baselines.cuboid import CuboidDomain, cuboid_multiply, validate_domains
from repro.baselines.grid25d import choose_25d_grid, grid25d_multiply
from repro.baselines.summa import choose_2d_grid, summa_multiply
from repro.machine.simulator import DistributedMachine


class TestCannon:
    @pytest.mark.parametrize("p", [1, 4, 9, 16])
    def test_matches_numpy(self, rng, p):
        a = rng.standard_normal((18, 12))
        b = rng.standard_normal((12, 24))
        result = cannon_multiply(a, b, p)
        assert np.allclose(result.matrix, a @ b)
        assert result.grid_size ** 2 <= p

    def test_uses_largest_square_grid(self, rng):
        a = rng.standard_normal((12, 12))
        b = rng.standard_normal((12, 12))
        result = cannon_multiply(a, b, 10)
        assert result.grid_size == 3

    def test_nondivisible_dimensions_padded(self, rng):
        a = rng.standard_normal((13, 11))
        b = rng.standard_normal((11, 7))
        result = cannon_multiply(a, b, 4)
        assert np.allclose(result.matrix, a @ b)

    def test_single_rank_no_communication(self, rng):
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        result = cannon_multiply(a, b, 1)
        assert result.counters.total_words_sent == 0

    def test_volume_close_to_2d_formula(self, rng):
        m = n = k = 32
        p = 16
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        result = cannon_multiply(a, b, p)
        # Received words per rank ~ k(m+n)/sqrt(p) (plus the skew shifts).
        expected = k * (m + n) / np.sqrt(p)
        measured = result.counters.mean_received_per_rank()
        assert 0.5 * expected <= measured <= 2.0 * expected

    def test_skew_disabled_reduces_volume(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        with_skew = cannon_multiply(a, b, 16, skew=True)
        without = cannon_multiply(a, b, 16, skew=False)
        assert without.counters.total_words_sent < with_skew.counters.total_words_sent


class TestSumma:
    @pytest.mark.parametrize("p", [1, 2, 4, 6, 12])
    def test_matches_numpy(self, rng, p):
        a = rng.standard_normal((18, 15))
        b = rng.standard_normal((15, 24))
        result = summa_multiply(a, b, p)
        assert np.allclose(result.matrix, a @ b)

    def test_grid_uses_all_ranks(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        result = summa_multiply(a, b, 6)
        pm, pn = result.grid
        assert pm * pn == 6

    def test_choose_grid_matches_aspect_ratio(self):
        pm, pn = choose_2d_grid(1000, 10, 16)
        assert pm > pn

    def test_explicit_grid(self, rng):
        a = rng.standard_normal((12, 8))
        b = rng.standard_normal((8, 12))
        result = summa_multiply(a, b, 4, grid=(4, 1))
        assert result.grid == (4, 1)
        assert np.allclose(result.matrix, a @ b)

    def test_oversized_grid_rejected(self, rng):
        with pytest.raises(ValueError):
            summa_multiply(rng.standard_normal((8, 8)), rng.standard_normal((8, 8)), 2, grid=(2, 2))

    def test_panel_width_affects_rounds_not_volume(self, rng):
        a = rng.standard_normal((16, 32))
        b = rng.standard_normal((32, 16))
        wide = summa_multiply(a, b, 4, panel_width=16)
        narrow = summa_multiply(a, b, 4, panel_width=4)
        assert np.allclose(wide.matrix, narrow.matrix)
        assert wide.counters.total_words_sent == narrow.counters.total_words_sent
        assert narrow.counters.max_rounds() > wide.counters.max_rounds()

    def test_volume_independent_of_memory_size(self, rng):
        """The defining weakness of 2D algorithms: extra memory does not help."""
        a = rng.standard_normal((24, 24))
        b = rng.standard_normal((24, 24))
        small = summa_multiply(a, b, 4, memory_words=512)
        large = summa_multiply(a, b, 4, memory_words=1 << 20)
        assert small.counters.total_words_sent == large.counters.total_words_sent


class Test25D:
    @pytest.mark.parametrize("p", [1, 4, 8, 16])
    def test_matches_numpy(self, rng, p):
        a = rng.standard_normal((16, 20))
        b = rng.standard_normal((20, 12))
        result = grid25d_multiply(a, b, p, memory_words=4096)
        assert np.allclose(result.matrix, a @ b)

    def test_replication_grows_with_memory(self):
        lean = choose_25d_grid(64, 64, 64, 16, memory_words=512)
        rich = choose_25d_grid(64, 64, 64, 16, memory_words=1 << 16)
        assert rich[2] >= lean[2]

    def test_grid_is_square_layer(self):
        q, q2, c = choose_25d_grid(128, 128, 128, 32, memory_words=4096)
        assert q == q2
        assert q * q * c <= 32

    def test_extra_memory_reduces_volume(self, rng):
        m = n = k = 32
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        lean = grid25d_multiply(a, b, 16, memory_words=300, grid=(4, 4, 1))
        rich = grid25d_multiply(a, b, 16, memory_words=1 << 16, grid=(2, 2, 4))
        assert rich.counters.mean_received_per_rank() < lean.counters.mean_received_per_rank()

    def test_explicit_grid_too_large_rejected(self, rng):
        with pytest.raises(ValueError):
            grid25d_multiply(
                rng.standard_normal((8, 8)), rng.standard_normal((8, 8)), 4, 1024, grid=(2, 2, 2)
            )


class TestCuboid:
    def test_single_domain(self, rng):
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((4, 5))
        domains = [CuboidDomain(rank=0, i_range=(0, 6), j_range=(0, 5), k_range=(0, 4))]
        result = cuboid_multiply(a, b, domains)
        assert np.allclose(result.matrix, a @ b)
        assert result.counters.total_words_sent == 0

    def test_k_split_requires_reduction(self, rng):
        a = rng.standard_normal((6, 8))
        b = rng.standard_normal((8, 6))
        domains = [
            CuboidDomain(rank=0, i_range=(0, 6), j_range=(0, 6), k_range=(0, 4)),
            CuboidDomain(rank=1, i_range=(0, 6), j_range=(0, 6), k_range=(4, 8)),
        ]
        result = cuboid_multiply(a, b, domains)
        assert np.allclose(result.matrix, a @ b)
        # One 6x6 partial result must travel to the owner.
        assert result.counters.total_words_sent == 36

    def test_j_split_replicates_a(self, rng):
        a = rng.standard_normal((6, 8))
        b = rng.standard_normal((8, 6))
        domains = [
            CuboidDomain(rank=0, i_range=(0, 6), j_range=(0, 3), k_range=(0, 8)),
            CuboidDomain(rank=1, i_range=(0, 6), j_range=(3, 6), k_range=(0, 8)),
        ]
        result = cuboid_multiply(a, b, domains)
        assert np.allclose(result.matrix, a @ b)
        # The 6x8 block of A is needed by both ranks but stored once.
        assert result.counters.total_words_sent == 48

    def test_validate_rejects_non_tiling(self):
        with pytest.raises(ValueError):
            validate_domains(
                4, 4, 4, [CuboidDomain(rank=0, i_range=(0, 4), j_range=(0, 4), k_range=(0, 2))]
            )

    def test_validate_rejects_out_of_bounds(self):
        with pytest.raises(ValueError):
            validate_domains(
                4, 4, 4, [CuboidDomain(rank=0, i_range=(0, 5), j_range=(0, 4), k_range=(0, 4))]
            )

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            cuboid_multiply(rng.standard_normal((4, 3)), rng.standard_normal((4, 4)), [])


class TestCarma:
    def test_power_of_two_helper(self):
        assert largest_power_of_two_at_most(1) == 1
        assert largest_power_of_two_at_most(2) == 2
        assert largest_power_of_two_at_most(63) == 32
        assert largest_power_of_two_at_most(64) == 64

    @pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
    def test_matches_numpy(self, rng, p):
        a = rng.standard_normal((16, 20))
        b = rng.standard_normal((20, 12))
        result = carma_multiply(a, b, p)
        assert np.allclose(result.matrix, a @ b)

    def test_non_power_of_two_rounds_down(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        result = carma_multiply(a, b, 12)
        assert result.p_used == 8
        assert np.allclose(result.matrix, a @ b)

    def test_domains_tile_iteration_space(self):
        domains = carma_domains(16, 24, 32, 8)
        validate_domains(16, 24, 32, domains)

    def test_domains_are_near_cubic(self):
        # CARMA guarantees the longest side is at most twice the shortest
        # (for divisible dimensions).
        domains = carma_domains(64, 64, 64, 64)
        for domain in domains:
            lm, ln, lk = domain.shape
            assert max(lm, ln, lk) <= 2 * min(lm, ln, lk)

    def test_splits_largest_dimension_first(self):
        domains = carma_domains(4, 4, 1024, 2)
        # With k dominating, the first split must divide k.
        assert all(d.shape[2] == 512 for d in domains)

    def test_tall_matrix_correctness(self, rng):
        a = rng.standard_normal((4, 128))
        b = rng.standard_normal((128, 4))
        result = carma_multiply(a, b, 8)
        assert np.allclose(result.matrix, a @ b)

    def test_uses_supplied_machine(self, rng):
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        machine = DistributedMachine(4, memory_words=1 << 16)
        result = carma_multiply(a, b, 4, machine=machine)
        assert result.counters is machine.counters
