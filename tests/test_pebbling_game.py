"""Tests for the red-blue pebble game executor."""

import pytest

from repro.pebbling.cdag import CDAG
from repro.pebbling.game import (
    IllegalMoveError,
    Move,
    PebbleGame,
    PebbleMove,
    naive_pebbling,
)


@pytest.fixture
def chain():
    """x -> y -> z (inputs: x, outputs: z)."""
    g = CDAG()
    g.add_edge("x", "y")
    g.add_edge("y", "z")
    return g


class TestMoves:
    def test_load_requires_blue(self, chain):
        game = PebbleGame(chain, red_pebbles=3)
        with pytest.raises(IllegalMoveError):
            game.load("y")

    def test_load_input(self, chain):
        game = PebbleGame(chain, red_pebbles=3)
        game.load("x")
        assert "x" in game.red
        assert game.result.loads == 1

    def test_load_idempotent(self, chain):
        game = PebbleGame(chain, red_pebbles=3)
        game.load("x")
        game.load("x")
        assert game.result.loads == 1

    def test_compute_requires_red_parents(self, chain):
        game = PebbleGame(chain, red_pebbles=3)
        with pytest.raises(IllegalMoveError):
            game.compute("y")

    def test_compute_of_input_rejected(self, chain):
        game = PebbleGame(chain, red_pebbles=3)
        with pytest.raises(IllegalMoveError):
            game.compute("x")

    def test_compute_places_red(self, chain):
        game = PebbleGame(chain, red_pebbles=3)
        game.load("x")
        game.compute("y")
        assert "y" in game.red
        assert game.result.computes == 1

    def test_store_requires_red(self, chain):
        game = PebbleGame(chain, red_pebbles=3)
        with pytest.raises(IllegalMoveError):
            game.store("z")

    def test_capacity_enforced(self, chain):
        game = PebbleGame(chain, red_pebbles=1)
        game.load("x")
        with pytest.raises(IllegalMoveError):
            game.compute("y")

    def test_free_red_allows_reuse(self, chain):
        game = PebbleGame(chain, red_pebbles=1)
        game.load("x")
        game.free_red("x")
        game.load("x")
        assert game.result.loads == 2

    def test_unknown_vertex_rejected(self, chain):
        game = PebbleGame(chain, red_pebbles=2)
        with pytest.raises(KeyError):
            game.load("nope")

    def test_initial_blue_on_unknown_vertex_rejected(self, chain):
        with pytest.raises(KeyError):
            PebbleGame(chain, red_pebbles=2, initial_blue=["nope"])

    def test_requires_positive_capacity(self, chain):
        with pytest.raises(ValueError):
            PebbleGame(chain, red_pebbles=0)


class TestRunAndCompleteness:
    def test_complete_calculation(self, chain):
        game = PebbleGame(chain, red_pebbles=3)
        moves = [
            PebbleMove(Move.LOAD, "x"),
            PebbleMove(Move.COMPUTE, "y"),
            PebbleMove(Move.COMPUTE, "z"),
            PebbleMove(Move.STORE, "z"),
        ]
        result = game.run(moves)
        assert result.complete
        assert result.io == 2  # one load + one store
        assert result.max_red_in_use == 3

    def test_incomplete_when_output_not_stored(self, chain):
        game = PebbleGame(chain, red_pebbles=3)
        result = game.run([
            PebbleMove(Move.LOAD, "x"),
            PebbleMove(Move.COMPUTE, "y"),
            PebbleMove(Move.COMPUTE, "z"),
        ])
        assert not result.complete
        assert "z" in result.missing_outputs

    def test_moves_executed_counter(self, chain):
        game = PebbleGame(chain, red_pebbles=3)
        result = game.run([PebbleMove(Move.LOAD, "x")])
        assert result.moves_executed == 1


class TestVectorizedRun:
    """The array-based run path must match move-by-move execution exactly."""

    @staticmethod
    def _long_schedule(chain):
        # > 32 moves so run() takes the vectorized path; includes idempotent
        # loads, a free/reload cycle, and no-op frees on unknown vertices.
        moves = []
        for _ in range(12):
            moves += [
                PebbleMove(Move.LOAD, "x"),
                PebbleMove(Move.COMPUTE, "y"),
                PebbleMove(Move.COMPUTE, "z"),
                PebbleMove(Move.STORE, "z"),
                PebbleMove(Move.FREE_RED, "y"),
                PebbleMove(Move.FREE_RED, "ghost"),
            ]
        return moves

    def test_matches_sequential_execution(self, chain):
        moves = self._long_schedule(chain)
        vectorized = PebbleGame(chain, red_pebbles=3)
        result = vectorized.run(moves)
        reference = PebbleGame(chain, red_pebbles=3)
        reference._run_sequential(moves)
        expected = reference.finish()
        assert (result.loads, result.stores, result.computes) == (
            expected.loads, expected.stores, expected.computes
        )
        assert result.max_red_in_use == expected.max_red_in_use
        assert result.moves_executed == expected.moves_executed == len(moves)
        assert result.complete and expected.complete
        assert vectorized.red == reference.red
        assert vectorized.blue == reference.blue
        assert vectorized.computed == reference.computed

    def test_illegal_schedule_raises_like_sequential(self, chain):
        moves = self._long_schedule(chain)
        moves.insert(40, PebbleMove(Move.COMPUTE, "z"))
        moves.insert(40, PebbleMove(Move.FREE_RED, "y"))  # kills z's parent
        with pytest.raises(IllegalMoveError, match="parents without red pebbles"):
            PebbleGame(chain, red_pebbles=3).run(moves)

    def test_capacity_violation_detected(self, chain):
        moves = self._long_schedule(chain)
        with pytest.raises(IllegalMoveError, match="cannot place another red pebble"):
            PebbleGame(chain, red_pebbles=2).run(moves)

    def test_unknown_vertex_in_long_schedule(self, chain):
        moves = self._long_schedule(chain)
        moves.append(PebbleMove(Move.LOAD, "nope"))
        with pytest.raises(KeyError):
            PebbleGame(chain, red_pebbles=3).run(moves)


class TestNaivePebbling:
    def test_chain(self, chain):
        result = naive_pebbling(chain, red_pebbles=3)
        assert result.complete
        assert result.computes == 2

    def test_diamond(self):
        g = CDAG()
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        g.add_edge("b", "d")
        g.add_edge("c", "d")
        result = naive_pebbling(g, red_pebbles=4)
        assert result.complete
        assert result.loads >= 1
        assert result.stores >= 1

    def test_insufficient_memory_raises(self):
        # A vertex with many parents cannot be computed with too few red pebbles.
        g = CDAG()
        for i in range(5):
            g.add_edge(("in", i), "sink")
        with pytest.raises(IllegalMoveError):
            naive_pebbling(g, red_pebbles=3)

    def test_io_at_least_inputs_plus_outputs(self):
        g = CDAG()
        g.add_edge("a", "c")
        g.add_edge("b", "c")
        result = naive_pebbling(g, red_pebbles=4)
        # Two inputs loaded, one output stored.
        assert result.loads == 2
        assert result.stores == 1
