"""Tests for the analytic Table 3 cost formulas."""

import math

import pytest

from repro.baselines.costs import (
    evolution_table,
    io_cost_25d,
    io_cost_2d,
    io_cost_3d,
    io_cost_carma,
    io_cost_cosma,
    io_cost_naive_1d,
    latency_cost_25d,
    latency_cost_2d,
    latency_cost_carma,
    latency_cost_cosma,
    replication_factor_25d,
)


class Test2D:
    def test_square_case_matches_table3(self):
        """Table 3, square matrices: the leading term of Q_2D is 2 n^2 / sqrt(p)."""
        n, p = 4096, 64
        expected_leading = 2 * n * n / math.sqrt(p)
        assert io_cost_2d(n, n, n, p) == pytest.approx(expected_leading, rel=0.07)
        # And the paper's full special-case expression agrees within 10%.
        assert io_cost_2d(n, n, n, p) == pytest.approx(2 * n * n * (math.sqrt(p) + 1) / p, rel=0.1)

    def test_independent_of_memory(self):
        # The 2D cost formula ignores extra memory: same value for any S.
        assert io_cost_2d(512, 512, 512, 16) == io_cost_2d(512, 512, 512, 16)

    def test_latency_grows_with_k(self):
        assert latency_cost_2d(64, 64, 4096, 16) > latency_cost_2d(64, 64, 64, 16)


class Test25D:
    def test_replication_factor_clamped(self):
        c = replication_factor_25d(4096, 4096, 4096, 64, 16)
        assert c == 1.0
        c_big = replication_factor_25d(64, 64, 64, 512, 1 << 24)
        assert c_big == pytest.approx(512 ** (1 / 3))

    def test_reduces_to_2d_without_extra_memory(self):
        m = n = k = 4096
        p = 64
        s = int((m * k + n * k) / p)  # c = 1
        assert io_cost_25d(m, n, k, p, s) == pytest.approx(
            k * (m + n) / math.sqrt(p) + m * n / p, rel=0.01
        )

    def test_beats_2d_with_extra_memory(self):
        m = n = k = 4096
        p = 512
        s = 8 * (m * k + n * k) // p  # room for c = 8 copies
        assert io_cost_25d(m, n, k, p, s) < io_cost_2d(m, n, k, p)

    def test_3d_is_25d_with_max_replication(self):
        m = n = k = 4096
        p = 512
        huge_s = 1 << 40
        assert io_cost_3d(m, n, k, p) == pytest.approx(io_cost_25d(m, n, k, p, huge_s), rel=0.01)

    def test_latency_positive(self):
        assert latency_cost_25d(4096, 4096, 4096, 64, 1 << 20) > 0


class TestCarma:
    def test_limited_memory_sqrt3_factor(self):
        """Section 6.2: CARMA's cubic domains cost ~sqrt(3) more than COSMA in the
        limited-memory regime (leading term)."""
        m = n = k = 8192
        p = 512
        s = (m * n + m * k + n * k) // p  # barely feasible: limited memory
        carma = io_cost_carma(m, n, k, p, s)
        cosma = io_cost_cosma(m, n, k, p, s)
        ratio = carma / cosma
        assert 1.2 < ratio < 2.1

    def test_extra_memory_close_to_cosma(self):
        m = n = k = 512
        p = 512
        s = 1 << 22
        ratio = io_cost_carma(m, n, k, p, s) / io_cost_cosma(m, n, k, p, s)
        assert ratio == pytest.approx(1.0, rel=0.01)

    def test_latency_positive(self):
        assert latency_cost_carma(4096, 4096, 4096, 64, 1 << 20) > 0


class TestCosmaCost:
    def test_never_worse_than_2d(self):
        m = n = k = 2048
        footprint = m * n + m * k + n * k
        for p in [16, 64, 256]:
            for factor in [1, 4, 16]:
                s = factor * footprint // p  # always feasible: p S >= footprint
                assert io_cost_cosma(m, n, k, p, s) <= io_cost_2d(m, n, k, p) * 1.01

    def test_never_worse_than_25d(self):
        for p in [16, 64, 256]:
            m = n = k = 2048
            s = 4 * (m * k + n * k) // p
            assert io_cost_cosma(m, n, k, p, s) <= io_cost_25d(m, n, k, p, s) * 1.01

    def test_never_worse_than_carma(self):
        for p in [16, 64, 256]:
            m, n, k = 256, 256, 65536
            s = 2 * (m * n + m * k + n * k) // p
            assert io_cost_cosma(m, n, k, p, s) <= io_cost_carma(m, n, k, p, s) * 1.01

    def test_tall_matrix_advantage_over_2d(self):
        """Table 3 "tall" case: 2D pays O(sqrt(p)) more than COSMA."""
        p = 4096
        m = n = int(math.sqrt(p))
        k = int(p ** 1.5 / 4)
        s = 2 * n * k // int(p ** (2 / 3))
        ratio = io_cost_2d(m, n, k, p) / io_cost_cosma(m, n, k, p, s)
        assert ratio > math.sqrt(p) / 4

    def test_latency_cosma_positive(self):
        assert latency_cost_cosma(4096, 4096, 4096, 64, 1 << 20) >= 1


class TestEvolution:
    def test_table_ordering_reflects_history(self):
        """Figure 2: the lineage naive -> 2D -> 2.5D -> CARMA -> COSMA is non-increasing."""
        m = n = k = 4096
        p = 512
        s = 4 * (m * k + n * k) // p
        table = evolution_table(m, n, k, p, s)
        assert table["naive-1D"] >= table["Cannon-2D"]
        assert table["Cannon-2D"] >= table["2.5D"] * 0.99
        assert table["2.5D"] >= table["COSMA"] * 0.99
        assert table["CARMA-recursive"] >= table["COSMA"] * 0.99
        assert table["COSMA"] == pytest.approx(table["lower-bound"])

    def test_naive_1d_needs_all_of_b(self):
        assert io_cost_naive_1d(64, 64, 64, 8) >= 64 * 64


class TestPredict:
    """The shared entry point the sweep aggregator (and CLI) goes through."""

    def _scenario(self):
        from repro.workloads.scaling import Scenario
        from repro.workloads.shapes import square_shape

        return Scenario(name="s", shape=square_shape(512), p=64, memory_words=16384, regime="limited")

    def test_predict_matches_per_algorithm_formulas(self):
        from repro.baselines.costs import predict

        scenario = self._scenario()
        m = n = k = 512
        p, s = 64, 16384
        expected_io = {
            "COSMA": io_cost_cosma(m, n, k, p, s),
            "ScaLAPACK": io_cost_2d(m, n, k, p),
            "CTF": io_cost_25d(m, n, k, p, s),
            "CARMA": io_cost_carma(m, n, k, p, s),
            "Cannon": io_cost_2d(m, n, k, p),
        }
        for algorithm, expected in expected_io.items():
            prediction = predict(algorithm, scenario)
            assert prediction.io_words_per_rank == pytest.approx(expected)
            assert prediction.latency_rounds > 0
            assert prediction.flops_per_rank == pytest.approx(2 * m * n * k / p)

    def test_aliases_agree_with_harness_names(self):
        from repro.baselines.costs import predict

        scenario = self._scenario()
        assert predict("SUMMA", scenario).io_words_per_rank == predict("ScaLAPACK", scenario).io_words_per_rank
        assert predict("2D", scenario).io_words_per_rank == predict("ScaLAPACK", scenario).io_words_per_rank
        assert predict("2.5D", scenario).io_words_per_rank == predict("CTF", scenario).io_words_per_rank

    def test_unknown_algorithm_rejected(self):
        from repro.baselines.costs import predict

        with pytest.raises(KeyError):
            predict("MAGMA", self._scenario())

    def test_analytic_time_prices_the_prediction(self):
        from repro.baselines.costs import predict
        from repro.experiments.perf_model import analytic_time
        from repro.machine.topology import PIZ_DAINT_LIKE

        scenario = self._scenario()
        prediction = predict("COSMA", scenario)
        expected = PIZ_DAINT_LIKE.compute_time(prediction.flops_per_rank) + PIZ_DAINT_LIKE.communication_time(
            prediction.io_words_per_rank, prediction.latency_rounds
        )
        assert analytic_time(prediction) == pytest.approx(expected)
        assert analytic_time("COSMA", scenario) == pytest.approx(expected)
        with pytest.raises(ValueError):
            analytic_time("COSMA")
