"""Tests for the two-level memory hierarchy simulator."""

import pytest

from repro.machine.memory import (
    FastMemoryFullError,
    LRUCacheMemory,
    MemoryHierarchy,
)


class TestMemoryHierarchyBasics:
    def test_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(0)

    def test_load_counts(self):
        mem = MemoryHierarchy(4, initial_slow=["x"])
        mem.load("x")
        assert mem.stats.loads == 1
        assert mem.in_fast("x")

    def test_load_is_idempotent(self):
        mem = MemoryHierarchy(4, initial_slow=["x"])
        mem.load("x")
        mem.load("x")
        assert mem.stats.loads == 1

    def test_load_unknown_raises(self):
        mem = MemoryHierarchy(4)
        with pytest.raises(KeyError):
            mem.load("missing")

    def test_store_requires_resident(self):
        mem = MemoryHierarchy(4, initial_slow=["x"])
        with pytest.raises(KeyError):
            mem.store("x")

    def test_store_counts(self):
        mem = MemoryHierarchy(4, initial_slow=["x"])
        mem.load("x")
        mem.compute("y", operands=["x"])
        mem.store("y")
        assert mem.stats.stores == 1
        assert "y" in mem.in_slow

    def test_store_of_value_already_in_slow_is_free(self):
        mem = MemoryHierarchy(4, initial_slow=["x"])
        mem.load("x")
        mem.store("x")
        assert mem.stats.stores == 0

    def test_store_idempotent(self):
        mem = MemoryHierarchy(4, initial_slow=["x"])
        mem.load("x")
        mem.compute("y", operands=["x"])
        mem.store("y")
        mem.store("y")
        assert mem.stats.stores == 1

    def test_capacity_enforced(self):
        mem = MemoryHierarchy(2, initial_slow=["a", "b", "c"])
        mem.load("a")
        mem.load("b")
        with pytest.raises(FastMemoryFullError):
            mem.load("c")

    def test_evict_frees_space(self):
        mem = MemoryHierarchy(2, initial_slow=["a", "b", "c"])
        mem.load("a")
        mem.load("b")
        mem.evict("a")
        mem.load("c")
        assert mem.resident == frozenset({"b", "c"})

    def test_compute_requires_resident_operands(self):
        mem = MemoryHierarchy(4, initial_slow=["a", "b"])
        mem.load("a")
        with pytest.raises(FastMemoryFullError):
            mem.compute("c", operands=["a", "b"])

    def test_compute_creates_result(self):
        mem = MemoryHierarchy(4, initial_slow=["a", "b"])
        mem.load_many(["a", "b"])
        mem.compute("c", operands=["a", "b"])
        assert mem.in_fast("c")
        assert mem.stats.computes == 1

    def test_peak_resident_tracked(self):
        mem = MemoryHierarchy(5, initial_slow=["a", "b", "c"])
        mem.load_many(["a", "b", "c"])
        mem.evict_many(["a", "b", "c"])
        assert mem.stats.peak_resident == 3

    def test_io_is_loads_plus_stores(self):
        mem = MemoryHierarchy(4, initial_slow=["a", "b"])
        mem.load("a")
        mem.load("b")
        mem.compute("c", operands=["a", "b"])
        mem.store("c")
        assert mem.stats.io == 3

    def test_discard_slow_removes_blue(self):
        mem = MemoryHierarchy(4, initial_slow=["a"])
        mem.discard_slow("a")
        with pytest.raises(KeyError):
            mem.load("a")

    def test_free_words(self):
        mem = MemoryHierarchy(3, initial_slow=["a"])
        assert mem.free_words() == 3
        mem.load("a")
        assert mem.free_words() == 2


class TestLRUCacheMemory:
    def test_requires_positive_capacity(self):
        with pytest.raises(ValueError):
            LRUCacheMemory(0)

    def test_miss_then_hit(self):
        cache = LRUCacheMemory(2)
        assert cache.access("a") is False
        assert cache.access("a") is True
        assert cache.stats.loads == 1

    def test_eviction_order_is_lru(self):
        cache = LRUCacheMemory(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # refresh a; b is now LRU
        cache.access("c")  # evicts b
        assert cache.access("a") is True
        assert cache.access("b") is False

    def test_dirty_eviction_counts_store(self):
        cache = LRUCacheMemory(1)
        cache.write("a")
        cache.access("b")  # evicts dirty a
        assert cache.stats.stores == 1

    def test_clean_eviction_no_store(self):
        cache = LRUCacheMemory(1)
        cache.access("a")
        cache.access("b")
        assert cache.stats.stores == 0

    def test_flush_writes_dirty_lines(self):
        cache = LRUCacheMemory(4)
        cache.write("a")
        cache.write("b")
        cache.access("c")
        cache.flush()
        assert cache.stats.stores == 2

    def test_flush_is_idempotent(self):
        cache = LRUCacheMemory(4)
        cache.write("a")
        cache.flush()
        cache.flush()
        assert cache.stats.stores == 1

    def test_peak_resident(self):
        cache = LRUCacheMemory(3)
        for key in "abc":
            cache.access(key)
        assert cache.stats.peak_resident == 3

    def test_working_set_within_capacity_no_capacity_misses(self):
        cache = LRUCacheMemory(8)
        for _ in range(5):
            for key in "abcd":
                cache.access(key)
        assert cache.stats.loads == 4
