"""Tests for repro.utils.intmath."""

import math

import pytest

from repro.utils.intmath import (
    all_factorizations_3d,
    ceil_div,
    closest_divisor,
    divisors,
    factorize,
    isqrt_floor,
    nearly_equal,
    prod,
    round_to_multiple,
    split_evenly,
    split_offsets,
)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(10, 5) == 2

    def test_rounds_up(self):
        assert ceil_div(10, 3) == 4

    def test_zero_numerator(self):
        assert ceil_div(0, 7) == 0

    def test_one(self):
        assert ceil_div(1, 100) == 1

    def test_rejects_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(3, 0)

    def test_rejects_negative_numerator(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 2)


class TestProd:
    def test_empty(self):
        assert prod([]) == 1

    def test_values(self):
        assert prod([2, 3, 4]) == 24


class TestIsqrtFloor:
    def test_perfect_square(self):
        assert isqrt_floor(49) == 7

    def test_non_square(self):
        assert isqrt_floor(50) == 7

    def test_zero(self):
        assert isqrt_floor(0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            isqrt_floor(-1)


class TestFactorize:
    def test_prime(self):
        assert factorize(13) == {13: 1}

    def test_composite(self):
        assert factorize(360) == {2: 3, 3: 2, 5: 1}

    def test_one(self):
        assert factorize(1) == {}

    def test_reconstructs(self):
        n = 98280
        factors = factorize(n)
        reconstructed = 1
        for prime, exponent in factors.items():
            reconstructed *= prime ** exponent
        assert reconstructed == n

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            factorize(0)


class TestDivisors:
    def test_twelve(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]

    def test_prime(self):
        assert divisors(17) == [1, 17]

    def test_one(self):
        assert divisors(1) == [1]

    def test_perfect_square(self):
        assert divisors(36) == [1, 2, 3, 4, 6, 9, 12, 18, 36]

    def test_all_divide(self):
        n = 720
        assert all(n % d == 0 for d in divisors(n))

    def test_sorted(self):
        ds = divisors(5040)
        assert ds == sorted(ds)


class TestAllFactorizations3D:
    def test_count_for_prime(self):
        # For a prime p there are exactly 3 ordered triples.
        triples = list(all_factorizations_3d(7))
        assert len(triples) == 3
        assert all(a * b * c == 7 for a, b, c in triples)

    def test_products_correct(self):
        for triple in all_factorizations_3d(24):
            assert triple[0] * triple[1] * triple[2] == 24

    def test_includes_identity_like(self):
        assert (1, 1, 8) in set(all_factorizations_3d(8))
        assert (2, 2, 2) in set(all_factorizations_3d(8))

    def test_no_duplicates(self):
        triples = list(all_factorizations_3d(64))
        assert len(triples) == len(set(triples))


class TestSplitEvenly:
    def test_even(self):
        assert split_evenly(10, 5) == [2, 2, 2, 2, 2]

    def test_uneven(self):
        assert split_evenly(10, 3) == [4, 3, 3]

    def test_more_parts_than_items(self):
        assert split_evenly(2, 4) == [1, 1, 0, 0]

    def test_sum_preserved(self):
        for extent in range(0, 25):
            for parts in range(1, 8):
                assert sum(split_evenly(extent, parts)) == extent

    def test_max_difference_one(self):
        sizes = split_evenly(17, 5)
        assert max(sizes) - min(sizes) <= 1

    def test_offsets_cover_range(self):
        offsets = split_offsets(17, 4)
        assert offsets[0][0] == 0
        assert offsets[-1][1] == 17
        for (_, stop), (start, _) in zip(offsets, offsets[1:]):
            assert stop == start


class TestRoundToMultiple:
    def test_round_up(self):
        assert round_to_multiple(10, 4, up=True) == 12

    def test_round_down(self):
        assert round_to_multiple(10, 4, up=False) == 8

    def test_already_multiple(self):
        assert round_to_multiple(12, 4) == 12


class TestClosestDivisor:
    def test_exact(self):
        assert closest_divisor(12, 4) == 4

    def test_between(self):
        assert closest_divisor(12, 5) == 4  # ties resolved downward

    def test_above_max(self):
        assert closest_divisor(12, 100) == 12


class TestNearlyEqual:
    def test_equal(self):
        assert nearly_equal(1.0, 1.0 + 1e-12)

    def test_not_equal(self):
        assert not nearly_equal(1.0, 1.1)


class TestMathSanity:
    def test_divisor_count_matches_factorization(self):
        n = 3600
        factors = factorize(n)
        expected = math.prod(e + 1 for e in factors.values())
        assert len(divisors(n)) == expected
