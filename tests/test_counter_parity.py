"""Counter-parity regression tests for the execution modes.

The whole point of the fast-path transports is that the *numbers the paper
reports* -- words, messages, rounds, the input/output split -- are a function
of payload shapes only.  Every algorithm must therefore produce byte-identical
per-rank :class:`~repro.machine.counters.RankCounters` under legacy, zerocopy
and volume transports on every scenario.
"""

import pytest

from repro.experiments.harness import ALGORITHMS, run_algorithm
from repro.machine.counters import ConservationError
from repro.machine.simulator import DistributedMachine
from repro.machine.transport import MODES, ShapeToken
from repro.workloads.scaling import (
    Scenario,
    extra_memory_sweep,
    limited_memory_sweep,
    strong_scaling_sweep,
)
from repro.workloads.shapes import square_shape


def _per_rank_counters(name: str, scenario: Scenario, mode: str):
    machine = DistributedMachine(scenario.p, memory_words=scenario.memory_words, mode=mode)
    if mode == "volume":
        a, b = ShapeToken((scenario.shape.m, scenario.shape.k)), ShapeToken(
            (scenario.shape.k, scenario.shape.n)
        )
    else:
        a, b = scenario.shape.random_matrices(seed=0)
    ALGORITHMS[name](a, b, scenario, machine)
    return [rank.counters.copy() for rank in machine.ranks]


SCENARIO_GRID = (
    limited_memory_sweep("square", [4, 9], 2048)
    + limited_memory_sweep("largeK", [4], 2048)
    + extra_memory_sweep("square", [16], 2048)
    + strong_scaling_sweep(square_shape(48), [8])
)


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
@pytest.mark.parametrize("scenario", SCENARIO_GRID, ids=lambda s: s.name)
def test_counters_identical_across_modes(name, scenario):
    reference = _per_rank_counters(name, scenario, "legacy")
    assert any(c.total_words > 0 for c in reference), "scenario moved no data at all"
    for mode in MODES[1:]:
        counters = _per_rank_counters(name, scenario, mode)
        assert counters == reference, f"{name} counters diverge in {mode} mode"


@pytest.mark.parametrize("mode", MODES)
def test_harness_runs_and_conserves_in_every_mode(mode):
    scenario = limited_memory_sweep("square", [4], 2048)[0]
    run = run_algorithm("COSMA", scenario, mode=mode)
    assert run.mode == mode
    assert run.correct
    assert run.verified == (mode != "volume")
    assert run.mean_words_per_rank > 0


def test_volume_mode_flops_match_legacy():
    scenario = limited_memory_sweep("square", [9], 2048)[0]
    legacy = run_algorithm("COSMA", scenario, mode="legacy")
    volume = run_algorithm("COSMA", scenario, mode="volume")
    assert volume.total_flops == legacy.total_flops
    assert volume.max_flops_per_rank == legacy.max_flops_per_rank


class TestConservationAssertion:
    """The harness must refuse runs whose sent/received totals disagree."""

    def test_harness_raises_on_unbalanced_counters(self):
        def leaky(a, b, scenario, machine):
            machine.rank(0).counters.words_sent += 5  # sent but never received
            return a @ b if not isinstance(a, ShapeToken) else a

        ALGORITHMS["_leaky"] = leaky
        try:
            scenario = limited_memory_sweep("square", [4], 2048)[0]
            with pytest.raises(ConservationError):
                run_algorithm("_leaky", scenario, verify=False)
        finally:
            del ALGORITHMS["_leaky"]

    def test_harness_passes_balanced_runs(self):
        scenario = limited_memory_sweep("square", [4], 2048)[0]
        run = run_algorithm("COSMA", scenario)
        assert run.correct


def test_volume_mode_reaches_scales_legacy_cannot():
    """A quick paper-direction scale check kept small enough for CI: p = 256.

    (The full p = 1024, 4096^3 demonstration lives in
    ``benchmarks/bench_simulator_fastpath.py``.)
    """
    scenario = Scenario(
        name="square-volume-p256",
        shape=square_shape(512),
        p=256,
        memory_words=8192,
        regime="limited",
    )
    run = run_algorithm("COSMA", scenario, mode="volume")
    assert run.total_flops >= 2 * 512**3
    assert run.mean_words_per_rank > 0
