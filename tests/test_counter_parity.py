"""Counter- and numeric-parity regression tests for the execution modes.

The whole point of the fast-path transports is that the *numbers the paper
reports* -- words, messages, rounds, the input/output split -- are a function
of payload shapes only.  Every algorithm must therefore produce byte-identical
per-rank :class:`~repro.machine.counters.RankCounters` under legacy, zerocopy,
plane and volume transports on every scenario; the numeric modes (legacy,
zerocopy, plane) must additionally agree on the product itself -- the plane
engine's stacked GEMMs associate sums differently, so its products are
``np.allclose`` to the reference rather than bitwise equal.
"""

import numpy as np
import pytest

from repro.experiments.harness import ALGORITHMS, run_algorithm
from repro.machine.counters import ConservationError
from repro.machine.simulator import DistributedMachine
from repro.machine.transport import MODES, NUMERIC_MODES, ShapeToken
from repro.workloads.scaling import (
    Scenario,
    extra_memory_sweep,
    limited_memory_sweep,
    strong_scaling_sweep,
)
from repro.workloads.shapes import square_shape


def _run_mode(name: str, scenario: Scenario, mode: str):
    """Per-rank counters, the product, and the peak footprint of one run."""
    machine = DistributedMachine(scenario.p, memory_words=scenario.memory_words, mode=mode)
    if mode == "volume":
        a, b = ShapeToken((scenario.shape.m, scenario.shape.k)), ShapeToken(
            (scenario.shape.k, scenario.shape.n)
        )
    else:
        a, b = scenario.shape.random_matrices(seed=0)
    product = ALGORITHMS[name](a, b, scenario, machine)
    counters = [rank.counters.copy() for rank in machine.ranks]
    return counters, product, machine.peak_resident_words


def _per_rank_counters(name: str, scenario: Scenario, mode: str):
    return _run_mode(name, scenario, mode)[0]


SCENARIO_GRID = (
    limited_memory_sweep("square", [4, 9], 2048)
    + limited_memory_sweep("largeK", [4], 2048)
    + extra_memory_sweep("square", [16], 2048)
    + strong_scaling_sweep(square_shape(48), [8])
)


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
@pytest.mark.parametrize("scenario", SCENARIO_GRID, ids=lambda s: s.name)
def test_counters_identical_across_modes(name, scenario):
    reference = _per_rank_counters(name, scenario, "legacy")
    assert any(c.total_words > 0 for c in reference), "scenario moved no data at all"
    for mode in MODES[1:]:
        counters = _per_rank_counters(name, scenario, mode)
        assert counters == reference, f"{name} counters diverge in {mode} mode"


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
@pytest.mark.parametrize("scenario", SCENARIO_GRID, ids=lambda s: s.name)
def test_numeric_modes_agree_with_reference_product(name, scenario):
    """Every numeric mode's product must match A @ B; counters stay identical.

    This is the plane engine's core contract: full result verification with
    counters byte-for-byte equal to the per-hop reference execution.
    """
    a, b = scenario.shape.random_matrices(seed=0)
    expected = a @ b
    reference_counters, reference_product, reference_peak = _run_mode(
        name, scenario, "legacy"
    )
    assert np.allclose(reference_product, expected, atol=1e-8 * scenario.shape.k)
    for mode in NUMERIC_MODES[1:]:
        counters, product, peak = _run_mode(name, scenario, mode)
        assert np.allclose(product, expected, atol=1e-8 * scenario.shape.k), (
            f"{name} product diverges from A @ B in {mode} mode"
        )
        assert np.allclose(product, reference_product, atol=1e-8 * scenario.shape.k), (
            f"{name} product diverges from the legacy product in {mode} mode"
        )
        assert counters == reference_counters
        assert peak == reference_peak, f"{name} peak footprint diverges in {mode} mode"


@pytest.mark.parametrize("mode", MODES)
def test_harness_runs_and_conserves_in_every_mode(mode):
    scenario = limited_memory_sweep("square", [4], 2048)[0]
    run = run_algorithm("COSMA", scenario, mode=mode)
    assert run.mode == mode
    assert run.correct
    assert run.verified == (mode != "volume")
    assert run.mean_words_per_rank > 0


def test_volume_mode_flops_match_legacy():
    scenario = limited_memory_sweep("square", [9], 2048)[0]
    legacy = run_algorithm("COSMA", scenario, mode="legacy")
    volume = run_algorithm("COSMA", scenario, mode="volume")
    assert volume.total_flops == legacy.total_flops
    assert volume.max_flops_per_rank == legacy.max_flops_per_rank


class TestConservationAssertion:
    """The harness must refuse runs whose sent/received totals disagree."""

    def test_harness_raises_on_unbalanced_counters(self):
        def leaky(a, b, scenario, machine):
            machine.rank(0).counters.words_sent += 5  # sent but never received
            return a @ b if not isinstance(a, ShapeToken) else a

        ALGORITHMS["_leaky"] = leaky
        try:
            scenario = limited_memory_sweep("square", [4], 2048)[0]
            with pytest.raises(ConservationError):
                run_algorithm("_leaky", scenario, verify=False)
        finally:
            del ALGORITHMS["_leaky"]

    def test_harness_passes_balanced_runs(self):
        scenario = limited_memory_sweep("square", [4], 2048)[0]
        run = run_algorithm("COSMA", scenario)
        assert run.correct


class TestPlaneEngine:
    """Plane-mode specifics: registered planes, verified harness runs."""

    def test_cosma_registers_operand_planes(self):
        scenario = limited_memory_sweep("square", [9], 2048)[0]
        machine = DistributedMachine(
            scenario.p, memory_words=scenario.memory_words, mode="plane"
        )
        a, b = scenario.shape.random_matrices(seed=0)
        ALGORITHMS["COSMA"](a, b, scenario, machine)
        assert set(machine.planes) == {"cosma.A", "cosma.B", "cosma.C"}
        # The C plane stacks one sheet per k-layer; ranks hold views into it.
        c_plane = machine.get_plane("cosma.C")
        assert c_plane.data.shape[1:] == (scenario.shape.m, scenario.shape.n)
        rank = c_plane.attached_ranks()[0]
        assert np.shares_memory(c_plane.block(rank), c_plane.data)

    def test_plane_harness_run_is_verified(self):
        scenario = limited_memory_sweep("square", [9], 2048)[0]
        run = run_algorithm("COSMA", scenario, mode="plane")
        assert run.mode == "plane"
        assert run.verified and run.correct
        volume = run_algorithm("COSMA", scenario, mode="volume")
        assert run.mean_words_per_rank == volume.mean_words_per_rank
        assert run.total_flops == volume.total_flops

    def test_plane_machine_reuse_accumulates_like_other_modes(self):
        """A second run on the same plane-mode machine supersedes its planes."""
        scenario = limited_memory_sweep("square", [4], 2048)[0]
        machine = DistributedMachine(
            scenario.p, memory_words=scenario.memory_words, mode="plane"
        )
        a, b = scenario.shape.random_matrices(seed=0)
        ALGORITHMS["COSMA"](a, b, scenario, machine)
        once = machine.counters.total_words_sent
        product = ALGORITHMS["COSMA"](a, b, scenario, machine)
        assert machine.counters.total_words_sent == 2 * once
        assert np.allclose(product, a @ b, atol=1e-8 * scenario.shape.k)

    def test_unported_algorithm_falls_back_transparently(self):
        """An extension registered without a plane path must run unchanged."""
        import repro.extensions.allgather  # noqa: F401 - self-registers

        scenario = limited_memory_sweep("square", [4], 4096)[0]
        legacy = run_algorithm("AllGather1D", scenario, mode="legacy")
        plane = run_algorithm("AllGather1D", scenario, mode="plane")
        assert plane.correct and plane.verified
        assert plane.mean_words_per_rank == legacy.mean_words_per_rank
        assert plane.rounds == legacy.rounds


class TestShardedPlane:
    """Sharded plane engine: counters byte-identical, products allclose.

    Sharding is an execution policy -- the parent posts every counter on the
    :class:`~repro.machine.counters.CounterMatrix` path before any worker
    runs, so any shard count (including uneven splits of the participant
    axis) must reproduce the unsharded counters byte-for-byte and a product
    ``np.allclose`` to both the unsharded plane product and ``A @ B``.
    """

    SCENARIO = limited_memory_sweep("square", [9], 2048)[0]

    def _run_sharded(self, name, scenario, shards, plane_dtype="float64"):
        machine = DistributedMachine(
            scenario.p, memory_words=scenario.memory_words, mode="plane",
            shards=shards, plane_dtype=plane_dtype,
        )
        a, b = scenario.shape.random_matrices(seed=0)
        product = ALGORITHMS[name](a, b, scenario, machine)
        counters = [rank.counters.copy() for rank in machine.ranks]
        return counters, product, machine.peak_resident_words

    def test_shards_one_is_bit_identical_to_plane_engine(self):
        """``shards=1`` must be the exact in-process engine, not a near miss."""
        counters, product, peak = self._run_sharded("COSMA", self.SCENARIO, 1)
        reference_counters, reference_product, reference_peak = _run_mode(
            "COSMA", self.SCENARIO, "plane"
        )
        assert np.array_equal(product, reference_product)  # bitwise
        assert counters == reference_counters
        assert peak == reference_peak

    @pytest.mark.parametrize("shards", [1, 2, 3, 7])
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_sharded_parity_for_every_planar_algorithm(self, name, shards):
        scenario = self.SCENARIO
        reference_counters, reference_product, reference_peak = _run_mode(
            name, scenario, "plane"
        )
        counters, product, peak = self._run_sharded(name, scenario, shards)
        a, b = scenario.shape.random_matrices(seed=0)
        tol = 1e-8 * scenario.shape.k
        assert np.allclose(product, a @ b, atol=tol), (
            f"{name} sharded ({shards}) product diverges from A @ B"
        )
        assert np.allclose(product, reference_product, atol=tol), (
            f"{name} sharded ({shards}) product diverges from the unsharded plane"
        )
        assert counters == reference_counters, (
            f"{name} counters drift under shards={shards}"
        )
        assert peak == reference_peak

    def test_uneven_split_covers_every_row(self):
        """7 shards over a 48-row output forces uneven stripes; no row may drop."""
        from repro.machine.shard import split_offsets

        offsets = split_offsets(48, 7)
        assert offsets[0] == (0, 7) and offsets[-1] == (42, 48)
        assert [hi - lo for lo, hi in offsets] == [7, 7, 7, 7, 7, 7, 6]
        covered = sorted(r for lo, hi in offsets for r in range(lo, hi))
        assert covered == list(range(48))

    def test_sigkilled_worker_surfaces_structured_error(self):
        """A SIGKILLed shard worker must raise ShardWorkerError, never hang."""
        import os
        import signal

        from repro.machine.shard import ShardPool, ShardWorkerError

        pool = ShardPool(2)
        try:
            pool.share_zeros("a", (4, 4), np.float64)
            pool.share_zeros("b", (4, 4), np.float64)
            pool.share_zeros("out", (4, 4), np.float64)
            victim = pool._procs[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)
            specs = [
                {"a": "a", "b": "b", "out": "out", "rows": [lo, hi]}
                for lo, hi in ((0, 2), (2, 4))
            ]
            with pytest.raises(ShardWorkerError) as excinfo:
                pool.run("gemm_rows", specs)
            assert excinfo.value.shard == 1
            assert excinfo.value.exitcode == -signal.SIGKILL
            assert pool.broken
            with pytest.raises(ShardWorkerError):
                pool.run("gemm_rows", specs)  # poisoned pools refuse work
        finally:
            pool.shutdown()

    def test_kernel_exception_surfaces_structured_error(self):
        from repro.machine.shard import ShardPool, ShardWorkerError

        pool = ShardPool(2)
        try:
            pool.share_zeros("a", (4, 4), np.float64)
            with pytest.raises(ShardWorkerError, match="KeyError"):
                # spec references a segment that was never shared
                pool.run("gemm_rows", [
                    {"a": "a", "b": "missing", "out": "a", "rows": [0, 2]},
                    {"a": "a", "b": "missing", "out": "a", "rows": [2, 4]},
                ])
        finally:
            pool.shutdown()


class TestPlaneDtype:
    """The opt-in float32 plane dtype, end to end."""

    SCENARIO = limited_memory_sweep("square", [9], 2048)[0]

    def test_float32_plane_never_roundtrips_through_float64(self):
        """A float32 input must flow into the planes without a float64 copy."""
        scenario = self.SCENARIO
        machine = DistributedMachine(
            scenario.p, memory_words=scenario.memory_words, mode="plane",
            plane_dtype="float32",
        )
        a, b = scenario.shape.random_matrices(seed=0)
        a32 = np.ascontiguousarray(a, dtype=np.float32)
        b32 = np.ascontiguousarray(b, dtype=np.float32)
        product = ALGORITHMS["COSMA"](a32, b32, scenario, machine)
        assert product.dtype == np.float32
        a_plane = machine.get_plane("cosma.A")
        assert a_plane.data.dtype == np.float32
        # Shared memory proves no dtype conversion (a float64 round-trip
        # would have allocated a new buffer).
        assert np.shares_memory(a_plane.data, a32)
        assert machine.get_plane("cosma.C").data.dtype == np.float32

    def test_local_multiply_keeps_float32_operands_float32(self):
        machine = DistributedMachine(2, memory_words=4096, plane_dtype="float32")
        a = np.ones((4, 3), dtype=np.float32)
        b = np.ones((3, 5), dtype=np.float32)
        assert machine.local_multiply(0, a, b).dtype == np.float32
        # Mixed operands still normalize to the float64 reference path.
        assert machine.local_multiply(0, a, b.astype(np.float64)).dtype == np.float64

    @pytest.mark.parametrize("shards", [1, 2])
    def test_float32_counters_match_float64(self, shards):
        """Words are elements, not bytes: counters are dtype-independent."""
        scenario = self.SCENARIO
        runs = {}
        for dtype in ("float64", "float32"):
            machine = DistributedMachine(
                scenario.p, memory_words=scenario.memory_words, mode="plane",
                shards=shards, plane_dtype=dtype,
            )
            a, b = scenario.shape.random_matrices(seed=0)
            product = ALGORITHMS["COSMA"](a, b, scenario, machine)
            runs[dtype] = ([r.counters.copy() for r in machine.ranks], product)
        assert runs["float32"][0] == runs["float64"][0]
        assert np.allclose(
            runs["float32"][1], runs["float64"][1],
            rtol=1e-4, atol=1e-6 * scenario.shape.k,
        )

    def test_harness_verifies_float32_at_relative_tolerance(self):
        run = run_algorithm("COSMA", self.SCENARIO, mode="plane", plane_dtype="float32")
        assert run.verified and run.correct

    def test_unknown_plane_dtype_rejected(self):
        with pytest.raises(ValueError, match="unsupported plane dtype"):
            DistributedMachine(2, memory_words=4096, plane_dtype="int32")


def test_volume_mode_reaches_scales_legacy_cannot():
    """A quick paper-direction scale check kept small enough for CI: p = 256.

    (The full p = 1024, 4096^3 demonstration lives in
    ``benchmarks/bench_simulator_fastpath.py``.)
    """
    scenario = Scenario(
        name="square-volume-p256",
        shape=square_shape(512),
        p=256,
        memory_words=8192,
        regime="limited",
    )
    run = run_algorithm("COSMA", scenario, mode="volume")
    assert run.total_flops >= 2 * 512**3
    assert run.mean_words_per_rank > 0
