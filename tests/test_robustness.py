"""Robustness and failure-injection tests across modules.

These tests exercise the error paths a downstream user is most likely to hit:
inconsistent shapes, impossible memory budgets, degenerate problem sizes, and
the memory-enforcement mode of the simulator.
"""

import numpy as np
import pytest

from repro import multiply
from repro.baselines.cannon import cannon_multiply
from repro.baselines.carma import carma_multiply
from repro.baselines.grid25d import grid25d_multiply
from repro.baselines.summa import summa_multiply
from repro.core.cosma import cosma_multiply
from repro.core.decomposition import build_decomposition
from repro.machine.simulator import DistributedMachine, LocalMemoryExceededError
from repro.sequential import tiled_multiply


class TestDegenerateShapes:
    """1-wide and 1-deep matrices must work in every algorithm."""

    @pytest.mark.parametrize("shape", [(1, 1, 1), (1, 8, 4), (8, 1, 4), (8, 4, 1)])
    def test_cosma(self, rng, shape):
        m, n, k = shape
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        result = cosma_multiply(a, b, 4, memory_words=4096)
        assert np.allclose(result.matrix, a @ b)

    @pytest.mark.parametrize("shape", [(1, 1, 1), (1, 8, 4), (8, 1, 4), (8, 4, 1)])
    def test_baselines(self, rng, shape):
        m, n, k = shape
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        for fn in (summa_multiply, cannon_multiply, carma_multiply):
            result = fn(a, b, 4)
            assert np.allclose(result.matrix, a @ b), fn.__name__
        result = grid25d_multiply(a, b, 4, memory_words=4096)
        assert np.allclose(result.matrix, a @ b)

    def test_sequential_one_element(self, rng):
        a = rng.standard_normal((1, 1))
        b = rng.standard_normal((1, 1))
        result = tiled_multiply(a, b, memory_words=8)
        assert np.allclose(result.matrix, a @ b)

    def test_more_processors_than_work(self, rng):
        a = rng.standard_normal((2, 2))
        b = rng.standard_normal((2, 2))
        result = cosma_multiply(a, b, 64, memory_words=4096)
        assert np.allclose(result.matrix, a @ b)
        assert result.decomposition.p_used <= 8


class TestMemoryEnforcement:
    def test_cosma_within_budget_passes_enforcement(self, rng):
        m = n = k = 32
        s = 4096
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        machine = DistributedMachine(8, memory_words=s, enforce_memory=True)
        result = cosma_multiply(a, b, 8, memory_words=s, machine=machine)
        assert np.allclose(result.matrix, a @ b)
        assert machine.peak_resident_words <= s

    def test_enforcement_trips_when_budget_absurd(self, rng):
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        machine = DistributedMachine(2, memory_words=16, enforce_memory=True)
        with pytest.raises(LocalMemoryExceededError):
            cosma_multiply(a, b, 2, memory_words=16, machine=machine)

    def test_peak_usage_reported_without_enforcement(self, rng):
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        machine = DistributedMachine(4, memory_words=1 << 20)
        cosma_multiply(a, b, 4, memory_words=1 << 20, machine=machine)
        assert machine.peak_resident_words > 0


class TestInputValidation:
    def test_multiply_rejects_mismatched_inner_dims(self, rng):
        with pytest.raises(ValueError):
            multiply(rng.standard_normal((4, 3)), rng.standard_normal((4, 4)), 2, 1024)

    def test_decomposition_rejects_nonpositive_memory(self):
        with pytest.raises(ValueError):
            build_decomposition(8, 8, 8, 4, 0)

    def test_summa_rejects_zero_processors(self, rng):
        with pytest.raises(ValueError):
            summa_multiply(rng.standard_normal((4, 4)), rng.standard_normal((4, 4)), 0)

    def test_cannon_rejects_zero_processors(self, rng):
        with pytest.raises(ValueError):
            cannon_multiply(rng.standard_normal((4, 4)), rng.standard_normal((4, 4)), 0)


class TestDeterminism:
    def test_cosma_volume_is_deterministic(self, rng):
        a = rng.standard_normal((24, 24))
        b = rng.standard_normal((24, 24))
        first = cosma_multiply(a, b, 6, memory_words=2048)
        second = cosma_multiply(a, b, 6, memory_words=2048)
        assert first.counters.total_words_sent == second.counters.total_words_sent
        assert first.grid.as_tuple() == second.grid.as_tuple()

    def test_harness_runs_are_reproducible(self):
        from repro.experiments.harness import run_algorithm
        from repro.workloads.scaling import Scenario
        from repro.workloads.shapes import square_shape

        scenario = Scenario("det", square_shape(24), 4, 2048, "strong")
        run1 = run_algorithm("COSMA", scenario, seed=7)
        run2 = run_algorithm("COSMA", scenario, seed=7)
        assert run1.mean_words_per_rank == run2.mean_words_per_rank
        assert run1.total_flops == run2.total_flops
