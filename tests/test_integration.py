"""Cross-module integration tests: the paper's headline claims at laptop scale."""

import pytest

from repro.baselines.costs import io_cost_25d, io_cost_2d, io_cost_carma, io_cost_cosma
from repro.experiments.harness import DEFAULT_ALGORITHMS, run_scenario, sweep
from repro.experiments.perf_model import simulated_time
from repro.experiments.report import group_by_scenario, volume_series
from repro.pebbling.game import PebbleGame
from repro.pebbling.mmm_bounds import sequential_io_lower_bound, sequential_optimality_ratio
from repro.pebbling.mmm_cdag import build_mmm_cdag
from repro.pebbling.mmm_schedule import sequential_mmm_schedule
from repro.sequential import tiled_multiply
from repro.workloads.scaling import Scenario, extra_memory_sweep, limited_memory_sweep
from repro.workloads.shapes import flat_shape, large_k_shape, square_shape


class TestSequentialOptimality:
    """Theorem 1 / Listing 1: the sequential schedule is near I/O optimal."""

    def test_measured_io_within_ratio_of_bound(self):
        m = n = k = 16
        s = 38
        mmm = build_mmm_cdag(m, n, k)
        schedule = sequential_mmm_schedule(m, n, k, s)
        game = PebbleGame(mmm.cdag, red_pebbles=schedule.required_red_pebbles())
        result = game.run(schedule.as_pebbling_moves())
        assert result.complete
        bound = sequential_io_lower_bound(m, n, k, s)
        # The schedule's actual memory usage is close to S; its I/O must be
        # within a modest constant of the bound at this small scale.
        assert result.io <= 2.0 * bound

    def test_optimality_ratio_improves_with_memory(self):
        # The paper: 0.03% above the bound for 10 MB of fast memory.
        assert sequential_optimality_ratio(64) > sequential_optimality_ratio(1 << 20)
        assert sequential_optimality_ratio(10 * 1024 * 1024 // 8) < 1.001

    def test_numeric_kernel_io_tracks_bound_across_memory_sizes(self, rng):
        m = n = k = 32
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        ratios = []
        for s in [32, 64, 128, 256]:
            run = tiled_multiply(a, b, memory_words=s)
            ratios.append(run.io / sequential_io_lower_bound(m, n, k, s))
        # The measured-to-bound ratio stays bounded and does not diverge.
        assert all(r < 2.5 for r in ratios)


class TestCommunicationComparison:
    """Figures 6-7 / Table 4: COSMA communicates the least in every regime."""

    @pytest.fixture(scope="class")
    def limited_runs(self):
        scenarios = limited_memory_sweep("square", [4, 9, 16], memory_words=2048)
        return sweep(scenarios, algorithms=DEFAULT_ALGORITHMS, seed=2)

    def test_all_algorithms_correct_everywhere(self, limited_runs):
        assert all(run.correct for run in limited_runs)

    def test_cosma_minimizes_received_volume(self, limited_runs):
        grouped = group_by_scenario(limited_runs)
        for by_algo in grouped.values():
            cosma = by_algo["COSMA"].mean_received_per_rank
            best_other = min(
                run.mean_received_per_rank for name, run in by_algo.items() if name != "COSMA"
            )
            assert cosma <= best_other * 1.15

    def test_volume_series_have_all_core_counts(self, limited_runs):
        series = volume_series(limited_runs)
        for points in series.values():
            assert [p for p, _ in points] == [4, 9, 16]

    def test_extra_memory_favors_cosma_over_scalapack(self):
        scenarios = extra_memory_sweep("square", [16], memory_words=4096)
        runs = run_scenario(scenarios[0], algorithms=("COSMA", "ScaLAPACK"), seed=3)
        assert (
            runs["COSMA"].mean_received_per_rank
            <= runs["ScaLAPACK"].mean_received_per_rank * 1.05
        )

    def test_tall_skinny_cosma_beats_2d_substantially(self):
        """The largeK scenario is where 2D algorithms lose badly (Figure 7)."""
        shape = large_k_shape(8, 2048)
        scenario = Scenario(
            name="largeK-strong-p16", shape=shape, p=16, memory_words=1 << 15, regime="strong"
        )
        runs = run_scenario(scenario, algorithms=("COSMA", "ScaLAPACK"), seed=4)
        assert runs["COSMA"].mean_received_per_rank < runs["ScaLAPACK"].mean_received_per_rank / 1.5

    def test_flat_shape_all_correct(self):
        shape = flat_shape(96, 8)
        scenario = Scenario(
            name="flat-strong-p8", shape=shape, p=8, memory_words=1 << 15, regime="strong"
        )
        runs = run_scenario(scenario, seed=5)
        assert all(run.correct for run in runs.values())


class TestPerformanceModelOrdering:
    """Figures 8-11: the simulated-runtime ordering favours COSMA."""

    def test_cosma_fastest_or_close_in_simulated_time(self):
        from repro.machine.topology import MachineSpec

        scenario = Scenario(
            name="square-strong-p9",
            shape=square_shape(36),
            p=9,
            memory_words=2048,
            regime="strong",
        )
        runs = run_scenario(scenario, seed=6)
        # Use a bandwidth-dominated spec: at the simulator's small matrix sizes
        # the per-message latency term would otherwise swamp the volume term
        # that dominates at the paper's scale.
        spec = MachineSpec(name="bandwidth-bound", network_latency_s=0.0)
        times = {name: simulated_time(run, spec, overlap=True) for name, run in runs.items()}
        assert times["COSMA"] <= min(times.values()) * 1.2


class TestAnalyticVsMeasured:
    """The analytic Table 3 model and the simulator agree on who wins."""

    def test_ordering_consistency_limited_memory(self):
        m = n = k = 48
        p = 16
        s = 2 * (m * n + m * k + n * k) // p
        analytic = {
            "COSMA": io_cost_cosma(m, n, k, p, s),
            "ScaLAPACK": io_cost_2d(m, n, k, p),
            "CTF": io_cost_25d(m, n, k, p, s),
            "CARMA": io_cost_carma(m, n, k, p, s),
        }
        scenario = Scenario(
            name="square-analytic-check",
            shape=square_shape(m),
            p=p,
            memory_words=s,
            regime="limited",
        )
        runs = run_scenario(scenario, seed=7)
        measured = {name: run.mean_received_per_rank for name, run in runs.items()}
        # The analytically-best algorithm (COSMA) is also the measured best.
        assert min(analytic, key=analytic.get) == "COSMA"
        assert measured["COSMA"] <= min(measured.values()) * 1.05
