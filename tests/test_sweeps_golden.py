"""Golden regression: registry-path counters must match the pre-registry values.

``tests/data/golden_sweep_rows.json`` holds the ``tidy_rows`` of the PR 2
reference campaign (square / limited, p in {4, 16, 36, 64}, 2048 words, all
five algorithms, volume mode, seed 0) captured *before* the algorithm
registry existed.  The refactor contract is byte-identical aggregation: any
drift in counters, predictions or run keys fails here first.
"""

import json
from pathlib import Path

import pytest

from repro.sweeps import SweepSpec, run_campaign, tidy_rows
from repro.sweeps.runner import execute_request
from repro.sweeps.spec import spec_from_scenarios
from repro.workloads.scaling import Scenario
from repro.workloads.shapes import square_shape

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_sweep_rows.json"


def reference_spec() -> SweepSpec:
    return SweepSpec(
        name="golden",
        algorithms=("COSMA", "ScaLAPACK", "CTF", "CARMA", "Cannon"),
        families=("square",),
        regimes=("limited",),
        p_values=(4, 16, 36, 64),
        memory_words=2048,
        mode="volume",
        seed=0,
    )


class TestGoldenRows:
    def test_tidy_rows_byte_identical_to_pre_registry_snapshot(self):
        rows = tidy_rows([execute_request(r) for r in reference_spec().expand()])
        golden = json.loads(GOLDEN_PATH.read_text())
        assert json.dumps(rows, sort_keys=True) == json.dumps(golden, sort_keys=True)

    def test_campaign_path_matches_snapshot_too(self, tmp_path):
        result = run_campaign(reference_spec(), store=tmp_path / "store", jobs=1)
        rows = tidy_rows(result.records)
        golden = json.loads(GOLDEN_PATH.read_text())
        assert json.dumps(rows, sort_keys=True) == json.dumps(golden, sort_keys=True)
        assert result.pruned == 0  # every reference point is feasible


class TestPlanPruning:
    @pytest.fixture
    def mixed_spec(self):
        feasible = Scenario(name="ok", shape=square_shape(16), p=4,
                            memory_words=1024, regime="limited")
        # 3 * 64^2 = 12288 words of footprint, 2 * 64 = 128 aggregate: no
        # parallel schedule can hold the inputs (section 6.3).
        infeasible = Scenario(name="too-small", shape=square_shape(64), p=2,
                              memory_words=64, regime="limited")
        return spec_from_scenarios([feasible, infeasible], algorithms=("COSMA",),
                                   mode="volume")

    def test_infeasible_points_are_pruned_not_executed(self, tmp_path, mixed_spec):
        result = run_campaign(mixed_spec, store=tmp_path / "store", jobs=1)
        assert result.pruned == 1
        assert result.executed == 1  # pruned points never reach a worker
        assert result.failed == 1
        [failed] = result.failed_records
        assert failed["error"]["type"] == "InfeasiblePlan"
        assert "footprint" in failed["error"]["message"]

    def test_pruned_records_are_cached_like_failures(self, tmp_path, mixed_spec):
        run_campaign(mixed_spec, store=tmp_path / "store", jobs=1)
        warm = run_campaign(mixed_spec, store=tmp_path / "store", jobs=1)
        assert (warm.executed, warm.cached, warm.pruned) == (0, 2, 0)

    def test_prune_false_executes_everything(self, tmp_path, mixed_spec):
        result = run_campaign(mixed_spec, store=tmp_path / "store", jobs=1,
                              prune=False)
        assert result.pruned == 0
        assert result.executed == 2
