"""Tests for the general lower-bound machinery (Lemmas 1-4)."""

import pytest

from repro.pebbling.bounds import (
    analyze_partition,
    computational_intensity,
    generalized_lower_bound,
    hong_kung_lower_bound,
    intensity_lower_bound,
    subcomputation_count_lower_bound,
)
from repro.pebbling.mmm_cdag import build_mmm_cdag, c_vertex
from repro.pebbling.partition import XPartition


class TestHongKung:
    def test_formula(self):
        assert hong_kung_lower_bound(s=10, h_2s=5) == 40

    def test_single_subcomputation_gives_zero(self):
        assert hong_kung_lower_bound(s=10, h_2s=1) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            hong_kung_lower_bound(0, 5)


class TestGeneralizedBound:
    def test_reduces_to_hong_kung(self):
        # With X = 2S, R(S) = S and T(S) = 0 the generalized bound matches Lemma 1.
        assert generalized_lower_bound(x=20, r_s=10, t_s=0, h_x=5) == hong_kung_lower_bound(10, 5)

    def test_tighter_with_smaller_reuse(self):
        loose = generalized_lower_bound(x=20, r_s=10, t_s=0, h_x=5)
        tight = generalized_lower_bound(x=20, r_s=4, t_s=0, h_x=5)
        assert tight > loose

    def test_store_term_tightens(self):
        base = generalized_lower_bound(x=20, r_s=5, t_s=0, h_x=5)
        with_store = generalized_lower_bound(x=20, r_s=5, t_s=3, h_x=5)
        assert with_store > base

    def test_reuse_cannot_exceed_x(self):
        with pytest.raises(ValueError):
            generalized_lower_bound(x=10, r_s=11, t_s=0, h_x=2)

    def test_never_negative(self):
        assert generalized_lower_bound(x=10, r_s=10, t_s=0, h_x=1) == 0


class TestSubcomputationCount:
    def test_exact_division(self):
        assert subcomputation_count_lower_bound(100, 10) == 10

    def test_rounds_up(self):
        assert subcomputation_count_lower_bound(101, 10) == 11


class TestComputationalIntensity:
    def test_formula(self):
        assert computational_intensity(100, x=30, reuse=10, store=0) == pytest.approx(5.0)

    def test_rejects_nonpositive_denominator(self):
        with pytest.raises(ValueError):
            computational_intensity(100, x=10, reuse=10, store=0)

    def test_lower_bound_from_intensity(self):
        assert intensity_lower_bound(1000, 5.0) == pytest.approx(200.0)

    def test_intensity_bound_rejects_zero(self):
        with pytest.raises(ValueError):
            intensity_lower_bound(100, 0.0)


class TestAnalyzePartition:
    def _mmm_partition(self, m=2, n=2, k=3):
        mmm = build_mmm_cdag(m, n, k)
        subsets = [
            {c_vertex(i, j, t) for i in range(m) for j in range(n)} for t in range(k)
        ]
        return XPartition(cdag=mmm.cdag, subcomputations=subsets), mmm

    def test_total_vertices(self):
        partition, mmm = self._mmm_partition()
        analysis = analyze_partition(partition, x=8)
        assert analysis.total_vertices == mmm.num_multiplications

    def test_lower_bound_positive(self):
        partition, _ = self._mmm_partition()
        analysis = analyze_partition(partition, x=8)
        assert analysis.lower_bound > 0

    def test_lower_bound_not_exceeding_trivial_io(self):
        # The bound can never exceed the total data touched (inputs + outputs + mnk).
        partition, mmm = self._mmm_partition()
        analysis = analyze_partition(partition, x=8)
        trivial = mmm.m * mmm.k + mmm.k * mmm.n + mmm.m * mmm.n + mmm.num_multiplications
        assert analysis.lower_bound <= trivial

    def test_reuse_reported(self):
        partition, _ = self._mmm_partition()
        analysis = analyze_partition(partition, x=8)
        # Between k-steps the 4 partial sums are reused.
        assert analysis.max_reuse == 4
