"""Compression-parity tests: ``compress_rounds`` must never change a counter.

Steady-state round compression (:class:`repro.machine.counters.RoundCompressor`)
replays cached counter deltas instead of re-executing structurally identical
rounds.  Its whole contract is that this is invisible in the results: for
every registered algorithm, under every transport mode, the per-rank
:class:`~repro.machine.counters.RankCounters` (including the incremental
``round_start_words`` bookkeeping) must be byte-identical with and without
compression.  A property-based layer (hypothesis) varies the scenario grid
beyond the hand-picked points.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.harness import ALGORITHMS, run_algorithm
from repro.machine.simulator import DistributedMachine
from repro.machine.transport import MODES, ShapeToken
from repro.workloads.scaling import (
    Scenario,
    extra_memory_sweep,
    limited_memory_sweep,
)
from repro.workloads.shapes import square_shape

settings.register_profile("repro-compression", max_examples=25, deadline=None)


def _per_rank_counters(name, scenario, mode, compress_rounds):
    machine = DistributedMachine(
        scenario.p, memory_words=scenario.memory_words, mode=mode,
        compress_rounds=compress_rounds,
    )
    if mode == "volume":
        a = ShapeToken((scenario.shape.m, scenario.shape.k))
        b = ShapeToken((scenario.shape.k, scenario.shape.n))
    else:
        a, b = scenario.shape.random_matrices(seed=0)
    ALGORITHMS[name](a, b, scenario, machine)
    return [rank.counters.copy() for rank in machine.ranks], machine


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_compression_parity_every_algorithm_every_transport(name, mode):
    """compress_rounds=True/False produce identical CommCounters everywhere."""
    scenario = limited_memory_sweep("square", [16], 2048)[0]
    reference, _ = _per_rank_counters(name, scenario, mode, compress_rounds=False)
    compressed, machine = _per_rank_counters(name, scenario, mode, compress_rounds=True)
    assert compressed == reference, f"{name} counters diverge under compression in {mode} mode"
    if mode != "volume":
        # Compression is a counters-only optimization; with real payloads the
        # flag must be inert.
        assert machine.compressor is None


def test_compression_actually_replays_rounds():
    """The steady state must hit the delta cache, not just trivially match."""
    scenario = limited_memory_sweep("square", [64], 2048)[0]
    _, machine = _per_rank_counters("Cannon", scenario, "volume", compress_rounds=True)
    assert machine.compressor is not None
    assert machine.compressor.replayed_rounds > 0
    assert machine.compressor.executed_rounds < machine.compressor.replayed_rounds + 4


def test_paper_scale_fingerprints_compress_cosma():
    """COSMA's ownership-class fingerprints must repeat across chunk offsets.

    A long local-k run (many single-step chunks per ownership slice) is the
    paper-scale steady state in miniature: almost every round must replay.
    """
    scenario = Scenario(
        name="compress-probe-p64", shape=square_shape(1024), p=64,
        memory_words=4096, regime="limited",
    )
    reference, _ = _per_rank_counters("COSMA", scenario, "volume", compress_rounds=False)
    compressed, machine = _per_rank_counters("COSMA", scenario, "volume", compress_rounds=True)
    assert compressed == reference
    compressor = machine.compressor
    assert compressor.replayed_rounds > 10 * compressor.executed_rounds


@settings(settings.get_profile("repro-compression"))
@given(
    name=st.sampled_from(sorted(ALGORITHMS)),
    family=st.sampled_from(["square", "largeK", "largeM"]),
    regime=st.sampled_from(["limited", "extra"]),
    p=st.sampled_from([4, 9, 16, 25, 36]),
    memory_words=st.sampled_from([1024, 2048, 4096]),
)
def test_compression_parity_property(name, family, regime, p, memory_words):
    sweep_fn = limited_memory_sweep if regime == "limited" else extra_memory_sweep
    scenario = sweep_fn(family, [p], memory_words)[0]
    reference, _ = _per_rank_counters(name, scenario, "volume", compress_rounds=False)
    compressed, _ = _per_rank_counters(name, scenario, "volume", compress_rounds=True)
    assert compressed == reference, (
        f"{name} on {scenario.name}: counters diverge under compression"
    )


@settings(settings.get_profile("repro-compression"))
@given(
    name=st.sampled_from(sorted(ALGORITHMS)),
    p=st.sampled_from([4, 16, 36]),
)
def test_compressed_harness_runs_conserve_words(name, p):
    """The harness-level plumbing keeps the conservation assertion intact."""
    scenario = limited_memory_sweep("square", [p], 2048)[0]
    run = run_algorithm(name, scenario, mode="volume", compress_rounds=True)
    baseline = run_algorithm(name, scenario, mode="volume", compress_rounds=False)
    assert run == baseline
