"""Tests for the multi-level memory hierarchy extension."""

import pytest

from repro.extensions.multilevel import (
    multilevel_io_lower_bounds,
    multilevel_schedule,
    nested_tile_count,
    simulate_multilevel_io,
)
from repro.pebbling.mmm_bounds import sequential_io_lower_bound


class TestLowerBounds:
    def test_one_level_matches_theorem1(self):
        bounds = multilevel_io_lower_bounds(32, 32, 32, [64])
        assert bounds == [sequential_io_lower_bound(32, 32, 32, 64)]

    def test_bounds_decrease_with_level_size(self):
        bounds = multilevel_io_lower_bounds(32, 32, 32, [32, 128, 1024])
        assert bounds[0] > bounds[1] > bounds[2]

    def test_rejects_unordered_levels(self):
        with pytest.raises(ValueError):
            multilevel_io_lower_bounds(16, 16, 16, [128, 64])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            multilevel_io_lower_bounds(16, 16, 16, [])


class TestSchedule:
    def test_tiles_nest(self):
        schedule = multilevel_schedule(64, 64, 64, [16, 128, 1024])
        tiles = schedule.tile_sizes()
        for (inner_m, inner_n), (outer_m, outer_n) in zip(tiles, tiles[1:]):
            assert inner_m <= outer_m
            assert inner_n <= outer_n

    def test_levels_ordered_by_index(self):
        schedule = multilevel_schedule(32, 32, 32, [16, 256])
        assert [lvl.level for lvl in schedule.levels] == [0, 1]

    def test_predicted_traffic_above_bound(self):
        schedule = multilevel_schedule(48, 48, 48, [16, 128, 1024])
        for level in schedule.levels:
            assert level.predicted_traffic >= level.lower_bound * 0.99

    def test_traffic_decreases_for_larger_levels(self):
        schedule = multilevel_schedule(48, 48, 48, [16, 128, 1024])
        predicted = [lvl.predicted_traffic for lvl in schedule.levels]
        assert predicted[0] >= predicted[1] >= predicted[2]

    def test_tiles_clipped_to_matrix(self):
        schedule = multilevel_schedule(4, 4, 4, [16, 1 << 20])
        for level in schedule.levels:
            assert level.tile_m <= 4
            assert level.tile_n <= 4

    def test_summary_has_ratio(self):
        schedule = multilevel_schedule(32, 32, 32, [64, 512])
        for row in schedule.traffic_summary():
            assert row["ratio"] >= 0.99

    def test_nested_tile_count(self):
        schedule = multilevel_schedule(20, 20, 4, [16, 256])
        assert nested_tile_count(20, 20, schedule) >= 1

    def test_rejects_unordered_capacities(self):
        with pytest.raises(ValueError):
            multilevel_schedule(16, 16, 16, [256, 64])


class TestSimulation:
    def test_misses_decrease_with_level(self):
        schedule = multilevel_schedule(24, 24, 24, [16, 64, 256])
        misses = simulate_multilevel_io(schedule, [16, 64, 256])
        assert misses[0] >= misses[1] >= misses[2]

    def test_outer_level_misses_at_least_compulsory(self):
        m = n = k = 20
        schedule = multilevel_schedule(m, n, k, [16, 1 << 12])
        misses = simulate_multilevel_io(schedule, [16, 1 << 12])
        distinct = m * k + k * n + m * n
        assert misses[-1] >= distinct * 0.9

    def test_granularity_reduces_counted_traffic_resolution(self):
        schedule = multilevel_schedule(16, 16, 16, [16, 256])
        fine = simulate_multilevel_io(schedule, [16, 256], granularity=1)
        coarse = simulate_multilevel_io(schedule, [16, 256], granularity=4)
        assert coarse[-1] <= fine[-1] * 4

    def test_rejects_unordered_capacities(self):
        schedule = multilevel_schedule(8, 8, 8, [16, 64])
        with pytest.raises(ValueError):
            simulate_multilevel_io(schedule, [64, 16])

    def test_innermost_misses_at_least_bound(self):
        m = n = k = 24
        caps = [16, 256]
        schedule = multilevel_schedule(m, n, k, caps)
        misses = simulate_multilevel_io(schedule, caps)
        # An LRU replay can only do worse than the optimal pebbling.
        assert misses[0] >= sequential_io_lower_bound(m, n, k, caps[0]) * 0.5
