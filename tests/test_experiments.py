"""Tests for the experiment harness, performance model and reports."""

import math

import pytest

from repro.experiments.harness import (
    ALGORITHMS,
    DEFAULT_ALGORITHMS,
    group_by_scenario,
    run_algorithm,
    run_scenario,
    sweep,
)
from repro.experiments.perf_model import percent_of_peak, simulated_time, speedup, time_breakdown
from repro.experiments.report import (
    breakdown_rows,
    format_table,
    geometric_mean,
    performance_distribution,
    performance_series,
    runtime_series,
    table4_rows,
    table4_text,
    volume_series,
    volume_table,
)
from repro.machine.topology import laptop_spec
from repro.workloads.scaling import Scenario, strong_scaling_sweep
from repro.workloads.shapes import square_shape


@pytest.fixture(scope="module")
def small_scenario():
    return Scenario(
        name="square-strong-p4",
        shape=square_shape(24),
        p=4,
        memory_words=4096,
        regime="strong",
    )


@pytest.fixture(scope="module")
def small_runs(small_scenario):
    return run_scenario(small_scenario, algorithms=DEFAULT_ALGORITHMS, seed=1)


class TestHarness:
    def test_registry_contains_paper_targets(self):
        assert {"COSMA", "ScaLAPACK", "CTF", "CARMA"} <= set(ALGORITHMS)

    def test_unknown_algorithm_rejected(self, small_scenario):
        with pytest.raises(KeyError):
            run_algorithm("MAGMA", small_scenario)

    def test_all_algorithms_correct(self, small_runs):
        for name, run in small_runs.items():
            assert run.correct, f"{name} produced a wrong product"

    def test_metrics_populated(self, small_runs):
        for run in small_runs.values():
            assert run.mean_words_per_rank >= 0
            assert run.max_words_per_rank >= run.mean_words_per_rank * 0.99
            assert run.total_flops > 0
            assert run.rounds >= 0

    def test_cosma_not_worse_than_others(self, small_runs):
        cosma = small_runs["COSMA"].mean_received_per_rank
        for name, run in small_runs.items():
            if name == "COSMA":
                continue
            assert cosma <= run.mean_received_per_rank * 1.3

    def test_sweep_cross_product(self):
        scenarios = strong_scaling_sweep(square_shape(16), [2, 4], memory_words=4096)
        runs = sweep(scenarios, algorithms=("COSMA", "CARMA"), verify=False)
        assert len(runs) == 4

    def test_group_by_scenario(self):
        scenarios = strong_scaling_sweep(square_shape(16), [2, 4], memory_words=4096)
        runs = sweep(scenarios, algorithms=("COSMA", "CARMA"), verify=False)
        grouped = group_by_scenario(runs)
        assert len(grouped) == 2
        for by_algo in grouped.values():
            assert set(by_algo) == {"COSMA", "CARMA"}


class TestPerfModel:
    def test_time_positive(self, small_runs):
        for run in small_runs.values():
            assert simulated_time(run) > 0

    def test_overlap_not_slower(self, small_runs):
        for run in small_runs.values():
            assert simulated_time(run, overlap=True) <= simulated_time(run, overlap=False) + 1e-12

    def test_percent_of_peak_in_range(self, small_runs):
        for run in small_runs.values():
            pct = percent_of_peak(run)
            assert 0 < pct <= 100.0

    def test_breakdown_components_sum(self, small_runs):
        for run in small_runs.values():
            breakdown = time_breakdown(run)
            assert breakdown.total_no_overlap == pytest.approx(
                breakdown.computation + breakdown.communication
            )
            assert 0 <= breakdown.communication_fraction <= 1

    def test_speedup_of_run_vs_itself_is_one(self, small_runs):
        run = small_runs["COSMA"]
        assert speedup(run, run) == pytest.approx(1.0)

    def test_spec_affects_time(self, small_runs):
        run = small_runs["COSMA"]
        fast = laptop_spec()
        assert simulated_time(run, fast) != simulated_time(run)


class TestReports:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 0.001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_volume_series_sorted_by_p(self, small_runs):
        series = volume_series(small_runs.values())
        for points in series.values():
            ps = [p for p, _ in points]
            assert ps == sorted(ps)

    def test_volume_table_contains_algorithms(self, small_runs):
        text = volume_table(small_runs.values())
        for name in DEFAULT_ALGORITHMS:
            assert name in text

    def test_performance_series_values_bounded(self, small_runs):
        series = performance_series(small_runs.values())
        for points in series.values():
            for _, pct in points:
                assert 0 < pct <= 100

    def test_runtime_series_positive(self, small_runs):
        series = runtime_series(small_runs.values())
        for points in series.values():
            for _, t in points:
                assert t > 0

    def test_performance_distribution_summary(self, small_runs):
        summary = performance_distribution(small_runs.values())
        for stats in summary.values():
            assert stats["min"] <= stats["geomean"] * (1 + 1e-12)
            assert stats["geomean"] <= stats["max"] * (1 + 1e-12)

    def test_table4_rows_have_speedups(self, small_runs):
        rows = table4_rows({"square-strong": list(small_runs.values())})
        assert len(rows) == 1
        row = rows[0]
        assert "speedup_min" in row
        assert row["speedup_min"] <= row["speedup_max"]
        assert not math.isnan(row["speedup_geomean"])

    def test_table4_text_renders(self, small_runs):
        text = table4_text({"square-strong": list(small_runs.values())})
        assert "benchmark" in text
        assert "square-strong" in text

    def test_table4_empty(self):
        assert table4_text({}) == "(no runs)"

    def test_breakdown_rows(self, small_runs):
        rows = breakdown_rows(small_runs.values())
        assert len(rows) == len(small_runs)
        for row in rows:
            assert row["total_no_overlap_s"] >= row["total_with_overlap_s"] - 1e-12
