"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_nonnegative_int,
    check_positive_int,
    check_probability,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "should not raise")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(5, "x") == 5

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(7), "x") == 7

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-3, "x")

    def test_rejects_fractional_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive_int("many", "x")

    def test_error_mentions_name(self):
        with pytest.raises(ValueError, match="widgets"):
            check_positive_int(0, "widgets")


class TestCheckNonnegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_accepts_interior(self):
        assert check_probability(0.25, "p") == 0.25

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")
