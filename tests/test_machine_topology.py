"""Tests for machine specifications and the alpha-beta time helpers."""

import pytest

from repro.machine.topology import PIZ_DAINT_LIKE, MachineSpec, laptop_spec, scaled_spec


class TestMachineSpec:
    def test_piz_daint_defaults(self):
        assert PIZ_DAINT_LIKE.cores_per_node == 36
        assert PIZ_DAINT_LIKE.peak_flops_per_core > 5e10

    def test_compute_time_scales_linearly(self):
        spec = laptop_spec()
        assert spec.compute_time(2e9) == pytest.approx(2 * spec.compute_time(1e9))

    def test_compute_time_rejects_negative(self):
        with pytest.raises(ValueError):
            laptop_spec().compute_time(-1)

    def test_communication_time_alpha_beta(self):
        spec = MachineSpec(
            name="t", network_latency_s=1e-6, network_bandwidth_words_per_s=1e9
        )
        t = spec.communication_time(words=1e9, messages=2)
        assert t == pytest.approx(1.0 + 2e-6)

    def test_communication_time_rejects_negative(self):
        with pytest.raises(ValueError):
            laptop_spec().communication_time(-1.0)

    def test_beta_is_inverse_bandwidth(self):
        spec = laptop_spec()
        assert spec.beta_s_per_word == pytest.approx(1.0 / spec.network_bandwidth_words_per_s)

    def test_laptop_spec_memory_override(self):
        spec = laptop_spec(memory_words_per_core=1234)
        assert spec.memory_words_per_core == 1234

    def test_scaled_spec_changes_only_memory(self):
        scaled = scaled_spec(PIZ_DAINT_LIKE, 999)
        assert scaled.memory_words_per_core == 999
        assert scaled.peak_flops_per_core == PIZ_DAINT_LIKE.peak_flops_per_core
        assert scaled.network_latency_s == PIZ_DAINT_LIKE.network_latency_s

    def test_frozen(self):
        with pytest.raises(Exception):
            PIZ_DAINT_LIKE.cores_per_node = 1  # type: ignore[misc]
