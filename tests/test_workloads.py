"""Tests for workload shapes and scaling scenarios (section 8)."""

import pytest

from repro.workloads.scaling import (
    all_regime_sweeps,
    extra_memory_sweep,
    limited_memory_sweep,
    strong_scaling_sweep,
)
from repro.workloads.shapes import (
    ProblemShape,
    flat_shape,
    large_k_shape,
    large_m_shape,
    rpa_water_shape,
    square_shape,
)


class TestShapes:
    def test_square(self):
        shape = square_shape(128)
        assert (shape.m, shape.n, shape.k) == (128, 128, 128)
        assert shape.family == "square"

    def test_large_k(self):
        shape = large_k_shape(64, 4096)
        assert shape.k > shape.m == shape.n

    def test_large_m(self):
        shape = large_m_shape(4096, 64)
        assert shape.m > shape.n == shape.k

    def test_flat(self):
        shape = flat_shape(512, 16)
        assert shape.m == shape.n > shape.k

    def test_flops_and_footprint(self):
        shape = ProblemShape(4, 5, 6)
        assert shape.flops == 2 * 4 * 5 * 6
        assert shape.footprint_words == 4 * 5 + 4 * 6 + 5 * 6

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ProblemShape(0, 4, 4)

    def test_rpa_water_dimensions(self):
        shape = rpa_water_shape(128, scale=1.0)
        assert shape.m == shape.n == 136 * 128
        assert shape.k == 228 * 128 * 128

    def test_rpa_water_scaled(self):
        full = rpa_water_shape(8, scale=1.0)
        small = rpa_water_shape(8, scale=0.1)
        assert small.k < full.k
        assert small.family == "largeK"

    def test_scaled_shape(self):
        shape = square_shape(100).scaled(0.5)
        assert shape.m == 50

    def test_random_matrices_reproducible(self):
        shape = ProblemShape(6, 7, 8)
        a1, b1 = shape.random_matrices(seed=3)
        a2, b2 = shape.random_matrices(seed=3)
        assert (a1 == a2).all() and (b1 == b2).all()
        assert a1.shape == (6, 8)
        assert b1.shape == (8, 7)


class TestStrongScaling:
    def test_shape_fixed_across_p(self):
        scenarios = strong_scaling_sweep(square_shape(64), [4, 8, 16])
        shapes = {s.shape for s in scenarios}
        assert len(shapes) == 1
        assert [s.p for s in scenarios] == [4, 8, 16]

    def test_default_memory_feasible_at_smallest_p(self):
        scenarios = strong_scaling_sweep(square_shape(64), [4, 8, 16])
        smallest = scenarios[0]
        assert smallest.aggregate_memory >= smallest.shape.footprint_words

    def test_empty_p_values_rejected(self):
        with pytest.raises(ValueError):
            strong_scaling_sweep(square_shape(8), [])

    def test_regime_label(self):
        assert strong_scaling_sweep(square_shape(8), [2])[0].regime == "strong"


class TestWeakScaling:
    @pytest.mark.parametrize("family", ["square", "largeK", "largeM", "flat"])
    def test_limited_memory_ratio_roughly_constant(self, family):
        scenarios = limited_memory_sweep(family, [8, 64, 512], memory_words=1 << 16)
        ratios = [s.memory_ratio for s in scenarios]
        assert max(ratios) / min(ratios) < 3.0

    @pytest.mark.parametrize("family", ["square", "largeK", "largeM", "flat"])
    def test_limited_memory_is_feasible(self, family):
        for scenario in limited_memory_sweep(family, [8, 64, 512], memory_words=1 << 16):
            assert scenario.aggregate_memory >= scenario.shape.footprint_words

    def test_extra_memory_ratio_grows_with_p(self):
        scenarios = extra_memory_sweep("square", [8, 64, 512], memory_words=1 << 16)
        ratios = [s.memory_ratio for s in scenarios]
        assert ratios[-1] > ratios[0]

    def test_problem_grows_with_p(self):
        scenarios = limited_memory_sweep("square", [8, 64, 512], memory_words=1 << 16)
        sizes = [s.shape.multiplications for s in scenarios]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_family_preserved(self):
        for scenario in limited_memory_sweep("largeK", [8, 64], memory_words=4096):
            assert scenario.shape.family == "largeK"
            assert scenario.shape.k > scenario.shape.m

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            limited_memory_sweep("diagonal", [8], memory_words=4096)

    def test_all_regime_sweeps_bundle(self):
        sweeps = all_regime_sweeps("square", [4, 16], memory_words=1 << 14)
        assert set(sweeps) == {"strong", "limited", "extra"}
        assert all(len(v) == 2 for v in sweeps.values())

    def test_names_unique(self):
        scenarios = limited_memory_sweep("flat", [4, 16, 64], memory_words=4096)
        names = [s.name for s in scenarios]
        assert len(names) == len(set(names))
