"""Tests for the pluggable payload transports and the fast-path accounting."""

import numpy as np
import pytest

from repro.machine.collectives import broadcast, reduce
from repro.machine.counters import COUNTER_FIELDS, CommCounters, ConservationError, RankCounters
from repro.machine.simulator import DistributedMachine
from repro.machine.transport import (
    MODES,
    PayloadPlane,
    ShapeToken,
    concat_payloads,
    make_transport,
    payload_shape,
    payload_words,
)


class TestShapeToken:
    def test_size_and_ndim(self):
        token = ShapeToken((3, 4))
        assert token.size == 12
        assert token.ndim == 2
        assert token.shape == (3, 4)

    def test_basic_slicing(self):
        token = ShapeToken((10, 8))
        assert token[2:5, 1:7].shape == (3, 6)
        assert token[:, 3].shape == (10,)
        assert token[0].shape == (8,)
        assert token[...].shape == (10, 8)
        assert token[..., 0:2].shape == (10, 2)

    def test_slice_clamps_like_numpy(self):
        token = ShapeToken((5,))
        assert token[3:99].shape == (2,)
        assert token[-2:].shape == (2,)

    def test_boolean_mask(self):
        token = ShapeToken((4, 4))
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, :3] = True
        assert token[mask].shape == (3,)

    def test_boolean_mask_preserves_row_structure(self):
        """A leading-axes mask keeps the trailing axes, exactly like numpy.

        Regression test: full-shape masks flatten to 1-D (numpy semantics),
        but a 1-D mask on a 2-D token used to be rejected -- and a silent
        flatten here would hand downstream code a block with the masked row
        structure stripped off.
        """
        token = ShapeToken((5, 7))
        row_mask = np.array([True, False, True, False, True])
        assert token[row_mask].shape == (3, 7)
        reference = np.zeros((5, 7))[row_mask]
        assert token[row_mask].shape == reference.shape
        cube = ShapeToken((4, 5, 6))
        plane_mask = np.zeros((4, 5), dtype=bool)
        plane_mask[0, :2] = True
        assert cube[plane_mask].shape == (2, 6)
        assert cube[plane_mask].shape == np.zeros((4, 5, 6))[plane_mask].shape

    def test_boolean_mask_shape_mismatch(self):
        with pytest.raises(IndexError):
            ShapeToken((4, 4))[np.ones((2, 2), dtype=bool)]
        # Leading-axes masks must match those axes exactly, like numpy.
        with pytest.raises(IndexError):
            ShapeToken((4, 4))[np.ones(3, dtype=bool)]
        # A mask with more axes than the token has is always an error.
        with pytest.raises(IndexError):
            ShapeToken((4,))[np.ones((4, 4), dtype=bool)]

    def test_setitem_checks_shapes(self):
        token = ShapeToken((6, 6))
        token[0:2, 0:3] = ShapeToken((2, 3))  # ok
        token[0:2, 0:3] = 1.0  # scalar ok
        token[0:2, 0:3] = ShapeToken((1, 3))  # broadcastable ok
        with pytest.raises(ValueError):
            token[0:2, 0:3] = ShapeToken((5, 5))

    def test_setitem_rejects_transposed_shape(self):
        # Same total size but incompatible shape must raise, exactly as the
        # numpy-backed modes would.
        token = ShapeToken((4, 6))
        with pytest.raises(ValueError):
            token[:, :] = ShapeToken((6, 4))

    def test_iadd_checks_shapes(self):
        token = ShapeToken((3, 3))
        token += ShapeToken((3, 3))
        token += 2.0
        with pytest.raises(ValueError):
            token += ShapeToken((2, 2))
        with pytest.raises(ValueError):
            token += ShapeToken((9, 1))  # same size, wrong shape

    def test_out_of_range_int_index(self):
        with pytest.raises(IndexError):
            ShapeToken((3,))[5]

    def test_concat(self):
        joined = concat_payloads([ShapeToken((3, 2)), ShapeToken((3, 5))], axis=1)
        assert joined.shape == (3, 7)
        with pytest.raises(ValueError):
            concat_payloads([ShapeToken((3, 2)), ShapeToken((4, 5))], axis=1)

    def test_concat_mixed_with_arrays_uses_shapes(self):
        joined = concat_payloads([np.ones((2, 3)), ShapeToken((2, 4))], axis=1)
        assert joined.shape == (2, 7)

    def test_payload_words(self):
        assert payload_words(ShapeToken((5, 5))) == 25
        assert payload_words(np.ones((5, 5))) == 25


class TestTransports:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            make_transport("warp")
        with pytest.raises(ValueError):
            DistributedMachine(2, mode="warp")

    def test_legacy_delivers_private_copy(self):
        machine = DistributedMachine(2, mode="legacy")
        block = np.ones(6)
        delivered = machine.send(0, 1, block)
        assert not np.shares_memory(delivered, block)
        delivered[0] = 99.0  # writable
        assert block[0] == 1.0

    def test_zerocopy_delivers_shared_readonly_view(self):
        machine = DistributedMachine(2, mode="zerocopy")
        block = np.ones(6)
        delivered = machine.send(0, 1, block)
        assert np.shares_memory(delivered, block)
        assert not delivered.flags.writeable
        with pytest.raises(ValueError):
            delivered[0] = 99.0

    def test_volume_delivers_token(self):
        machine = DistributedMachine(2, mode="volume")
        delivered = machine.send(0, 1, ShapeToken((3, 4)))
        assert isinstance(delivered, ShapeToken)
        assert delivered.shape == (3, 4)
        assert machine.rank(0).counters.words_sent == 12

    def test_volume_send_accepts_arrays_too(self):
        machine = DistributedMachine(2, mode="volume")
        delivered = machine.send(0, 1, np.ones((2, 5)))
        assert isinstance(delivered, ShapeToken)
        assert machine.rank(1).counters.words_received == 10

    def test_machine_zeros_matches_mode(self):
        assert isinstance(DistributedMachine(1, mode="legacy").zeros((2, 2)), np.ndarray)
        assert isinstance(DistributedMachine(1, mode="volume").zeros((2, 2)), ShapeToken)

    def test_zerocopy_broadcast_shares_root_buffer(self):
        machine = DistributedMachine(4, mode="zerocopy")
        block = np.arange(8.0)
        received = broadcast(machine, 0, [0, 1, 2, 3], block)
        for rank in (1, 2, 3):
            assert np.shares_memory(received[rank], block)
        # Broadcast volume is unchanged: each non-root receives once.
        assert machine.counters.total_words_received == 3 * 8

    def test_volume_local_multiply_counts_flops_only(self):
        machine = DistributedMachine(1, mode="volume")
        product = machine.local_multiply(0, ShapeToken((2, 3)), ShapeToken((3, 4)))
        assert product.shape == (2, 4)
        assert machine.rank(0).counters.flops == 2 * 2 * 3 * 4

    def test_volume_local_multiply_shape_mismatch(self):
        machine = DistributedMachine(1, mode="volume")
        with pytest.raises(ValueError):
            machine.local_multiply(0, ShapeToken((2, 3)), ShapeToken((4, 2)))

    def test_volume_local_add(self):
        machine = DistributedMachine(1, mode="volume")
        target = ShapeToken((3,))
        machine.local_add(0, target, ShapeToken((3,)))
        assert machine.rank(0).counters.flops == 3


class TestReductionOpAccounting:
    """The custom-``op`` reduce path must count flops like the default path."""

    def _reduce_flops(self, op):
        machine = DistributedMachine(4)
        blocks = {r: np.full((2, 2), float(r)) for r in range(4)}
        total = reduce(machine, 0, [0, 1, 2, 3], blocks, op=op)
        return machine.counters.total_flops, total

    def test_custom_op_counts_same_flops_as_default(self):
        default_flops, default_total = self._reduce_flops(None)
        custom_flops, custom_total = self._reduce_flops(lambda a, b: a + b)
        assert custom_flops == default_flops > 0
        assert np.allclose(custom_total, default_total)

    def test_custom_op_result_still_applied(self):
        _, total = self._reduce_flops(np.maximum)
        assert np.allclose(total, np.full((2, 2), 3.0))

    def test_local_combine_volume_skips_op(self):
        machine = DistributedMachine(1, mode="volume")
        calls = []

        def op(a, b):  # pragma: no cover - must not run
            calls.append(1)
            return a

        result = machine.local_combine(0, ShapeToken((2, 2)), ShapeToken((2, 2)), op=op)
        assert isinstance(result, ShapeToken)
        assert not calls
        assert machine.rank(0).counters.flops == 4


class TestIncrementalAccounting:
    def test_resident_words_tracks_put_replace_pop(self):
        machine = DistributedMachine(1)
        rank = machine.rank(0)
        rank.put("A", np.ones((4, 4)))
        assert rank.resident_words() == 16
        rank.put("A", np.ones((2, 2)))  # replacement, not accumulation
        assert rank.resident_words() == 4
        rank.put("B", np.ones(10))
        assert rank.resident_words() == 14
        rank.pop("A")
        assert rank.resident_words() == 10

    def test_resident_words_with_tokens(self):
        machine = DistributedMachine(1, mode="volume")
        rank = machine.rank(0)
        rank.put("A", ShapeToken((8, 8)))
        assert rank.resident_words() == 64
        assert machine.check_memory() == 64

    def test_round_delta_tracking(self):
        machine = DistributedMachine(2)
        machine.send(0, 1, np.ones(5))
        machine.counters.mark_round_start()
        machine.send(0, 1, np.ones(7))
        assert machine.counters.max_round_delta() == 7
        machine.counters.mark_round_start()
        assert machine.counters.max_round_delta() == 0

    def test_reset_is_field_driven(self):
        counters = CommCounters.for_ranks(1)
        rank = counters.per_rank[0]
        for name in COUNTER_FIELDS:
            setattr(rank, name, 7)
        counters.reset()
        for name in COUNTER_FIELDS:
            assert getattr(rank, name) == 0, name

    def test_assert_conservation(self):
        counters = CommCounters.for_ranks(2)
        counters.assert_conservation()
        counters.per_rank[0].words_sent = 5
        with pytest.raises(ConservationError):
            counters.assert_conservation()


class TestPayloadPlane:
    def test_attach_and_block_views(self):
        plane = PayloadPlane("ops.A", shape=(2, 4, 6))
        view = plane.attach(rank=3, slot=1, rows=slice(0, 2), cols=slice(1, 4))
        assert view.shape == (2, 3)
        view[...] = 7.0
        assert plane.data[1, 0:2, 1:4].sum() == 7.0 * 6
        assert plane.block(3) is not view  # fresh view, same storage
        assert np.shares_memory(plane.block(3), plane.data)
        assert plane.attached_ranks() == (3,)

    def test_reduce_slots_sums_sheets(self):
        plane = PayloadPlane("ops.C", shape=(3, 2, 2))
        plane.data[0] = 1.0
        plane.data[2] = 2.0
        assert np.array_equal(plane.reduce_slots(), np.full((2, 2), 3.0))

    def test_wrapping_existing_data(self):
        base = np.arange(12.0).reshape(1, 3, 4)
        plane = PayloadPlane("ops.B", data=base)
        assert plane.slots == 1
        assert np.shares_memory(plane.data, base)

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            PayloadPlane("x")
        with pytest.raises(ValueError):
            PayloadPlane("x", shape=(2, 2))  # sheets must be 2-D stacks
        with pytest.raises(IndexError):
            PayloadPlane("x", shape=(2, 2, 2)).attach(0, slot=5)

    def test_machine_plane_registry(self):
        machine = DistributedMachine(2, mode="plane")
        plane = machine.new_plane("C", (2, 3, 3))
        assert machine.get_plane("C") is plane
        with pytest.raises(ValueError):
            machine.register_plane("C", plane)
        machine.reset_counters()
        assert machine.planes == {}


class TestPlaneTransportFallback:
    """Unported algorithms must see exact zerocopy semantics in plane mode."""

    def test_deliveries_are_shared_readonly_views(self):
        machine = DistributedMachine(2, mode="plane")
        assert machine.transport.planar
        assert not machine.transport.counters_only
        block = np.ones((3, 3))
        delivered = machine.send(0, 1, block)
        assert np.shares_memory(delivered, block)
        assert not delivered.flags.writeable

    def test_collectives_run_per_hop(self):
        machine = DistributedMachine(4, mode="plane")
        received = broadcast(machine, 0, [0, 1, 2, 3], np.ones((2, 2)))
        assert set(received) == {0, 1, 2, 3}
        assert machine.counters.total_words_sent == 3 * 4  # binomial tree


def test_payload_words_reads_size_attribute_directly():
    array = np.ones((7, 3))
    assert payload_words(array) == 21
    assert payload_shape(array) == (7, 3)
    assert payload_words(ShapeToken((7, 3))) == 21
    # Plain sequences still take the asarray path.
    assert payload_words([[1.0, 2.0], [3.0, 4.0]]) == 4
    assert payload_shape([[1.0, 2.0], [3.0, 4.0]]) == (2, 2)


def test_modes_constant_matches_transports():
    assert MODES == ("legacy", "zerocopy", "plane", "volume")
    for mode in MODES:
        assert make_transport(mode).mode == mode
    # Only the plane transport advertises the stacked-array fast path, and
    # only the volume transport drops numerics.
    assert [make_transport(m).planar for m in MODES] == [False, False, True, False]
    assert [make_transport(m).counters_only for m in MODES] == [False, False, False, True]
