"""Tests for the CDAG data structure."""

import pytest

from repro.pebbling.cdag import CDAG


@pytest.fixture
def diamond():
    """a -> b, a -> c, b -> d, c -> d."""
    g = CDAG()
    g.add_edge("a", "b")
    g.add_edge("a", "c")
    g.add_edge("b", "d")
    g.add_edge("c", "d")
    return g


class TestConstruction:
    def test_add_vertex(self):
        g = CDAG()
        g.add_vertex("x")
        assert "x" in g
        assert len(g) == 1

    def test_add_edge_creates_vertices(self):
        g = CDAG()
        g.add_edge("u", "v")
        assert "u" in g and "v" in g
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = CDAG()
        with pytest.raises(ValueError):
            g.add_edge("x", "x")

    def test_duplicate_edge_not_double_counted(self):
        g = CDAG()
        g.add_edge("u", "v")
        g.add_edge("u", "v")
        assert g.num_edges == 1

    def test_add_edges_bulk(self):
        g = CDAG()
        g.add_edges([("a", "b"), ("b", "c")])
        assert g.num_edges == 2


class TestNavigation:
    def test_parents_children(self, diamond):
        assert diamond.parents("d") == frozenset({"b", "c"})
        assert diamond.children("a") == frozenset({"b", "c"})

    def test_inputs_outputs(self, diamond):
        assert diamond.inputs == frozenset({"a"})
        assert diamond.outputs == frozenset({"d"})

    def test_explicit_outputs(self, diamond):
        diamond.mark_outputs(["b", "d"])
        assert diamond.outputs == frozenset({"b", "d"})

    def test_mark_unknown_output_raises(self, diamond):
        with pytest.raises(KeyError):
            diamond.mark_outputs(["zz"])

    def test_computation_vertices(self, diamond):
        assert diamond.computation_vertices == frozenset({"b", "c", "d"})

    def test_ancestors(self, diamond):
        assert diamond.ancestors("d") == {"a", "b", "c"}
        assert diamond.ancestors("a") == set()

    def test_descendants(self, diamond):
        assert diamond.descendants("a") == {"b", "c", "d"}
        assert diamond.descendants("d") == set()

    def test_subgraph_reaching(self, diamond):
        assert diamond.subgraph_vertices_reaching(["b"]) == {"a", "b"}


class TestTopologicalOrder:
    def test_respects_edges(self, diamond):
        order = diamond.topological_order()
        position = {v: i for i, v in enumerate(order)}
        for u, v in diamond.iter_edges():
            assert position[u] < position[v]

    def test_includes_all_vertices(self, diamond):
        assert set(diamond.topological_order()) == diamond.vertices

    def test_cycle_detection(self):
        g = CDAG()
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a")
        assert not g.is_acyclic()
        with pytest.raises(ValueError):
            g.topological_order()

    def test_acyclic_true(self, diamond):
        assert diamond.is_acyclic()


class TestNetworkxInterop:
    def test_roundtrip(self, diamond):
        nx_graph = diamond.to_networkx()
        back = CDAG.from_networkx(nx_graph)
        assert back.vertices == diamond.vertices
        assert set(back.iter_edges()) == set(diamond.iter_edges())

    def test_to_networkx_counts(self, diamond):
        nx_graph = diamond.to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 4
