"""Tests for the MMM CDAG construction and projections."""

import pytest

from repro.pebbling.mmm_cdag import (
    a_vertex,
    b_vertex,
    build_mmm_cdag,
    c_vertex,
    phi_a,
    phi_b,
    phi_c,
)


class TestVerticesAndEdges:
    def test_vertex_count(self):
        mmm = build_mmm_cdag(2, 3, 4)
        # mk + kn + mnk
        assert mmm.num_vertices == 2 * 4 + 4 * 3 + 2 * 3 * 4

    def test_multiplication_count(self):
        mmm = build_mmm_cdag(3, 2, 5)
        assert mmm.num_multiplications == 30

    def test_inputs_are_a_and_b(self):
        mmm = build_mmm_cdag(2, 2, 2)
        inputs = mmm.cdag.inputs
        assert a_vertex(0, 0) in inputs
        assert b_vertex(1, 1) in inputs
        assert c_vertex(0, 0, 0) not in inputs

    def test_outputs_are_final_partial_sums(self):
        mmm = build_mmm_cdag(2, 2, 3)
        assert mmm.cdag.outputs == mmm.output_vertices()
        assert c_vertex(0, 0, 2) in mmm.cdag.outputs
        assert c_vertex(0, 0, 1) not in mmm.cdag.outputs

    def test_first_partial_sum_has_two_parents(self):
        mmm = build_mmm_cdag(2, 2, 2)
        parents = mmm.cdag.parents(c_vertex(1, 0, 0))
        assert parents == frozenset({a_vertex(1, 0), b_vertex(0, 0)})

    def test_later_partial_sum_has_three_parents(self):
        mmm = build_mmm_cdag(2, 2, 2)
        parents = mmm.cdag.parents(c_vertex(1, 0, 1))
        assert parents == frozenset({a_vertex(1, 1), b_vertex(1, 0), c_vertex(1, 0, 0)})

    def test_partial_sum_chain_has_single_child(self):
        mmm = build_mmm_cdag(2, 2, 3)
        children = mmm.cdag.children(c_vertex(0, 1, 0))
        assert children == frozenset({c_vertex(0, 1, 1)})

    def test_acyclic(self):
        assert build_mmm_cdag(2, 2, 2).cdag.is_acyclic()

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            build_mmm_cdag(0, 2, 2)

    def test_iterators_cover_all(self):
        mmm = build_mmm_cdag(2, 3, 2)
        assert len(list(mmm.a_vertices())) == 4
        assert len(list(mmm.b_vertices())) == 6
        assert len(list(mmm.c_vertices())) == 12


class TestProjections:
    def test_phi_a(self):
        assert phi_a(c_vertex(3, 5, 7)) == a_vertex(3, 7)

    def test_phi_b(self):
        assert phi_b(c_vertex(3, 5, 7)) == b_vertex(7, 5)

    def test_phi_c_drops_k_index(self):
        assert phi_c(c_vertex(3, 5, 7)) == (3, 5)
        assert phi_c(c_vertex(3, 5, 6)) == phi_c(c_vertex(3, 5, 7))

    def test_projections_of_outer_product_step(self):
        mmm = build_mmm_cdag(3, 2, 4)
        subset = {c_vertex(i, j, 1) for i in range(3) for j in range(2)}
        alpha, beta, gamma = mmm.projections(subset)
        assert alpha == {a_vertex(i, 1) for i in range(3)}
        assert beta == {b_vertex(1, j) for j in range(2)}
        assert gamma == {(i, j) for i in range(3) for j in range(2)}

    def test_loomis_whitney_inequality_holds(self):
        # |V_r| <= sqrt(|alpha| |beta| |gamma|) for any subcomputation.
        mmm = build_mmm_cdag(3, 3, 3)
        subset = {c_vertex(i, j, t) for i in range(2) for j in range(3) for t in range(2)}
        alpha, beta, gamma = mmm.projections(subset)
        assert len(subset) ** 2 <= len(alpha) * len(beta) * len(gamma)
