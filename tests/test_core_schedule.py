"""Tests for the COSMA sequential/parallel schedule derivation (Equation 32)."""

import math

import pytest

from repro.core.schedule import (
    find_sequential_schedule,
    optimal_local_domain,
    parallelize_schedule,
)


class TestFindSequentialSchedule:
    def test_limited_memory_gives_sqrt_s(self):
        # Large problem, small memory: a = sqrt(S).
        a = find_sequential_schedule(s=256, m=1024, n=1024, k=1024, p=16)
        assert a == pytest.approx(16.0)

    def test_extra_memory_gives_cubic_root(self):
        a = find_sequential_schedule(s=1 << 20, m=64, n=64, k=64, p=8)
        assert a == pytest.approx((64 ** 3 / 8) ** (1 / 3))

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            find_sequential_schedule(0, 4, 4, 4, 2)


class TestParallelizeSchedule:
    def test_limited_memory_depth(self):
        m = n = k = 1024
        p, s = 16, 256
        a = find_sequential_schedule(s, m, n, k, p)
        b = parallelize_schedule(a, m, n, k, p, s)
        assert b == pytest.approx(m * n * k / (p * s))

    def test_extra_memory_cubic(self):
        m = n = k = 64
        p, s = 8, 1 << 20
        a = find_sequential_schedule(s, m, n, k, p)
        b = parallelize_schedule(a, m, n, k, p, s)
        assert a == pytest.approx(b)

    def test_rejects_nonpositive_a(self):
        with pytest.raises(ValueError):
            parallelize_schedule(0.0, 4, 4, 4, 2, 16)


class TestOptimalLocalDomain:
    def test_load_balance(self):
        m = n = k = 512
        p, s = 64, 16384
        domain = optimal_local_domain(m, n, k, p, s)
        assert domain.domain_volume == pytest.approx(m * n * k / p, rel=1e-9)

    def test_memory_constraint_respected(self):
        m = n = k = 1024
        p, s = 512, 8192
        domain = optimal_local_domain(m, n, k, p, s)
        assert domain.a ** 2 <= s + 1e-9

    def test_rejects_insufficient_aggregate_memory(self):
        with pytest.raises(ValueError):
            optimal_local_domain(1024, 1024, 1024, 2, 100)

    def test_step_structure_limited_regime(self):
        m = n = k = 1024
        p, s = 1024, 4096
        domain = optimal_local_domain(m, n, k, p, s)
        assert domain.num_steps >= 1
        assert domain.step_size >= 1
        # In the limited regime the domain is a tall slab: b > a.
        assert domain.b > domain.a

    def test_single_step_when_memory_plentiful(self):
        m = n = k = 64
        p, s = 8, 1 << 20
        domain = optimal_local_domain(m, n, k, p, s)
        assert domain.num_steps == 1

    def test_io_per_processor_formula(self):
        m = n = k = 512
        p, s = 64, 16384
        domain = optimal_local_domain(m, n, k, p, s)
        assert domain.io_per_processor == pytest.approx(2 * domain.a * domain.b + domain.a ** 2)

    def test_a_never_exceeds_sqrt_s(self):
        for p in [128, 256, 512, 1024]:
            domain = optimal_local_domain(512, 512, 512, p, 10000)
            assert domain.a <= math.sqrt(10000) + 1e-9
