"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestMultiplyCommand:
    def test_runs_and_verifies(self, capsys):
        code = main(["multiply", "--m", "32", "--n", "24", "--k", "16", "--processors", "4", "--memory", "2048"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verified against numpy: OK" in out
        assert "processor grid" in out

    def test_reports_bound(self, capsys):
        main(["multiply", "--m", "16", "--n", "16", "--k", "16", "--processors", "2", "--memory", "1024"])
        out = capsys.readouterr().out
        assert "Theorem 2 bound" in out


class TestCompareCommand:
    def test_limited_regime(self, capsys):
        code = main(["compare", "--family", "square", "--regime", "limited", "--processors", "4", "9", "--memory", "1024"])
        out = capsys.readouterr().out
        assert code == 0
        assert "COSMA words/rank" in out
        assert "all runs verified against numpy: OK" in out

    def test_subset_of_algorithms(self, capsys):
        code = main([
            "compare", "--family", "largeK", "--regime", "extra",
            "--processors", "4", "--memory", "1024",
            "--algorithms", "COSMA", "CARMA",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "CARMA" in out
        assert "ScaLAPACK" not in out


class TestRegistryDrivenCli:
    """The registry feeds every algorithm choice list (multiply/plan/compare/sweep)."""

    def test_multiply_with_alternative_algorithm(self, capsys):
        code = main(["multiply", "--m", "32", "--n", "32", "--k", "32",
                     "--processors", "4", "--memory", "4096", "--algorithm", "CARMA"])
        out = capsys.readouterr().out
        assert code == 0
        assert "algorithm            : CARMA" in out
        assert "verified against numpy: OK" in out

    def test_multiply_accepts_alias_and_prints_canonical_name(self, capsys):
        code = main(["multiply", "--m", "24", "--n", "24", "--k", "24",
                     "--processors", "4", "--memory", "2048", "--algorithm", "SUMMA"])
        out = capsys.readouterr().out
        assert code == 0
        assert "algorithm            : ScaLAPACK" in out

    def test_multiply_volume_mode_skips_verification(self, capsys):
        code = main(["multiply", "--m", "64", "--n", "64", "--k", "64",
                     "--processors", "16", "--memory", "2048", "--mode", "volume"])
        out = capsys.readouterr().out
        assert code == 0
        assert "SKIPPED" in out

    def test_plan_reports_grid_without_executing(self, capsys):
        code = main(["plan", "--m", "4096", "--n", "4096", "--k", "4096",
                     "--processors", "1024", "--memory", "65536"])
        out = capsys.readouterr().out
        assert code == 0
        assert "feasible             : yes" in out
        assert "fitted grid" in out
        assert "predicted words/rank" in out

    def test_plan_flags_infeasible_points(self, capsys):
        code = main(["plan", "--m", "512", "--n", "512", "--k", "512",
                     "--processors", "2", "--memory", "64"])
        out = capsys.readouterr().out
        assert code == 1
        assert "feasible             : no" in out
        assert "footprint" in out

    def test_compare_rejects_unknown_algorithm(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["compare", "--processors", "4", "--algorithms", "MAGMA"])
        assert excinfo.value.code == 2
        assert "invalid choice: 'MAGMA'" in capsys.readouterr().err

    def test_sweep_rejects_unknown_algorithm(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--processors", "4", "--algorithms", "MAGMA",
                  "--out", str(tmp_path / "store")])
        assert excinfo.value.code == 2
        assert "invalid choice: 'MAGMA'" in capsys.readouterr().err

    def test_compare_accepts_alias(self, capsys):
        code = main(["compare", "--family", "square", "--regime", "limited",
                     "--processors", "4", "--memory", "1024",
                     "--algorithms", "COSMA", "SUMMA"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ScaLAPACK words/rank" in out


class TestSweepCommand:
    def test_small_campaign_and_cached_rerun(self, capsys, tmp_path):
        argv = [
            "sweep", "--families", "square", "--regimes", "limited",
            "--processors", "4", "9", "--algorithms", "COSMA", "CARMA",
            "--mode", "volume", "--jobs", "1", "--out", str(tmp_path / "store"),
        ]
        code = main(argv)
        out = capsys.readouterr().out
        assert code == 0
        assert "failed=0 executed=4 cached=0" in out
        assert "COSMA words/rank" in out
        assert "volume mode" in out

        code = main(argv)
        out = capsys.readouterr().out
        assert code == 0
        assert "failed=0 executed=0 cached=4" in out

    def test_parallel_jobs(self, capsys, tmp_path):
        code = main([
            "sweep", "--families", "square", "--regimes", "limited",
            "--processors", "4", "--algorithms", "COSMA",
            "--jobs", "2", "--out", str(tmp_path / "store"),
        ])
        assert code == 0
        assert "failed=0 executed=1 cached=0" in capsys.readouterr().out

    def test_spec_file(self, capsys, tmp_path):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "from-file",
            "algorithms": ["COSMA"],
            "families": ["square"],
            "regimes": ["limited"],
            "p_values": [4],
            "memory_words": 1024,
            "mode": "volume",
        }))
        code = main(["sweep", "--spec", str(spec_path), "--out", str(tmp_path / "store")])
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign 'from-file': 1 runs" in out

    def test_spec_conflicts_with_campaign_flags(self, capsys, tmp_path):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"name": "x", "algorithms": ["COSMA"],
                                         "p_values": [4], "mode": "volume"}))
        code = main(["sweep", "--spec", str(spec_path), "--mode", "legacy",
                     "--out", str(tmp_path / "store")])
        err = capsys.readouterr().err
        assert code == 2
        assert "--spec replaces the campaign flags" in err
        assert "--mode" in err

    def test_full_table(self, capsys, tmp_path):
        code = main([
            "sweep", "--families", "square", "--regimes", "limited",
            "--processors", "4", "--algorithms", "COSMA",
            "--out", str(tmp_path / "store"), "--full-table",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "predicted_io_words_per_rank" in out


class TestBoundsCommand:
    def test_prints_all_rows(self, capsys):
        code = main(["bounds", "--m", "256", "--n", "256", "--k", "256", "--processors", "16", "--memory", "4096"])
        out = capsys.readouterr().out
        assert code == 0
        for label in ("Theorem 1", "Theorem 2", "2D", "2.5D", "CARMA", "COSMA"):
            assert label in out


class TestGridCommand:
    def test_figure5_case(self, capsys):
        code = main(["grid", "--m", "4096", "--n", "4096", "--k", "4096", "--processors", "65"])
        out = capsys.readouterr().out
        assert code == 0
        assert "(4, 4, 4)" in out
        assert "1 idle" in out

    def test_memory_aware(self, capsys):
        code = main([
            "grid", "--m", "64", "--n", "64", "--k", "256", "--processors", "4", "--memory", "2048",
        ])
        assert code == 0
        assert "fitted grid" in capsys.readouterr().out


class TestSequentialCommand:
    def test_reports_ratio(self, capsys):
        code = main(["sequential", "--size", "16", "--memory", "32", "64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "lower bound" in out
        assert "numerics verified: OK" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_required_argument(self):
        with pytest.raises(SystemExit):
            main(["bounds", "--m", "8"])


class TestStoreCommand:
    def _populate(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["sweep", "--families", "square", "--regimes", "limited",
              "--processors", "4", "--algorithms", "COSMA", "--out", store])
        capsys.readouterr()
        return store

    def test_verify_clean_store(self, capsys, tmp_path):
        store = self._populate(tmp_path, capsys)
        assert main(["store", "verify", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "clean" in out and "1 live records" in out

    def test_verify_flags_dirty_store_and_compact_heals_it(self, capsys, tmp_path):
        store = self._populate(tmp_path, capsys)
        results = tmp_path / "store" / "results.jsonl"
        line = results.read_text().splitlines()[0]
        with results.open("a") as handle:
            handle.write(line + "\n")        # duplicate
            handle.write(line[: len(line) // 2])  # torn
        assert main(["store", "verify", "--store", store]) == 1
        out = capsys.readouterr().out
        assert "DIRTY" in out
        assert main(["store", "compact", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "dropped 2 stale lines" in out
        assert main(["store", "verify", "--store", store]) == 0

    def test_missing_store_is_an_error(self, capsys, tmp_path):
        assert main(["store", "verify", "--store", str(tmp_path / "absent")]) == 2

    def test_sweep_fault_tolerance_flags(self, capsys, tmp_path):
        code = main([
            "sweep", "--families", "square", "--regimes", "limited",
            "--processors", "4", "--algorithms", "COSMA",
            "--out", str(tmp_path / "store"),
            "--timeout-s", "30", "--max-attempts", "2", "--memory-budget", "100",
        ])
        out = capsys.readouterr().out
        # 64 words/rank * 4 ranks = 256 words predicted > 100-word budget.
        assert code == 1
        assert "refused=1" in out
