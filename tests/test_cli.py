"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestMultiplyCommand:
    def test_runs_and_verifies(self, capsys):
        code = main(["multiply", "--m", "32", "--n", "24", "--k", "16", "--processors", "4", "--memory", "2048"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verified against numpy: OK" in out
        assert "processor grid" in out

    def test_reports_bound(self, capsys):
        main(["multiply", "--m", "16", "--n", "16", "--k", "16", "--processors", "2", "--memory", "1024"])
        out = capsys.readouterr().out
        assert "Theorem 2 bound" in out


class TestCompareCommand:
    def test_limited_regime(self, capsys):
        code = main(["compare", "--family", "square", "--regime", "limited", "--processors", "4", "9", "--memory", "1024"])
        out = capsys.readouterr().out
        assert code == 0
        assert "COSMA words/rank" in out
        assert "all runs verified against numpy: OK" in out

    def test_subset_of_algorithms(self, capsys):
        code = main([
            "compare", "--family", "largeK", "--regime", "extra",
            "--processors", "4", "--memory", "1024",
            "--algorithms", "COSMA", "CARMA",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "CARMA" in out
        assert "ScaLAPACK" not in out


class TestSweepCommand:
    def test_small_campaign_and_cached_rerun(self, capsys, tmp_path):
        argv = [
            "sweep", "--families", "square", "--regimes", "limited",
            "--processors", "4", "9", "--algorithms", "COSMA", "CARMA",
            "--mode", "volume", "--jobs", "1", "--out", str(tmp_path / "store"),
        ]
        code = main(argv)
        out = capsys.readouterr().out
        assert code == 0
        assert "executed 4, cached 0, failed 0" in out
        assert "COSMA words/rank" in out
        assert "volume mode" in out

        code = main(argv)
        out = capsys.readouterr().out
        assert code == 0
        assert "executed 0, cached 4, failed 0" in out

    def test_parallel_jobs(self, capsys, tmp_path):
        code = main([
            "sweep", "--families", "square", "--regimes", "limited",
            "--processors", "4", "--algorithms", "COSMA",
            "--jobs", "2", "--out", str(tmp_path / "store"),
        ])
        assert code == 0
        assert "executed 1, cached 0, failed 0" in capsys.readouterr().out

    def test_spec_file(self, capsys, tmp_path):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "from-file",
            "algorithms": ["COSMA"],
            "families": ["square"],
            "regimes": ["limited"],
            "p_values": [4],
            "memory_words": 1024,
            "mode": "volume",
        }))
        code = main(["sweep", "--spec", str(spec_path), "--out", str(tmp_path / "store")])
        out = capsys.readouterr().out
        assert code == 0
        assert "campaign 'from-file': 1 runs" in out

    def test_spec_conflicts_with_campaign_flags(self, capsys, tmp_path):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"name": "x", "algorithms": ["COSMA"],
                                         "p_values": [4], "mode": "volume"}))
        code = main(["sweep", "--spec", str(spec_path), "--mode", "legacy",
                     "--out", str(tmp_path / "store")])
        err = capsys.readouterr().err
        assert code == 2
        assert "--spec replaces the campaign flags" in err
        assert "--mode" in err

    def test_full_table(self, capsys, tmp_path):
        code = main([
            "sweep", "--families", "square", "--regimes", "limited",
            "--processors", "4", "--algorithms", "COSMA",
            "--out", str(tmp_path / "store"), "--full-table",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "predicted_io_words_per_rank" in out


class TestBoundsCommand:
    def test_prints_all_rows(self, capsys):
        code = main(["bounds", "--m", "256", "--n", "256", "--k", "256", "--processors", "16", "--memory", "4096"])
        out = capsys.readouterr().out
        assert code == 0
        for label in ("Theorem 1", "Theorem 2", "2D", "2.5D", "CARMA", "COSMA"):
            assert label in out


class TestGridCommand:
    def test_figure5_case(self, capsys):
        code = main(["grid", "--m", "4096", "--n", "4096", "--k", "4096", "--processors", "65"])
        out = capsys.readouterr().out
        assert code == 0
        assert "(4, 4, 4)" in out
        assert "1 idle" in out

    def test_memory_aware(self, capsys):
        code = main([
            "grid", "--m", "64", "--n", "64", "--k", "256", "--processors", "4", "--memory", "2048",
        ])
        assert code == 0
        assert "fitted grid" in capsys.readouterr().out


class TestSequentialCommand:
    def test_reports_ratio(self, capsys):
        code = main(["sequential", "--size", "16", "--memory", "32", "64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "lower bound" in out
        assert "numerics verified: OK" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_required_argument(self):
        with pytest.raises(SystemExit):
            main(["bounds", "--m", "8"])
