"""Tests for the COSMA distributed executor."""

import numpy as np
import pytest

from repro.core.cosma import cosma_multiply
from repro.core.cost_model import cosma_io_cost
from repro.core.grid import ProcessorGrid
from repro.machine.simulator import DistributedMachine


class TestCorrectness:
    @pytest.mark.parametrize("p", [1, 2, 4, 8, 12])
    def test_matches_numpy_square(self, rng, p):
        a = rng.standard_normal((24, 24))
        b = rng.standard_normal((24, 24))
        result = cosma_multiply(a, b, p, memory_words=4096)
        assert np.allclose(result.matrix, a @ b)

    @pytest.mark.parametrize(
        "shape", [(16, 24, 8), (30, 10, 50), (7, 13, 11), (64, 4, 4), (4, 4, 64)]
    )
    def test_matches_numpy_rectangular(self, rng, shape):
        m, n, k = shape
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        result = cosma_multiply(a, b, 6, memory_words=8192)
        assert np.allclose(result.matrix, a @ b)

    def test_matches_numpy_tiny_memory(self, rng):
        a = rng.standard_normal((16, 32))
        b = rng.standard_normal((32, 16))
        # Memory just large enough for the local working set: forces many rounds.
        result = cosma_multiply(a, b, 4, memory_words=200)
        assert np.allclose(result.matrix, a @ b)
        assert result.num_rounds > 1

    def test_explicit_grid(self, rng):
        a = rng.standard_normal((12, 18))
        b = rng.standard_normal((18, 12))
        result = cosma_multiply(a, b, 8, memory_words=4096, grid=ProcessorGrid(2, 2, 2))
        assert np.allclose(result.matrix, a @ b)
        assert result.grid.as_tuple() == (2, 2, 2)

    def test_rma_backend_same_result_and_volume(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        two_sided = cosma_multiply(a, b, 8, memory_words=2048, use_rma=False)
        one_sided = cosma_multiply(a, b, 8, memory_words=2048, use_rma=True)
        assert np.allclose(two_sided.matrix, one_sided.matrix)
        assert two_sided.counters.total_words_sent == one_sided.counters.total_words_sent

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            cosma_multiply(rng.standard_normal((4, 3)), rng.standard_normal((4, 4)), 2, 1024)


class TestCommunicationAccounting:
    def test_single_rank_no_communication(self, rng):
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        result = cosma_multiply(a, b, 1, memory_words=4096)
        assert result.counters.total_words_sent == 0

    def test_conservation(self, rng):
        a = rng.standard_normal((24, 24))
        b = rng.standard_normal((24, 24))
        result = cosma_multiply(a, b, 8, memory_words=2048)
        assert result.counters.conservation_ok()

    def test_volume_within_constant_of_lower_bound(self, rng):
        m = n = k = 48
        p, s = 8, 2048
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        result = cosma_multiply(a, b, p, memory_words=s)
        analytic = cosma_io_cost(m, n, k, p, s)
        measured = result.counters.mean_received_per_rank()
        # The measured per-rank received volume must not exceed the analytic
        # cost (the analytic cost also charges for locally-available data).
        assert measured <= analytic * 1.25

    def test_more_processors_less_volume_per_rank(self, rng):
        a = rng.standard_normal((48, 48))
        b = rng.standard_normal((48, 48))
        small = cosma_multiply(a, b, 4, memory_words=1 << 16)
        large = cosma_multiply(a, b, 16, memory_words=1 << 16)
        assert large.mean_words_per_rank < small.mean_words_per_rank

    def test_round_volumes_recorded(self, rng):
        a = rng.standard_normal((16, 32))
        b = rng.standard_normal((32, 16))
        result = cosma_multiply(a, b, 4, memory_words=700)
        assert len(result.round_volumes) == result.num_rounds
        assert all(v >= 0 for v in result.round_volumes)

    def test_flops_balanced(self, rng):
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        result = cosma_multiply(a, b, 8, memory_words=1 << 16)
        flops = [r.flops for r in result.counters.per_rank if r.flops > 0]
        assert max(flops) <= 2 * min(flops)

    def test_total_flops_at_least_2mnk(self, rng):
        m = n = k = 24
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        result = cosma_multiply(a, b, 6, memory_words=1 << 16)
        assert result.counters.total_flops >= 2 * m * n * k

    def test_reuses_supplied_machine(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        machine = DistributedMachine(4, memory_words=4096)
        result = cosma_multiply(a, b, 4, memory_words=4096, machine=machine)
        assert result.counters is machine.counters

    def test_input_vs_output_attribution(self, rng):
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        result = cosma_multiply(a, b, 8, memory_words=512, grid=ProcessorGrid(2, 2, 2))
        total_in = sum(r.input_words for r in result.counters.per_rank)
        total_out = sum(r.output_words for r in result.counters.per_rank)
        assert total_in > 0
        # With pk = 2 the C reduction must appear as output traffic.
        assert total_out > 0


class TestGridSelection:
    def test_flat_matrices_get_2d_grid(self, rng):
        a = rng.standard_normal((64, 4))
        b = rng.standard_normal((4, 64))
        result = cosma_multiply(a, b, 16, memory_words=1 << 16)
        assert result.grid.pk == 1

    def test_tall_skinny_gets_k_parallelism(self, rng):
        a = rng.standard_normal((8, 512))
        b = rng.standard_normal((512, 8))
        result = cosma_multiply(a, b, 16, memory_words=1 << 16)
        assert result.grid.pk > 1
        assert np.allclose(result.matrix, a @ b)

    def test_unfavorable_processor_count_leaves_ranks_idle(self, rng):
        a = rng.standard_normal((32, 32))
        b = rng.standard_normal((32, 32))
        result = cosma_multiply(a, b, 13, memory_words=1 << 16)
        assert np.allclose(result.matrix, a @ b)
        assert result.decomposition.p_used <= 13
