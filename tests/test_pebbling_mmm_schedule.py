"""Tests for the near-optimal sequential MMM schedule (Listing 1)."""

import math

import pytest

from repro.pebbling.game import PebbleGame
from repro.pebbling.mmm_bounds import sequential_io_lower_bound
from repro.pebbling.mmm_cdag import build_mmm_cdag
from repro.pebbling.mmm_schedule import (
    optimal_tile_sizes,
    sequential_mmm_schedule,
    square_tile_size,
)


class TestTileSizes:
    def test_square_tile_size(self):
        # a = floor(sqrt(S+1)) - 1
        assert square_tile_size(99) == 9
        assert square_tile_size(3) == 1

    def test_square_tile_fits_memory(self):
        for s in [8, 17, 64, 200, 1000]:
            a = square_tile_size(s)
            assert a * a + 2 * a <= s

    def test_optimal_tiles_fit_constraint(self):
        for s in [10, 50, 100, 500, 4096]:
            a, b = optimal_tile_sizes(s)
            assert a * b + a + 1 <= s

    def test_optimal_beats_or_matches_square(self):
        for s in [16, 100, 1024]:
            a, b = optimal_tile_sizes(s)
            sq = square_tile_size(s)
            rho_opt = a * b / (a + b)
            rho_sq = sq * sq / (2 * sq)
            assert rho_opt >= rho_sq - 1e-12

    def test_optimal_close_to_sqrt_s(self):
        s = 10_000
        a, b = optimal_tile_sizes(s)
        assert abs(a - math.sqrt(s)) < 0.05 * math.sqrt(s)
        assert abs(b - math.sqrt(s)) < 0.05 * math.sqrt(s)

    def test_closed_form_close_to_search(self):
        for s in [100, 1000, 10_000]:
            a_search, b_search = optimal_tile_sizes(s, method="search")
            a_closed, b_closed = optimal_tile_sizes(s, method="closed_form")
            assert abs(a_search - a_closed) <= 1
            assert abs(b_search - b_closed) <= 2

    def test_rejects_tiny_memory(self):
        with pytest.raises(ValueError):
            optimal_tile_sizes(3)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            optimal_tile_sizes(100, method="magic")


class TestScheduleStructure:
    def test_covers_all_multiplications(self):
        schedule = sequential_mmm_schedule(7, 5, 4, 64)
        covered = sum(step.size for step in schedule.steps)
        assert covered == 7 * 5 * 4

    def test_tiles_clipped_to_matrix(self):
        schedule = sequential_mmm_schedule(5, 5, 3, 1000)
        for step in schedule.steps:
            assert step.rows[1] <= 5
            assert step.cols[1] <= 5

    def test_number_of_steps(self):
        schedule = sequential_mmm_schedule(8, 8, 4, 30)
        tiles = math.ceil(8 / schedule.a) * math.ceil(8 / schedule.b)
        assert schedule.num_steps == tiles * 4

    def test_square_variant(self):
        schedule = sequential_mmm_schedule(8, 8, 4, 30, tile="square")
        assert schedule.a == schedule.b == square_tile_size(30)

    def test_unknown_tile_strategy(self):
        with pytest.raises(ValueError):
            sequential_mmm_schedule(4, 4, 4, 30, tile="weird")

    def test_predicted_io_close_to_lower_bound(self):
        m = n = k = 64
        s = 256
        schedule = sequential_mmm_schedule(m, n, k, s)
        bound = sequential_io_lower_bound(m, n, k, s)
        # The feasible schedule is within the sqrt(S)/(sqrt(S+1)-1) factor plus
        # discretization slack.
        assert schedule.predicted_io() >= bound * 0.9
        assert schedule.predicted_io() <= bound * 1.35


class TestXPartitionView:
    def test_valid_partition(self):
        mmm = build_mmm_cdag(4, 4, 3)
        schedule = sequential_mmm_schedule(4, 4, 3, 20)
        partition = schedule.as_x_partition(mmm)
        x = schedule.a * schedule.b + schedule.a + schedule.b + schedule.a * schedule.b
        assert partition.is_pairwise_disjoint()
        assert partition.covers_all_computations()
        assert partition.has_no_cyclic_dependencies()
        assert partition.max_dominator_size() <= x

    def test_dimension_mismatch_rejected(self):
        mmm = build_mmm_cdag(3, 3, 3)
        schedule = sequential_mmm_schedule(4, 4, 3, 20)
        with pytest.raises(ValueError):
            schedule.as_x_partition(mmm)


class TestExecutablePebbling:
    @pytest.mark.parametrize("tile", ["optimal", "square"])
    @pytest.mark.parametrize("m,n,k,s", [(4, 4, 3, 12), (6, 5, 4, 20), (3, 7, 2, 16)])
    def test_moves_are_legal_and_complete(self, m, n, k, s, tile):
        mmm = build_mmm_cdag(m, n, k)
        schedule = sequential_mmm_schedule(m, n, k, s, tile=tile)
        game = PebbleGame(mmm.cdag, red_pebbles=schedule.required_red_pebbles())
        result = game.run(schedule.as_pebbling_moves())
        assert result.complete

    def test_measured_io_matches_prediction(self):
        m, n, k, s = 6, 6, 4, 14
        mmm = build_mmm_cdag(m, n, k)
        schedule = sequential_mmm_schedule(m, n, k, s)
        game = PebbleGame(mmm.cdag, red_pebbles=schedule.required_red_pebbles())
        result = game.run(schedule.as_pebbling_moves())
        assert result.io == schedule.predicted_io()

    def test_measured_io_respects_lower_bound_scaling(self):
        # The measured I/O of the legal schedule is within a constant factor of
        # the Theorem 1 bound evaluated at the schedule's effective tile memory.
        m, n, k = 8, 8, 6
        s = 24
        mmm = build_mmm_cdag(m, n, k)
        schedule = sequential_mmm_schedule(m, n, k, s)
        game = PebbleGame(mmm.cdag, red_pebbles=schedule.required_red_pebbles())
        result = game.run(schedule.as_pebbling_moves())
        bound = sequential_io_lower_bound(m, n, k, schedule.required_red_pebbles())
        assert result.io >= bound * 0.5

    def test_peak_red_usage_within_declared_capacity(self):
        m, n, k, s = 6, 6, 4, 18
        mmm = build_mmm_cdag(m, n, k)
        schedule = sequential_mmm_schedule(m, n, k, s)
        game = PebbleGame(mmm.cdag, red_pebbles=schedule.required_red_pebbles())
        result = game.run(schedule.as_pebbling_moves())
        assert result.max_red_in_use <= schedule.required_red_pebbles()
