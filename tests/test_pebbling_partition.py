"""Tests for X-partitions, dominator/minimum/reuse/store sets."""

import pytest

from repro.pebbling.cdag import CDAG
from repro.pebbling.mmm_cdag import build_mmm_cdag, c_vertex
from repro.pebbling.partition import XPartition, dominator_set, is_dominator, minimum_set


@pytest.fixture
def chain():
    g = CDAG()
    g.add_edge("x", "y")
    g.add_edge("y", "z")
    g.add_edge("z", "w")
    return g


class TestDominatorSet:
    def test_chain_subset(self, chain):
        dom = dominator_set(chain, {"z", "w"})
        assert dom == {"y"}

    def test_subset_containing_inputs_children(self, chain):
        dom = dominator_set(chain, {"y"})
        assert dom == {"x"}

    def test_is_dominator_accepts_boundary(self, chain):
        assert is_dominator(chain, {"z", "w"}, {"y"})

    def test_is_dominator_rejects_empty(self, chain):
        assert not is_dominator(chain, {"z", "w"}, set())

    def test_mmm_dominator_is_alpha_beta_gamma(self):
        mmm = build_mmm_cdag(2, 2, 2)
        # Subcomputation: all partial sums at k-index t=1 (the second updates).
        subset = {c_vertex(i, j, 1) for i in range(2) for j in range(2)}
        dom = dominator_set(mmm.cdag, subset)
        alpha, beta, _gamma = mmm.projections(subset)
        previous_partials = {c_vertex(i, j, 0) for i in range(2) for j in range(2)}
        assert dom == alpha | beta | previous_partials


class TestMinimumSet:
    def test_chain(self, chain):
        assert minimum_set(chain, {"y", "z"}) == {"z"}

    def test_independent_vertices(self):
        g = CDAG()
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        assert minimum_set(g, {"b", "c"}) == {"b", "c"}


class TestXPartitionValidity:
    def test_valid_partition_of_mmm(self):
        mmm = build_mmm_cdag(2, 2, 3)
        subsets = [
            {c_vertex(i, j, t) for i in range(2) for j in range(2)} for t in range(3)
        ]
        partition = XPartition(cdag=mmm.cdag, subcomputations=subsets)
        assert partition.is_pairwise_disjoint()
        assert partition.covers_all_computations()
        assert partition.has_no_cyclic_dependencies()
        assert partition.is_valid(x=12)

    def test_dominator_size_limit(self):
        mmm = build_mmm_cdag(2, 2, 3)
        subsets = [
            {c_vertex(i, j, t) for i in range(2) for j in range(2)} for t in range(3)
        ]
        partition = XPartition(cdag=mmm.cdag, subcomputations=subsets)
        # Dominator of a step is 2 A-elements + 2 B-elements + 4 previous partials = 8.
        assert partition.max_dominator_size() == 8
        assert not partition.is_valid(x=4)

    def test_overlapping_subsets_invalid(self):
        mmm = build_mmm_cdag(2, 2, 2)
        v = {c_vertex(0, 0, 0)}
        partition = XPartition(cdag=mmm.cdag, subcomputations=[v, v])
        assert not partition.is_pairwise_disjoint()

    def test_non_covering_invalid(self):
        mmm = build_mmm_cdag(2, 2, 2)
        partition = XPartition(cdag=mmm.cdag, subcomputations=[{c_vertex(0, 0, 0)}])
        assert not partition.covers_all_computations()

    def test_wrong_order_has_cyclic_dependency(self):
        mmm = build_mmm_cdag(1, 1, 2)
        later = {c_vertex(0, 0, 1)}
        earlier = {c_vertex(0, 0, 0)}
        partition = XPartition(cdag=mmm.cdag, subcomputations=[later, earlier])
        assert not partition.has_no_cyclic_dependencies()

    def test_largest_subcomputation(self):
        mmm = build_mmm_cdag(2, 2, 2)
        subsets = [
            {c_vertex(i, j, t) for i in range(2) for j in range(2)} for t in range(2)
        ]
        partition = XPartition(cdag=mmm.cdag, subcomputations=subsets)
        assert partition.largest_subcomputation() == 4

    def test_empty_partition(self):
        mmm = build_mmm_cdag(1, 1, 1)
        partition = XPartition(cdag=mmm.cdag, subcomputations=[])
        assert partition.h == 0
        assert partition.max_dominator_size() == 0


class TestReuseAndStoreSets:
    def test_first_subcomputation_has_no_reuse(self):
        mmm = build_mmm_cdag(2, 2, 2)
        subsets = [
            {c_vertex(i, j, t) for i in range(2) for j in range(2)} for t in range(2)
        ]
        partition = XPartition(cdag=mmm.cdag, subcomputations=subsets)
        reuse = partition.reuse_sets()
        assert reuse[0] == set()

    def test_partial_sums_are_reused_between_k_steps(self):
        mmm = build_mmm_cdag(2, 2, 2)
        subsets = [
            {c_vertex(i, j, t) for i in range(2) for j in range(2)} for t in range(2)
        ]
        partition = XPartition(cdag=mmm.cdag, subcomputations=subsets)
        reuse = partition.reuse_sets()
        # The second step's dominator includes the first step's partial sums,
        # which stayed in fast memory: they are the reuse set.
        assert reuse[1] == {c_vertex(i, j, 0) for i in range(2) for j in range(2)}

    def test_store_sets_only_final_outputs(self):
        mmm = build_mmm_cdag(2, 2, 2)
        subsets = [
            {c_vertex(i, j, t) for i in range(2) for j in range(2)} for t in range(2)
        ]
        partition = XPartition(cdag=mmm.cdag, subcomputations=subsets)
        stores = partition.store_sets()
        # Intermediate partial sums are consumed by the next step: nothing stored.
        assert stores[0] == set()
        # The last step stores the outputs.
        assert stores[1] == {c_vertex(i, j, 1) for i in range(2) for j in range(2)}
