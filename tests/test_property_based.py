"""Property-based tests (hypothesis) for core data structures and invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.carma import carma_domains
from repro.baselines.costs import io_cost_25d, io_cost_2d, io_cost_carma, io_cost_cosma
from repro.baselines.cuboid import validate_domains
from repro.core.cosma import cosma_multiply
from repro.core.grid import communication_volume_per_rank, fit_ranks
from repro.layouts.blocked import BlockedLayout
from repro.layouts.block_cyclic import BlockCyclicLayout
from repro.machine.collectives import broadcast, reduce
from repro.machine.simulator import DistributedMachine
from repro.pebbling.mmm_bounds import (
    near_optimal_sequential_io,
    parallel_io_lower_bound,
    sequential_io_lower_bound,
)
from repro.pebbling.mmm_schedule import optimal_tile_sizes, sequential_mmm_schedule
from repro.utils.intmath import ceil_div, divisors, factorize, split_evenly

# Keep hypothesis example counts moderate: several properties run simulator code.
settings.register_profile("repro", max_examples=40, deadline=None)
settings.load_profile("repro")

dims = st.integers(min_value=1, max_value=40)
small_dims = st.integers(min_value=1, max_value=16)


class TestIntMathProperties:
    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=1, max_value=10**4))
    def test_ceil_div_definition(self, a, b):
        q = ceil_div(a, b)
        assert (q - 1) * b < a <= q * b or (a == 0 and q == 0)

    @given(st.integers(min_value=1, max_value=20000))
    def test_factorize_reconstructs(self, n):
        product = 1
        for prime, exponent in factorize(n).items():
            product *= prime ** exponent
        assert product == n

    @given(st.integers(min_value=1, max_value=20000))
    def test_divisors_divide(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds == sorted(ds)
        assert 1 in ds and n in ds

    @given(st.integers(min_value=0, max_value=5000), st.integers(min_value=1, max_value=64))
    def test_split_evenly_invariants(self, extent, parts):
        sizes = split_evenly(extent, parts)
        assert sum(sizes) == extent
        assert len(sizes) == parts
        assert max(sizes) - min(sizes) <= 1


class TestLayoutProperties:
    @given(
        rows=st.integers(min_value=1, max_value=30),
        cols=st.integers(min_value=1, max_value=30),
        grid_rows=st.integers(min_value=1, max_value=6),
        grid_cols=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_blocked_split_assemble_roundtrip(self, rows, cols, grid_rows, grid_cols, seed):
        grid_rows = min(grid_rows, rows)
        grid_cols = min(grid_cols, cols)
        layout = BlockedLayout(rows, cols, grid_rows, grid_cols)
        matrix = np.random.default_rng(seed).standard_normal((rows, cols))
        assert np.allclose(layout.assemble(layout.split(matrix)), matrix)

    @given(
        rows=st.integers(min_value=1, max_value=30),
        cols=st.integers(min_value=1, max_value=30),
        block=st.integers(min_value=1, max_value=5),
        grid=st.integers(min_value=1, max_value=4),
    )
    def test_block_cyclic_owners_partition_matrix(self, rows, cols, block, grid):
        layout = BlockCyclicLayout(rows, cols, block, block, grid, grid)
        assert sum(layout.words_per_owner()) == rows * cols

    @given(
        rows=st.integers(min_value=2, max_value=24),
        cols=st.integers(min_value=2, max_value=24),
        grid_rows=st.integers(min_value=1, max_value=4),
        grid_cols=st.integers(min_value=1, max_value=4),
    )
    def test_blocked_owner_count_matches_grid(self, rows, cols, grid_rows, grid_cols):
        grid_rows = min(grid_rows, rows)
        grid_cols = min(grid_cols, cols)
        layout = BlockedLayout(rows, cols, grid_rows, grid_cols)
        owners = np.unique(layout.element_owners())
        assert len(owners) == grid_rows * grid_cols


class TestBoundProperties:
    @given(m=dims, n=dims, k=dims, s=st.integers(min_value=4, max_value=4096))
    def test_feasible_schedule_never_beats_lower_bound(self, m, n, k, s):
        assert near_optimal_sequential_io(m, n, k, s) >= sequential_io_lower_bound(m, n, k, s) - 1e-9

    @given(m=dims, n=dims, k=dims, s=st.integers(min_value=4, max_value=4096))
    def test_sequential_bound_monotone_in_memory(self, m, n, k, s):
        assert sequential_io_lower_bound(m, n, k, s) >= sequential_io_lower_bound(m, n, k, 4 * s)

    @given(
        m=st.integers(min_value=8, max_value=256),
        n=st.integers(min_value=8, max_value=256),
        k=st.integers(min_value=8, max_value=256),
        p=st.integers(min_value=1, max_value=64),
    )
    def test_cosma_cost_never_exceeds_baselines_when_feasible(self, m, n, k, p):
        footprint = m * n + m * k + n * k
        s = max(16, 2 * footprint // p)
        cosma = io_cost_cosma(m, n, k, p, s)
        assert cosma <= io_cost_2d(m, n, k, p) * 1.05
        assert cosma <= io_cost_25d(m, n, k, p, s) * 1.05
        assert cosma <= io_cost_carma(m, n, k, p, s) * 1.05

    @given(
        m=st.integers(min_value=8, max_value=128),
        k=st.integers(min_value=8, max_value=128),
        p=st.integers(min_value=1, max_value=32),
    )
    def test_parallel_bound_decreasing_in_p(self, m, k, p):
        n = m
        s = max(16, (m * n + m * k + n * k) // p)
        assert parallel_io_lower_bound(m, n, k, 2 * p, s) <= parallel_io_lower_bound(m, n, k, p, s) + 1e-9

    @given(s=st.integers(min_value=4, max_value=100000))
    def test_optimal_tiles_respect_memory(self, s):
        a, b = optimal_tile_sizes(s)
        assert a * b + a + 1 <= s
        assert a >= 1 and b >= 1


class TestScheduleProperties:
    @given(m=small_dims, n=small_dims, k=small_dims, s=st.integers(min_value=4, max_value=64))
    def test_schedule_covers_iteration_space(self, m, n, k, s):
        schedule = sequential_mmm_schedule(m, n, k, s)
        assert sum(step.size for step in schedule.steps) == m * n * k

    @given(m=small_dims, n=small_dims, k=small_dims, s=st.integers(min_value=4, max_value=64))
    def test_predicted_io_at_least_inputs_outputs(self, m, n, k, s):
        schedule = sequential_mmm_schedule(m, n, k, s)
        assert schedule.predicted_io() >= m * n


class TestDecompositionProperties:
    @given(m=st.integers(min_value=2, max_value=64), n=st.integers(min_value=2, max_value=64),
           k=st.integers(min_value=2, max_value=64), p=st.integers(min_value=1, max_value=32))
    def test_carma_domains_tile_space(self, m, n, k, p):
        domains = carma_domains(m, n, k, min(p, m * n * k))
        validate_domains(m, n, k, domains)

    @given(m=st.integers(min_value=4, max_value=128), n=st.integers(min_value=4, max_value=128),
           k=st.integers(min_value=4, max_value=128), p=st.integers(min_value=1, max_value=40))
    def test_fit_ranks_work_conservation(self, m, n, k, p):
        from repro.core.grid import candidate_grids

        fit = fit_ranks(m, n, k, p, max_idle_fraction=0.03)
        grid = fit.grid
        assert grid.p_used <= p
        # The fitted grid stays within the idle allowance whenever any grid
        # in the delta window is feasible at all; for awkward (p, shape)
        # combinations (every factorization has an extent exceeding a matrix
        # dimension) the optimizer falls back to the largest feasible count.
        min_p_used = max(1, math.ceil(p * (1.0 - 0.03)))
        window_feasible = any(
            candidate_grids(q, m, n, k) for q in range(min_p_used, p + 1)
        )
        if window_feasible:
            assert fit.idle_fraction <= 0.03 + 1e-9 or grid.p_used == p
        else:
            # Fallback: the chosen count is the largest feasible one.
            assert all(
                not candidate_grids(q, m, n, k) for q in range(grid.p_used + 1, min_p_used)
            )
        # The busiest rank covers at least its fair share of the work.
        assert fit.computation_per_rank * grid.p_used >= m * n * k

    @given(m=st.integers(min_value=4, max_value=64), n=st.integers(min_value=4, max_value=64),
           k=st.integers(min_value=4, max_value=64))
    def test_single_rank_grid_communicates_nothing(self, m, n, k):
        from repro.core.grid import ProcessorGrid

        assert communication_volume_per_rank(ProcessorGrid(1, 1, 1), m, n, k) == 0


class TestSimulatorProperties:
    @given(
        q=st.integers(min_value=2, max_value=8),
        words=st.integers(min_value=1, max_value=50),
    )
    def test_broadcast_conservation_and_volume(self, q, words):
        machine = DistributedMachine(q)
        broadcast(machine, 0, list(range(q)), np.ones(words))
        assert machine.counters.conservation_ok()
        assert machine.counters.total_words_sent == (q - 1) * words

    @given(
        q=st.integers(min_value=2, max_value=8),
        words=st.integers(min_value=1, max_value=50),
    )
    def test_reduce_volume(self, q, words):
        machine = DistributedMachine(q)
        blocks = {r: np.full(words, float(r)) for r in range(q)}
        total = reduce(machine, 0, list(range(q)), blocks)
        assert machine.counters.total_words_sent == (q - 1) * words
        assert np.allclose(total, sum(range(q)))


class TestEndToEndProperties:
    @given(
        m=st.integers(min_value=2, max_value=24),
        n=st.integers(min_value=2, max_value=24),
        k=st.integers(min_value=2, max_value=24),
        p=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=25, deadline=None)
    def test_cosma_always_correct_and_conservative(self, m, n, k, p, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        result = cosma_multiply(a, b, p, memory_words=1 << 14)
        assert np.allclose(result.matrix, a @ b, atol=1e-8 * k)
        assert result.counters.conservation_ok()
        assert result.decomposition.p_used <= p
