"""Tests for the LU / Cholesky extension."""

import numpy as np
import pytest

from repro.extensions.factorizations import (
    cholesky_io_lower_bound,
    lu_io_lower_bound,
    out_of_core_cholesky,
    parallel_cholesky_cost,
    parallel_lu_cost,
)


def _spd(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestSequentialBounds:
    def test_lu_double_of_cholesky_leading_term(self):
        n, s = 1024, 4096
        lu = lu_io_lower_bound(n, s)
        chol = cholesky_io_lower_bound(n, s)
        assert lu / chol == pytest.approx(2.0, rel=0.1)

    def test_bounds_decrease_with_memory(self):
        assert lu_io_lower_bound(512, 1024) > lu_io_lower_bound(512, 4096)
        assert cholesky_io_lower_bound(512, 1024) > cholesky_io_lower_bound(512, 4096)

    def test_bounds_grow_cubically(self):
        small = cholesky_io_lower_bound(128, 256)
        large = cholesky_io_lower_bound(256, 256)
        assert large / small == pytest.approx(8.0, rel=0.3)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            lu_io_lower_bound(0, 16)


class TestParallelCosts:
    def test_lu_update_is_third_of_mmm(self):
        from repro.pebbling.mmm_bounds import parallel_io_lower_bound

        n, p, s = 4096, 64, 65536
        cost = parallel_lu_cost(n, p, s)
        assert cost.update_words == pytest.approx(parallel_io_lower_bound(n, n, n, p, s) / 3)

    def test_cholesky_cheaper_than_lu(self):
        lu = parallel_lu_cost(4096, 64, 65536)
        chol = parallel_cholesky_cost(4096, 64, 65536)
        assert chol.total_words < lu.total_words

    def test_total_includes_panel(self):
        cost = parallel_lu_cost(1024, 16, 4096)
        assert cost.total_words == pytest.approx(cost.update_words + cost.panel_words)

    def test_custom_panel_width(self):
        narrow = parallel_lu_cost(1024, 16, 4096, panel_width=8)
        wide = parallel_lu_cost(1024, 16, 4096, panel_width=64)
        assert wide.panel_words > narrow.panel_words


class TestOutOfCoreCholesky:
    @pytest.mark.parametrize("n", [8, 24, 33, 48])
    def test_matches_numpy(self, n):
        spd = _spd(n)
        result = out_of_core_cholesky(spd, memory_words=3 * 8 * 8)
        assert np.allclose(result.factor, np.linalg.cholesky(spd), atol=1e-8)

    def test_factor_is_lower_triangular(self):
        result = out_of_core_cholesky(_spd(20), memory_words=192)
        assert np.allclose(result.factor, np.tril(result.factor))

    def test_reconstructs_input(self):
        spd = _spd(30)
        result = out_of_core_cholesky(spd, memory_words=300)
        assert np.allclose(result.factor @ result.factor.T, spd, atol=1e-7)

    def test_io_counted(self):
        result = out_of_core_cholesky(_spd(32), memory_words=3 * 8 * 8)
        # At least every block must be read and written once.
        assert result.stats.loads >= 32 * 32 / 2
        assert result.stats.stores >= 32 * 32 / 2

    def test_more_memory_less_io(self):
        spd = _spd(48)
        tight = out_of_core_cholesky(spd, memory_words=3 * 6 * 6)
        roomy = out_of_core_cholesky(spd, memory_words=3 * 24 * 24)
        assert roomy.io < tight.io

    def test_io_within_factor_of_bound(self):
        n = 48
        s = 3 * 12 * 12
        result = out_of_core_cholesky(_spd(n), memory_words=s)
        bound = cholesky_io_lower_bound(n, s)
        assert result.io >= bound * 0.3
        assert result.io <= bound * 6.0

    def test_block_size_respects_memory(self):
        result = out_of_core_cholesky(_spd(64), memory_words=3 * 10 * 10)
        assert 3 * result.block_size ** 2 <= 3 * 10 * 10 + 3

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            out_of_core_cholesky(np.ones((4, 5)), memory_words=64)

    def test_single_block_case(self):
        spd = _spd(6)
        result = out_of_core_cholesky(spd, memory_words=3 * 36)
        assert np.allclose(result.factor, np.linalg.cholesky(spd))
        assert result.block_size == 6
