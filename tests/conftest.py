"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_matrices(rng) -> tuple[np.ndarray, np.ndarray]:
    """A small rectangular pair (A: 24x18, B: 18x30)."""
    return rng.standard_normal((24, 18)), rng.standard_normal((18, 30))


@pytest.fixture
def square_matrices(rng) -> tuple[np.ndarray, np.ndarray]:
    """A square pair (32x32)."""
    return rng.standard_normal((32, 32)), rng.standard_normal((32, 32))
