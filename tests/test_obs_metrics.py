"""Telemetry layer: metrics primitives, campaign metrics, progress, logging.

The registry is plain in-process bookkeeping; the interesting contracts are
(1) snapshots are JSON-serializable dicts with exact count/sum/min/max, (2)
``run_campaign`` populates the supervisor metrics and persists them both in
``CampaignResult.metrics`` and the ``campaign_metrics.json`` sidecar beside
the store -- never inside the result records themselves -- and (3) the
progress heartbeat and ``repro`` logger configuration behave on plain
streams (CI logs) as well as TTYs.
"""

import io
import json
import logging

import pytest

from repro.obs.log import configure_logging, get_logger
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.progress import CampaignProgress
from repro.sweeps import METRICS_SIDECAR, SweepSpec
from repro.sweeps.runner import run_campaign


@pytest.fixture
def spec() -> SweepSpec:
    return SweepSpec(name="obs-metrics", algorithms=("COSMA", "CARMA"),
                     families=("square",), regimes=("limited",),
                     p_values=(4, 9), memory_words=1024, mode="volume")


class TestPrimitives:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(3)
        assert counter.snapshot() == {"type": "counter", "value": 4}
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_tracks_maximum(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.set(2)
        assert gauge.snapshot() == {"type": "gauge", "value": 2, "max": 5}

    def test_histogram_cumulative_buckets(self):
        histogram = Histogram(buckets=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(56.2)
        assert (snap["min"], snap["max"]) == (0.5, 50.0)
        # Cumulative: <=1.0 holds 2, <=10.0 holds 3, +Inf holds all 4.
        assert snap["buckets"] == {"1.0": 2, "10.0": 3, "+Inf": 4}

    def test_histogram_bucket_edges_are_upper_bounds(self):
        histogram = Histogram(buckets=(1.0,))
        histogram.observe(1.0)
        assert histogram.snapshot()["buckets"]["1.0"] == 1

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistry:
    def test_get_or_create_and_kind_mismatch(self):
        registry = MetricsRegistry()
        counter = registry.counter("runs.ok")
        assert registry.counter("runs.ok") is counter
        with pytest.raises(TypeError):
            registry.gauge("runs.ok")

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(3)
        registry.histogram("h").observe(0.2)
        snap = registry.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert {m["type"] for m in snap.values()} == {"counter", "gauge", "histogram"}


class TestCampaignMetrics:
    def test_serial_campaign_populates_metrics(self, tmp_path, spec):
        result = run_campaign(spec, store=tmp_path / "store", jobs=1)
        metrics = result.metrics
        assert metrics is not None
        assert metrics["sweeps.runs.ok"]["value"] == result.executed == 4
        assert metrics["sweeps.run.latency_s"]["count"] == 4
        assert metrics["sweeps.campaign.executed"]["value"] == 4
        assert metrics["sweeps.campaign.cached"]["value"] == 0
        assert metrics["sweeps.campaign.elapsed_s"]["value"] >= 0

    def test_metrics_sidecar_matches_result(self, tmp_path, spec):
        store_path = tmp_path / "store"
        result = run_campaign(spec, store=store_path, jobs=1)
        sidecar = json.loads((store_path / METRICS_SIDECAR).read_text())
        assert sidecar == result.metrics

    def test_campaign_metrics_stay_out_of_records(self, tmp_path, spec):
        """Records stay pure functions of run parameters (the chaos
        invariant): the supervisor's registry never leaks into them."""
        serial = run_campaign(spec, store=tmp_path / "serial", jobs=1)
        supervised = run_campaign(spec, store=tmp_path / "pool", jobs=2)
        assert serial.records == supervised.records
        for record in serial.records:
            assert not any(k.startswith("sweeps.") for k in record["metrics"])

    def test_cached_rerun_reports_no_executions(self, tmp_path, spec):
        store_path = tmp_path / "store"
        run_campaign(spec, store=store_path, jobs=1)
        warm = run_campaign(spec, store=store_path, jobs=1)
        assert warm.metrics["sweeps.campaign.cached"]["value"] == 4
        assert warm.metrics["sweeps.campaign.executed"]["value"] == 0
        assert "sweeps.runs.ok" not in warm.metrics

    def test_supervised_campaign_counts_worker_spawns(self, tmp_path, spec):
        result = run_campaign(spec, store=tmp_path / "store", jobs=2)
        metrics = result.metrics
        assert metrics["sweeps.workers.spawns"]["value"] >= 2
        assert metrics["sweeps.runs.ok"]["value"] == 4
        assert metrics["sweeps.queue.depth"]["max"] >= 1
        assert metrics["sweeps.run.latency_s"]["count"] == 4

    def test_to_dict_carries_metrics(self, tmp_path, spec):
        result = run_campaign(spec, store=tmp_path / "store", jobs=1)
        payload = result.to_dict(include_records=False)
        assert payload["metrics"] == result.metrics
        assert "records" not in payload
        assert payload["executed"] == 4

    def test_summary_line_mentions_counts(self, tmp_path, spec):
        result = run_campaign(spec, store=tmp_path / "store", jobs=1)
        line = result.summary_line()
        assert "ok=4" in line and "executed=4" in line and "cached=0" in line


class TestCampaignProgress:
    def _progress(self, total=4, **kwargs) -> tuple[CampaignProgress, io.StringIO]:
        stream = io.StringIO()  # not a TTY: plain line mode
        kwargs.setdefault("interval_s", 0.0)
        return CampaignProgress(total, stream=stream, **kwargs), stream

    def test_counts_ok_cached_and_quarantined(self):
        progress, stream = self._progress(total=3)
        progress({"status": "ok"}, False)
        progress({"status": "ok"}, True)
        progress({"status": "failed", "error": {"attempts": 3}}, False)
        progress.close()
        assert (progress.ok, progress.cached, progress.quarantined) == (2, 1, 1)
        assert progress.retried == 2  # two attempts preceded quarantine
        lines = stream.getvalue().splitlines()
        assert lines, "plain streams must receive heartbeat lines"
        assert "3/3" in lines[-1] and "quarantined=1" in lines[-1]

    def test_line_contains_eta_mid_campaign_and_store(self):
        progress, _ = self._progress(total=4, store_path="runs/store")
        progress({"status": "ok"}, False)
        line = progress.line()
        assert "1/4" in line and "eta=" in line and "store=runs/store" in line

    def test_plain_stream_rate_limited(self):
        stream = io.StringIO()
        progress = CampaignProgress(100, stream=stream, interval_s=3600.0)
        for _ in range(10):
            progress({"status": "ok"}, False)
        # First callback emits (last_emit starts at 0); the rest are muted.
        assert stream.getvalue().count("\n") == 1

    def test_runs_as_run_campaign_callback(self, tmp_path, spec):
        progress, stream = self._progress(total=len(spec.expand()))
        result = run_campaign(spec, store=tmp_path / "store", jobs=1,
                              progress=progress)
        progress.close()
        assert progress.done == len(result.records) == 4
        assert "4/4 ok=4" in stream.getvalue()


class TestLogging:
    def test_get_logger_hierarchy(self):
        assert get_logger().name == "repro"
        assert get_logger("sweeps").name == "repro.sweeps"
        assert get_logger("sweeps").parent.name == "repro"

    def test_configure_is_idempotent(self):
        logger = configure_logging("info")
        handlers_before = list(logger.handlers)
        configure_logging("debug")
        assert list(logger.handlers) == handlers_before
        assert logger.level == logging.DEBUG
        configure_logging("warning")  # restore the CLI default

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("loud")

    def test_messages_reach_configured_stream(self):
        stream = io.StringIO()
        logger = configure_logging("info", stream=stream)
        try:
            get_logger("sweeps").info("respawned worker %d", 3)
            assert "INFO repro.sweeps: respawned worker 3" in stream.getvalue()
        finally:
            configure_logging("warning")
            assert logger.level == logging.WARNING
