"""Tests for tree-based collectives on the simulator."""

import numpy as np
import pytest

from repro.machine.collectives import (
    allgather,
    allreduce,
    broadcast,
    post_broadcast,
    post_reduce,
    reduce,
    reduce_scatter_blocks,
    ring_shift,
    scatter,
)
from repro.machine.simulator import DistributedMachine


@pytest.fixture
def machine():
    return DistributedMachine(8, memory_words=1 << 16)


class TestCounterOnlyPosting:
    """post_broadcast / post_reduce must match the executed collectives.

    These are the plane-engine entry points: an algorithm ports to plane
    mode by posting the tree schedule through them while delivering the
    payload via stacked-array gathers.
    """

    def test_post_broadcast_matches_broadcast(self):
        executed = DistributedMachine(8, memory_words=1 << 16)
        block = np.ones((3, 5))
        broadcast(executed, 2, [1, 2, 4, 7], block)
        posted = DistributedMachine(8, memory_words=1 << 16)
        post_broadcast(posted, 2, [1, 2, 4, 7], int(block.size))
        assert [r.counters.copy() for r in posted.ranks] == [
            r.counters.copy() for r in executed.ranks
        ]

    def test_post_reduce_matches_reduce(self):
        executed = DistributedMachine(8, memory_words=1 << 16)
        ranks = [0, 3, 5, 6]
        blocks = {r: np.full((2, 2), float(r)) for r in ranks}
        reduce(executed, 3, ranks, blocks)
        posted = DistributedMachine(8, memory_words=1 << 16)
        post_reduce(posted, 3, ranks, 4)
        assert [r.counters.copy() for r in posted.ranks] == [
            r.counters.copy() for r in executed.ranks
        ]


class TestBroadcast:
    def test_all_ranks_receive_payload(self, machine):
        block = np.arange(12.0).reshape(3, 4)
        received = broadcast(machine, 2, [2, 3, 4, 5], block)
        for rank in [2, 3, 4, 5]:
            assert np.allclose(received[rank], block)

    def test_received_volume_matches_mpi_bcast(self, machine):
        block = np.ones(10)
        broadcast(machine, 0, [0, 1, 2, 3], block)
        # Every non-root rank receives the payload exactly once.
        for rank in [1, 2, 3]:
            assert machine.rank(rank).counters.words_received == 10
        assert machine.rank(0).counters.words_received == 0

    def test_total_volume(self, machine):
        broadcast(machine, 0, [0, 1, 2, 3, 4], np.ones(7))
        assert machine.counters.total_words_sent == 4 * 7

    def test_root_not_in_ranks_raises(self, machine):
        with pytest.raises(ValueError):
            broadcast(machine, 7, [0, 1, 2], np.ones(3))

    def test_single_rank_broadcast_is_free(self, machine):
        received = broadcast(machine, 3, [3], np.ones(5))
        assert np.allclose(received[3], 1.0)
        assert machine.counters.total_words_sent == 0

    def test_tree_spreads_sender_load(self, machine):
        # With a binomial tree over 8 ranks the root sends 3 messages, not 7.
        broadcast(machine, 0, list(range(8)), np.ones(4))
        assert machine.rank(0).counters.messages_sent == 3


class TestReduce:
    def test_sum_arrives_at_root(self, machine):
        blocks = {r: np.full(4, float(r)) for r in range(4)}
        total = reduce(machine, 0, [0, 1, 2, 3], blocks)
        assert np.allclose(total, 0 + 1 + 2 + 3)

    def test_each_nonroot_sends_once(self, machine):
        blocks = {r: np.ones(6) for r in range(4)}
        reduce(machine, 0, [0, 1, 2, 3], blocks)
        for rank in [1, 2, 3]:
            assert machine.rank(rank).counters.words_sent == 6

    def test_missing_block_raises(self, machine):
        with pytest.raises(ValueError):
            reduce(machine, 0, [0, 1], {0: np.ones(3)})

    def test_inputs_not_mutated(self, machine):
        blocks = {0: np.ones(3), 1: np.ones(3)}
        reduce(machine, 0, [0, 1], blocks)
        assert np.allclose(blocks[0], 1.0)

    def test_custom_op(self, machine):
        blocks = {0: np.full(3, 5.0), 1: np.full(3, 2.0)}
        result = reduce(machine, 0, [0, 1], blocks, op=np.maximum)
        assert np.allclose(result, 5.0)

    def test_root_can_be_any_rank(self, machine):
        blocks = {r: np.full(2, 1.0) for r in [3, 5, 6]}
        total = reduce(machine, 5, [3, 5, 6], blocks)
        assert np.allclose(total, 3.0)


class TestAllreduce:
    def test_everyone_gets_sum(self, machine):
        blocks = {r: np.full(3, float(r + 1)) for r in range(4)}
        result = allreduce(machine, [0, 1, 2, 3], blocks)
        for rank in range(4):
            assert np.allclose(result[rank], 10.0)


class TestReduceScatter:
    def test_each_owner_gets_summed_piece(self, machine):
        ranks = [0, 1, 2]
        contributions = {
            src: {dst: np.full(2, float(src + dst)) for dst in ranks} for src in ranks
        }
        result = reduce_scatter_blocks(machine, ranks, contributions)
        for dst in ranks:
            expected = sum(src + dst for src in ranks)
            assert np.allclose(result[dst], expected)

    def test_missing_own_contribution_raises(self, machine):
        with pytest.raises(ValueError):
            reduce_scatter_blocks(machine, [0, 1], {0: {0: np.ones(2)}, 1: {0: np.ones(2)}})


class TestAllgather:
    def test_everyone_has_everything_in_order(self, machine):
        ranks = [0, 1, 2, 3]
        blocks = {r: np.full(2, float(r)) for r in ranks}
        gathered = allgather(machine, ranks, blocks)
        for rank in ranks:
            for position, value in enumerate(gathered[rank]):
                assert np.allclose(value, float(ranks[position]))

    def test_received_volume(self, machine):
        ranks = [0, 1, 2, 3]
        blocks = {r: np.ones(5) for r in ranks}
        allgather(machine, ranks, blocks)
        for rank in ranks:
            assert machine.rank(rank).counters.words_received == 5 * (len(ranks) - 1)


class TestScatter:
    def test_pieces_delivered(self, machine):
        pieces = {r: np.full(3, float(r)) for r in range(4)}
        out = scatter(machine, 0, [0, 1, 2, 3], pieces)
        for rank in range(4):
            assert np.allclose(out[rank], float(rank))

    def test_missing_piece_raises(self, machine):
        with pytest.raises(ValueError):
            scatter(machine, 0, [0, 1], {0: np.ones(2)})

    def test_root_piece_not_counted(self, machine):
        pieces = {0: np.ones(4), 1: np.ones(4)}
        scatter(machine, 0, [0, 1], pieces)
        assert machine.rank(0).counters.words_received == 0
        assert machine.rank(1).counters.words_received == 4


class TestRingShift:
    def test_shift_by_one(self, machine):
        ranks = [0, 1, 2, 3]
        blocks = {r: np.full(2, float(r)) for r in ranks}
        shifted = ring_shift(machine, ranks, blocks, displacement=1)
        # Block of the rank at position pos moves to position pos - 1.
        assert np.allclose(shifted[0], 1.0)
        assert np.allclose(shifted[3], 0.0)

    def test_shift_by_zero_is_identity_and_free(self, machine):
        ranks = [0, 1, 2]
        blocks = {r: np.full(1, float(r)) for r in ranks}
        shifted = ring_shift(machine, ranks, blocks, displacement=0)
        for r in ranks:
            assert np.allclose(shifted[r], float(r))
        assert machine.counters.total_words_sent == 0

    def test_full_cycle_restores(self, machine):
        ranks = [0, 1, 2, 3]
        blocks = {r: np.full(1, float(r)) for r in ranks}
        current = blocks
        for _ in range(len(ranks)):
            current = ring_shift(machine, ranks, current, displacement=1)
        for r in ranks:
            assert np.allclose(current[r], float(r))

    def test_counts_one_round_per_shift(self, machine):
        ranks = [0, 1, 2, 3]
        blocks = {r: np.ones(4) for r in ranks}
        ring_shift(machine, ranks, blocks, displacement=1)
        for r in ranks:
            assert machine.rank(r).counters.rounds == 1
